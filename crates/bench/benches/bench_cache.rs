//! Criterion microbenchmarks for the historical embedding cache (§4.2):
//! ring-buffer admission and O(1) lookup throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgnn_tensor::Rng;
use freshgnn::cache::RingCache;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_cache");
    let num_nodes = 1_000_000;
    for dim in [64usize, 256] {
        let row = vec![0.5f32; dim];
        group.bench_with_input(BenchmarkId::new("admit", dim), &dim, |b, _| {
            let mut cache = RingCache::new(num_nodes, 64 * 1024, dim);
            let mut node = 0u32;
            b.iter(|| {
                cache.admit(black_box(node % num_nodes as u32), &row, 1_000, 1_000_000);
                node = node.wrapping_add(1);
            });
        });
        group.bench_with_input(BenchmarkId::new("lookup_hit", dim), &dim, |b, _| {
            let mut cache = RingCache::new(num_nodes, 64 * 1024, dim);
            let mut rng = Rng::new(3);
            let nodes: Vec<u32> = (0..32 * 1024)
                .map(|_| rng.below(num_nodes) as u32)
                .collect();
            for &n in &nodes {
                cache.admit(n, &row, 0, u32::MAX);
            }
            let mut i = 0usize;
            b.iter(|| {
                let n = nodes[i % nodes.len()];
                black_box(cache.lookup(n, 1, u32::MAX));
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("lookup_miss", dim), &dim, |b, _| {
            let mut cache = RingCache::new(num_nodes, 1024, dim);
            let mut n = 500_000u32;
            b.iter(|| {
                black_box(cache.lookup(n % num_nodes as u32, 1, 100));
                n = n.wrapping_add(1);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache
}
criterion_main!(benches);
