//! Criterion microbenchmarks for the all-to-all schedulers (Fig 15):
//! scheduling computation cost (the simulated plans themselves are cheap;
//! this guards against regressions in the planner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgnn_memsim::alltoall::{multi_round_alltoall, naive_alltoall};
use fgnn_memsim::presets::GB;
use fgnn_memsim::Topology;
use std::hint::black_box;

fn bench_comm(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoall_planning");
    for gpus in [4usize, 8, 16] {
        let topo = Topology::pcie_tree(gpus, 2, 16.0 * GB);
        let demand: Vec<Vec<u64>> = (0..gpus)
            .map(|i| {
                (0..gpus)
                    .map(|j| if i == j { 0 } else { 1 << 26 })
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("naive", gpus), &gpus, |b, _| {
            b.iter(|| black_box(naive_alltoall(&topo, &demand)));
        });
        group.bench_with_input(BenchmarkId::new("multi_round", gpus), &gpus, |b, _| {
            b.iter(|| black_box(multi_round_alltoall(&topo, &demand)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_comm
}
criterion_main!(benches);
