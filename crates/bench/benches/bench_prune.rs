//! Criterion microbenchmarks for Table 1 / Fig 14(b): per-node prune cost
//! of CSR vs COO vs CSR2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgnn_graph::generate::{generate, GraphConfig};
use fgnn_graph::{Coo, Csr2};
use fgnn_tensor::Rng;
use std::hint::black_box;

fn graph(n: usize) -> fgnn_graph::Csr {
    let mut rng = Rng::new(7);
    generate(
        &GraphConfig {
            num_nodes: n,
            avg_degree: 16.0,
            ..Default::default()
        },
        &mut rng,
    )
    .graph
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_one_node");
    for n in [4_000usize, 16_000, 64_000] {
        let g = graph(n);
        let mut rng = Rng::new(11);
        let victims: Vec<u32> = (0..64).map(|_| rng.below(n) as u32).collect();

        group.bench_with_input(BenchmarkId::new("csr", n), &n, |b, _| {
            b.iter_batched(
                || g.clone(),
                |mut csr| {
                    for &v in &victims[..4] {
                        black_box(csr.prune_neighbors(v));
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
        let coo = Coo::from_csr(&g);
        group.bench_with_input(BenchmarkId::new("coo", n), &n, |b, _| {
            b.iter_batched(
                || coo.clone(),
                |mut c| {
                    for &v in &victims {
                        black_box(c.prune_neighbors(v));
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
        let csr2 = Csr2::from_csr(&g);
        group.bench_with_input(BenchmarkId::new("csr2", n), &n, |b, _| {
            b.iter_batched(
                || csr2.clone(),
                |mut c| {
                    for &v in &victims {
                        black_box(c.prune(v as usize));
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prune
}
criterion_main!(benches);
