//! Criterion microbenchmarks for neighbor sampling (§5): per-batch
//! sampling cost at the paper's fanouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgnn_graph::generate::{generate, GraphConfig};
use fgnn_graph::sample::NeighborSampler;
use fgnn_tensor::Rng;
use std::hint::black_box;

fn bench_sampler(c: &mut Criterion) {
    let mut rng = Rng::new(5);
    let g = generate(
        &GraphConfig {
            num_nodes: 50_000,
            avg_degree: 20.0,
            ..Default::default()
        },
        &mut rng,
    )
    .graph;

    let mut group = c.benchmark_group("neighbor_sampling");
    for (label, fanouts) in [
        ("f10x2", vec![10usize, 10]),
        ("f20_15_10", vec![20, 15, 10]),
    ] {
        group.bench_with_input(BenchmarkId::new(label, 256), &fanouts, |b, f| {
            let mut sampler = NeighborSampler::new(g.num_nodes());
            let mut rng = Rng::new(9);
            let seeds: Vec<u32> = (0..256).map(|_| rng.below(g.num_nodes()) as u32).collect();
            b.iter(|| {
                let mb = sampler.sample(&g, &seeds, f, &mut rng);
                black_box(mb.total_edges());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sampler
}
criterion_main!(benches);
