//! Ablation (design-choice study from DESIGN.md): does the *gradient*
//! criterion actually matter, or is any admission rule with the same
//! cache size just as good?
//!
//! Trains FreshGNN with three admission criteria at the same `p` and
//! `t_stale`:
//!
//! * **gradient** (the paper's): admit the smallest gradient norms;
//! * **random**: admit a uniformly random fraction of the batch;
//! * **inverse-gradient** (adversarial): admit the *largest* norms.
//!
//! If the paper's stability hypothesis holds, accuracy should order
//! gradient ≥ random > inverse at comparable I/O savings.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::papers100m_spec;
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::cache::PolicyKind;
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0004);
    let epochs: usize = args.get("epochs", 60);
    let t_stale: u32 = args.get("t-stale", 30);
    let p: f32 = args.get("p", 0.9);
    // `--policy <name>` restricts the sweep to one criterion (any
    // `PolicyKind` display name parses, not just the default three).
    let only: Option<PolicyKind> = args.get_opt::<String>("policy").map(|s| {
        s.parse()
            .unwrap_or_else(|e: String| panic!("--policy: {e}"))
    });

    banner(
        "Ablation",
        "Admission criterion: gradient vs random vs inverse-gradient",
    );
    let ds = Dataset::materialize(papers100m_spec(scale).with_dim(48), seed);
    println!(
        "papers100M-s: {} nodes, {} train; p = {p}, t_stale = {t_stale}, {epochs} epochs\n",
        ds.num_nodes(),
        ds.train_nodes.len()
    );

    let w = [20, 14, 14, 12];
    row(&[&"criterion", &"I/O saving", &"hit rate", &"test acc"], &w);
    let default_sweep = [
        ("gradient (paper)", PolicyKind::Gradient),
        ("random", PolicyKind::Random),
        ("inverse-gradient", PolicyKind::InverseGradient),
    ];
    let sweep: Vec<(&str, PolicyKind)> = match only {
        Some(kind) => vec![(kind.name(), kind)],
        None => default_sweep.to_vec(),
    };
    for (name, kind) in sweep {
        let cfg = FreshGnnConfig {
            p_grad: p,
            t_stale,
            fanouts: vec![6, 6],
            batch_size: 128,
            policy: kind,
            ..Default::default()
        };
        let mut t = Trainer::new(&ds, Arch::Sage, 64, Machine::single_a100(), cfg, seed);
        let mut opt = Adam::new(0.003);
        let mut best = 0.0f64;
        let eval = &ds.test_nodes[..ds.test_nodes.len().min(1500)];
        for e in 0..epochs {
            t.train_epoch(&ds, &mut opt);
            if e % 5 == 4 {
                best = best.max(t.evaluate(&ds, eval, 512));
            }
        }
        best = best.max(t.evaluate(&ds, eval, 512));
        row(
            &[
                &name,
                &format!("{:.1}%", t.counters.io_saving() * 100.0),
                &format!("{:.1}%", t.cache.stats().hit_rate() * 100.0),
                &format!("{best:.4}"),
            ],
            &w,
        );
    }
    println!("\nhypothesis (§4.1): small gradient norms mark stable embeddings, so");
    println!("the gradient criterion should dominate at equal cache pressure.");
}
