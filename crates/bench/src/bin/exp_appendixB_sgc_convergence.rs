//! Appendix B / Proposition 4.1: convergence of SGC with a random-
//! selector, bounded-staleness historical model.
//!
//! Runs gradient descent on the SGC least-squares problem with (i) exact
//! gradients, (ii) the historical model at several staleness bounds, and
//! reports the exact-loss gradient norm — which the proposition guarantees
//! converges to zero for any bounded staleness.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::generate::{generate, GraphConfig};
use fgnn_tensor::{ops, Rng};
use freshgnn::sgc::{run_historical_sgc, SgcConfig};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let n: usize = args.get("nodes", 2000);
    let iters: usize = args.get("iters", 400);

    banner(
        "Appendix B",
        "SGC convergence with bounded-staleness history",
    );
    let mut rng = Rng::new(seed);
    let cfg = GraphConfig {
        num_nodes: n,
        avg_degree: 10.0,
        num_communities: 8,
        homophily: 0.8,
        ..Default::default()
    };
    let g = generate(&cfg, &mut rng).graph;
    let x = rng.normal_matrix(n, 16, 1.0);
    let w_true = rng.normal_matrix(16, 4, 1.0);
    let x_hat = freshgnn::sgc::propagate_features(&g, &x, 2);
    let mut y = ops::matmul(&x_hat, &w_true).unwrap();
    for v in y.as_mut_slice() {
        *v += rng.normal() * 0.01;
    }
    println!(
        "graph: {} nodes, {} edges; SGC k=2, least squares\n",
        n,
        g.num_edges()
    );

    let configs: Vec<(String, SgcConfig)> = vec![
        (
            "exact (s=0)".into(),
            SgcConfig {
                k: 2,
                max_staleness: 0,
                p_fresh: 1.0,
                step_size: 0.4,
                iterations: iters,
            },
        ),
        (
            "history s=5, p0=0.5".into(),
            SgcConfig {
                k: 2,
                max_staleness: 5,
                p_fresh: 0.5,
                step_size: 0.4,
                iterations: iters,
            },
        ),
        (
            "history s=20, p0=0.5".into(),
            SgcConfig {
                k: 2,
                max_staleness: 20,
                p_fresh: 0.5,
                step_size: 0.4,
                iterations: iters,
            },
        ),
        (
            "history s=20, p0=0.2".into(),
            SgcConfig {
                k: 2,
                max_staleness: 20,
                p_fresh: 0.2,
                step_size: 0.4,
                iterations: iters,
            },
        ),
    ];

    let checkpoints = [0usize, 50, 100, 200, iters - 1];
    let w = [22, 12, 12, 12, 12, 12];
    row(
        &[&"config", &"‖∇ℓ‖@0", &"@50", &"@100", &"@200", &"@end"],
        &w,
    );
    for (name, cfg) in configs {
        let mut run_rng = Rng::new(seed ^ 0xB);
        let run = run_historical_sgc(&g, &x, &y, &cfg, &mut run_rng);
        let cells: Vec<String> = std::iter::once(name.clone())
            .chain(
                checkpoints
                    .iter()
                    .map(|&i| format!("{:.2e}", run.grad_norms[i.min(run.grad_norms.len() - 1)])),
            )
            .collect();
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        row(&refs, &w);
    }
    println!("\nProposition 4.1: every bounded-staleness run drives ‖∇ℓ(W)‖ -> 0,");
    println!("with rate degrading gracefully as p0 shrinks (the 1/p0 factor).");
}
