//! Extension: multi-host partitioned training with failure domains
//! (DESIGN.md §14) — the fig 10 datasets sharded across 1/2/4 hosts and
//! trained through [`ClusterTrainer`] under named fault schedules.
//!
//! Each cell partitions the graph with the LDG partitioner, runs BSP
//! lock-step rounds with batched active-message halo reads, and reports
//! two kinds of quantity:
//!
//! * **exact** — final-epoch cluster mean loss, H2D feature bytes,
//!   inter-host NIC bytes, simulated seconds (slowest host's stream plus
//!   NIC and retry time), degraded reads, and the worst staleness any
//!   degraded read was served at. BSP rounds make every one a deterministic
//!   function of the seed and the fault schedule; the `crash` schedule's
//!   loss and H2D columns must match the `none` schedule bit for bit
//!   (deterministic shard recovery);
//! * **measured** — cell wall time, context only.
//!
//! `--bench-json <path>` writes the `fgnn-cluster-v1` document
//! `scripts/bench_trajectory.sh` commits as `BENCH_cluster.json`. The
//! sweep loop lives in [`fgnn_bench::trajectory`], shared with the
//! `exp_report` gate (which additionally enforces the fault-invariance
//! claim).
//!
//! [`ClusterTrainer`]: freshgnn::ClusterTrainer

use fgnn_bench::trajectory::{cluster_sweep, ClusterSweepConfig};
use fgnn_bench::{banner, fmt_bytes, fmt_secs, row, Args};
use freshgnn::cluster::cluster_bench_json;

fn main() {
    let args = Args::parse();
    let mut sw = ClusterSweepConfig {
        seed: args.get("seed", 42),
        scale: args.get("scale", 1.0),
        epochs: args.get("epochs", 2),
        ..ClusterSweepConfig::default()
    };
    if let Some(list) = args.get_opt::<String>("hosts") {
        sw.hosts = list
            .split(',')
            .map(|h| h.trim().parse().unwrap_or_else(|e| panic!("--hosts: {e}")))
            .collect();
        assert!(!sw.hosts.is_empty(), "--hosts needs at least one count");
    }
    if let Some(list) = args.get_opt::<String>("schedules") {
        sw.schedules = list.split(',').map(|s| s.trim().to_string()).collect();
        assert!(!sw.schedules.is_empty(), "--schedules needs at least one");
    }
    let bench_out: Option<String> = args.get_opt("bench-json");

    banner(
        "Cluster",
        "Multi-host partitioned training under fault schedules",
    );
    println!(
        "{} epochs per cell, hosts {:?}, schedules {:?}, seed {}\n",
        sw.epochs, sw.hosts, sw.schedules, sw.seed,
    );

    let w = [12usize, 6, 9, 12, 10, 10, 12, 9, 9, 9];
    row(
        &[
            &"dataset",
            &"hosts",
            &"schedule",
            &"meanLoss",
            &"h2d",
            &"nic",
            &"simSeconds",
            &"degraded",
            &"maxStale",
            &"wall",
        ],
        &w,
    );

    let rows = cluster_sweep(&sw, |r| {
        row(
            &[
                &r.dataset,
                &r.hosts,
                &r.schedule,
                &format!("{:.6}", r.mean_loss),
                &fmt_bytes(r.h2d_bytes),
                &fmt_bytes(r.nic_bytes),
                &format!("{:.6}", r.sim_seconds),
                &r.degraded_reads,
                &r.max_staleness,
                &fmt_secs(r.wall_seconds),
            ],
            &w,
        );
    });

    println!("\ncluster reading: meanLoss/h2d must be identical between the none");
    println!("and crash schedules of each (dataset, hosts) pair — checkpoint");
    println!("recovery replays the crashed shard back onto the fault-free");
    println!("trajectory. nic/degraded/maxStale record what the faults cost.");
    if let Some(path) = bench_out {
        std::fs::write(&path, cluster_bench_json(sw.seed, &rows)).expect("write --bench-json");
        eprintln!("wrote cluster bench JSON to {path}");
    }
}
