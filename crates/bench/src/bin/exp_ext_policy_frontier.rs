//! Extension: the accuracy-vs-cache-traffic frontier of the staleness
//! policy family (DESIGN.md §11) on the four Fig 10 datasets.
//!
//! Sweeps the four staleness-control policies at the same `p` / `t_stale`:
//!
//! * **gradient** — the paper's baseline (hard `t_stale` bound, plain
//!   reads);
//! * **staleness-weighted** — VISAGNN-style: reads are down-weighted
//!   linearly in age instead of trusted verbatim;
//! * **predictive** — dynamic-embedding prediction (arXiv:2308.13466):
//!   aged reads are extrapolated along each entry's update-delta history
//!   (recorded by mid-window in-place refreshes);
//! * **coarse-refresh** — a periodic refresh schedule: live entries are
//!   recomputed and rewritten in place once per `t_stale/4` iterations
//!   instead of only at expiry (coarser than streaming updates, finer
//!   than expiry-only).
//!
//! Per (dataset, policy) cell the run reports final accuracy, total H2D
//! feature traffic, the Fig 13 I/O-saving ratio, hit rate and the
//! policy-specific counters, so the frontier "how much accuracy does each
//! staleness treatment buy per byte moved" can be read straight off the
//! table. `--policy <name>` restricts the sweep; `--bench-json <path>`
//! writes the `fgnn-policy-v1` document `scripts/bench_trajectory.sh`
//! commits as `BENCH_policy.json` (exact counters only — bit-for-bit
//! reproducible from the same `--seed`).

use fgnn_bench::{banner, fmt_bytes, row, Args};
use fgnn_graph::datasets::{
    friendster_spec, mag240m_spec, papers100m_spec, twitter_spec, DatasetSpec,
};
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::cache::{policy_bench_json, PolicyFrontierRow, PolicyKind};
use freshgnn::{FreshGnnConfig, Trainer};

/// The frontier sweep: baseline plus the three literature policies.
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Gradient,
    PolicyKind::StalenessWeighted,
    PolicyKind::Predictive,
    PolicyKind::CoarseRefresh,
];

/// Fig 10 datasets at frontier scale: `(label, spec)` with per-dataset
/// base scales chosen so each graph lands near ~5k nodes at `--scale 1`,
/// and feature dims capped so the sweep stays minutes-fast.
fn datasets(scale: f64) -> Vec<(&'static str, DatasetSpec)> {
    vec![
        ("papers100m", papers100m_spec(5.0e-5 * scale).with_dim(32)),
        ("mag240m", mag240m_spec(2.0e-5 * scale).with_dim(32)),
        ("twitter", twitter_spec(1.2e-4 * scale).with_dim(32)),
        ("friendster", friendster_spec(8.0e-5 * scale).with_dim(32)),
    ]
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 1.0);
    let epochs: usize = args.get("epochs", 10);
    let t_stale: u32 = args.get("t-stale", 30);
    let p: f32 = args.get("p", 0.9);
    let only: Option<PolicyKind> = args.get_opt::<String>("policy").map(|s| {
        s.parse()
            .unwrap_or_else(|e: String| panic!("--policy: {e}"))
    });
    let bench_out: Option<String> = args.get_opt("bench-json");

    banner(
        "PolicyFrontier",
        "Accuracy vs cache traffic across the staleness policy family",
    );
    println!("p = {p}, t_stale = {t_stale}, {epochs} epochs, seed {seed}\n");

    let w = [12usize, 19, 10, 10, 9, 9, 8, 8, 8];
    row(
        &[
            &"dataset", &"policy", &"acc", &"h2d", &"ioSave%", &"hit%", &"sched", &"pred",
            &"weight",
        ],
        &w,
    );

    let sweep: Vec<PolicyKind> = match only {
        Some(kind) => vec![kind],
        None => POLICIES.to_vec(),
    };
    let mut rows = Vec::new();
    for (label, spec) in datasets(scale) {
        let ds = Dataset::materialize(spec, seed);
        for &kind in &sweep {
            let cfg = FreshGnnConfig {
                p_grad: p,
                t_stale,
                fanouts: vec![4, 4],
                batch_size: 32,
                policy: kind,
                ..Default::default()
            };
            let mut t = Trainer::new(&ds, Arch::Sage, 32, Machine::single_a100(), cfg, seed);
            let mut opt = Adam::new(0.003);
            for _ in 0..epochs {
                t.train_epoch(&ds, &mut opt);
            }
            let eval = &ds.test_nodes[..ds.test_nodes.len().min(500)];
            let acc = t.evaluate(&ds, eval, 256);
            let stats = t.cache.stats();
            let r = PolicyFrontierRow {
                policy: kind.name().to_string(),
                dataset: label.to_string(),
                accuracy: acc,
                h2d_bytes: t.counters.host_to_gpu_bytes,
                io_saving: t.counters.io_saving(),
                hit_rate: stats.hit_rate(),
                scheduled_refreshes: stats.scheduled_refreshes,
                predicted_reads: stats.predicted_reads,
                weighted_reads: stats.weighted_reads,
            };
            row(
                &[
                    &r.dataset,
                    &r.policy,
                    &format!("{:.4}", r.accuracy),
                    &fmt_bytes(r.h2d_bytes),
                    &format!("{:.1}", r.io_saving * 100.0),
                    &format!("{:.1}", r.hit_rate * 100.0),
                    &r.scheduled_refreshes,
                    &r.predicted_reads,
                    &r.weighted_reads,
                ],
                &w,
            );
            rows.push(r);
        }
    }

    println!("\nfrontier reading: at equal traffic the staleness treatments should");
    println!("hold (or improve) accuracy; the refresh schedules trade extra");
    println!("recompute/admit traffic for a lower worst-case served age.");
    if let Some(path) = bench_out {
        std::fs::write(&path, policy_bench_json(seed, &rows)).expect("write --bench-json");
        eprintln!("wrote policy bench JSON to {path}");
    }
}
