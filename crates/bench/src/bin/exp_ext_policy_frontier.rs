//! Extension: the accuracy-vs-cache-traffic frontier of the staleness
//! policy family (DESIGN.md §11) on the four Fig 10 datasets.
//!
//! Sweeps the four staleness-control policies at the same `p` / `t_stale`:
//!
//! * **gradient** — the paper's baseline (hard `t_stale` bound, plain
//!   reads);
//! * **staleness-weighted** — VISAGNN-style: reads are down-weighted
//!   linearly in age instead of trusted verbatim;
//! * **predictive** — dynamic-embedding prediction (arXiv:2308.13466):
//!   aged reads are extrapolated along each entry's update-delta history
//!   (recorded by mid-window in-place refreshes);
//! * **coarse-refresh** — a periodic refresh schedule: live entries are
//!   recomputed and rewritten in place once per `t_stale/4` iterations
//!   instead of only at expiry (coarser than streaming updates, finer
//!   than expiry-only).
//!
//! Per (dataset, policy) cell the run reports final accuracy, total H2D
//! feature traffic, the Fig 13 I/O-saving ratio, hit rate and the
//! policy-specific counters, so the frontier "how much accuracy does each
//! staleness treatment buy per byte moved" can be read straight off the
//! table. `--policy <name>` restricts the sweep; `--bench-json <path>`
//! writes the `fgnn-policy-v1` document `scripts/bench_trajectory.sh`
//! commits as `BENCH_policy.json` (exact counters only — bit-for-bit
//! reproducible from the same `--seed`). The sweep loop itself lives in
//! [`fgnn_bench::trajectory`], shared with the `exp_report` gate.

use fgnn_bench::trajectory::{policy_sweep, PolicySweepConfig};
use fgnn_bench::{banner, fmt_bytes, row, Args};
use freshgnn::cache::{policy_bench_json, PolicyKind};

fn main() {
    let args = Args::parse();
    let sw = PolicySweepConfig {
        seed: args.get("seed", 42),
        scale: args.get("scale", 1.0),
        epochs: args.get("epochs", 10),
        t_stale: args.get("t-stale", 30),
        p: args.get("p", 0.9),
        only: args.get_opt::<String>("policy").map(|s| {
            s.parse::<PolicyKind>()
                .unwrap_or_else(|e: String| panic!("--policy: {e}"))
        }),
    };
    let bench_out: Option<String> = args.get_opt("bench-json");

    banner(
        "PolicyFrontier",
        "Accuracy vs cache traffic across the staleness policy family",
    );
    println!(
        "p = {}, t_stale = {}, {} epochs, seed {}\n",
        sw.p, sw.t_stale, sw.epochs, sw.seed
    );

    let w = [12usize, 19, 10, 10, 9, 9, 8, 8, 8];
    row(
        &[
            &"dataset", &"policy", &"acc", &"h2d", &"ioSave%", &"hit%", &"sched", &"pred",
            &"weight",
        ],
        &w,
    );

    let rows = policy_sweep(&sw, |r| {
        row(
            &[
                &r.dataset,
                &r.policy,
                &format!("{:.4}", r.accuracy),
                &fmt_bytes(r.h2d_bytes),
                &format!("{:.1}", r.io_saving * 100.0),
                &format!("{:.1}", r.hit_rate * 100.0),
                &r.scheduled_refreshes,
                &r.predicted_reads,
                &r.weighted_reads,
            ],
            &w,
        );
    });

    println!("\nfrontier reading: at equal traffic the staleness treatments should");
    println!("hold (or improve) accuracy; the refresh schedules trade extra");
    println!("recompute/admit traffic for a lower worst-case served age.");
    if let Some(path) = bench_out {
        std::fs::write(&path, policy_bench_json(sw.seed, &rows)).expect("write --bench-json");
        eprintln!("wrote policy bench JSON to {path}");
    }
}
