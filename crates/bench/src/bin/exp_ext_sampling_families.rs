//! Extension experiment: the §2.3 design space in one table.
//!
//! The paper's taxonomy of scalable mini-batch training: neighbor
//! sampling (exponential footprint, exact target), layer-wise sampling
//! (bounded footprint, biased aggregation), graph-wise sampling (bounded
//! footprint, dropped edges), historical embeddings without control (the
//! GAS corner), and FreshGNN (bounded error via the selective cache).
//! One row per family: accuracy vs wire traffic.

use fgnn_bench::{banner, fmt_bytes, row, Args};
use fgnn_graph::datasets::papers100m_spec;
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::baselines::{SamplingBaselineTrainer, SamplingKind};
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0004);
    let epochs: usize = args.get("epochs", 60);

    banner(
        "Extension",
        "The §2.3 design space: accuracy vs traffic per sampling family",
    );
    let ds = Dataset::materialize(papers100m_spec(scale).with_dim(48), seed);
    println!(
        "papers100M-s: {} nodes, {} train; GraphSAGE where applicable\n",
        ds.num_nodes(),
        ds.train_nodes.len()
    );
    let eval_nodes = &ds.test_nodes[..ds.test_nodes.len().min(1500)];
    let w = [26, 12, 14];
    row(&[&"family", &"test acc", &"wire bytes"], &w);

    // Neighbor sampling (the target) and FreshGNN share the Trainer.
    for (name, p_grad, t_stale) in [("neighbor sampling", 0.0f32, 0u32), ("FreshGNN", 0.9, 6)] {
        let cfg = FreshGnnConfig {
            p_grad,
            t_stale,
            fanouts: vec![6, 6],
            batch_size: 128,
            ..Default::default()
        };
        let mut t = Trainer::new(&ds, Arch::Sage, 64, Machine::single_a100(), cfg, seed);
        let mut opt = Adam::new(0.003);
        let mut best = 0.0f64;
        for e in 0..epochs {
            t.train_epoch(&ds, &mut opt);
            if e % 10 == 9 {
                best = best.max(t.evaluate(&ds, eval_nodes, 512));
            }
        }
        best = best.max(t.evaluate(&ds, eval_nodes, 512));
        row(
            &[
                &name,
                &format!("{best:.4}"),
                &fmt_bytes(t.counters.wire_bytes()),
            ],
            &w,
        );
    }

    // Layer-wise and graph-wise families.
    for (name, kind) in [
        (
            "layer-wise (FastGCN)",
            SamplingKind::LayerWise {
                layer_sizes: vec![512, 512],
            },
        ),
        (
            "graph-wise (GraphSAINT)",
            SamplingKind::GraphWise {
                roots: 64,
                walk_length: 4,
            },
        ),
    ] {
        let mut t = SamplingBaselineTrainer::new(
            &ds,
            Arch::Sage,
            64,
            2,
            128,
            kind,
            Machine::single_a100(),
            seed,
        );
        let mut opt = Adam::new(0.003);
        let mut best = 0.0f64;
        for e in 0..epochs {
            t.train_epoch(&ds, &mut opt);
            if e % 10 == 9 {
                best = best.max(t.evaluate(&ds, eval_nodes, &[6, 6]));
            }
        }
        best = best.max(t.evaluate(&ds, eval_nodes, &[6, 6]));
        row(
            &[
                &name,
                &format!("{best:.4}"),
                &fmt_bytes(t.counters.wire_bytes()),
            ],
            &w,
        );
    }
    println!("\nexpected (§2.3): bounded-footprint samplers trade accuracy for");
    println!("traffic; FreshGNN keeps the NS accuracy at a fraction of its bytes.");
}
