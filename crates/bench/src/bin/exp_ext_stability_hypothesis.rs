//! Extension experiment: test §4.1's core hypothesis directly.
//!
//! The paper argues "consistently small gradient magnitudes are likely to
//! correlate on average with smaller estimation errors ‖h̄ − h‖". We can
//! measure that correlation exactly (the paper cannot at its scale):
//!
//! 1. fix a probe mini-batch; at iteration `t` record every level-1
//!    node's embedding **and** its loss-gradient norm;
//! 2. train `s` more iterations;
//! 3. recompute the same embeddings under the new weights; the drift
//!    `‖h_{t+s} − h_t‖` is exactly the estimation error a cache admission
//!    at `t` would have incurred at `t+s`;
//! 4. report the Pearson and Spearman correlation between gradient norm
//!    at `t` and subsequent drift.
//!
//! Positive correlation = the gradient criterion selects the right nodes.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::products_spec;
use fgnn_graph::sample::{split_batches, NeighborSampler};
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use fgnn_tensor::{stats, Matrix, Rng};
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.002);
    let warmup: usize = args.get("warmup", 40);
    let lag: usize = args.get("lag", 20);

    banner(
        "Extension",
        "§4.1 hypothesis: do small gradient norms predict small drift?",
    );
    let ds = Dataset::materialize(products_spec(scale).with_dim(32), seed);
    println!(
        "products-s: {} nodes; warmup {warmup} iters, drift lag {lag} iters\n",
        ds.num_nodes()
    );

    let cfg = FreshGnnConfig::neighbor_sampling(vec![6, 6], 128);
    let mut trainer = Trainer::new(&ds, Arch::Sage, 64, Machine::single_a100(), cfg, seed);
    let mut opt = Adam::new(0.003);

    // Fixed probe batch.
    let mut probe_rng = Rng::new(seed ^ 0x51AB);
    let probe_seeds: Vec<u32> = ds.train_nodes[..128.min(ds.train_nodes.len())].to_vec();
    let mut sampler = NeighborSampler::new(ds.num_nodes());
    let probe_mb = sampler.sample(&ds.graph, &probe_seeds, &[6, 6], &mut probe_rng);
    let ids: Vec<usize> = probe_mb.input_nodes().iter().map(|&g| g as usize).collect();
    let probe_h0 = ds.features.gather_rows(&ids);
    let probe_labels: Vec<u16> = probe_seeds.iter().map(|&s| ds.labels[s as usize]).collect();

    // Warm up so embeddings are past the chaotic first iterations.
    let mut rng = Rng::new(seed ^ 0x51);
    let mut done = 0usize;
    let mut train_some = |trainer: &mut Trainer, n: usize, rng: &mut Rng, done: &mut usize| {
        while *done < n {
            let batches = split_batches(&ds.train_nodes, 128, Some(rng));
            for b in &batches {
                trainer.train_on_batches(&ds, std::slice::from_ref(b), &mut opt);
                *done += 1;
                if *done >= n {
                    break;
                }
            }
        }
    };
    train_some(&mut trainer, warmup, &mut rng, &mut done);

    // Snapshot: level-1 embeddings + per-node gradient norms at t.
    let trace = trainer.model.forward(&probe_mb, probe_h0.clone());
    let h1_before: Matrix = trace.h[1].clone();
    let logits = trace.h.last().unwrap();
    let (_, d_top) = softmax_cross_entropy(logits, &probe_labels);
    let mut grad_norms = vec![0.0f32; probe_mb.blocks[0].num_dst()];
    trainer.model.zero_grad();
    {
        let norms = &mut grad_norms;
        trainer
            .model
            .backward_with(&probe_mb, &trace, d_top, |level, d| {
                if level == 1 {
                    for (v, n) in norms.iter_mut().enumerate() {
                        *n = d.row(v).iter().map(|&x| x * x).sum::<f32>().sqrt();
                    }
                }
            });
    }
    trainer.model.zero_grad();

    // Train `lag` more iterations, then measure drift.
    train_some(&mut trainer, warmup + lag, &mut rng, &mut done);
    let trace_after = trainer.model.forward(&probe_mb, probe_h0);
    let h1_after = &trace_after.h[1];
    let drift: Vec<f32> = (0..h1_before.rows())
        .map(|v| {
            h1_before
                .row(v)
                .iter()
                .zip(h1_after.row(v))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        })
        .collect();

    let pearson = stats::pearson(&grad_norms, &drift);
    let spearman = stats::spearman(&grad_norms, &drift);
    let w = [26, 12];
    row(&[&"metric", &"value"], &w);
    row(&[&"nodes probed", &grad_norms.len()], &w);
    row(&[&"Pearson(grad, drift)", &format!("{pearson:.3}")], &w);
    row(&[&"Spearman(grad, drift)", &format!("{spearman:.3}")], &w);
    // Contrast the policy's actual selection: mean drift of the bottom-90%
    // vs the top-10% gradient-norm nodes.
    let mut order: Vec<usize> = (0..grad_norms.len()).collect();
    order.sort_by(|&a, &b| grad_norms[a].partial_cmp(&grad_norms[b]).unwrap());
    let cut = (order.len() as f64 * 0.9) as usize;
    let mean_low: f32 = order[..cut].iter().map(|&i| drift[i]).sum::<f32>() / cut.max(1) as f32;
    let mean_high: f32 =
        order[cut..].iter().map(|&i| drift[i]).sum::<f32>() / (order.len() - cut).max(1) as f32;
    row(
        &[&"mean drift, admitted 90%", &format!("{mean_low:.4}")],
        &w,
    );
    row(
        &[&"mean drift, evicted 10%", &format!("{mean_high:.4}")],
        &w,
    );
    println!("\n§4.1 predicts positive correlation and higher drift among the");
    println!("evicted (large-gradient) fraction.");
}
