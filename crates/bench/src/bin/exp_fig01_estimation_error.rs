//! Fig 1: estimation error of historical embeddings over a training run.
//!
//! The paper shows GAS's mean estimation error `‖h̃ − h‖` growing steadily
//! across iterations on ogbn-products. We train two FreshGNN trainers on
//! products-s with a GCN (the paper's Fig 1 model):
//!
//! * the **GAS corner** — `p_grad = 1, t_stale = ∞` (admit everything,
//!   never expire), the configuration §4.1 identifies with GAS/VR-GCN;
//! * **FreshGNN** — the selective policy (`p_grad = 0.9`, bounded
//!   `t_stale`).
//!
//! Expected shape: the GAS curve grows with iterations; the selective
//! curve stays well below it.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::products_spec;
use fgnn_graph::sample::split_batches;
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use fgnn_tensor::Rng;
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.002);
    let iters: usize = args.get("iters", 300);
    let probe_every: usize = args.get("probe-every", 20);

    banner(
        "Fig 1",
        "Estimation error of historical embeddings (GCN, products-s)",
    );
    let ds = Dataset::materialize(products_spec(scale).with_dim(32), seed);
    println!(
        "dataset: {} nodes, {} directed edges\n",
        ds.num_nodes(),
        ds.graph.num_edges()
    );

    let fanouts = vec![5, 5];
    let batch = 128;
    let gas_cfg = FreshGnnConfig {
        p_grad: 1.0,
        t_stale: u32::MAX,
        fanouts: fanouts.clone(),
        batch_size: batch,
        ..Default::default()
    };
    let fresh_cfg = FreshGnnConfig {
        p_grad: args.get("p-grad", 0.9),
        t_stale: args.get("t-stale", 20),
        fanouts,
        batch_size: batch,
        ..Default::default()
    };

    let mut gas = Trainer::new(&ds, Arch::Gcn, 64, Machine::single_a100(), gas_cfg, seed);
    let mut fresh = Trainer::new(&ds, Arch::Gcn, 64, Machine::single_a100(), fresh_cfg, seed);
    let mut opt_g = Adam::new(0.003);
    let mut opt_f = Adam::new(0.003);

    let mut rng = Rng::new(seed ^ 0xF16);
    let w = [12, 22, 22];
    row(&[&"iteration", &"GAS-corner err", &"FreshGNN err"], &w);

    let mut done = 0usize;
    'outer: loop {
        let batches = split_batches(&ds.train_nodes, batch, Some(&mut rng));
        for seeds in &batches {
            gas.train_on_batches(&ds, std::slice::from_ref(seeds), &mut opt_g);
            fresh.train_on_batches(&ds, std::slice::from_ref(seeds), &mut opt_f);
            done += 1;
            if done.is_multiple_of(probe_every) {
                let probe_seeds = &batches[0];
                let e_gas = gas.probe_estimation_error(&ds, probe_seeds);
                let e_fresh = fresh.probe_estimation_error(&ds, probe_seeds);
                row(
                    &[&done, &format!("{e_gas:.4}"), &format!("{e_fresh:.4}")],
                    &w,
                );
            }
            if done >= iters {
                break 'outer;
            }
        }
    }
    println!("\npaper (Fig 1): GAS error grows monotonically over the epoch;");
    println!("selective caching keeps it bounded.");
}
