//! Fig 2: accuracy of scalable mini-batch algorithms vs the neighbor-
//! sampling target, on a small graph (modest gap) vs a large graph (the
//! gap grows).
//!
//! Paper shape: on arxiv all methods track the target; on papers100M the
//! approximate methods (ClusterGCN, GAS) fall well short while FreshGNN
//! stays within ~1%.

use fgnn_bench::runners::{best, run_method_timed, Method, RunSpec};
use fgnn_bench::{banner, row, Args, ObsExport};
use fgnn_graph::datasets::{arxiv_spec, papers100m_spec};
use fgnn_graph::Dataset;
use fgnn_nn::model::Arch;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale_small: f64 = args.get("scale-small", 0.002);
    let scale_large: f64 = args.get("scale-large", 0.0004);
    let steps: usize = args.get("steps", 600);
    let mut export = ObsExport::from_args(&args);

    banner(
        "Fig 2",
        "Test accuracy vs NS target: small vs large graph (GraphSAGE)",
    );

    let methods = [
        Method::NeighborSampling,
        Method::ClusterGcn,
        Method::Gas,
        Method::FreshGnn,
    ];

    for (label, ds) in [
        (
            "(a) arxiv-s (small)",
            Dataset::materialize(arxiv_spec(scale_small).with_dim(32), seed),
        ),
        (
            "(b) papers100M-s (large)",
            Dataset::materialize(papers100m_spec(scale_large).with_dim(32), seed),
        ),
    ] {
        println!(
            "\n{label}: {} nodes, {} edges, {} classes, {} train",
            ds.num_nodes(),
            ds.graph.num_edges(),
            ds.spec.num_classes,
            ds.train_nodes.len()
        );
        let spec = RunSpec::new(Arch::Sage, steps);
        let w = [16, 12, 12];
        row(&[&"method", &"best acc", &"Δ target"], &w);
        let mut target = 0.0;
        for m in methods {
            let (curve, _, obs) = run_method_timed(&ds, m, &spec, seed);
            if export.active() {
                export.add(format!("{}/{m}", ds.spec.name), obs);
            }
            let acc = best(&curve);
            if m == Method::NeighborSampling {
                target = acc;
            }
            row(
                &[&m, &format!("{:.4}", acc), &format!("{:+.4}", acc - target)],
                &w,
            );
        }
    }
    export
        .write()
        .expect("writing --trace-out/--metrics-out files");
    println!("\npaper (Fig 2): gap to target modest on ogbn-products, large on");
    println!("ogbn-papers100M for ClusterGCN/GAS; FreshGNN tracks the target.");
}
