//! Fig 3: temporal stability of node embeddings during mini-batch
//! training.
//!
//! Trains GraphSAGE on products-s; every iteration recomputes the level-1
//! embeddings of a fixed probe batch and reports the distribution of
//! cosine similarity against the snapshot `s = 20` iterations earlier.
//! The paper's claim: after warm-up, the bulk of nodes sit above 0.95.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::products_spec;
use fgnn_graph::sample::{split_batches, NeighborSampler};
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use fgnn_tensor::{stats, Rng};
use freshgnn::probes::EmbeddingStabilityProbe;
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.002);
    let iters: usize = args.get("iters", 300);
    let lag: usize = args.get("lag", 20);

    banner(
        "Fig 3",
        "Cosine similarity of embeddings at lag s=20 (GraphSAGE, products-s)",
    );
    let ds = Dataset::materialize(products_spec(scale).with_dim(32), seed);

    let cfg = FreshGnnConfig::neighbor_sampling(vec![5, 5], 128);
    let mut trainer = Trainer::new(&ds, Arch::Sage, 64, Machine::single_a100(), cfg, seed);
    let mut opt = Adam::new(0.003);

    // Fixed probe mini-batch: a stable node set + fixed blocks.
    let mut probe_rng = Rng::new(seed ^ 0xF3);
    let probe_seeds: Vec<u32> = ds.train_nodes[..64.min(ds.train_nodes.len())].to_vec();
    let mut sampler = NeighborSampler::new(ds.num_nodes());
    let probe_mb = sampler.sample(&ds.graph, &probe_seeds, &[5, 5], &mut probe_rng);
    let ids: Vec<usize> = probe_mb.input_nodes().iter().map(|&g| g as usize).collect();
    let probe_h0 = ds.features.gather_rows(&ids);
    let mut probe = EmbeddingStabilityProbe::new(probe_mb.blocks[0].dst_global.clone(), lag);

    let w = [12, 10, 10, 10, 14];
    row(&[&"iteration", &"p10", &"p50", &"p90", &"frac>0.95"], &w);

    let mut rng = Rng::new(seed ^ 0xF33);
    let mut done = 0usize;
    'outer: loop {
        let batches = split_batches(&ds.train_nodes, 128, Some(&mut rng));
        for seeds in &batches {
            trainer.train_on_batches(&ds, std::slice::from_ref(seeds), &mut opt);
            done += 1;
            // Level-1 embeddings of the fixed probe batch under the
            // current weights.
            let trace = trainer.model.forward(&probe_mb, probe_h0.clone());
            let snapshot = trace.h[1].clone();
            if let Some(sims) = probe.record(snapshot) {
                if done.is_multiple_of(lag) {
                    row(
                        &[
                            &done,
                            &format!("{:.3}", stats::quantile(&sims, 0.1)),
                            &format!("{:.3}", stats::quantile(&sims, 0.5)),
                            &format!("{:.3}", stats::quantile(&sims, 0.9)),
                            &format!("{:.3}", stats::fraction_above(&sims, 0.95)),
                        ],
                        &w,
                    );
                }
            }
            if done >= iters {
                break 'outer;
            }
        }
    }
    println!("\npaper (Fig 3): >78% of nodes above 0.95 cosine similarity after");
    println!("iteration 140 (model converged ~iteration 500).");
}
