//! Fig 10: single-GPU epoch time, GraphSAGE, four large datasets.
//!
//! Systems are traffic/execution configurations of the same trainer
//! (DESIGN.md §2):
//!
//! * **PyG** — two-sided loads + single-threaded, per-batch-overhead
//!   sampler (Python dataloader);
//! * **DGL** — two-sided loads + parallel C++ sampler;
//! * **PyTorch-Direct** — one-sided UVA loads, no cache;
//! * **GAS / ClusterGCN** — the algorithmic baselines (their own traffic);
//! * **FreshGNN** — one-sided + historical embedding cache.
//!
//! OOM entries follow the paper's accounting (GAS history at paper scale;
//! every system except DGL/FreshGNN on MAG240M, per §7.2).

use fgnn_bench::{banner, fmt_bytes, fmt_secs, row, Args, ObsExport};
use fgnn_graph::datasets::{friendster_spec, mag240m_spec, papers100m_spec, twitter_spec};
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_memsim::stage::{StageKind, StageTimings};
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::baselines::{ClusterGcnTrainer, GasConfig, GasTrainer};
use freshgnn::config::LoadMode;
use freshgnn::{FreshGnnConfig, Obs, Trainer};

/// PyG's Python-side per-batch sampling overhead relative to the native
/// parallel sampler (paper Fig 10 shows PyG ≈4–5x slower than DGL).
const PYG_SAMPLER_FACTOR: f64 = 8.0;
/// DGL/FreshGNN samplers run on many CPU threads; sampling overlaps
/// training (counters take the max). Threads assumed available:
const SAMPLER_THREADS: f64 = 32.0;

struct SystemRow {
    name: &'static str,
    epoch_s: Option<f64>, // None = OOM
    h2d: u64,
    /// Per-stage attribution of the measured epoch. `sample_scale` rescales
    /// the sample stage the same way the headline time does (PyG overhead /
    /// sampler threads).
    timings: Option<StageTimings>,
    sample_scale: f64,
    /// Observability state of the measured run (spans + metrics), taken
    /// from the trainer for `--trace-out`/`--metrics-out`.
    obs: Option<Obs>,
}

/// Simulated seconds attributed to `kind`, with the sampler rescaling.
fn stage_secs(r: &SystemRow, kind: StageKind) -> f64 {
    let t = r
        .timings
        .as_ref()
        .expect("stage table only for non-OOM rows");
    let s = t.sim_seconds(kind);
    if kind == StageKind::Sample {
        s * r.sample_scale
    } else {
        s
    }
}

fn run_ns_system(
    ds: &Dataset,
    name: &'static str,
    mode: LoadMode,
    cache: bool,
    sampler_factor: f64,
    sampler_threads: f64,
    seed: u64,
) -> SystemRow {
    let cfg = FreshGnnConfig {
        p_grad: if cache { 0.9 } else { 0.0 },
        t_stale: if cache { 100 } else { 0 },
        fanouts: vec![6, 6, 6],
        batch_size: 256,
        load_mode: mode,
        ..Default::default()
    };
    let mut t = Trainer::new(ds, Arch::Sage, 64, Machine::single_a100(), cfg, seed);
    let mut opt = Adam::new(0.003);
    // Warm the cache one epoch, then measure the second epoch.
    t.train_epoch(ds, &mut opt);
    let s = t.train_epoch(ds, &mut opt);
    let mut c = s.counters;
    c.sample_seconds = c.sample_seconds * sampler_factor / sampler_threads;
    SystemRow {
        name,
        epoch_s: Some(c.sim_seconds()),
        h2d: c.host_to_gpu_bytes,
        timings: Some(s.timings),
        sample_scale: sampler_factor / sampler_threads,
        obs: Some(std::mem::take(&mut t.obs)),
    }
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0002);
    let mut export = ObsExport::from_args(&args);

    banner(
        "Fig 10",
        "Single-GPU epoch time, GraphSAGE (simulated A100 + PCIe3)",
    );
    let specs = vec![
        papers100m_spec(scale).with_dim(128),
        mag240m_spec(scale).with_dim(256),
        twitter_spec(scale).with_dim(128),
        friendster_spec(scale).with_dim(128),
    ];

    for spec in specs {
        let is_mag = spec.name == "mag240M-s";
        let ds = Dataset::materialize(spec, seed);
        println!(
            "\n--- {} ({} nodes, {} edges, {}B/row) ---",
            ds.spec.name,
            ds.num_nodes(),
            ds.graph.num_edges(),
            ds.spec.feature_row_bytes()
        );

        let mut rows: Vec<SystemRow> = Vec::new();
        rows.push(run_ns_system(
            &ds,
            "PyG",
            LoadMode::TwoSided,
            false,
            PYG_SAMPLER_FACTOR,
            1.0,
            seed,
        ));
        rows.push(run_ns_system(
            &ds,
            "DGL",
            LoadMode::TwoSided,
            false,
            1.0,
            SAMPLER_THREADS,
            seed,
        ));
        rows.push(run_ns_system(
            &ds,
            "PyTorch-Direct",
            LoadMode::OneSided,
            false,
            1.0,
            SAMPLER_THREADS,
            seed,
        ));

        // GAS: OOM everywhere at paper scale here (papers100M history
        // ~`O(Lnd)`; Twitter/Friendster/MAG are bigger still): paper shows
        // GAS only on papers100M (orders of magnitude slower) and OOM
        // beyond. Run it on papers-s; account OOM on the rest.
        if ds.spec.name == "papers100M-s" {
            let mut gas = GasTrainer::new(
                &ds,
                Arch::Sage,
                64,
                3,
                Machine::single_a100(),
                GasConfig {
                    num_parts: (ds.num_nodes() / 128).clamp(2, 64),
                    max_neighbors: 64,
                    momentum: None,
                },
                seed,
            );
            let mut opt = Adam::new(0.003);
            let gs = gas.train_epoch(&ds, &mut opt);
            let c = gas.counters.clone();
            rows.push(SystemRow {
                name: "GAS",
                epoch_s: Some(c.sim_seconds()),
                h2d: c.host_to_gpu_bytes,
                timings: Some(gs.timings),
                sample_scale: 1.0,
                obs: Some(std::mem::take(&mut gas.obs)),
            });
            let mut cg = ClusterGcnTrainer::new(
                &ds,
                Arch::Sage,
                64,
                3,
                (ds.num_nodes() / 128).clamp(2, 64),
                2,
                Machine::single_a100(),
                seed,
            );
            let cs = cg.train_epoch(&ds, &mut opt);
            rows.push(SystemRow {
                name: "ClusterGCN",
                epoch_s: Some(cg.counters.sim_seconds()),
                h2d: cg.counters.host_to_gpu_bytes,
                timings: Some(cs.timings),
                sample_scale: 1.0,
                obs: Some(std::mem::take(&mut cg.obs)),
            });
        } else {
            rows.push(SystemRow {
                name: "GAS",
                epoch_s: None,
                h2d: 0,
                timings: None,
                sample_scale: 1.0,
                obs: None,
            });
            rows.push(SystemRow {
                name: "ClusterGCN",
                epoch_s: None,
                h2d: 0,
                timings: None,
                sample_scale: 1.0,
                obs: None,
            });
        }
        // Paper: on MAG240M only DGL and FreshGNN avoid OOM.
        if is_mag {
            for r in rows.iter_mut() {
                if r.name == "PyG" || r.name == "PyTorch-Direct" {
                    r.epoch_s = None;
                }
            }
        }
        rows.push(run_ns_system(
            &ds,
            "FreshGNN",
            LoadMode::OneSided,
            true,
            1.0,
            SAMPLER_THREADS,
            seed,
        ));

        let fresh_time = rows.last().and_then(|r| r.epoch_s).unwrap_or(1.0);
        let w = [17, 14, 13, 12];
        row(
            &[&"system", &"epoch time", &"h2d bytes", &"vs FreshGNN"],
            &w,
        );
        for r in &rows {
            match r.epoch_s {
                Some(t) => row(
                    &[
                        &r.name,
                        &fmt_secs(t),
                        &fmt_bytes(r.h2d),
                        &format!("{:.1}x", t / fresh_time),
                    ],
                    &w,
                ),
                None => row(&[&r.name, &"OOM", &"-", &"-"], &w),
            }
        }

        // Per-stage breakdown (the stacked bars of Fig 10): simulated
        // seconds attributed to each pipeline stage of the measured epoch.
        println!("\nper-stage sim seconds:");
        let sw = [17, 9, 9, 9, 9, 9, 13, 11];
        let mut header: Vec<&dyn std::fmt::Display> = vec![&"system"];
        let names: Vec<String> = StageKind::ALL
            .iter()
            .map(|k| k.name().to_string())
            .collect();
        for n in &names {
            header.push(n);
        }
        row(&header, &sw);
        for r in rows.iter().filter(|r| r.timings.is_some()) {
            let cells: Vec<String> = StageKind::ALL
                .iter()
                .map(|&k| fmt_secs(stage_secs(r, k)))
                .collect();
            let mut line: Vec<&dyn std::fmt::Display> = vec![&r.name];
            for c in &cells {
                line.push(c);
            }
            row(&line, &sw);
        }

        if export.active() {
            for r in &mut rows {
                if let Some(obs) = r.obs.take() {
                    export.add(format!("{}/{}", ds.spec.name, r.name), obs);
                }
            }
        }
    }
    export
        .write()
        .expect("writing --trace-out/--metrics-out files");
    println!("\npaper (Fig 10): FreshGNN 5.3x faster than DGL and 23.6x than PyG on");
    println!("papers100M; 4.6x vs PyTorch-Direct; GAS/ClusterGCN orders slower.");
}
