//! Fig 11: multi-GPU throughput scaling (GraphSAGE, papers100M-s).
//!
//! Each system's single-GPU per-iteration profile is measured with real
//! training, then projected onto 1–8 virtual V100s under the documented
//! contention model (`freshgnn::multi_gpu`). Expected shape: DGL and
//! PyTorch-Direct barely scale (loading bottleneck); GNNLab scales but
//! loses GPUs to sampling; FreshGNN scales near-linearly to 4 GPUs and
//! saturates toward 8 (CPU sampling bound — §7.2's "future work" note).

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::papers100m_spec;
use fgnn_graph::Dataset;
use fgnn_nn::model::Arch;
use freshgnn::multi_gpu::{profile_system, project_throughput, SystemKind};
use freshgnn::FreshGnnConfig;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0002);

    banner(
        "Fig 11",
        "Multi-GPU scaling, GraphSAGE on papers100M-s (iterations/s)",
    );
    let ds = Dataset::materialize(papers100m_spec(scale).with_dim(128), seed);
    println!(
        "dataset: {} nodes, {} edges; profiles measured on 2 real epochs\n",
        ds.num_nodes(),
        ds.graph.num_edges()
    );

    let base = FreshGnnConfig {
        fanouts: vec![6, 6, 6],
        batch_size: 256,
        t_stale: 100,
        ..Default::default()
    };
    let gpu_counts = [1usize, 2, 4, 8];
    let systems = [
        SystemKind::Dgl,
        SystemKind::PyTorchDirect,
        SystemKind::GnnLab,
        SystemKind::FreshGnn,
    ];

    let w = [17, 10, 10, 10, 10];
    row(&[&"system", &"1 GPU", &"2 GPUs", &"4 GPUs", &"8 GPUs"], &w);
    for sys in systems {
        let profile = profile_system(&ds, Arch::Sage, 64, &base, sys, 2, seed);
        let mut cells: Vec<String> = vec![sys.to_string()];
        for &k in &gpu_counts {
            if sys == SystemKind::GnnLab && k == 1 {
                // GNNLab partitions GPUs into samplers/trainers; no
                // single-GPU configuration (paper §7.2).
                cells.push("n/a".into());
                continue;
            }
            let t = project_throughput(&profile, sys, k);
            cells.push(format!("{t:.1}"));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        row(&refs, &w);
    }
    println!("\npaper (Fig 11): DGL/PT-Direct flat; FreshGNN near-linear to 4 GPUs,");
    println!("up to 2.0x over GNNLab, saturating from 4 to 8 GPUs (CPU sampling).");
}
