//! Fig 12: test-accuracy-versus-time curves (GraphSAGE, papers100M-s).
//!
//! All systems here use exact neighbor sampling for the *algorithm*
//! (so they converge to the same accuracy); they differ in simulated
//! epoch time. FreshGNN additionally uses the historical cache, which is
//! the point of the figure: same target accuracy, far less time.

use fgnn_bench::{banner, fmt_secs, row, Args};
use fgnn_graph::datasets::papers100m_spec;
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::config::LoadMode;
use freshgnn::{FreshGnnConfig, Trainer};

const SAMPLER_THREADS: f64 = 32.0;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0004);
    let epochs: usize = args.get("epochs", 60);
    let t_stale: u32 = args.get("t-stale", 4);

    banner("Fig 12", "Time-to-accuracy, GraphSAGE on papers100M-s");
    let ds = Dataset::materialize(papers100m_spec(scale).with_dim(128), seed);
    println!(
        "dataset: {} nodes, {} edges, {} train\n",
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.train_nodes.len()
    );

    // (name, load mode, cache?, sampler slowdown factor)
    let systems: [(&str, LoadMode, bool, f64); 4] = [
        ("PyG", LoadMode::TwoSided, false, 8.0),
        ("DGL", LoadMode::TwoSided, false, 1.0),
        ("PyTorch-Direct", LoadMode::OneSided, false, 1.0),
        ("FreshGNN", LoadMode::OneSided, true, 1.0),
    ];

    let w = [17, 12, 12, 14, 12];
    row(
        &[
            &"system",
            &"sim time",
            &"best acc",
            &"time@98%target",
            &"speedup",
        ],
        &w,
    );

    let mut baseline_time = None;
    let mut fresh_time_to = 0.0;
    let mut rows = Vec::new();
    for (name, mode, cache, sampler_factor) in systems {
        let cfg = FreshGnnConfig {
            p_grad: if cache { 0.9 } else { 0.0 },
            t_stale: if cache { t_stale } else { 0 },
            fanouts: vec![6, 6, 6],
            batch_size: 256,
            load_mode: mode,
            ..Default::default()
        };
        let mut t = Trainer::new(&ds, Arch::Sage, 64, Machine::single_a100(), cfg, seed);
        let mut opt = Adam::new(0.003);
        let eval_nodes = &ds.test_nodes[..ds.test_nodes.len().min(1500)];
        let mut clock = 0.0;
        let mut best_acc = 0.0f64;
        let mut curve: Vec<(f64, f64)> = Vec::new();
        for _ in 0..epochs {
            let s = t.train_epoch(&ds, &mut opt);
            let mut c = s.counters;
            c.sample_seconds = c.sample_seconds * sampler_factor / SAMPLER_THREADS;
            clock += c.sim_seconds();
            let acc = t.evaluate(&ds, eval_nodes, 512);
            best_acc = best_acc.max(acc);
            curve.push((clock, acc));
        }
        rows.push((name, clock, best_acc, curve));
    }

    // Target = best accuracy over all exact-NS systems; report time each
    // system first reaches 90% of it.
    let target = rows.iter().map(|(_, _, b, _)| *b).fold(0.0f64, f64::max);
    for (name, clock, best_acc, curve) in &rows {
        let reach = curve
            .iter()
            .find(|(_, a)| *a >= 0.98 * target)
            .map(|(t, _)| *t);
        if *name == "PyG" {
            baseline_time = reach;
        }
        if *name == "FreshGNN" {
            fresh_time_to = reach.unwrap_or(f64::INFINITY);
        }
        row(
            &[
                name,
                &fmt_secs(*clock),
                &format!("{best_acc:.4}"),
                &reach.map(fmt_secs).unwrap_or_else(|| "-".into()),
                &baseline_time
                    .zip(reach)
                    .map(|(b, r)| format!("{:.1}x", b / r))
                    .unwrap_or_else(|| "1.0x".into()),
            ],
            &w,
        );
    }
    let _ = fresh_time_to;
    println!("\npaper (Fig 12): all systems converge to ~66%; FreshGNN reaches it in");
    println!("25 minutes while PyG needs over 6 hours (~15x).");
}
