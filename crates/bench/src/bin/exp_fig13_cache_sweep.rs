//! Fig 13: impact of `p_grad` and `t_stale` on I/O saving and accuracy.
//!
//! Sweeps both thresholds on papers100M-s and mag240M-s. `p_grad = 0` with
//! a raw feature cache is the red baseline of Fig 13(a)/(c): a plain
//! feature cache saves far less I/O than the historical embedding cache.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::{mag240m_spec, papers100m_spec};
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::{FreshGnnConfig, Trainer};

struct SweepResult {
    io_saving: f64,
    accuracy: f64,
}

fn run(
    ds: &Dataset,
    p_grad: f32,
    t_stale: u32,
    feature_rows: usize,
    epochs: usize,
    seed: u64,
) -> SweepResult {
    let cfg = FreshGnnConfig {
        p_grad,
        t_stale,
        fanouts: vec![6, 6, 6],
        batch_size: 128,
        feature_cache_rows: feature_rows,
        ..Default::default()
    };
    let mut t = Trainer::new(ds, Arch::Sage, 48, Machine::single_a100(), cfg, seed);
    let mut opt = Adam::new(0.003);
    for _ in 0..epochs {
        t.train_epoch(ds, &mut opt);
    }
    let eval = &ds.test_nodes[..ds.test_nodes.len().min(1500)];
    SweepResult {
        io_saving: t.counters.io_saving(),
        accuracy: t.evaluate(ds, eval, 512),
    }
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0003);
    let epochs: usize = args.get("epochs", 25);

    banner("Fig 13", "I/O saving and accuracy vs p_grad / t_stale");

    for spec in [
        papers100m_spec(scale).with_dim(48),
        mag240m_spec(scale).with_dim(64),
    ] {
        let ds = Dataset::materialize(spec, seed);
        println!(
            "\n--- {} ({} nodes, {} train) ---",
            ds.spec.name,
            ds.num_nodes(),
            ds.train_nodes.len()
        );

        // (a)/(c): I/O saving and (b)/(d): accuracy vs p_grad at fixed
        // t_stale, plus the raw-feature-cache baseline (p_grad = 0).
        println!("\nsweep p_grad (t_stale = 100):");
        let w = [22, 14, 10];
        row(&[&"config", &"I/O saving", &"test acc"], &w);
        let feat = run(&ds, 0.0, 0, ds.num_nodes() / 5, epochs, seed);
        row(
            &[
                &"feature-cache only",
                &format!("{:.1}%", feat.io_saving * 100.0),
                &format!("{:.4}", feat.accuracy),
            ],
            &w,
        );
        for p_grad in [0.5f32, 0.8, 0.9, 0.95, 1.0] {
            let r = run(&ds, p_grad, 100, 0, epochs, seed);
            row(
                &[
                    &format!("p_grad = {p_grad}"),
                    &format!("{:.1}%", r.io_saving * 100.0),
                    &format!("{:.4}", r.accuracy),
                ],
                &w,
            );
        }

        println!("\nsweep t_stale (p_grad = 0.9):");
        row(&[&"config", &"I/O saving", &"test acc"], &w);
        for t_stale in [10u32, 50, 100, 200, 400] {
            let r = run(&ds, 0.9, t_stale, 0, epochs, seed);
            row(
                &[
                    &format!("t_stale = {t_stale}"),
                    &format!("{:.1}%", r.io_saving * 100.0),
                    &format!("{:.4}", r.accuracy),
                ],
                &w,
            );
        }
    }
    println!("\npaper (Fig 13): raw feature cache saves <40% I/O; historical cache");
    println!(">60% at t_stale>200; accuracy tolerant up to p_grad~0.9 and");
    println!("hundreds of iterations of staleness.");
}
