//! Fig 14: effectiveness of the subgraph generator.
//!
//! (a) Sampler throughput vs thread count: FreshGNN's multithreaded
//!     sampler against a DGL-style worker model that pays per-batch IPC /
//!     serialization overhead (DGL 0.9 used multiprocessing dataloaders).
//! (b) Graph pruning time per iteration for CSR vs COO vs CSR2 across
//!     batch sizes — Table 1's complexities measured.

use fgnn_bench::{banner, fmt_secs, row, Args};
use fgnn_graph::datasets::papers100m_spec;
use fgnn_graph::sample::{split_batches, NeighborSampler};
use fgnn_graph::{Coo, Csr, Dataset};
use fgnn_tensor::Rng;
use freshgnn::sampler::AsyncSampler;
use std::sync::Arc;
use std::time::Instant;

/// Per-batch overhead of a multiprocessing dataloader (serialize the
/// sampled block + IPC + worker wakeup). Measured DGL-0.9-style
/// dataloaders pay 1–5 ms per batch; we charge 2 ms.
const MULTIPROCESS_OVERHEAD_S: f64 = 2e-3;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0005);

    banner(
        "Fig 14",
        "Subgraph generator: sampler scaling and pruning structures",
    );
    let ds = Dataset::materialize(papers100m_spec(scale).with_dim(8), seed);
    let graph = Arc::new(ds.graph.clone());
    println!(
        "dataset: {} nodes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // (a) Sampler throughput vs threads.
    //
    // The real multithreaded epoch time is measured when the machine has
    // cores to scale on; on fewer cores than threads the scaling itself is
    // *modeled* with Amdahl fractions calibrated to the paper's reported
    // thread-scalings (FreshGNN 26x at 32 threads => serial fraction
    // 0.8%; DGL 7.5x => 10.5%), applied to the measured single-thread
    // cost of OUR sampler (so absolute throughput is real).
    println!("(a) epoch sampling time vs CPU threads (fanouts 6/6/6, batch 512)");
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("    [machine has {cores} core(s); modeled columns use measured 1-thread cost]");
    let all_nodes: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    let seeds = &all_nodes[..all_nodes.len().min(8192)];
    let batches = split_batches(seeds, 512, None);

    // Measure single-thread cost through the real async machinery.
    let t0 = Instant::now();
    let sampler = AsyncSampler::spawn(
        Arc::clone(&graph),
        batches.clone(),
        vec![6, 6, 6],
        1,
        8,
        seed,
    );
    let n: usize = sampler.count();
    assert_eq!(n, batches.len());
    let fresh_t1 = t0.elapsed().as_secs_f64();

    const FRESH_SERIAL_FRACTION: f64 = 0.008; // => 26x at 32 threads (paper)
    const DGL_SERIAL_FRACTION: f64 = 0.105; // => 7.5x at 32 threads (paper)
    let dgl_t1 = fresh_t1 + batches.len() as f64 * MULTIPROCESS_OVERHEAD_S;

    let w = [10, 16, 16, 16, 12];
    row(
        &[
            &"threads",
            &"FreshGNN",
            &"(measured)",
            &"DGL-style",
            &"speedup",
        ],
        &w,
    );
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let amdahl = |t1: f64, s: f64| t1 * (s + (1.0 - s) / threads as f64);
        let fresh = amdahl(fresh_t1, FRESH_SERIAL_FRACTION);
        let dgl = amdahl(dgl_t1, DGL_SERIAL_FRACTION);
        // Real measurement (meaningful when cores >= threads).
        let measured = if threads <= cores {
            let t0 = Instant::now();
            let s = AsyncSampler::spawn(
                Arc::clone(&graph),
                batches.clone(),
                vec![6, 6, 6],
                threads,
                8,
                seed,
            );
            let n: usize = s.count();
            assert_eq!(n, batches.len());
            fmt_secs(t0.elapsed().as_secs_f64())
        } else {
            "-".to_string()
        };
        row(
            &[
                &threads,
                &fmt_secs(fresh),
                &measured,
                &fmt_secs(dgl),
                &format!("{:.1}x", dgl / fresh),
            ],
            &w,
        );
    }

    // (b) Pruning time per structure.
    println!("\n(b) time to prune 30% of destinations, by structure and batch size");
    let w = [12, 12, 14, 14, 14];
    row(&[&"batch", &"#dst", &"CSR", &"COO", &"CSR2"], &w);
    let mut rng = Rng::new(seed ^ 0x14B);
    for batch in [500usize, 1000, 2000, 4000] {
        let seeds: Vec<u32> = (0..batch.min(graph.num_nodes()) as u32).collect();
        let mut sampler = NeighborSampler::new(graph.num_nodes());
        let mb = sampler.sample(&graph, &seeds, &[6, 6, 6], &mut rng);
        // Prune the bottom block (largest) as the representative workload.
        let block = &mb.blocks[0];
        let n_dst = block.num_dst();
        let mut victims: Vec<u32> = (0..n_dst as u32).collect();
        rng.shuffle(&mut victims);
        victims.truncate(n_dst * 3 / 10);

        // CSR: rebuild-offsets pruner.
        let csr = block_to_csr(block);
        let t0 = Instant::now();
        let mut c = csr.clone();
        for &v in &victims {
            c.prune_neighbors(v);
        }
        let t_csr = t0.elapsed().as_secs_f64();

        // COO: binary-search + tombstone pruner.
        let coo = Coo::from_csr(&csr);
        let t0 = Instant::now();
        let mut c = coo.clone();
        for &v in &victims {
            c.prune_neighbors(v);
        }
        let t_coo = t0.elapsed().as_secs_f64();

        // CSR2: O(1) pruner.
        let t0 = Instant::now();
        let mut c2 = block.adj.clone();
        for &v in &victims {
            c2.prune(v as usize);
        }
        let t_csr2 = t0.elapsed().as_secs_f64();

        row(
            &[
                &batch,
                &n_dst,
                &fmt_secs(t_csr),
                &fmt_secs(t_coo),
                &fmt_secs(t_csr2),
            ],
            &w,
        );
    }
    println!("\npaper (Fig 14): sampler 6.5x faster than DGL at 32 threads with 26x");
    println!("thread-scaling; CSR2 pruning is orders of magnitude faster (26us/iter).");
}

/// Rebuild a block's adjacency as a plain CSR (for the ablation only).
fn block_to_csr(block: &fgnn_graph::Block) -> Csr {
    let mut edges = Vec::with_capacity(block.num_edges());
    for v in 0..block.num_dst() {
        for &u in block.adj.neighbors(v) {
            edges.push((u, v as u32));
        }
    }
    Csr::from_directed_edges(block.num_dst().max(block.num_src()), &edges)
}
