//! Fig 15: multi-GPU all-to-all communication optimizations.
//!
//! Effective bandwidth of (i) NCCL-style two-sided all-to-all, (ii)
//! one-sided UVA reads, (iii) the multi-round schedule, on a 4-GPU PCIe
//! tree and a 4-GPU NVLink clique — Fig 15's two bar groups.

use fgnn_bench::{banner, row, Args};
use fgnn_memsim::alltoall::{
    effective_bandwidth, multi_round_alltoall, naive_alltoall, one_sided_alltoall,
};
use fgnn_memsim::presets::GB;
use fgnn_memsim::Topology;

fn main() {
    let args = Args::parse();
    let mb_per_pair: u64 = args.get("mb-per-pair", 64);
    let bytes = mb_per_pair << 20;

    banner(
        "Fig 15",
        "All-to-all effective bandwidth by schedule (4 GPUs)",
    );

    for (label, topo) in [
        (
            "PCIe tree (2 switches x 2 GPUs)",
            Topology::pcie_tree(4, 2, 16.0 * GB),
        ),
        (
            "NVLink clique (50 GB/s links)",
            Topology::nvlink_clique(4, 50.0 * GB, 16.0 * GB),
        ),
    ] {
        println!("\n--- {label}, {mb_per_pair} MiB per GPU pair ---");
        let n = topo.num_gpus;
        let demand: Vec<Vec<u64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0 } else { bytes }).collect())
            .collect();

        let t_naive = naive_alltoall(&topo, &demand);
        let t_one = one_sided_alltoall(&topo, &demand);
        let (t_multi, rounds) = multi_round_alltoall(&topo, &demand);

        let bw_naive = effective_bandwidth(&demand, t_naive);
        let bw_one = effective_bandwidth(&demand, t_one);
        let bw_multi = effective_bandwidth(&demand, t_multi);

        let w = [26, 14, 12];
        row(&[&"schedule", &"bandwidth", &"vs NCCL"], &w);
        row(
            &[
                &"NCCL-style two-sided",
                &format!("{:.1} GB/s", bw_naive / 1e9),
                &"1.00x",
            ],
            &w,
        );
        row(
            &[
                &"one-sided (UVA)",
                &format!("{:.1} GB/s", bw_one / 1e9),
                &format!("{:.2}x", bw_one / bw_naive),
            ],
            &w,
        );
        row(
            &[
                &format!("multi-round ({rounds} rounds)"),
                &format!("{:.1} GB/s", bw_multi / 1e9),
                &format!("{:.2}x", bw_multi / bw_naive),
            ],
            &w,
        );
    }
    // (c) Same comparison with a demand matrix from REAL sampled
    // mini-batches over a feature-partitioned dataset (Fig 9b/c pipeline).
    println!("\n--- real-batch demand (papers100M-s, round-robin partition, 4 GPUs) ---");
    {
        use fgnn_graph::datasets::papers100m_spec;
        use fgnn_graph::Dataset;
        use freshgnn::multi_gpu::partitioned_feature_exchange;
        let ds = Dataset::materialize(papers100m_spec(0.0002).with_dim(128), 42);
        let topo = Topology::pcie_tree(4, 2, 16.0 * GB);
        let seeds: Vec<Vec<u32>> = (0..4)
            .map(|g| {
                ds.train_nodes
                    .iter()
                    .skip(g)
                    .step_by(4)
                    .copied()
                    .take(64)
                    .collect()
            })
            .collect();
        let ex = partitioned_feature_exchange(&ds, &[6, 6, 6], &seeds, &topo, 42);
        println!(
            "remote {:.1} MB / local {:.1} MB; naive {:.2} ms vs multi-round {:.2} ms ({} rounds, {:.2}x)",
            ex.remote_bytes as f64 / 1e6,
            ex.local_bytes as f64 / 1e6,
            ex.naive_seconds * 1e3,
            ex.multi_round_seconds * 1e3,
            ex.rounds,
            ex.naive_seconds / ex.multi_round_seconds
        );
    }

    println!("\npaper (Fig 15): one-sided +23% on average; multi-round +145% (PCIe)");
    println!("and +85% (NVLink) over the NCCL all-to-all baseline.");
}
