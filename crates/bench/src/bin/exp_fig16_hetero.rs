//! Fig 16: heterogeneous extension — R-GraphSAGE on MAG-like data.
//!
//! Compares FreshGNN's cached hetero trainer against the plain
//! neighbor-sampling baseline (DGL's R-GraphSAGE in the paper): accuracy
//! curves must align while FreshGNN's simulated epoch time is far lower.

use fgnn_bench::{banner, fmt_secs, row, Args};
use fgnn_graph::hetero::mag_hetero;
use fgnn_memsim::presets::Machine;
use fgnn_nn::Adam;
use freshgnn::hetero_trainer::HeteroTrainer;
use freshgnn::FreshGnnConfig;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let papers: usize = args.get("papers", 20_000);
    let epochs: usize = args.get("epochs", 15);

    banner(
        "Fig 16",
        "R-GraphSAGE on MAG-hetero: FreshGNN vs neighbor sampling",
    );
    let dim: usize = args.get("dim", 256);
    let ds = mag_hetero(papers, 16, dim, seed);
    println!(
        "papers {}, authors {}, institutions {}, {} classes, {} train\n",
        ds.graph.node_counts[0],
        ds.graph.node_counts[1],
        ds.graph.node_counts[2],
        ds.num_classes,
        ds.train_nodes.len()
    );

    let base = FreshGnnConfig {
        fanouts: vec![6, 6],
        batch_size: 256,
        ..Default::default()
    };
    let plain_cfg = FreshGnnConfig {
        p_grad: 0.0,
        t_stale: 0,
        ..base.clone()
    };
    let fresh_cfg = FreshGnnConfig {
        p_grad: 0.9,
        t_stale: args.get("t-stale", 8),
        ..base
    };

    let mut plain = HeteroTrainer::new(&ds, 64, Machine::single_a100(), plain_cfg, seed);
    let mut fresh = HeteroTrainer::new(&ds, 64, Machine::single_a100(), fresh_cfg, seed);
    let mut opt_p = Adam::new(0.003);
    let mut opt_f = Adam::new(0.003);

    let eval = &ds.test_nodes[..ds.test_nodes.len().min(2000)];
    let w = [8, 16, 16, 14, 14];
    row(
        &[&"epoch", &"NS acc", &"FreshGNN acc", &"NS time", &"FG time"],
        &w,
    );
    // CPU sampling overlaps GPU work across worker threads, as in Fig 10.
    const SAMPLER_THREADS: f64 = 32.0;
    let adjusted = |c: &fgnn_memsim::TrafficCounters| -> f64 {
        let mut c = c.clone();
        c.sample_seconds /= SAMPLER_THREADS;
        c.sim_seconds()
    };
    let mut t_plain = 0.0;
    let mut t_fresh = 0.0;
    for e in 1..=epochs {
        plain.train_epoch(&ds, &mut opt_p);
        fresh.train_epoch(&ds, &mut opt_f);
        t_plain = adjusted(&plain.counters);
        t_fresh = adjusted(&fresh.counters);
        if e % 3 == 0 || e == epochs {
            let a_p = plain.evaluate(&ds, eval, 512);
            let a_f = fresh.evaluate(&ds, eval, 512);
            row(
                &[
                    &e,
                    &format!("{a_p:.4}"),
                    &format!("{a_f:.4}"),
                    &fmt_secs(t_plain),
                    &fmt_secs(t_fresh),
                ],
                &w,
            );
        }
    }
    println!(
        "\nsimulated speedup: {:.1}x (I/O saving {:.1}%, cache hit rate {:.1}%)",
        t_plain / t_fresh,
        fresh.counters.io_saving() * 100.0,
        fresh.cache.stats().hit_rate() * 100.0
    );
    println!("paper (Fig 16): accuracy matches DGL's R-GraphSAGE while training");
    println!("21.9x faster on MAG240M.");
}
