//! Fig 17 (Appendix A): FreshGNN vs neighbor sampling with identical
//! initial weights and identical mini-batch schedules.
//!
//! Both trainers are constructed from the same seed (same Glorot init) and
//! fed the same batch sequence; their per-epoch test-accuracy curves
//! should align closely, showing the historical cache barely perturbs the
//! parameter trajectory.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::papers100m_spec;
use fgnn_graph::sample::split_batches;
use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use fgnn_tensor::Rng;
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0004);
    let epochs: usize = args.get("epochs", 40);
    let t_stale: u32 = args.get("t-stale", 4);

    banner(
        "Fig 17",
        "Same-init, same-batch training curves: FreshGNN vs NS target",
    );
    let ds = Dataset::materialize(papers100m_spec(scale).with_dim(48), seed);
    println!(
        "dataset: {} nodes, {} train; t_stale = {t_stale}\n",
        ds.num_nodes(),
        ds.train_nodes.len()
    );

    for arch in [Arch::Sage, Arch::Gcn] {
        println!("--- {arch} ---");
        let ns_cfg = FreshGnnConfig::neighbor_sampling(vec![5, 5], 128);
        let fg_cfg = FreshGnnConfig {
            p_grad: 0.9,
            t_stale,
            fanouts: vec![5, 5],
            batch_size: 128,
            ..Default::default()
        };
        // Same seed => identical initial weights.
        let mut ns = Trainer::new(&ds, arch, 48, Machine::single_a100(), ns_cfg, seed);
        let mut fg = Trainer::new(&ds, arch, 48, Machine::single_a100(), fg_cfg, seed);
        let mut opt_ns = Adam::new(0.003);
        let mut opt_fg = Adam::new(0.003);

        let mut batch_rng = Rng::new(seed ^ 0x17);
        let eval = &ds.test_nodes[..ds.test_nodes.len().min(1500)];
        let w = [8, 12, 14, 10];
        row(&[&"epoch", &"NS acc", &"FreshGNN acc", &"|Δ|"], &w);
        let mut max_gap = 0.0f64;
        for e in 1..=epochs {
            // Identical batch schedule for both trainers.
            let batches = split_batches(&ds.train_nodes, 128, Some(&mut batch_rng));
            ns.train_on_batches(&ds, &batches, &mut opt_ns);
            fg.train_on_batches(&ds, &batches, &mut opt_fg);
            if e % (epochs / 8).max(1) == 0 {
                let a_ns = ns.evaluate(&ds, eval, 512);
                let a_fg = fg.evaluate(&ds, eval, 512);
                max_gap = max_gap.max((a_ns - a_fg).abs());
                row(
                    &[
                        &e,
                        &format!("{a_ns:.4}"),
                        &format!("{a_fg:.4}"),
                        &format!("{:.4}", (a_ns - a_fg).abs()),
                    ],
                    &w,
                );
            }
        }
        println!("max |gap| observed: {max_gap:.4}\n");
    }
    println!("paper (Fig 17): curves align closely for both GraphSAGE and GCN —");
    println!("the cache has little effect on the parameter updates.");
}
