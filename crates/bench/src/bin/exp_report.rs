//! The performance-trajectory regression gate.
//!
//! Parses the committed `BENCH_serve.json` / `BENCH_policy.json` /
//! `BENCH_train.json` / `BENCH_cluster.json` baselines (hand-rolled
//! parser — zero registry dependencies), re-runs the *same* sweeps through
//! [`fgnn_bench::trajectory`] at the baseline seed, and compares per
//! metric with tolerances: latency percentiles, throughput, shed
//! fraction, H2D traffic, I/O saving, loss and simulated GPU-stream
//! seconds. Because every gated quantity is an exact simulated value, a
//! clean tree reproduces the baselines bit for bit; the tolerance band
//! (default ±5%) exists so a deliberate ≥10% regression always trips
//! while genuine FP noise — there should be none — never does.
//!
//! The training baseline adds two structural gates on top of the drift
//! comparison: every (dataset, worker-count) cell must reproduce the
//! single-worker exact metrics *bit for bit* (the work-stealing runtime's
//! determinism contract, zero tolerance), and — only on machines with ≥4
//! usable cores — measured epoch wall time must not grow as workers are
//! added 1→4 (printed as "skipped (N cores)" elsewhere, since wall time
//! on a starved machine says nothing about the runtime).
//!
//! The cluster baseline adds its own structural gate: for every
//! (dataset, host-count) pair, the committed training quantities of the
//! `crash` schedule must reproduce the `none` schedule *bit for bit* —
//! the deterministic-shard-recovery contract (zero tolerance).
//!
//! Flags:
//! * `--serve-baseline <path>` / `--policy-baseline <path>` /
//!   `--train-baseline <path>` / `--cluster-baseline <path>` — baseline
//!   documents (defaults: repo-root `BENCH_serve.json`,
//!   `BENCH_policy.json`, `BENCH_train.json`, `BENCH_cluster.json`);
//! * `--tolerance <frac>` — relative drift band (default 0.05);
//! * `--check` — exit 2 when any metric regressed (the CI gate);
//! * `--inject-regression <frac>` — scale fresh p99 latency, H2D
//!   traffic, train sim-seconds and cluster NIC traffic up by `frac`
//!   before comparing: proves the gate trips (`scripts/ci.sh` runs it at
//!   0.10 and requires a nonzero exit).

use fgnn_bench::trajectory::{
    cluster_sweep, compare_cluster, compare_policy, compare_serve, compare_train,
    fault_invariance_checks, policy_sweep, serve_dataset, serve_sweep, train_sweep,
    wall_monotonicity_checks, worker_invariance_checks, ClusterSweepConfig, MetricCheck,
    PolicySweepConfig, ServeSweepConfig, TrainSweepConfig, DEFAULT_TOLERANCE,
};
use fgnn_bench::{banner, row, Args};
use freshgnn::obs::{parse_json, JsonValue};

/// Metrics gated per serving cell, in table order.
const SERVE_METRICS: [&str; 7] = [
    "p50Ms",
    "p95Ms",
    "p99Ms",
    "throughputRps",
    "shedFraction",
    "served",
    "slaViolations",
];

/// Metrics gated per policy-frontier row, in table order.
const POLICY_METRICS: [&str; 4] = ["accuracy", "h2dBytes", "ioSaving", "hitRate"];

/// Metrics gated per train-scaling row, in table order (`wallSeconds` and
/// `steals` are in the document but measured, so never gated on drift).
const TRAIN_METRICS: [&str; 3] = ["meanLoss", "h2dBytes", "simSeconds"];

/// Metrics gated per cluster-sweep row, in table order (`wallSeconds` is
/// in the document but measured, so never gated).
const CLUSTER_METRICS: [&str; 6] = [
    "meanLoss",
    "h2dBytes",
    "nicBytes",
    "simSeconds",
    "degradedReads",
    "maxStaleness",
];

/// Allowed relative wall-time growth per worker-count step before the
/// monotonicity gate trips; generous because wall time is measured, while
/// a scheduler that stops scaling blows well past it.
const WALL_SLACK: f64 = 0.25;

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read baseline {path}: {e} (run scripts/bench_trajectory.sh)"));
    parse_json(&text).unwrap_or_else(|e| panic!("parse baseline {path}: {e}"))
}

fn metric_f64(obj: &JsonValue, key: &str, ctx: &str) -> f64 {
    obj.get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("baseline {ctx} lacks numeric '{key}'"))
}

/// Baseline rows: `(label, [(metric, value)])` per gated sweep row.
type BaselineRows = Vec<(String, Vec<(&'static str, f64)>)>;

/// Extract `(label, metric → value)` rows from the serve baseline wrapper.
fn serve_baseline_rows(doc: &JsonValue) -> (u64, BaselineRows) {
    let seed = doc
        .get("seed")
        .and_then(|v| v.as_u64())
        .expect("serve baseline carries a seed");
    let serve = doc.get("serve").expect("serve baseline carries 'serve'");
    let schema = serve.get("schemaVersion").and_then(|v| v.as_str());
    assert_eq!(
        schema,
        Some(freshgnn::obs::schema::SERVE_V1),
        "serve baseline schema mismatch"
    );
    let runs = serve
        .get("runs")
        .and_then(|v| v.as_array())
        .expect("serve baseline carries runs[]");
    let rows = runs
        .iter()
        .map(|run| {
            let label = run
                .get("label")
                .and_then(|v| v.as_str())
                .expect("run label")
                .to_string();
            let metrics = SERVE_METRICS
                .iter()
                .map(|&m| (m, metric_f64(run, m, &label)))
                .collect();
            (label, metrics)
        })
        .collect();
    (seed, rows)
}

/// Extract `(dataset/policy, metric → value)` rows from the policy
/// baseline document.
fn policy_baseline_rows(doc: &JsonValue) -> (u64, BaselineRows) {
    let schema = doc.get("schemaVersion").and_then(|v| v.as_str());
    assert_eq!(
        schema,
        Some(freshgnn::obs::schema::POLICY_V1),
        "policy baseline schema mismatch"
    );
    let seed = doc
        .get("seed")
        .and_then(|v| v.as_u64())
        .expect("policy baseline carries a seed");
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_array())
        .expect("policy baseline carries rows[]");
    let out = rows
        .iter()
        .map(|r| {
            let key = format!(
                "{}/{}",
                r.get("dataset").and_then(|v| v.as_str()).expect("dataset"),
                r.get("policy").and_then(|v| v.as_str()).expect("policy"),
            );
            let metrics = POLICY_METRICS
                .iter()
                .map(|&m| (m, metric_f64(r, m, &key)))
                .collect();
            (key, metrics)
        })
        .collect();
    (seed, out)
}

/// Extract `(dataset/w{N}, metric → value)` rows from the train baseline
/// document.
fn train_baseline_rows(doc: &JsonValue) -> (u64, BaselineRows) {
    let schema = doc.get("schemaVersion").and_then(|v| v.as_str());
    assert_eq!(
        schema,
        Some(freshgnn::obs::schema::TRAIN_V1),
        "train baseline schema mismatch"
    );
    let seed = doc
        .get("seed")
        .and_then(|v| v.as_u64())
        .expect("train baseline carries a seed");
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_array())
        .expect("train baseline carries rows[]");
    let out = rows
        .iter()
        .map(|r| {
            let key = format!(
                "{}/w{}",
                r.get("dataset").and_then(|v| v.as_str()).expect("dataset"),
                r.get("workers").and_then(|v| v.as_u64()).expect("workers"),
            );
            let metrics = TRAIN_METRICS
                .iter()
                .map(|&m| (m, metric_f64(r, m, &key)))
                .collect();
            (key, metrics)
        })
        .collect();
    (seed, out)
}

/// Extract `(dataset/h{N}/{schedule}, metric → value)` rows from the
/// cluster baseline document.
fn cluster_baseline_rows(doc: &JsonValue) -> (u64, BaselineRows) {
    let schema = doc.get("schemaVersion").and_then(|v| v.as_str());
    assert_eq!(
        schema,
        Some(freshgnn::obs::schema::CLUSTER_V1),
        "cluster baseline schema mismatch"
    );
    let seed = doc
        .get("seed")
        .and_then(|v| v.as_u64())
        .expect("cluster baseline carries a seed");
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_array())
        .expect("cluster baseline carries rows[]");
    let out = rows
        .iter()
        .map(|r| {
            let key = format!(
                "{}/h{}/{}",
                r.get("dataset").and_then(|v| v.as_str()).expect("dataset"),
                r.get("hosts").and_then(|v| v.as_u64()).expect("hosts"),
                r.get("schedule")
                    .and_then(|v| v.as_str())
                    .expect("schedule"),
            );
            let metrics = CLUSTER_METRICS
                .iter()
                .map(|&m| (m, metric_f64(r, m, &key)))
                .collect();
            (key, metrics)
        })
        .collect();
    (seed, out)
}

fn status(checks: &[&MetricCheck]) -> String {
    if checks.iter().any(|c| c.regressed()) {
        "REGRESSED".to_string()
    } else if checks.iter().all(|c| c.bit_identical()) {
        "bit=".to_string()
    } else {
        "ok".to_string()
    }
}

fn print_trajectory(title: &str, checks: &[MetricCheck], shown: &[&str]) {
    println!("\n{title}");
    let widths = [26usize, 14, 14, 14, 10];
    row(
        &[&"row", &"metric", &"baseline", &"fresh", &"status"],
        &widths,
    );
    let mut labels: Vec<&String> = checks.iter().map(|c| &c.label).collect();
    labels.dedup();
    for label in labels {
        let of_label: Vec<&MetricCheck> = checks.iter().filter(|c| &c.label == label).collect();
        let overall = status(&of_label);
        let mut first = true;
        for c in &of_label {
            // Compact table: per row show the gated metrics that drifted
            // (plus the headline ones), so a clean run stays readable.
            let headline = shown.contains(&c.metric);
            if !headline && c.bit_identical() {
                continue;
            }
            row(
                &[
                    &if first { label.as_str() } else { "" },
                    &c.metric,
                    &format!("{:.6}", c.baseline),
                    &format!("{:.6}", c.fresh),
                    &if c.regressed() {
                        format!("REGR {:+.1}%", c.drift() * 100.0)
                    } else if c.bit_identical() {
                        "bit=".to_string()
                    } else {
                        format!("{:+.2}%", c.drift() * 100.0)
                    },
                ],
                &widths,
            );
            first = false;
        }
        if first {
            // Every metric was bit-identical and non-headline: one line.
            row(&[&label.as_str(), &"(all)", &"", &"", &overall], &widths);
        }
    }
}

fn main() {
    let args = Args::parse();
    let serve_path: String = args.get("serve-baseline", "BENCH_serve.json".to_string());
    let policy_path: String = args.get("policy-baseline", "BENCH_policy.json".to_string());
    let train_path: String = args.get("train-baseline", "BENCH_train.json".to_string());
    let cluster_path: String = args.get("cluster-baseline", "BENCH_cluster.json".to_string());
    let tolerance: f64 = args.get("tolerance", DEFAULT_TOLERANCE);
    let check = args.flag("check");
    let inject: f64 = args.get("inject-regression", 0.0);

    banner(
        "Report",
        "Performance-trajectory regression gate over committed baselines",
    );

    let (serve_seed, serve_base) = serve_baseline_rows(&load(&serve_path));
    let (policy_seed, policy_base) = policy_baseline_rows(&load(&policy_path));
    let (train_seed, train_base) = train_baseline_rows(&load(&train_path));
    let (cluster_seed, cluster_base) = cluster_baseline_rows(&load(&cluster_path));
    println!(
        "baselines: {serve_path} (seed {serve_seed}, {} cells), {policy_path} (seed {policy_seed}, {} rows), {train_path} (seed {train_seed}, {} cells), {cluster_path} (seed {cluster_seed}, {} cells)",
        serve_base.len(),
        policy_base.len(),
        train_base.len(),
        cluster_base.len()
    );
    println!("tolerance ±{:.0}%; re-running sweeps...", tolerance * 100.0);

    let sw = ServeSweepConfig {
        seed: serve_seed,
        ..ServeSweepConfig::default()
    };
    let ds = serve_dataset(&sw);
    let mut cells = serve_sweep(&ds, &sw, |_| {});
    let mut rows = policy_sweep(
        &PolicySweepConfig {
            seed: policy_seed,
            ..PolicySweepConfig::default()
        },
        |_| {},
    );
    let mut train_rows = train_sweep(
        &TrainSweepConfig {
            seed: train_seed,
            ..TrainSweepConfig::default()
        },
        |_| {},
    );
    let mut cluster_rows = cluster_sweep(
        &ClusterSweepConfig {
            seed: cluster_seed,
            ..ClusterSweepConfig::default()
        },
        |_| {},
    );

    if inject > 0.0 {
        println!(
            "injecting a synthetic {:.0}% regression into fresh p99 latency, H2D traffic, train sim-seconds and cluster NIC traffic",
            inject * 100.0
        );
        for c in &mut cells {
            c.report.p99_ms *= 1.0 + inject;
        }
        for r in &mut rows {
            r.h2d_bytes = ((r.h2d_bytes as f64) * (1.0 + inject)) as u64;
        }
        for r in &mut train_rows {
            r.sim_seconds *= 1.0 + inject;
        }
        for r in &mut cluster_rows {
            r.nic_bytes = ((r.nic_bytes as f64) * (1.0 + inject)) as u64;
        }
    }

    let serve_checks = compare_serve(&serve_base, &cells, tolerance);
    let policy_checks = compare_policy(&policy_base, &rows, tolerance);
    let mut train_checks = compare_train(&train_base, &train_rows, tolerance);
    train_checks.extend(worker_invariance_checks(&train_rows));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wall_checks = if cores >= 4 {
        wall_monotonicity_checks(&train_rows, cores, WALL_SLACK)
    } else {
        Vec::new()
    };
    train_checks.extend(wall_checks);
    let mut cluster_checks = compare_cluster(&cluster_base, &cluster_rows, tolerance);
    cluster_checks.extend(fault_invariance_checks(&cluster_rows));

    print_trajectory(
        "serving trajectory (BENCH_serve.json)",
        &serve_checks,
        &["p99Ms", "throughputRps"],
    );
    print_trajectory(
        "policy frontier trajectory (BENCH_policy.json)",
        &policy_checks,
        &["h2dBytes", "ioSaving"],
    );
    print_trajectory(
        "train scaling trajectory (BENCH_train.json)",
        &train_checks,
        &["simSeconds", "wallSeconds"],
    );
    if cores < 4 {
        println!("wall-time monotonicity: skipped ({cores} cores)");
    }
    print_trajectory(
        "cluster trajectory (BENCH_cluster.json)",
        &cluster_checks,
        &["nicBytes", "maxStaleness"],
    );

    let all: Vec<&MetricCheck> = serve_checks
        .iter()
        .chain(policy_checks.iter())
        .chain(train_checks.iter())
        .chain(cluster_checks.iter())
        .collect();
    let bit = all.iter().filter(|c| c.bit_identical()).count();
    let regressed: Vec<&&MetricCheck> = all.iter().filter(|c| c.regressed()).collect();
    println!(
        "\n{} checks: {} bit-identical, {} within tolerance, {} regressed",
        all.len(),
        bit,
        all.len() - bit - regressed.len(),
        regressed.len()
    );
    for c in &regressed {
        println!(
            "  REGRESSION {} {}: baseline {:.6} -> fresh {:.6} ({:+.1}%)",
            c.label,
            c.metric,
            c.baseline,
            c.fresh,
            c.drift() * 100.0
        );
    }
    if !regressed.is_empty() {
        if check {
            std::process::exit(2);
        }
        println!("(--check not set: reporting only)");
    } else if bit == all.len() {
        println!("trajectory reproduced bit-for-bit");
    }
}
