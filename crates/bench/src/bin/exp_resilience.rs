//! Self-healing runtime demo: train under a seeded fault schedule (lossy
//! interconnect + one injected NaN batch) with and without the resilience
//! layer.
//!
//! Without `--resilience` the run uses the passive fault model only:
//! retries burn simulated time and nothing reacts. With `--resilience`
//! the circuit breaker degrades the pipeline under the fault storm, the
//! numeric guard catches an injected NaN, training rolls back to the last
//! good checkpoint, and the supervisor's transition table + breaker
//! statistics are printed (and exported as schema-tagged JSONL via
//! `--resilience-out <path>`). Everything is seeded: two runs with the
//! same `--seed` print byte-identical transition tables.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::arxiv_spec;
use fgnn_graph::Dataset;
use fgnn_memsim::fault::{BreakerPolicy, FaultPlan, RetryPolicy};
use fgnn_memsim::presets::Machine;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::resilience::Supervisor;
use freshgnn::{FreshGnnConfig, Trainer};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0002);
    let epochs: u32 = args.get("epochs", 4);
    let fail: f64 = args.get("fail", 0.3);
    let resilient = args.flag("resilience");
    let out: Option<String> = args.get_opt("resilience-out");

    banner(
        "Resilience",
        "Self-healing runtime under a seeded fault schedule",
    );
    let ds = Dataset::materialize(arxiv_spec(scale).with_dim(64), seed);
    println!(
        "dataset: {} nodes, {} edges; fail prob {fail}; resilience {}\n",
        ds.num_nodes(),
        ds.graph.num_edges(),
        if resilient { "ON" } else { "OFF" },
    );

    let cfg = FreshGnnConfig {
        p_grad: 0.9,
        t_stale: 100,
        fanouts: vec![5, 5],
        batch_size: 128,
        ..Default::default()
    };
    let mut t = Trainer::new(&ds, Arch::Sage, 32, Machine::single_a100(), cfg, seed);
    t.inject_faults(
        FaultPlan::new(seed ^ 0xFA_17).with_fail_prob(fail),
        RetryPolicy {
            max_retries: 2,
            ..Default::default()
        },
    );
    if resilient {
        t.enable_breaker(BreakerPolicy::default());
    }
    let mut opt = Adam::new(0.003);
    let mut sup = Supervisor::default();

    let w = [8, 12, 10, 10, 11, 12];
    row(
        &[
            &"epoch",
            &"state",
            &"batches",
            &"degraded",
            &"rollbacks",
            &"mean loss",
        ],
        &w,
    );
    for epoch in 0..epochs {
        if epoch == 1 && resilient {
            // One transient divergence mid-epoch 2: the guard catches it
            // and rolls back. (The injection rides the guarded loop, so it
            // is only armed when the resilient path will consume it.)
            t.inject_nan_at([t.iterations() + 2]);
        }
        let (state, stats) = if resilient {
            match t.train_epoch_resilient(&ds, &mut opt, &mut sup) {
                Ok(s) => (sup.state().name(), s),
                Err(e) => {
                    println!("\nrun aborted: {e}");
                    break;
                }
            }
        } else {
            ("-", t.train_epoch(&ds, &mut opt))
        };
        row(
            &[
                &(epoch + 1),
                &state,
                &stats.batches,
                &stats.degraded_batches,
                &sup.rollbacks(),
                &format!("{:.4}", stats.mean_loss),
            ],
            &w,
        );
    }

    println!(
        "\ntransfer retries {}, retry seconds {:.3}, failed transfers {}",
        t.counters.retries, t.counters.retry_seconds, t.counters.failed_transfers
    );
    if let Some((trips, fast_fails)) = t.breaker_stats() {
        println!("breaker: {trips} trips, {fast_fails} fast-failed transfers");
    }
    if resilient {
        println!("\nsupervisor transitions:");
        println!("{}", sup.transition_log());
        if let Some(path) = out {
            std::fs::write(&path, sup.transitions_jsonl("resilience")).expect("write JSONL");
            println!("transition JSONL written to {path}");
        }
    } else {
        println!("\n(no supervisor: rerun with --resilience to react to the faults)");
    }
}
