//! Overload-robust serving demo: sweep offered load × cache size × fault
//! plan over the deterministic inference engine.
//!
//! Each cell generates a seeded bursty Zipf request trace, serves it
//! through admission control + batching + the freshness-SLA cache read
//! path, and reports exact latency percentiles, throughput and the shed
//! breakdown. Fault modes: `none` (clean interconnect), `lossy` (seeded
//! fault plan with bounded retry/backoff) and `breaker` (circuit breaker
//! forced open — degraded serving entirely from the warmed cache).
//! Everything is seeded: two runs with the same `--seed` print identical
//! tables and export byte-identical `fgnn-serve-v1` JSONL
//! (`--serve-out <path>`) and `fgnn-serve-trace-v1` request-trace JSONL
//! (`--trace-out <path>`: exemplar span trees + SLO alert edges).
//! `--bench-json <path>` writes the compact trajectory summary
//! `scripts/bench_trajectory.sh` commits (the sweep itself lives in
//! [`fgnn_bench::trajectory`], shared with the `exp_report` gate).

use fgnn_bench::trajectory::{serve_dataset, serve_sweep, ServeSweepConfig};
use fgnn_bench::{banner, row, Args};
use freshgnn::serve::bench_json;

fn main() {
    let args = Args::parse();
    let serve_out: Option<String> = args.get_opt("serve-out");
    let trace_out: Option<String> = args.get_opt("trace-out");
    let bench_out: Option<String> = args.get_opt("bench-json");
    let sw = ServeSweepConfig {
        seed: args.get("seed", 42),
        scale: args.get("scale", 0.002),
        requests: args.get("requests", 2000),
        base_rate: args.get("rate", 4000.0),
        fail: args.get("fail", 0.3),
        exemplar_every: args.get("exemplar-every", ServeSweepConfig::default().exemplar_every),
        render_exports: serve_out.is_some() || trace_out.is_some(),
    };

    banner(
        "Serve",
        "Overload-robust online inference: load x cache x faults",
    );
    let ds = serve_dataset(&sw);
    println!(
        "dataset: {} nodes, {} edges; contract {} rps; {} requests/cell\n",
        ds.num_nodes(),
        ds.graph.num_edges(),
        sw.base_rate,
        sw.requests,
    );

    let widths = [24usize, 8, 8, 8, 8, 8, 9, 10, 7, 7];
    row(
        &[
            &"cell", &"served", &"shed%", &"hit%", &"p50ms", &"p95ms", &"p99ms", &"thruRps",
            &"degr", &"slaViol",
        ],
        &widths,
    );

    let cells = serve_sweep(&ds, &sw, |cell| {
        let report = &cell.report;
        let hit_pct = if report.served > 0 {
            100.0 * report.cache_hits as f64 / report.served as f64
        } else {
            0.0
        };
        row(
            &[
                &cell.label,
                &report.served,
                &format!("{:.1}", report.shed_fraction * 100.0),
                &format!("{hit_pct:.1}"),
                &format!("{:.2}", report.p50_ms),
                &format!("{:.2}", report.p95_ms),
                &format!("{:.2}", report.p99_ms),
                &format!("{:.0}", report.throughput_rps),
                &report.degraded_served,
                &report.sla_violations,
            ],
            &widths,
        );
    });

    println!("\nshed breakdown is exported per cell; sla violations must be 0 in every mode");
    if let Some(path) = serve_out {
        let doc: String = cells.iter().map(|c| c.serve_jsonl.as_str()).collect();
        std::fs::write(&path, doc).expect("write --serve-out");
        eprintln!("wrote serve JSONL to {path}");
    }
    if let Some(path) = trace_out {
        let doc: String = cells.iter().map(|c| c.trace_jsonl.as_str()).collect();
        std::fs::write(&path, doc).expect("write --trace-out");
        eprintln!("wrote request-trace JSONL to {path}");
    }
    if let Some(path) = bench_out {
        let refs: Vec<(String, &freshgnn::ServeReport)> =
            cells.iter().map(|c| (c.label.clone(), &c.report)).collect();
        std::fs::write(&path, bench_json(&refs)).expect("write --bench-json");
        eprintln!("wrote bench JSON to {path}");
    }
}
