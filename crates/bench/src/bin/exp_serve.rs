//! Overload-robust serving demo: sweep offered load × cache size × fault
//! plan over the deterministic inference engine.
//!
//! Each cell generates a seeded bursty Zipf request trace, serves it
//! through admission control + batching + the freshness-SLA cache read
//! path, and reports exact latency percentiles, throughput and the shed
//! breakdown. Fault modes: `none` (clean interconnect), `lossy` (seeded
//! fault plan with bounded retry/backoff) and `breaker` (circuit breaker
//! forced open — degraded serving entirely from the warmed cache).
//! Everything is seeded: two runs with the same `--seed` print identical
//! tables and export byte-identical `fgnn-serve-v1` JSONL
//! (`--serve-out <path>`). `--bench-json <path>` writes the compact
//! trajectory summary `scripts/bench_trajectory.sh` commits.

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::arxiv_spec;
use fgnn_graph::{Dataset, NodeId};
use fgnn_memsim::fault::{FaultPlan, RetryPolicy};
use fgnn_memsim::presets::Machine;
use freshgnn::serve::{bench_json, generate_trace, serve_jsonl, ServeConfig, ServeEngine};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.002);
    let requests: usize = args.get("requests", 2000);
    let base_rate: f64 = args.get("rate", 4000.0);
    let fail: f64 = args.get("fail", 0.3);
    let serve_out: Option<String> = args.get_opt("serve-out");
    let bench_out: Option<String> = args.get_opt("bench-json");

    banner(
        "Serve",
        "Overload-robust online inference: load x cache x faults",
    );
    let ds = Dataset::materialize(arxiv_spec(scale).with_dim(32), seed);
    println!(
        "dataset: {} nodes, {} edges; contract {base_rate} rps; {requests} requests/cell\n",
        ds.num_nodes(),
        ds.graph.num_edges(),
    );

    let widths = [24usize, 8, 8, 8, 8, 8, 9, 10, 7, 7];
    row(
        &[
            &"cell", &"served", &"shed%", &"hit%", &"p50ms", &"p95ms", &"p99ms", &"thruRps",
            &"degr", &"slaViol",
        ],
        &widths,
    );

    let mut jsonl = String::new();
    let mut reports = Vec::new();
    for &load in &[1.0f64, 2.0] {
        for &cache in &[16usize, 256] {
            for fault in ["none", "lossy", "breaker"] {
                let mut cfg = ServeConfig {
                    seed,
                    ..ServeConfig::default()
                };
                cfg.trace.num_requests = requests;
                cfg.trace.num_nodes = cfg.trace.num_nodes.min(ds.num_nodes());
                cfg.trace.rate_rps = base_rate * load;
                cfg.admission.rate_rps = base_rate;
                cfg.freshness.cache_capacity = cache;
                let trace = generate_trace(&cfg.trace, seed);
                let num_trace_nodes = cfg.trace.num_nodes;

                let mut eng = ServeEngine::new(&ds, 32, Machine::single_a100(), cfg)
                    .expect("valid sweep config");
                match fault {
                    "lossy" => eng.inject_faults(
                        FaultPlan::new(seed ^ 0x5E17).with_fail_prob(fail),
                        RetryPolicy {
                            max_retries: 2,
                            ..Default::default()
                        },
                    ),
                    "breaker" => {
                        // Degraded drill: warm every servable node, then
                        // force the breaker open so reads must come from
                        // cache under each request's own staleness budget.
                        let nodes: Vec<NodeId> = (0..num_trace_nodes as NodeId).collect();
                        eng.warm(&nodes);
                        eng.inject_faults(
                            FaultPlan::new(seed ^ 0x5E17).with_fail_prob(fail),
                            RetryPolicy::default(),
                        );
                        eng.trip_breaker();
                    }
                    _ => {}
                }

                let report = eng.run(&trace).expect("sweep run serves something");
                let label = format!("load={load}x cap={cache} {fault}");
                let hit_pct = if report.served > 0 {
                    100.0 * report.cache_hits as f64 / report.served as f64
                } else {
                    0.0
                };
                row(
                    &[
                        &label,
                        &report.served,
                        &format!("{:.1}", report.shed_fraction * 100.0),
                        &format!("{hit_pct:.1}"),
                        &format!("{:.2}", report.p50_ms),
                        &format!("{:.2}", report.p95_ms),
                        &format!("{:.2}", report.p99_ms),
                        &format!("{:.0}", report.throughput_rps),
                        &report.degraded_served,
                        &report.sla_violations,
                    ],
                    &widths,
                );
                jsonl.push_str(&serve_jsonl(&label, &report, &eng.obs));
                reports.push((label, report));
            }
        }
    }

    println!("\nshed breakdown is exported per cell; sla violations must be 0 in every mode");
    if let Some(path) = serve_out {
        let doc = jsonl;
        std::fs::write(&path, doc).expect("write --serve-out");
        eprintln!("wrote serve JSONL to {path}");
    }
    if let Some(path) = bench_out {
        let refs: Vec<(String, &freshgnn::ServeReport)> =
            reports.iter().map(|(l, r)| (l.clone(), r)).collect();
        std::fs::write(&path, bench_json(&refs)).expect("write --bench-json");
        eprintln!("wrote bench JSON to {path}");
    }
}
