//! Table 1: storage and per-node pruning complexity of CSR, COO and CSR2.
//!
//! Empirically verifies the claimed scaling: CSR's prune cost grows with
//! the graph (O(|V| + N_nbrs) offset rewrite), COO's with log |E| +
//! N_nbrs, while CSR2's is flat O(1). Also prints measured storage to
//! check the `O(2|V| + |E|)` overhead claim.

use fgnn_bench::{banner, fmt_bytes, fmt_secs, row, Args};
use fgnn_graph::generate::{generate, GraphConfig};
use fgnn_graph::{Coo, Csr, Csr2};
use fgnn_tensor::Rng;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);

    banner(
        "Table 1",
        "Prune complexity and storage: CSR vs COO vs CSR2",
    );

    let w = [10, 12, 13, 13, 13, 12, 12, 12];
    row(
        &[
            &"|V|",
            &"|E|",
            &"CSR/prune",
            &"COO/prune",
            &"CSR2/prune",
            &"CSR bytes",
            &"COO bytes",
            &"CSR2 bytes",
        ],
        &w,
    );

    for n in [2_000usize, 8_000, 32_000, 128_000] {
        let mut rng = Rng::new(seed);
        let cfg = GraphConfig {
            num_nodes: n,
            avg_degree: 16.0,
            ..Default::default()
        };
        let g = generate(&cfg, &mut rng).graph;
        let victims: Vec<u32> = (0..200u32).map(|_| rng.below(n) as u32).collect();

        // CSR prune (rebuilds offsets).
        let mut csr = g.clone();
        let t0 = Instant::now();
        for &v in &victims {
            csr.prune_neighbors(v);
        }
        let t_csr = t0.elapsed().as_secs_f64() / victims.len() as f64;

        // COO prune (binary search + tombstones).
        let mut coo = Coo::from_csr(&g);
        let t0 = Instant::now();
        for &v in &victims {
            coo.prune_neighbors(v);
        }
        let t_coo = t0.elapsed().as_secs_f64() / victims.len() as f64;

        // CSR2 prune (O(1)).
        let mut csr2 = Csr2::from_csr(&g);
        let t0 = Instant::now();
        for &v in &victims {
            csr2.prune(v as usize);
        }
        let t_csr2 = t0.elapsed().as_secs_f64() / victims.len() as f64;

        row(
            &[
                &n,
                &g.num_edges(),
                &fmt_secs(t_csr),
                &fmt_secs(t_coo),
                &fmt_secs(t_csr2),
                &fmt_bytes(Csr::bytes(&g) as u64),
                &fmt_bytes(coo.bytes() as u64),
                &fmt_bytes(csr2.bytes() as u64),
            ],
            &w,
        );
    }
    println!("\nexpected: CSR per-prune time grows ~linearly with |V|; COO grows");
    println!("slowly (log |E|); CSR2 stays flat. Storage: CSR2 = CSR + |V| words.");
}
