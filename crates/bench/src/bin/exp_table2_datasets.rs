//! Table 2: dataset statistics (paper values vs our scaled stand-ins).

use fgnn_bench::{banner, row, Args};
use fgnn_graph::datasets::*;
use fgnn_graph::degree::average_degree;
use fgnn_graph::Dataset;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let scale: f64 = args.get("scale", 0.0005);

    banner(
        "Table 2",
        "Graph dataset details (scaled synthetic stand-ins)",
    );
    println!("scale = {scale} of the paper's node counts; seed = {seed}\n");
    let w = [16, 10, 12, 7, 8, 8, 10];
    row(
        &[
            &"dataset",
            &"|V|",
            &"|E|(dir)",
            &"dim",
            &"#class",
            &"dtype",
            &"avg-deg",
        ],
        &w,
    );

    let specs = vec![
        arxiv_spec(scale),
        products_spec(scale),
        papers100m_spec(scale),
        mag240m_spec(scale),
        twitter_spec(scale),
        friendster_spec(scale),
    ];
    for spec in specs {
        let target_deg = spec.avg_degree;
        let name = spec.name;
        let dim = spec.feature_dim;
        let classes = spec.num_classes;
        let dtype = if spec.feature_scalar_bytes == 2 {
            "f16"
        } else {
            "f32"
        };
        let ds = Dataset::materialize(spec.with_dim(8), seed); // dim slimmed: structure is what Table 2 validates
        row(
            &[
                &name,
                &ds.num_nodes(),
                &ds.graph.num_edges(),
                &dim,
                &classes,
                &dtype,
                &format!(
                    "{:.1} (target {:.0})",
                    average_degree(&ds.graph),
                    target_deg
                ),
            ],
            &w,
        );
    }
    println!("\npaper: arxiv 2.9M/30.4M, products 2.4M/123M, papers100M 111M/1.6B,");
    println!("       MAG240M 244.2M/1.7B, Twitter 41.7M/1.5B, Friendster 65.6M/1.8B");
}
