//! Table 3: test accuracy of each training algorithm minus the neighbor-
//! sampling target, for GraphSAGE/GAT/GCN across the four labeled
//! datasets.
//!
//! OOM entries are reproduced by *accounting*: a method is marked OOM when
//! its paper-scale memory requirement (GAS/GraphFM's `O(Lnd)` history, or
//! holding MAG240M features in GPU-addressable memory) exceeds the
//! evaluation machine, exactly the paper's reported failure reasons. The
//! scaled run still executes so the accuracy column is available for
//! inspection (printed in parentheses).

use fgnn_bench::runners::{best, run_method, Method, RunSpec, TABLE3_METHODS};
use fgnn_bench::{banner, fmt_bytes, row, Args};
use fgnn_graph::datasets::{arxiv_spec, mag240m_spec, papers100m_spec, products_spec, DatasetSpec};
use fgnn_graph::Dataset;
use fgnn_nn::model::Arch;

/// Paper-scale node counts for the OOM accounting.
const PAPER_NODES: [(&str, usize); 4] = [
    ("arxiv-s", 2_900_000),
    ("products-s", 2_400_000),
    ("papers100M-s", 111_000_000),
    ("mag240M-s", 244_200_000),
];

/// CPU RAM of the paper's single-GPU server (for `O(Lnd)` histories).
const HOST_RAM: u64 = 512 << 30;

fn paper_nodes(name: &str) -> usize {
    PAPER_NODES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, n)| n)
        .unwrap_or(0)
}

/// Would this method OOM at *paper* scale on this dataset? The accounting
/// uses the paper's model (3 layers, 256 hidden — §7.1), because that is
/// the configuration whose `O(Lnd)` history overflows the machine, not our
/// scaled-down stand-in.
fn oom_at_paper_scale(method: Method, spec: &DatasetSpec) -> bool {
    const PAPER_HIDDEN: u64 = 256;
    const PAPER_LAYERS: u64 = 3;
    let n = paper_nodes(spec.name) as u64;
    match method {
        Method::Gas | Method::GraphFm => {
            // O(Lnd) float32 history: two hidden levels + the output level.
            let per_node = PAPER_HIDDEN * (PAPER_LAYERS - 1) + 172;
            n * per_node * 4 > HOST_RAM
        }
        Method::ClusterGcn => {
            // ClusterGCN is lean; the paper reports OOM only on MAG240M,
            // whose 350GB feature set plus partition state exceeds the
            // machine.
            n * spec.feature_row_bytes() as u64 > 350 << 30
        }
        _ => false,
    }
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 42);
    let steps: usize = args.get("steps", 500);
    let scale_small: f64 = args.get("scale-small", 0.002);
    let scale_large: f64 = args.get("scale-large", 0.0003);

    banner(
        "Table 3",
        "Accuracy minus NS target (positive = better than target)",
    );

    let datasets: Vec<DatasetSpec> = vec![
        arxiv_spec(scale_small).with_dim(32),
        products_spec(scale_small).with_dim(32),
        papers100m_spec(scale_large).with_dim(32),
        mag240m_spec(scale_large).with_dim(48),
    ];

    // Materialize once per dataset, reuse across architectures.
    let materialized: Vec<Dataset> = datasets
        .iter()
        .map(|s| Dataset::materialize(s.clone(), seed))
        .collect();
    for ds in &materialized {
        println!(
            "{}: {} nodes / {} edges / {} classes / {} train",
            ds.spec.name,
            ds.num_nodes(),
            ds.graph.num_edges(),
            ds.spec.num_classes,
            ds.train_nodes.len()
        );
    }

    for arch in [Arch::Sage, Arch::Gat, Arch::Gcn] {
        println!("\n=== {arch} ===");
        let w = [14, 14, 14, 16, 14];
        row(
            &[
                &"method",
                &"arxiv-s",
                &"products-s",
                &"papers100M-s",
                &"mag240M-s",
            ],
            &w,
        );
        let spec = RunSpec::new(arch, steps);
        let mut targets = vec![0.0f64; materialized.len()];
        for method in TABLE3_METHODS {
            let mut cells: Vec<String> = vec![method.to_string()];
            for (di, ds) in materialized.iter().enumerate() {
                let oom = oom_at_paper_scale(method, &ds.spec);
                let acc = best(&run_method(ds, method, &spec, seed));
                if method == Method::NeighborSampling {
                    targets[di] = acc;
                    cells.push(format!("{:.4}", acc));
                } else if oom {
                    cells.push(format!("OOM ({:+.3})", acc - targets[di]));
                } else {
                    cells.push(format!("{:+.4}", acc - targets[di]));
                }
            }
            let refs: Vec<&dyn std::fmt::Display> =
                cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
            row(&refs, &w);
        }
    }

    println!(
        "\nOOM accounting (paper model: 3 layers x 256 hidden): MAG240M GAS \
         history needs {} > {} host RAM",
        fmt_bytes(244_200_000u64 * (2 * 256 + 172) * 4),
        fmt_bytes(HOST_RAM)
    );
    println!("paper (Table 3): baselines lose 7–18% on papers100M and OOM on");
    println!("MAG240M; FreshGNN stays within 1% of the target everywhere.");
}
