//! Extension: epoch wall time of the work-stealing training runtime
//! (DESIGN.md §13) at 1/2/4/8 workers on the four Fig 10 datasets.
//!
//! Each cell trains the FreshGNN configuration through
//! [`Trainer::train_epoch_async`] — the async sampler and pipeline on the
//! in-tree work-stealing pool — and reports two kinds of quantity:
//!
//! * **exact** — final-epoch mean loss, total H2D feature bytes, and the
//!   simulated GPU-stream seconds (transfer + retry + compute). The
//!   runtime commits batches in index order with per-task seeded RNG, so
//!   these reproduce *bit for bit* at any worker count;
//! * **measured** — cell wall time and steal counts, the schedule
//!   artifacts the sweep exists to show: wall time should shrink 1→4
//!   workers on a multi-core machine while the exact columns do not move.
//!
//! `--bench-json <path>` writes the `fgnn-train-v1` document
//! `scripts/bench_trajectory.sh` commits as `BENCH_train.json`. The sweep
//! loop itself lives in [`fgnn_bench::trajectory`], shared with the
//! `exp_report` gate (which additionally enforces the cross-worker
//! bit-identity and the wall-time monotonicity claims).
//!
//! [`Trainer::train_epoch_async`]: freshgnn::Trainer::train_epoch_async

use fgnn_bench::trajectory::{train_sweep, TrainSweepConfig};
use fgnn_bench::{banner, fmt_bytes, fmt_secs, row, Args};
use freshgnn::runtime::train_bench_json;

fn main() {
    let args = Args::parse();
    let mut sw = TrainSweepConfig {
        seed: args.get("seed", 42),
        scale: args.get("scale", 1.0),
        epochs: args.get("epochs", 2),
        ..TrainSweepConfig::default()
    };
    if let Some(list) = args.get_opt::<String>("workers") {
        sw.workers = list
            .split(',')
            .map(|w| {
                w.trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("--workers: {e}"))
            })
            .collect();
        assert!(!sw.workers.is_empty(), "--workers needs at least one count");
    }
    let bench_out: Option<String> = args.get_opt("bench-json");

    banner(
        "TrainScaling",
        "Epoch wall time vs runtime workers (exact metrics invariant)",
    );
    println!(
        "{} epochs per cell, workers {:?}, seed {} ({} cores available)\n",
        sw.epochs,
        sw.workers,
        sw.seed,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let w = [12usize, 8, 12, 10, 13, 10, 8];
    row(
        &[
            &"dataset",
            &"workers",
            &"meanLoss",
            &"h2d",
            &"simSeconds",
            &"wall",
            &"steals",
        ],
        &w,
    );

    let rows = train_sweep(&sw, |r| {
        row(
            &[
                &r.dataset,
                &r.workers,
                &format!("{:.6}", r.mean_loss),
                &fmt_bytes(r.h2d_bytes),
                &format!("{:.6}", r.sim_seconds),
                &fmt_secs(r.wall_seconds),
                &r.steals,
            ],
            &w,
        );
    });

    println!("\nscaling reading: meanLoss/h2d/simSeconds must be identical down");
    println!("each dataset's column (the runtime's determinism contract); wall");
    println!("time should fall as workers are added, up to the core count.");
    if let Some(path) = bench_out {
        std::fs::write(&path, train_bench_json(sw.seed, &rows)).expect("write --bench-json");
        eprintln!("wrote train bench JSON to {path}");
    }
}
