#![warn(missing_docs)]
//! # fgnn-bench
//!
//! Experiment harness for the FreshGNN reproduction: one binary per table
//! or figure of the paper (see DESIGN.md §4 for the index), plus criterion
//! microbenchmarks (`benches/`).
//!
//! Every binary accepts:
//! * `--seed <u64>` (default 42) — master RNG seed;
//! * `--scale <f64>` (default per-experiment) — dataset scale factor
//!   relative to the paper's node counts;
//! * `--epochs <usize>` where applicable.
//!
//! Output is plain aligned text: the same rows/series the paper's figure
//! or table reports, so EXPERIMENTS.md can quote them directly.

use std::fmt::Display;

/// Minimal command-line option parser (`--key value` pairs).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Fetch `--name v` as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Fetch `--name v` as `T`, or `None` when the flag is absent or
    /// unparsable.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Whether a bare flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.raw.iter().any(|a| a == &key)
    }
}

/// Collects labelled per-run observability state and writes the files an
/// experiment was asked for: `--trace-out <path>` (Chrome-trace JSON, one
/// thread lane per section) and `--metrics-out <path>` (JSONL, schema in
/// DESIGN.md §8). A no-op when neither flag is present.
pub struct ObsExport {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    sections: Vec<(String, freshgnn::Obs)>,
}

impl ObsExport {
    /// Read `--trace-out` / `--metrics-out` from the arguments.
    pub fn from_args(args: &Args) -> Self {
        ObsExport {
            trace_out: args.get_opt("trace-out"),
            metrics_out: args.get_opt("metrics-out"),
            sections: Vec::new(),
        }
    }

    /// Whether any output file was requested (callers may skip collecting
    /// when not).
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Record one labelled section (e.g. `"arxiv/FreshGNN"`).
    pub fn add(&mut self, label: impl Into<String>, obs: freshgnn::Obs) {
        self.sections.push((label.into(), obs));
    }

    /// Write the requested files (Measured-class metrics included — the
    /// CLI stream is for humans; tests use the deterministic subset).
    pub fn write(&self) -> std::io::Result<()> {
        use freshgnn::obs::export;
        if let Some(path) = &self.trace_out {
            let lanes: Vec<(&str, &freshgnn::obs::Tracer)> = self
                .sections
                .iter()
                .map(|(label, obs)| (label.as_str(), &obs.tracer))
                .collect();
            std::fs::write(path, export::chrome_trace(&lanes))?;
            eprintln!("wrote Chrome trace to {path}");
        }
        if let Some(path) = &self.metrics_out {
            let mut doc = export::metrics_jsonl_header();
            for (label, obs) in &self.sections {
                doc.push_str(&export::metrics_jsonl(label, &obs.metrics, true));
            }
            std::fs::write(path, doc)?;
            eprintln!("wrote metrics JSONL to {path}");
        }
        Ok(())
    }
}

/// Print a header banner for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Print one aligned table row.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:<width$}", c.to_string(), width = w));
    }
    println!("{}", line.trim_end());
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Format bytes compactly.
pub fn fmt_bytes(b: u64) -> String {
    let bf = b as f64;
    if bf >= 1e9 {
        format!("{:.2}GB", bf / 1e9)
    } else if bf >= 1e6 {
        format!("{:.1}MB", bf / 1e6)
    } else if bf >= 1e3 {
        format!("{:.1}KB", bf / 1e3)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_secs(120.0), "120s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(3e-6), "3.00us");
        assert_eq!(fmt_bytes(500), "500B");
        assert_eq!(fmt_bytes(2_500_000), "2.5MB");
        assert_eq!(fmt_bytes(3_000_000_000), "3.00GB");
    }
}

pub mod runners;
pub mod trajectory;
