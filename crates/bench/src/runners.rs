//! Shared training-method runners for the accuracy experiments
//! (Fig 2, Fig 12, Table 3): train a method for N epochs, recording test
//! accuracy after each epoch.

use fgnn_graph::Dataset;
use fgnn_memsim::presets::Machine;
use fgnn_memsim::stage::StageTimings;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::baselines::{ClusterGcnTrainer, GasConfig, GasTrainer};
use freshgnn::{FreshGnnConfig, Obs, Trainer};

/// A training method under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Vanilla neighbor sampling — the accuracy target.
    NeighborSampling,
    /// GNNAutoScale.
    Gas,
    /// ClusterGCN.
    ClusterGcn,
    /// GraphFM (feature-momentum history).
    GraphFm,
    /// FreshGNN with the paper's default policy.
    FreshGnn,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::NeighborSampling => write!(f, "NS-target"),
            Method::Gas => write!(f, "GAS"),
            Method::ClusterGcn => write!(f, "ClusterGCN"),
            Method::GraphFm => write!(f, "GraphFM"),
            Method::FreshGnn => write!(f, "FreshGNN"),
        }
    }
}

/// All comparison methods in Table 3 order.
pub const TABLE3_METHODS: [Method; 5] = [
    Method::NeighborSampling,
    Method::Gas,
    Method::ClusterGcn,
    Method::GraphFm,
    Method::FreshGnn,
];

/// Hyper-parameters shared across methods for a fair comparison.
///
/// Fairness note: the methods have wildly different steps-per-epoch (NS
/// takes `|train|/batch` steps; GAS/ClusterGCN take one step per cluster
/// group, often 50–100× more on sparse-label graphs). The paper compares
/// *converged* accuracy, so we give every method the same **optimizer-step
/// budget** and report its best test accuracy along the way.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// GNN architecture.
    pub arch: Arch,
    /// Hidden width.
    pub hidden: usize,
    /// Sampling fanouts (NS/FreshGNN) — also sets model depth for all.
    pub fanouts: Vec<usize>,
    /// Mini-batch size (NS/FreshGNN).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Optimizer steps to spend per method.
    pub target_steps: usize,
    /// FreshGNN cache thresholds.
    pub p_grad: f32,
    /// FreshGNN staleness bound.
    pub t_stale: u32,
}

impl RunSpec {
    /// Reasonable defaults for the scaled datasets.
    pub fn new(arch: Arch, target_steps: usize) -> Self {
        RunSpec {
            arch,
            hidden: 64,
            fanouts: vec![5, 5],
            batch_size: 128,
            lr: 0.003,
            target_steps,
            p_grad: 0.9,
            t_stale: 100,
        }
    }
}

/// Train `method` on `ds` for ~`target_steps` optimizer steps (whole
/// epochs; the last may overshoot) and return test accuracy after each
/// epoch.
pub fn run_method(ds: &Dataset, method: Method, spec: &RunSpec, seed: u64) -> Vec<f64> {
    run_method_timed(ds, method, spec, seed).0
}

/// Like [`run_method`], additionally returning the run's cumulative
/// per-stage time/traffic attribution and its observability state (spans
/// plus metrics — every method trains through `freshgnn::Engine`, so
/// both are populated uniformly; see `--trace-out` / `--metrics-out`).
pub fn run_method_timed(
    ds: &Dataset,
    method: Method,
    spec: &RunSpec,
    seed: u64,
) -> (Vec<f64>, StageTimings, Obs) {
    let machine = Machine::single_a100();
    let mut opt = Adam::new(spec.lr);
    let mut curve = Vec::new();
    let mut timings = StageTimings::new();
    let eval_nodes: &[u32] = &ds.test_nodes[..ds.test_nodes.len().min(2000)];
    let epochs_for = |steps_per_epoch: usize| -> usize {
        spec.target_steps.div_ceil(steps_per_epoch.max(1)).max(1)
    };
    let obs = match method {
        Method::NeighborSampling | Method::FreshGnn => {
            let cfg = if method == Method::FreshGnn {
                FreshGnnConfig {
                    p_grad: spec.p_grad,
                    t_stale: spec.t_stale,
                    fanouts: spec.fanouts.clone(),
                    batch_size: spec.batch_size,
                    ..Default::default()
                }
            } else {
                FreshGnnConfig::neighbor_sampling(spec.fanouts.clone(), spec.batch_size)
            };
            let steps_per_epoch = ds.train_nodes.len().div_ceil(spec.batch_size);
            let epochs = epochs_for(steps_per_epoch);
            let eval_every = (epochs / 24).max(1);
            let mut t = Trainer::new(ds, spec.arch, spec.hidden, machine, cfg, seed);
            for e in 0..epochs {
                let stats = t.train_epoch(ds, &mut opt);
                timings.merge(&stats.timings);
                if e % eval_every == 0 || e + 1 == epochs {
                    curve.push(t.evaluate(ds, eval_nodes, 256));
                }
            }
            std::mem::take(&mut t.obs)
        }
        Method::Gas | Method::GraphFm => {
            let momentum = if method == Method::GraphFm {
                Some(0.3)
            } else {
                None
            };
            let num_parts = (ds.num_nodes() / spec.batch_size.max(1)).clamp(2, 64);
            let mut t = GasTrainer::new(
                ds,
                spec.arch,
                spec.hidden,
                spec.fanouts.len(),
                machine,
                GasConfig {
                    num_parts,
                    max_neighbors: 64,
                    momentum,
                },
                seed,
            );
            let epochs = epochs_for(num_parts);
            let eval_every = (epochs / 24).max(1);
            for e in 0..epochs {
                let stats = t.train_epoch(ds, &mut opt);
                timings.merge(&stats.timings);
                if e % eval_every == 0 || e + 1 == epochs {
                    curve.push(t.evaluate(ds, eval_nodes, &spec.fanouts));
                }
            }
            std::mem::take(&mut t.obs)
        }
        Method::ClusterGcn => {
            let num_parts = (ds.num_nodes() / spec.batch_size.max(1)).clamp(2, 64);
            let q = 2;
            let mut t = ClusterGcnTrainer::new(
                ds,
                spec.arch,
                spec.hidden,
                spec.fanouts.len(),
                num_parts,
                q,
                machine,
                seed,
            );
            let epochs = epochs_for(num_parts.div_ceil(q));
            let eval_every = (epochs / 24).max(1);
            for e in 0..epochs {
                let stats = t.train_epoch(ds, &mut opt);
                timings.merge(&stats.timings);
                if e % eval_every == 0 || e + 1 == epochs {
                    curve.push(t.evaluate(ds, eval_nodes, &spec.fanouts));
                }
            }
            std::mem::take(&mut t.obs)
        }
    };
    (curve, timings, obs)
}

/// Best (max) accuracy of a curve — the paper reports converged accuracy.
pub fn best(curve: &[f64]) -> f64 {
    curve.iter().copied().fold(0.0, f64::max)
}
