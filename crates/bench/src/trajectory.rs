//! The performance-trajectory sweeps and the regression gate behind them.
//!
//! `exp_serve` and `exp_ext_policy_frontier` used to own their sweep loops
//! inline; `exp_report` needs to re-run *exactly* those loops to compare a
//! fresh machine against the committed `BENCH_serve.json` /
//! `BENCH_policy.json` baselines. This module is the single source of
//! truth: the binaries call [`serve_sweep`] / [`policy_sweep`] for their
//! tables, and the gate calls the same functions — same seeds, same cell
//! order, same floating-point accumulation — so a clean tree reproduces
//! the committed baselines bit for bit and any drift is a real behavior
//! change, not harness skew.
//!
//! The comparison itself ([`compare_serve`], [`compare_policy`],
//! [`compare_train`]) applies per-metric tolerances: exact simulated
//! quantities get a tight relative band (they should be *equal*; the band
//! exists so a deliberate regression of ≥10% always trips while FP-noise
//! never does).
//!
//! [`train_sweep`] covers the third baseline, `BENCH_train.json`: the
//! fig 10 datasets trained through the work-stealing runtime at 1/2/4/8
//! workers. Its gate is stricter — [`worker_invariance_checks`] demands
//! the exact metrics reproduce the single-worker row *bit for bit* at
//! every worker count, and [`wall_monotonicity_checks`] asserts the
//! measured wall time actually shrinks as workers are added (on machines
//! with real parallelism).

use fgnn_graph::datasets::{
    arxiv_spec, friendster_spec, mag240m_spec, papers100m_spec, twitter_spec, DatasetSpec,
};
use fgnn_graph::{Dataset, NodeId};
use fgnn_memsim::fault::{FaultPlan, RetryPolicy};
use fgnn_memsim::presets::Machine;
use fgnn_memsim::ClusterFaultPlan;
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;
use freshgnn::cache::{PolicyFrontierRow, PolicyKind};
use freshgnn::cluster::ClusterBenchRow;
use freshgnn::runtime::TrainScalingRow;
use freshgnn::serve::{
    generate_trace, serve_jsonl, serve_trace_jsonl, ServeConfig, ServeEngine, ServeReport,
};
use freshgnn::{ClusterConfig, ClusterTrainer, FreshGnnConfig, Trainer};

/// Knobs of the serving sweep (`exp_serve` defaults).
#[derive(Clone, Debug)]
pub struct ServeSweepConfig {
    /// Master seed (trace, model init, fault plans).
    pub seed: u64,
    /// Dataset scale factor for the arxiv spec.
    pub scale: f64,
    /// Requests per sweep cell.
    pub requests: usize,
    /// Contracted admission rate (requests per simulated second); offered
    /// load is swept at 1× and 2× this rate.
    pub base_rate: f64,
    /// Per-transfer failure probability of the lossy fault plan.
    pub fail: f64,
    /// Exemplar-trace sampling period (`0` disables request tracing,
    /// `1` traces everything); the default matches
    /// [`TelemetryConfig`](freshgnn::serve::TelemetryConfig).
    pub exemplar_every: u64,
    /// Render the per-cell JSONL exports into [`ServeCell`]. Off by
    /// default: the regression gate compares reports only, and the
    /// binaries enable it exactly when an `--*-out` flag asks for the
    /// bytes — so export rendering never taxes runs that discard it.
    pub render_exports: bool,
}

impl Default for ServeSweepConfig {
    fn default() -> Self {
        ServeSweepConfig {
            seed: 42,
            scale: 0.002,
            requests: 2000,
            base_rate: 4000.0,
            fail: 0.3,
            exemplar_every: freshgnn::serve::TelemetryConfig::default().exemplar_every,
            render_exports: false,
        }
    }
}

/// One served sweep cell: the run report plus its rendered exports.
pub struct ServeCell {
    /// Cell label (`load=1x cap=16 none` style).
    pub label: String,
    /// The engine's run report.
    pub report: ServeReport,
    /// Rendered `fgnn-serve-v1` JSONL for this cell (empty unless
    /// [`ServeSweepConfig::render_exports`] is set).
    pub serve_jsonl: String,
    /// Rendered `fgnn-serve-trace-v1` JSONL (request spans + alerts;
    /// empty unless [`ServeSweepConfig::render_exports`] is set).
    pub trace_jsonl: String,
}

/// The dataset the serving sweep runs over (factored out so the gate
/// materializes the identical graph).
pub fn serve_dataset(cfg: &ServeSweepConfig) -> Dataset {
    Dataset::materialize(arxiv_spec(cfg.scale).with_dim(32), cfg.seed)
}

/// Run the full load × cache × fault serving sweep. `on_cell` fires after
/// each cell (the binaries print their table rows incrementally from it).
pub fn serve_sweep(
    ds: &Dataset,
    sw: &ServeSweepConfig,
    mut on_cell: impl FnMut(&ServeCell),
) -> Vec<ServeCell> {
    let mut cells = Vec::new();
    for &load in &[1.0f64, 2.0] {
        for &cache in &[16usize, 256] {
            for fault in ["none", "lossy", "breaker"] {
                let mut cfg = ServeConfig {
                    seed: sw.seed,
                    ..ServeConfig::default()
                };
                cfg.trace.num_requests = sw.requests;
                cfg.trace.num_nodes = cfg.trace.num_nodes.min(ds.num_nodes());
                cfg.trace.rate_rps = sw.base_rate * load;
                cfg.admission.rate_rps = sw.base_rate;
                cfg.freshness.cache_capacity = cache;
                cfg.telemetry.exemplar_every = sw.exemplar_every;
                let trace = generate_trace(&cfg.trace, sw.seed);
                let num_trace_nodes = cfg.trace.num_nodes;

                let mut eng = ServeEngine::new(ds, 32, Machine::single_a100(), cfg)
                    .expect("valid sweep config");
                match fault {
                    "lossy" => eng.inject_faults(
                        FaultPlan::new(sw.seed ^ 0x5E17).with_fail_prob(sw.fail),
                        RetryPolicy {
                            max_retries: 2,
                            ..Default::default()
                        },
                    ),
                    "breaker" => {
                        // Degraded drill: warm every servable node, then
                        // force the breaker open so reads must come from
                        // cache under each request's own staleness budget.
                        let nodes: Vec<NodeId> = (0..num_trace_nodes as NodeId).collect();
                        eng.warm(&nodes);
                        eng.inject_faults(
                            FaultPlan::new(sw.seed ^ 0x5E17).with_fail_prob(sw.fail),
                            RetryPolicy::default(),
                        );
                        eng.trip_breaker();
                    }
                    _ => {}
                }

                let report = eng.run(&trace).expect("sweep run serves something");
                let label = format!("load={load}x cap={cache} {fault}");
                let (serve_doc, trace_doc) = if sw.render_exports {
                    (
                        serve_jsonl(&label, &report, &eng.obs),
                        serve_trace_jsonl(&label, eng.request_tracer(), eng.alerts()),
                    )
                } else {
                    (String::new(), String::new())
                };
                let cell = ServeCell {
                    serve_jsonl: serve_doc,
                    trace_jsonl: trace_doc,
                    label,
                    report,
                };
                on_cell(&cell);
                cells.push(cell);
            }
        }
    }
    cells
}

/// Knobs of the policy-frontier sweep (`exp_ext_policy_frontier` defaults).
#[derive(Clone, Debug)]
pub struct PolicySweepConfig {
    /// Master seed.
    pub seed: u64,
    /// Dataset scale factor over the per-dataset base scales.
    pub scale: f64,
    /// Training epochs per cell.
    pub epochs: usize,
    /// Staleness bound (iterations).
    pub t_stale: u32,
    /// Gradient-norm admission percentile.
    pub p: f32,
    /// Restrict the sweep to one policy (`--policy`).
    pub only: Option<PolicyKind>,
}

impl Default for PolicySweepConfig {
    fn default() -> Self {
        PolicySweepConfig {
            seed: 42,
            scale: 1.0,
            epochs: 10,
            t_stale: 30,
            p: 0.9,
            only: None,
        }
    }
}

/// The frontier sweep: baseline plus the three literature policies.
pub const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Gradient,
    PolicyKind::StalenessWeighted,
    PolicyKind::Predictive,
    PolicyKind::CoarseRefresh,
];

/// Fig 10 datasets at frontier scale: `(label, spec)` with per-dataset
/// base scales chosen so each graph lands near ~5k nodes at `--scale 1`,
/// and feature dims capped so the sweep stays minutes-fast.
pub fn policy_datasets(scale: f64) -> Vec<(&'static str, DatasetSpec)> {
    vec![
        ("papers100m", papers100m_spec(5.0e-5 * scale).with_dim(32)),
        ("mag240m", mag240m_spec(2.0e-5 * scale).with_dim(32)),
        ("twitter", twitter_spec(1.2e-4 * scale).with_dim(32)),
        ("friendster", friendster_spec(8.0e-5 * scale).with_dim(32)),
    ]
}

/// Run the dataset × policy frontier sweep. `on_row` fires after each
/// cell (the binary prints its table incrementally from it).
pub fn policy_sweep(
    sw: &PolicySweepConfig,
    mut on_row: impl FnMut(&PolicyFrontierRow),
) -> Vec<PolicyFrontierRow> {
    let sweep: Vec<PolicyKind> = match sw.only {
        Some(kind) => vec![kind],
        None => POLICIES.to_vec(),
    };
    let mut rows = Vec::new();
    for (label, spec) in policy_datasets(sw.scale) {
        let ds = Dataset::materialize(spec, sw.seed);
        for &kind in &sweep {
            let cfg = FreshGnnConfig {
                p_grad: sw.p,
                t_stale: sw.t_stale,
                fanouts: vec![4, 4],
                batch_size: 32,
                policy: kind,
                ..Default::default()
            };
            let mut t = Trainer::new(&ds, Arch::Sage, 32, Machine::single_a100(), cfg, sw.seed);
            let mut opt = Adam::new(0.003);
            for _ in 0..sw.epochs {
                t.train_epoch(&ds, &mut opt);
            }
            let eval = &ds.test_nodes[..ds.test_nodes.len().min(500)];
            let acc = t.evaluate(&ds, eval, 256);
            let stats = t.cache.stats();
            let r = PolicyFrontierRow {
                policy: kind.name().to_string(),
                dataset: label.to_string(),
                accuracy: acc,
                h2d_bytes: t.counters.host_to_gpu_bytes,
                io_saving: t.counters.io_saving(),
                hit_rate: stats.hit_rate(),
                scheduled_refreshes: stats.scheduled_refreshes,
                predicted_reads: stats.predicted_reads,
                weighted_reads: stats.weighted_reads,
            };
            on_row(&r);
            rows.push(r);
        }
    }
    rows
}

/// Knobs of the training worker-scaling sweep (`exp_train_scaling`
/// defaults). The sweep runs [`Trainer::train_epoch_async`] — the
/// work-stealing runtime under the async sampler — over the fig 10
/// datasets at each worker count, proving the gated metrics are
/// worker-count invariant while wall time shrinks.
#[derive(Clone, Debug)]
pub struct TrainSweepConfig {
    /// Master seed (dataset materialization, model init, batch shuffles).
    pub seed: u64,
    /// Dataset scale factor over the per-dataset base scales.
    pub scale: f64,
    /// Training epochs per cell.
    pub epochs: usize,
    /// Runtime worker counts to sweep.
    pub workers: Vec<usize>,
    /// Sampler prefetch queue capacity.
    pub queue_capacity: usize,
}

impl Default for TrainSweepConfig {
    fn default() -> Self {
        TrainSweepConfig {
            seed: 42,
            scale: 1.0,
            epochs: 2,
            workers: vec![1, 2, 4, 8],
            queue_capacity: 8,
        }
    }
}

/// Run the dataset × worker-count training sweep. `on_row` fires after
/// each cell (the binary prints its table incrementally from it).
pub fn train_sweep(
    sw: &TrainSweepConfig,
    mut on_row: impl FnMut(&TrainScalingRow),
) -> Vec<TrainScalingRow> {
    let mut rows = Vec::new();
    for (label, spec) in policy_datasets(sw.scale) {
        let ds = Dataset::materialize(spec, sw.seed);
        for &workers in &sw.workers {
            let cfg = FreshGnnConfig {
                fanouts: vec![4, 4],
                batch_size: 32,
                ..Default::default()
            };
            let mut t = Trainer::new(&ds, Arch::Sage, 32, Machine::single_a100(), cfg, sw.seed);
            let mut opt = Adam::new(0.003);
            let start = std::time::Instant::now();
            let mut mean_loss = 0.0;
            for _ in 0..sw.epochs {
                let stats = t
                    .train_epoch_async(&ds, &mut opt, workers, sw.queue_capacity)
                    .expect("fault-free sweep epoch");
                mean_loss = stats.mean_loss;
            }
            let wall_seconds = start.elapsed().as_secs_f64();
            let c = &t.counters;
            let r = TrainScalingRow {
                dataset: label.to_string(),
                workers,
                mean_loss,
                h2d_bytes: c.host_to_gpu_bytes,
                // Exact GPU-stream time only: the measured sample/prune
                // wall components would vary with the schedule.
                sim_seconds: c.transfer_seconds + c.retry_seconds + c.compute_seconds,
                wall_seconds,
                steals: t.obs.metrics.counter("sampler.steals").unwrap_or(0),
            };
            on_row(&r);
            rows.push(r);
        }
    }
    rows
}

/// Knobs of the multi-host cluster sweep (`exp_cluster` defaults). Each
/// cell partitions a fig 10 dataset across `hosts` failure domains and
/// trains it through [`ClusterTrainer`] under one of the named fault
/// `schedules`; the gated columns are exact simulated quantities, and the
/// crash schedule must reproduce the fault-free committed metrics bit for
/// bit (the shard-recovery contract).
#[derive(Clone, Debug)]
pub struct ClusterSweepConfig {
    /// Master seed (dataset materialization, per-host trainer seeds).
    pub seed: u64,
    /// Dataset scale factor over the per-dataset base scales.
    pub scale: f64,
    /// Training epochs per cell.
    pub epochs: u32,
    /// Host counts (= shards = failure domains) to sweep.
    pub hosts: Vec<usize>,
    /// Fault-schedule labels to sweep (see [`cluster_fault_plan`]).
    pub schedules: Vec<String>,
}

impl Default for ClusterSweepConfig {
    fn default() -> Self {
        ClusterSweepConfig {
            seed: 42,
            scale: 1.0,
            epochs: 2,
            hosts: vec![1, 2, 4],
            schedules: vec!["none".to_string(), "crash".to_string()],
        }
    }
}

/// The named fault schedules of the cluster sweep. `"none"` is fault-free;
/// `"crash"` kills the last host at round 2 and restarts it at round 6 —
/// early enough that every epoch of the sweep exercises detection,
/// degraded peer serving and checkpoint recovery.
pub fn cluster_fault_plan(schedule: &str, hosts: usize) -> ClusterFaultPlan {
    match schedule {
        "none" => ClusterFaultPlan::none(),
        "crash" => {
            let victim = hosts - 1;
            ClusterFaultPlan::none()
                .with_crash(2, victim)
                .with_restart(6, victim)
        }
        other => panic!("unknown cluster fault schedule '{other}' (expected none|crash)"),
    }
}

/// Run the dataset × host-count × fault-schedule cluster sweep. `on_row`
/// fires after each cell (the binary prints its table incrementally from
/// it).
pub fn cluster_sweep(
    sw: &ClusterSweepConfig,
    mut on_row: impl FnMut(&ClusterBenchRow),
) -> Vec<ClusterBenchRow> {
    let mut rows = Vec::new();
    for (label, spec) in policy_datasets(sw.scale) {
        let ds = Dataset::materialize(spec, sw.seed);
        for &hosts in &sw.hosts {
            for schedule in &sw.schedules {
                let cfg = ClusterConfig {
                    num_hosts: hosts,
                    train: FreshGnnConfig {
                        fanouts: vec![4, 4],
                        batch_size: 32,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let mut ct = ClusterTrainer::new(&ds, cfg, sw.seed).expect("valid sweep cluster");
                ct.inject_cluster_faults(cluster_fault_plan(schedule, hosts))
                    .expect("valid sweep fault schedule");
                let start = std::time::Instant::now();
                let report = ct.train(sw.epochs).expect("fault schedules recover");
                let r = ClusterBenchRow {
                    dataset: label.to_string(),
                    hosts,
                    schedule: schedule.clone(),
                    mean_loss: *report
                        .epoch_losses
                        .last()
                        .expect("sweep trains at least one epoch"),
                    h2d_bytes: report.h2d_bytes,
                    nic_bytes: report.comms.nic_bytes,
                    sim_seconds: report.sim_seconds,
                    degraded_reads: report.ledger.degraded_reads,
                    max_staleness: report.ledger.max_staleness,
                    wall_seconds: start.elapsed().as_secs_f64(),
                };
                on_row(&r);
                rows.push(r);
            }
        }
    }
    rows
}

/// One metric comparison inside the regression gate.
#[derive(Clone, Debug)]
pub struct MetricCheck {
    /// Which sweep row (serve-cell label or `dataset/policy`).
    pub label: String,
    /// Metric name as it appears in the baseline document.
    pub metric: &'static str,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Allowed relative drift before the gate trips.
    pub tolerance: f64,
    /// Whether a *higher* fresh value is the regression direction
    /// (latency, traffic) — improvements never trip the gate.
    pub higher_is_worse: bool,
}

impl MetricCheck {
    /// Signed relative drift of fresh vs baseline (0 when both are 0).
    pub fn drift(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.fresh == 0.0 {
                0.0
            } else {
                f64::INFINITY * self.fresh.signum()
            }
        } else {
            (self.fresh - self.baseline) / self.baseline.abs()
        }
    }

    /// Whether this metric regressed past its tolerance.
    pub fn regressed(&self) -> bool {
        let d = self.drift();
        let bad = if self.higher_is_worse { d } else { -d };
        bad > self.tolerance
    }

    /// Whether fresh reproduces the baseline bit for bit.
    pub fn bit_identical(&self) -> bool {
        self.fresh.to_bits() == self.baseline.to_bits()
    }
}

/// Default relative tolerance: exact quantities should match to the bit,
/// but the band must sit clearly under the 10% injected-regression floor
/// the CI gate proves against.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// Compare a fresh serving sweep against baseline `(label, metric → value)`
/// rows parsed from `BENCH_serve.json`. Produces one [`MetricCheck`] per
/// gated metric per matched label; labels present in only one side are
/// reported as a check against NaN (always a regression).
pub fn compare_serve(
    baseline: &[(String, Vec<(&'static str, f64)>)],
    fresh: &[ServeCell],
    tolerance: f64,
) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    for (label, base_metrics) in baseline {
        let Some(cell) = fresh.iter().find(|c| &c.label == label) else {
            checks.push(MetricCheck {
                label: label.clone(),
                metric: "present",
                baseline: 1.0,
                fresh: 0.0,
                tolerance,
                higher_is_worse: false,
            });
            continue;
        };
        let r = &cell.report;
        for &(metric, base) in base_metrics {
            let (fresh_v, higher_is_worse) = match metric {
                "p50Ms" => (r.p50_ms, true),
                "p95Ms" => (r.p95_ms, true),
                "p99Ms" => (r.p99_ms, true),
                "throughputRps" => (r.throughput_rps, false),
                "shedFraction" => (r.shed_fraction, true),
                "served" => (r.served as f64, false),
                "slaViolations" => (r.sla_violations as f64, true),
                _ => continue,
            };
            checks.push(MetricCheck {
                label: label.clone(),
                metric,
                baseline: base,
                fresh: fresh_v,
                tolerance,
                higher_is_worse,
            });
        }
    }
    checks
}

/// Compare a fresh policy-frontier sweep against baseline rows parsed
/// from `BENCH_policy.json`, keyed by `dataset/policy`.
pub fn compare_policy(
    baseline: &[(String, Vec<(&'static str, f64)>)],
    fresh: &[PolicyFrontierRow],
    tolerance: f64,
) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    for (key, base_metrics) in baseline {
        let found = fresh
            .iter()
            .find(|r| format!("{}/{}", r.dataset, r.policy) == *key);
        let Some(r) = found else {
            checks.push(MetricCheck {
                label: key.clone(),
                metric: "present",
                baseline: 1.0,
                fresh: 0.0,
                tolerance,
                higher_is_worse: false,
            });
            continue;
        };
        for &(metric, base) in base_metrics {
            let (fresh_v, higher_is_worse) = match metric {
                "accuracy" => (r.accuracy, false),
                "h2dBytes" => (r.h2d_bytes as f64, true),
                "ioSaving" => (r.io_saving, false),
                "hitRate" => (r.hit_rate, false),
                _ => continue,
            };
            checks.push(MetricCheck {
                label: key.clone(),
                metric,
                baseline: base,
                fresh: fresh_v,
                tolerance,
                higher_is_worse,
            });
        }
    }
    checks
}

/// Compare a fresh training worker-scaling sweep against baseline rows
/// parsed from `BENCH_train.json`, keyed by `dataset/w{N}`. Only the
/// exact metrics are gated (`meanLoss`, `h2dBytes`, `simSeconds`);
/// `wallSeconds` and `steals` are measured schedule artifacts and never
/// enter the gate.
pub fn compare_train(
    baseline: &[(String, Vec<(&'static str, f64)>)],
    fresh: &[TrainScalingRow],
    tolerance: f64,
) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    for (key, base_metrics) in baseline {
        let found = fresh
            .iter()
            .find(|r| format!("{}/w{}", r.dataset, r.workers) == *key);
        let Some(r) = found else {
            checks.push(MetricCheck {
                label: key.clone(),
                metric: "present",
                baseline: 1.0,
                fresh: 0.0,
                tolerance,
                higher_is_worse: false,
            });
            continue;
        };
        for &(metric, base) in base_metrics {
            let (fresh_v, higher_is_worse) = match metric {
                "meanLoss" => (r.mean_loss, true),
                "h2dBytes" => (r.h2d_bytes as f64, true),
                "simSeconds" => (r.sim_seconds, true),
                _ => continue,
            };
            checks.push(MetricCheck {
                label: key.clone(),
                metric,
                baseline: base,
                fresh: fresh_v,
                tolerance,
                higher_is_worse,
            });
        }
    }
    checks
}

/// Compare a fresh cluster sweep against baseline rows parsed from
/// `BENCH_cluster.json`, keyed by `dataset/h{N}/{schedule}`. Every gated
/// metric is an exact simulated quantity and every one regresses upward:
/// higher loss, more traffic, more simulated time, more degraded reads or
/// worse staleness all mean the cluster got less efficient or less
/// healthy under the same schedule. `wallSeconds` is measured and never
/// gated.
pub fn compare_cluster(
    baseline: &[(String, Vec<(&'static str, f64)>)],
    fresh: &[ClusterBenchRow],
    tolerance: f64,
) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    for (key, base_metrics) in baseline {
        let found = fresh
            .iter()
            .find(|r| format!("{}/h{}/{}", r.dataset, r.hosts, r.schedule) == *key);
        let Some(r) = found else {
            checks.push(MetricCheck {
                label: key.clone(),
                metric: "present",
                baseline: 1.0,
                fresh: 0.0,
                tolerance,
                higher_is_worse: false,
            });
            continue;
        };
        for &(metric, base) in base_metrics {
            let fresh_v = match metric {
                "meanLoss" => r.mean_loss,
                "h2dBytes" => r.h2d_bytes as f64,
                "nicBytes" => r.nic_bytes as f64,
                "simSeconds" => r.sim_seconds,
                "degradedReads" => r.degraded_reads as f64,
                "maxStaleness" => r.max_staleness as f64,
                _ => continue,
            };
            checks.push(MetricCheck {
                label: key.clone(),
                metric,
                baseline: base,
                fresh: fresh_v,
                tolerance,
                higher_is_worse: true,
            });
        }
    }
    checks
}

/// Fault-invariance checks over a fresh cluster sweep: for each (dataset,
/// host count), the committed training quantities of every fault schedule
/// must reproduce the `"none"` schedule bit for bit — deterministic shard
/// recovery replays crashed hosts back onto the fault-free trajectory.
/// Zero tolerance: one ULP of loss or one byte of H2D drift trips the
/// gate. NIC traffic and staleness legitimately differ (that is what the
/// faults cost), so only loss and H2D bytes are pinned.
pub fn fault_invariance_checks(fresh: &[ClusterBenchRow]) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    for reference in fresh.iter().filter(|r| r.schedule == "none") {
        for r in fresh.iter().filter(|r| {
            r.dataset == reference.dataset && r.hosts == reference.hosts && r.schedule != "none"
        }) {
            for (metric, base, fresh_v) in [
                ("meanLoss", reference.mean_loss, r.mean_loss),
                ("h2dBytes", reference.h2d_bytes as f64, r.h2d_bytes as f64),
            ] {
                checks.push(MetricCheck {
                    label: format!("{}/h{}/none={}", r.dataset, r.hosts, r.schedule),
                    metric,
                    baseline: base.min(fresh_v),
                    fresh: base.max(fresh_v),
                    tolerance: 0.0,
                    higher_is_worse: true,
                });
            }
        }
    }
    checks
}

/// Cross-worker invariance checks over a fresh training sweep: for each
/// dataset, every gated metric at every worker count must reproduce the
/// lowest-worker-count row bit for bit (the runtime's determinism
/// contract). Each check stores the two values min/max-ordered with a
/// zero tolerance, so *any* difference — either direction, even one ULP —
/// trips [`MetricCheck::regressed`], and equality shows as `bit=`.
pub fn worker_invariance_checks(fresh: &[TrainScalingRow]) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    let mut datasets: Vec<&str> = fresh.iter().map(|r| r.dataset.as_str()).collect();
    datasets.dedup();
    for dataset in datasets {
        let mut of_ds: Vec<&TrainScalingRow> =
            fresh.iter().filter(|r| r.dataset == dataset).collect();
        of_ds.sort_by_key(|r| r.workers);
        let Some((reference, rest)) = of_ds.split_first() else {
            continue;
        };
        for r in rest {
            for (metric, base, fresh_v) in [
                ("meanLoss", reference.mean_loss, r.mean_loss),
                ("h2dBytes", reference.h2d_bytes as f64, r.h2d_bytes as f64),
                ("simSeconds", reference.sim_seconds, r.sim_seconds),
            ] {
                checks.push(MetricCheck {
                    label: format!("{}/w{}=w{}", dataset, reference.workers, r.workers),
                    metric,
                    baseline: base.min(fresh_v),
                    fresh: base.max(fresh_v),
                    tolerance: 0.0,
                    higher_is_worse: true,
                });
            }
        }
    }
    checks
}

/// Wall-time monotonicity checks over a fresh training sweep: for each
/// dataset, each step up in worker count (up to `max_workers`, the
/// machine's usable parallelism) must not make the measured cell wall time
/// worse than `slack` over the previous count. Callers should skip this
/// entirely on machines without real parallelism — wall time is a
/// measured quantity and only the multi-core claim is meaningful.
pub fn wall_monotonicity_checks(
    fresh: &[TrainScalingRow],
    max_workers: usize,
    slack: f64,
) -> Vec<MetricCheck> {
    let mut checks = Vec::new();
    let mut datasets: Vec<&str> = fresh.iter().map(|r| r.dataset.as_str()).collect();
    datasets.dedup();
    for dataset in datasets {
        let mut of_ds: Vec<&TrainScalingRow> = fresh
            .iter()
            .filter(|r| r.dataset == dataset && r.workers <= max_workers)
            .collect();
        of_ds.sort_by_key(|r| r.workers);
        for pair in of_ds.windows(2) {
            checks.push(MetricCheck {
                label: format!("{}/w{}->w{}", dataset, pair[0].workers, pair[1].workers),
                metric: "wallSeconds",
                baseline: pair[0].wall_seconds,
                fresh: pair[1].wall_seconds,
                tolerance: slack,
                higher_is_worse: true,
            });
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(baseline: f64, fresh: f64, higher_is_worse: bool) -> MetricCheck {
        MetricCheck {
            label: "cell".into(),
            metric: "p99Ms",
            baseline,
            fresh,
            tolerance: DEFAULT_TOLERANCE,
            higher_is_worse,
        }
    }

    #[test]
    fn regression_direction_respects_metric_polarity() {
        // +10% latency: regression. −10% latency: improvement.
        assert!(check(2.0, 2.2, true).regressed());
        assert!(!check(2.0, 1.8, true).regressed());
        // +10% throughput: improvement. −10% throughput: regression.
        assert!(!check(4000.0, 4400.0, false).regressed());
        assert!(check(4000.0, 3600.0, false).regressed());
        // Inside the band: no trip either way.
        assert!(!check(2.0, 2.04, true).regressed());
        assert!(!check(2.0, 1.96, true).regressed());
    }

    #[test]
    fn zero_baselines_trip_only_on_nonzero_fresh_regressions() {
        assert!(!check(0.0, 0.0, true).regressed());
        assert!(check(0.0, 1.0, true).regressed(), "0 → 1 violations trips");
        assert!(!check(0.0, 1.0, false).regressed(), "improvement direction");
    }

    #[test]
    fn bit_identity_is_exact() {
        assert!(check(2.0816, 2.0816, true).bit_identical());
        assert!(!check(2.0816, 2.0816 + f64::EPSILON * 4.0, true).bit_identical());
    }

    #[test]
    fn compare_serve_flags_missing_labels() {
        let baseline = vec![("load=9x cap=1 none".to_string(), vec![("p99Ms", 2.0)])];
        let checks = compare_serve(&baseline, &[], DEFAULT_TOLERANCE);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].metric, "present");
        assert!(checks[0].regressed());
    }

    fn train_row(dataset: &str, workers: usize) -> TrainScalingRow {
        TrainScalingRow {
            dataset: dataset.into(),
            workers,
            mean_loss: 1.5,
            h2d_bytes: 4096,
            sim_seconds: 0.25,
            wall_seconds: 1.0 / workers as f64,
            steals: workers as u64,
        }
    }

    #[test]
    fn compare_train_keys_rows_by_dataset_and_workers() {
        let baseline = vec![
            (
                "papers100m/w2".to_string(),
                vec![
                    ("meanLoss", 1.5),
                    ("h2dBytes", 4096.0),
                    ("simSeconds", 0.25),
                ],
            ),
            ("papers100m/w16".to_string(), vec![("meanLoss", 1.5)]),
        ];
        let fresh = [train_row("papers100m", 1), train_row("papers100m", 2)];
        let checks = compare_train(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(checks.len(), 4);
        assert!(checks[..3].iter().all(|c| c.bit_identical()));
        assert_eq!(checks[3].metric, "present");
        assert!(checks[3].regressed(), "missing worker count trips the gate");
    }

    #[test]
    fn worker_invariance_trips_on_one_ulp_either_direction() {
        let mut up = [train_row("twitter", 1), train_row("twitter", 4)];
        assert!(worker_invariance_checks(&up)
            .iter()
            .all(|c| c.bit_identical() && !c.regressed()));
        up[1].mean_loss = f64::from_bits(up[1].mean_loss.to_bits() + 1);
        assert!(worker_invariance_checks(&up).iter().any(|c| c.regressed()));
        let mut down = [train_row("twitter", 1), train_row("twitter", 4)];
        down[1].sim_seconds = f64::from_bits(down[1].sim_seconds.to_bits() - 1);
        assert!(
            worker_invariance_checks(&down)
                .iter()
                .any(|c| c.regressed()),
            "a *smaller* value is still an invariance break"
        );
    }

    fn cluster_row(dataset: &str, hosts: usize, schedule: &str) -> ClusterBenchRow {
        ClusterBenchRow {
            dataset: dataset.into(),
            hosts,
            schedule: schedule.into(),
            mean_loss: 1.25,
            h2d_bytes: 8192,
            nic_bytes: if schedule == "none" { 512 } else { 1024 },
            sim_seconds: 0.5,
            degraded_reads: if schedule == "none" { 0 } else { 7 },
            max_staleness: if schedule == "none" { 0 } else { 3 },
            wall_seconds: 0.25,
        }
    }

    #[test]
    fn compare_cluster_keys_rows_by_dataset_hosts_and_schedule() {
        let baseline = vec![
            (
                "papers100m/h2/crash".to_string(),
                vec![
                    ("meanLoss", 1.25),
                    ("nicBytes", 1024.0),
                    ("degradedReads", 7.0),
                    ("maxStaleness", 3.0),
                ],
            ),
            ("papers100m/h8/none".to_string(), vec![("meanLoss", 1.25)]),
        ];
        let fresh = [
            cluster_row("papers100m", 2, "none"),
            cluster_row("papers100m", 2, "crash"),
        ];
        let checks = compare_cluster(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(checks.len(), 5);
        assert!(checks[..4].iter().all(|c| c.bit_identical()));
        assert_eq!(checks[4].metric, "present");
        assert!(checks[4].regressed(), "missing host count trips the gate");
    }

    #[test]
    fn compare_cluster_trips_on_staleness_growth_only_upward() {
        let baseline = vec![(
            "twitter/h4/crash".to_string(),
            vec![("maxStaleness", 3.0), ("nicBytes", 1024.0)],
        )];
        let mut fresh = [cluster_row("twitter", 4, "crash")];
        fresh[0].max_staleness = 4; // +33%: budget erosion, must trip
        fresh[0].nic_bytes = 512; // −50%: improvement, must not trip
        let checks = compare_cluster(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert!(checks
            .iter()
            .any(|c| c.metric == "maxStaleness" && c.regressed()));
        assert!(checks
            .iter()
            .all(|c| c.metric != "nicBytes" || !c.regressed()));
    }

    #[test]
    fn fault_invariance_pins_crash_to_the_fault_free_row() {
        let mut rows = [
            cluster_row("mag240m", 2, "none"),
            cluster_row("mag240m", 2, "crash"),
            cluster_row("mag240m", 4, "none"),
        ];
        let checks = fault_invariance_checks(&rows);
        assert_eq!(checks.len(), 2, "only the matching (dataset, hosts) pair");
        assert!(checks.iter().all(|c| c.bit_identical() && !c.regressed()));
        rows[1].mean_loss = f64::from_bits(rows[1].mean_loss.to_bits() - 1);
        assert!(
            fault_invariance_checks(&rows).iter().any(|c| c.regressed()),
            "one ULP of loss drift in either direction breaks recovery invariance"
        );
    }

    #[test]
    fn wall_monotonicity_respects_the_core_cap_and_slack() {
        let rows = [
            train_row("mag240m", 1),
            train_row("mag240m", 2),
            train_row("mag240m", 4),
            train_row("mag240m", 8),
        ];
        // wall = 1/workers: strictly improving, nothing trips.
        let checks = wall_monotonicity_checks(&rows, 4, 0.10);
        assert_eq!(checks.len(), 2, "w8 exceeds the 4-core cap");
        assert!(checks.iter().all(|c| !c.regressed()));
        // A 2x wall blow-up at w4 trips even with slack.
        let mut bad = rows.clone();
        bad[2].wall_seconds = bad[1].wall_seconds * 2.0;
        assert!(wall_monotonicity_checks(&bad, 4, 0.10)
            .iter()
            .any(|c| c.regressed()));
    }
}
