//! ClusterGCN (Chiang et al., KDD'19).
//!
//! The graph is partitioned once; each training step merges `q` random
//! partitions, takes the *induced* subgraph (cross-partition edges are
//! dropped — the approximation responsible for its accuracy loss on large
//! sparse-label graphs, Table 3) and runs full-graph-style training on it:
//! every node of the subgraph is present at every layer.

use crate::baselines::sampling::full_subgraph_minibatch;
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::obs::Obs;
use crate::pipeline::{BatchOutput, Engine, EpochStats, EvalHarness, PipelineCtx, StallPolicy};
use fgnn_graph::partition::{induced_subgraph, partition_ldg};
use fgnn_graph::{Dataset, NodeId};
use fgnn_memsim::fault::{FaultPlan, FaultState, RetryPolicy};
use fgnn_memsim::presets::Machine;
use fgnn_memsim::stage::{StageKind, StageTimings};
use fgnn_memsim::topology::Node;
use fgnn_memsim::TrafficCounters;
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::{Arch, Model};
use fgnn_nn::Optimizer;
use fgnn_tensor::{Matrix, Rng};
use std::collections::HashSet;

/// ClusterGCN trainer.
pub struct ClusterGcnTrainer {
    /// The GNN under training.
    pub model: Model,
    clusters: Vec<Vec<NodeId>>,
    /// Clusters merged per batch (the paper's `q`).
    pub clusters_per_batch: usize,
    /// Traffic ledger.
    pub counters: TrafficCounters,
    /// Cumulative per-stage attribution of `counters` (not checkpointed).
    pub timings: StageTimings,
    /// Observability state: sim-clock spans plus metrics, fed by the
    /// pipeline engine (not checkpointed).
    pub obs: Obs,
    machine: Machine,
    dims: Vec<usize>,
    train_set: HashSet<NodeId>,
    epoch: u32,
    rng: Rng,
    faults: FaultState,
}

impl ClusterGcnTrainer {
    /// Partition `ds` into `num_parts` and build the trainer.
    // The parameter list mirrors the baseline's natural knobs; a builder
    // would add noise for a single call site.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ds: &Dataset,
        arch: Arch,
        hidden: usize,
        num_layers: usize,
        num_parts: usize,
        clusters_per_batch: usize,
        machine: Machine,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::new(seed);
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(ds.spec.feature_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.spec.num_classes);
        let model = Model::new(arch, &dims, &mut rng);
        let parts = partition_ldg(&ds.graph, num_parts, &mut rng);
        let clusters = parts
            .clusters()
            .into_iter()
            .filter(|c| !c.is_empty())
            .collect();
        ClusterGcnTrainer {
            model,
            clusters,
            clusters_per_batch: clusters_per_batch.max(1),
            counters: TrafficCounters::new(),
            timings: StageTimings::new(),
            obs: Obs::new(),
            machine,
            dims,
            train_set: ds.train_nodes.iter().copied().collect(),
            epoch: 0,
            rng,
            faults: FaultState::none(),
        }
    }

    /// Inject interconnect faults (same contract as
    /// [`crate::Trainer::inject_faults`]).
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        self.faults.inject(plan, policy);
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u32 {
        self.epoch
    }

    /// Capture the full trainable state. ClusterGCN keeps no history or
    /// cache, so a checkpoint is lossless.
    pub fn checkpoint(&mut self, opt: &dyn Optimizer) -> Checkpoint {
        Checkpoint {
            arch: self.model.arch,
            dims: self.dims.clone(),
            params: self.model.export_parameters(),
            optimizer: opt.export_state(),
            rng_state: self.rng.state(),
            epoch: self.epoch,
            iter: 0,
            counters: self.counters.clone(),
            static_resident: Vec::new(),
            cache: None,
            cache_degraded: false,
        }
    }

    /// Restore from a checkpoint. Returns `Ok(false)`: nothing degrades —
    /// the trainer has no cross-epoch caches.
    pub fn restore(
        &mut self,
        ckpt: &Checkpoint,
        opt: &mut dyn Optimizer,
    ) -> Result<bool, CheckpointError> {
        if ckpt.arch != self.model.arch {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint arch {} vs trainer {}",
                ckpt.arch, self.model.arch
            )));
        }
        if ckpt.dims != self.dims {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint dims {:?} vs trainer {:?}",
                ckpt.dims, self.dims
            )));
        }
        if ckpt.params.len() != self.model.num_parameters() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint has {} parameters, model has {}",
                ckpt.params.len(),
                self.model.num_parameters()
            )));
        }
        self.model.import_parameters(&ckpt.params);
        opt.import_state(ckpt.optimizer.clone());
        self.rng = Rng::from_state(ckpt.rng_state);
        self.epoch = ckpt.epoch;
        self.counters = ckpt.counters.clone();
        Ok(false)
    }

    /// Train one epoch through the pipeline engine: shuffle clusters, merge
    /// groups of `q`, train each. The induced-subgraph construction is
    /// ClusterGCN's `Sample` stage; it has no `Prune`/`CacheUpdate`.
    pub fn train_epoch(&mut self, ds: &Dataset, opt: &mut dyn Optimizer) -> EpochStats {
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        let mut shuffle_rng = self.rng.fork();
        shuffle_rng.shuffle(&mut order);
        let groups: Vec<Vec<NodeId>> = order
            .chunks(self.clusters_per_batch)
            .map(|group| {
                let mut nodes: Vec<NodeId> = group
                    .iter()
                    .flat_map(|&ci| self.clusters[ci].iter().copied())
                    .collect();
                nodes.sort_unstable();
                nodes
            })
            .collect();

        let topo = self.machine.topology.clone();
        let mut stages = ClusterGcnStages {
            model: &mut self.model,
            dims: &self.dims,
            train_set: &self.train_set,
            machine: &self.machine,
            ds,
        };
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            groups.into_iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, nodes| stages.train_subgraph(ctx, counters, &nodes, opt),
        );
        let stats = result.unwrap();
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats
    }

    /// Shared accuracy protocol (plain neighbor sampling).
    pub fn evaluate(&mut self, ds: &Dataset, nodes: &[NodeId], fanouts: &[usize]) -> f64 {
        let mut rng = self.rng.fork();
        EvalHarness::accuracy(&self.model, ds, nodes, fanouts, 256, &mut rng)
    }
}

/// Disjoint borrows of [`ClusterGcnTrainer`] fields for the per-group step.
struct ClusterGcnStages<'s, 'd> {
    model: &'s mut Model,
    dims: &'s [usize],
    train_set: &'s HashSet<NodeId>,
    machine: &'s Machine,
    ds: &'d Dataset,
}

impl<'t> ClusterGcnStages<'_, '_> {
    fn train_subgraph(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        nodes: &[NodeId],
        opt: &mut dyn Optimizer,
    ) -> Option<BatchOutput> {
        let ds = self.ds;
        let train_local: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, g)| self.train_set.contains(g))
            .map(|(i, _)| i)
            .collect();
        if train_local.is_empty() {
            return None;
        }

        let mb = ctx.stage(StageKind::Sample, counters, |_engine, _c| {
            let (sub, map) = induced_subgraph(&ds.graph, nodes);
            full_subgraph_minibatch(&sub, &map, self.dims.len() - 1)
        });

        // Load the subgraph's features (every node, every epoch — the
        // ClusterGCN traffic profile).
        let h0 = ctx.stage(StageKind::Load, counters, |engine, c| {
            let ids: Vec<usize> = nodes.iter().map(|&g| g as usize).collect();
            let h0 = ds.features.gather_rows(&ids);
            engine.one_sided_read(
                Node::Host,
                Node::Gpu(0),
                (nodes.len() * ds.spec.feature_row_bytes()) as u64,
                c,
            );
            h0
        });

        let trace = ctx.stage(StageKind::Forward, counters, |_engine, _c| {
            self.model.forward(&mb, h0)
        });

        let loss = ctx.stage(StageKind::Backward, counters, |_engine, _c| {
            let logits = trace.h.last().unwrap();
            let sel_logits = logits.gather_rows(&train_local);
            let labels: Vec<u16> = train_local
                .iter()
                .map(|&i| ds.labels[nodes[i] as usize])
                .collect();
            let (loss, d_sel) = softmax_cross_entropy(&sel_logits, &labels);
            let mut d_top = Matrix::zeros(nodes.len(), self.dims[self.dims.len() - 1]);
            d_top.scatter_add_rows(&train_local, &d_sel);

            self.model.zero_grad();
            self.model.backward(&mb, &trace, d_top);
            loss
        });

        ctx.stage(StageKind::OptimStep, counters, |_engine, _c| {
            let mut params = self.model.params_mut();
            opt.step(&mut params);
        });

        let edges = mb.total_edges();
        let flops = 3.0
            * (fgnn_memsim::presets::aggregation_flops(edges, self.dims[0])
                + (0..self.dims.len() - 1)
                    .map(|l| {
                        fgnn_memsim::presets::dense_flops(
                            nodes.len(),
                            if self.model.arch == Arch::Sage {
                                2 * self.dims[l]
                            } else {
                                self.dims[l]
                            },
                            self.dims[l + 1],
                        )
                    })
                    .sum::<f64>());
        ctx.stage(StageKind::Backward, counters, |_engine, c| {
            c.compute_seconds += self.machine.gpu.compute_seconds(flops);
        });
        Some(BatchOutput::loss_only(loss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::datasets::arxiv_spec;
    use fgnn_nn::Adam;

    fn tiny() -> Dataset {
        Dataset::materialize(arxiv_spec(0.0).with_dim(12), 9)
    }

    #[test]
    fn cluster_gcn_trains() {
        let ds = tiny();
        let mut t = ClusterGcnTrainer::new(&ds, Arch::Gcn, 16, 2, 8, 2, Machine::single_a100(), 1);
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt).mean_loss;
        let mut last = first;
        for _ in 0..8 {
            last = t.train_epoch(&ds, &mut opt).mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
        assert!(t.counters.host_to_gpu_bytes > 0);
    }

    #[test]
    fn subgraph_minibatch_is_valid_and_square() {
        let ds = tiny();
        let nodes: Vec<NodeId> = (0..20).collect();
        let (sub, map) = induced_subgraph(&ds.graph, &nodes);
        let mb = full_subgraph_minibatch(&sub, &map, 3);
        mb.validate().unwrap();
        assert_eq!(mb.blocks.len(), 3);
        assert_eq!(mb.blocks[0].num_dst(), mb.blocks[0].num_src());
    }

    #[test]
    fn accuracy_above_random_after_training() {
        let ds = tiny();
        let mut t = ClusterGcnTrainer::new(&ds, Arch::Gcn, 16, 2, 6, 2, Machine::single_a100(), 2);
        let mut opt = Adam::new(0.01);
        for _ in 0..15 {
            t.train_epoch(&ds, &mut opt);
        }
        let acc = t.evaluate(&ds, &ds.test_nodes, &[4, 4]);
        assert!(acc > 0.08, "accuracy {acc}");
    }
}
