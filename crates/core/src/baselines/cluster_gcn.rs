//! ClusterGCN (Chiang et al., KDD'19).
//!
//! The graph is partitioned once; each training step merges `q` random
//! partitions, takes the *induced* subgraph (cross-partition edges are
//! dropped — the approximation responsible for its accuracy loss on large
//! sparse-label graphs, Table 3) and runs full-graph-style training on it:
//! every node of the subgraph is present at every layer.

use crate::baselines::evaluate_model;
use crate::baselines::sampling::full_subgraph_minibatch;
use fgnn_graph::partition::{induced_subgraph, partition_ldg};
use fgnn_graph::{Dataset, NodeId};
use fgnn_memsim::presets::Machine;
use fgnn_memsim::topology::Node;
use fgnn_memsim::{TrafficCounters, TransferEngine};
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::{Arch, Model};
use fgnn_nn::Optimizer;
use fgnn_tensor::{Matrix, Rng};
use std::collections::HashSet;

/// ClusterGCN trainer.
pub struct ClusterGcnTrainer {
    /// The GNN under training.
    pub model: Model,
    clusters: Vec<Vec<NodeId>>,
    /// Clusters merged per batch (the paper's `q`).
    pub clusters_per_batch: usize,
    /// Traffic ledger.
    pub counters: TrafficCounters,
    machine: Machine,
    dims: Vec<usize>,
    train_set: HashSet<NodeId>,
    rng: Rng,
}

impl ClusterGcnTrainer {
    /// Partition `ds` into `num_parts` and build the trainer.
    // The parameter list mirrors the baseline's natural knobs; a builder
    // would add noise for a single call site.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ds: &Dataset,
        arch: Arch,
        hidden: usize,
        num_layers: usize,
        num_parts: usize,
        clusters_per_batch: usize,
        machine: Machine,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::new(seed);
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(ds.spec.feature_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.spec.num_classes);
        let model = Model::new(arch, &dims, &mut rng);
        let parts = partition_ldg(&ds.graph, num_parts, &mut rng);
        let clusters = parts
            .clusters()
            .into_iter()
            .filter(|c| !c.is_empty())
            .collect();
        ClusterGcnTrainer {
            model,
            clusters,
            clusters_per_batch: clusters_per_batch.max(1),
            counters: TrafficCounters::new(),
            machine,
            dims,
            train_set: ds.train_nodes.iter().copied().collect(),
            rng,
        }
    }

    /// Train one epoch: shuffle clusters, merge groups of `q`, train each.
    pub fn train_epoch(&mut self, ds: &Dataset, opt: &mut dyn Optimizer) -> f64 {
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        let mut shuffle_rng = self.rng.fork();
        shuffle_rng.shuffle(&mut order);
        let topo = self.machine.topology.clone();
        let mut engine = TransferEngine::new(&topo);

        let mut total = 0.0;
        let mut n = 0;
        for group in order.chunks(self.clusters_per_batch) {
            let mut nodes: Vec<NodeId> = group
                .iter()
                .flat_map(|&ci| self.clusters[ci].iter().copied())
                .collect();
            nodes.sort_unstable();
            if let Some(loss) = self.train_subgraph(ds, &nodes, &mut engine, opt) {
                total += loss as f64;
                n += 1;
            }
        }
        total / n.max(1) as f64
    }

    fn train_subgraph(
        &mut self,
        ds: &Dataset,
        nodes: &[NodeId],
        engine: &mut TransferEngine<'_>,
        opt: &mut dyn Optimizer,
    ) -> Option<f32> {
        let train_local: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, g)| self.train_set.contains(g))
            .map(|(i, _)| i)
            .collect();
        if train_local.is_empty() {
            return None;
        }

        let (sub, map) = induced_subgraph(&ds.graph, nodes);
        let mb = full_subgraph_minibatch(&sub, &map, self.dims.len() - 1);

        // Load the subgraph's features (every node, every epoch — the
        // ClusterGCN traffic profile).
        let ids: Vec<usize> = nodes.iter().map(|&g| g as usize).collect();
        let h0 = ds.features.gather_rows(&ids);
        engine.one_sided_read(
            Node::Host,
            Node::Gpu(0),
            (nodes.len() * ds.spec.feature_row_bytes()) as u64,
            &mut self.counters,
        );

        let trace = self.model.forward(&mb, h0);
        let logits = trace.h.last().unwrap();
        let sel_logits = logits.gather_rows(&train_local);
        let labels: Vec<u16> = train_local
            .iter()
            .map(|&i| ds.labels[nodes[i] as usize])
            .collect();
        let (loss, d_sel) = softmax_cross_entropy(&sel_logits, &labels);
        let mut d_top = Matrix::zeros(nodes.len(), self.dims[self.dims.len() - 1]);
        d_top.scatter_add_rows(&train_local, &d_sel);

        self.model.zero_grad();
        self.model.backward(&mb, &trace, d_top);
        let mut params = self.model.params_mut();
        opt.step(&mut params);

        let edges = mb.total_edges();
        let flops = 3.0
            * (fgnn_memsim::presets::aggregation_flops(edges, self.dims[0])
                + (0..self.dims.len() - 1)
                    .map(|l| {
                        fgnn_memsim::presets::dense_flops(
                            nodes.len(),
                            if self.model.arch == Arch::Sage {
                                2 * self.dims[l]
                            } else {
                                self.dims[l]
                            },
                            self.dims[l + 1],
                        )
                    })
                    .sum::<f64>());
        self.counters.compute_seconds += self.machine.gpu.compute_seconds(flops);
        Some(loss)
    }

    /// Shared accuracy protocol (plain neighbor sampling).
    pub fn evaluate(&mut self, ds: &Dataset, nodes: &[NodeId], fanouts: &[usize]) -> f64 {
        let mut rng = self.rng.fork();
        evaluate_model(&self.model, ds, nodes, fanouts, 256, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::datasets::arxiv_spec;
    use fgnn_nn::Adam;

    fn tiny() -> Dataset {
        Dataset::materialize(arxiv_spec(0.0).with_dim(12), 9)
    }

    #[test]
    fn cluster_gcn_trains() {
        let ds = tiny();
        let mut t = ClusterGcnTrainer::new(
            &ds,
            Arch::Gcn,
            16,
            2,
            8,
            2,
            Machine::single_a100(),
            1,
        );
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt);
        let mut last = first;
        for _ in 0..8 {
            last = t.train_epoch(&ds, &mut opt);
        }
        assert!(last < first, "loss {first} -> {last}");
        assert!(t.counters.host_to_gpu_bytes > 0);
    }

    #[test]
    fn subgraph_minibatch_is_valid_and_square() {
        let ds = tiny();
        let nodes: Vec<NodeId> = (0..20).collect();
        let (sub, map) = induced_subgraph(&ds.graph, &nodes);
        let mb = full_subgraph_minibatch(&sub, &map, 3);
        mb.validate().unwrap();
        assert_eq!(mb.blocks.len(), 3);
        assert_eq!(mb.blocks[0].num_dst(), mb.blocks[0].num_src());
    }

    #[test]
    fn accuracy_above_random_after_training() {
        let ds = tiny();
        let mut t = ClusterGcnTrainer::new(
            &ds,
            Arch::Gcn,
            16,
            2,
            6,
            2,
            Machine::single_a100(),
            2,
        );
        let mut opt = Adam::new(0.01);
        for _ in 0..15 {
            t.train_epoch(&ds, &mut opt);
        }
        let acc = t.evaluate(&ds, &ds.test_nodes, &[4, 4]);
        assert!(acc > 0.08, "accuracy {acc}");
    }
}
