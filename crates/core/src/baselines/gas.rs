//! GNNAutoScale (GAS) and the GraphFM feature-momentum variant.
//!
//! GAS trains on graph-partition batches. For a cluster `C`, every layer
//! aggregates over the *full* in-edges of `C`; representations of
//! out-of-cluster (boundary) neighbors come from a **full-size history**
//! `h̄^{(l)} ∈ R^{n×d}` per layer — `O(Lnd)` storage, the limitation
//! FreshGNN's bounded cache removes. After computing layer `l` for the
//! cluster, the fresh rows are *pushed* into the history; boundary rows
//! are *pulled* from it (both transfers are charged to the interconnect,
//! since the paper keeps histories off-GPU for large graphs).
//!
//! There is no admission control and no staleness bound: this is exactly
//! the `p_grad = 1, t_stale = ∞` corner of FreshGNN's design space
//! (§4.1), and its estimation error grows unchecked (Fig 1).
//!
//! With `momentum = Some(β)` the history update becomes
//! `h̄ ← (1−β)·h̄ + β·h_fresh` — the feature-momentum idea of **GraphFM**.
//! (GraphFM-OB also corrects boundary estimates in-batch; we reproduce the
//! momentum mechanism, which drives its accuracy behaviour at scale.)

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::obs::Obs;
use crate::pipeline::{BatchOutput, Engine, EpochStats, EvalHarness, PipelineCtx, StallPolicy};
use fgnn_graph::partition::{partition_ldg, Partitioning};
use fgnn_graph::{Block, Csr2, Dataset, NodeId};
use fgnn_memsim::fault::{FaultPlan, FaultState, RetryPolicy};
use fgnn_memsim::presets::Machine;
use fgnn_memsim::stage::{StageKind, StageTimings};
use fgnn_memsim::topology::Node;
use fgnn_memsim::TrafficCounters;
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::{Arch, Model};
use fgnn_nn::Optimizer;
use fgnn_tensor::{Matrix, Rng};

/// GAS / GraphFM configuration.
#[derive(Clone, Debug)]
pub struct GasConfig {
    /// Number of graph partitions (METIS in the paper; LDG here).
    pub num_parts: usize,
    /// Cap on in-neighbors per node (memory guard; GAS uses full
    /// neighborhoods — the default `usize::MAX` keeps that).
    pub max_neighbors: usize,
    /// `Some(β)` switches to GraphFM-style momentum history updates.
    pub momentum: Option<f32>,
}

impl Default for GasConfig {
    fn default() -> Self {
        GasConfig {
            num_parts: 16,
            max_neighbors: usize::MAX,
            momentum: None,
        }
    }
}

/// GAS trainer state.
pub struct GasTrainer {
    /// The GNN under training.
    pub model: Model,
    /// Full-size per-level histories (`levels 1..L`), the `O(Lnd)` store.
    history: Vec<Matrix>,
    clusters: Vec<Vec<NodeId>>,
    /// Per-cluster precomputed blocks (dst = cluster, src = cluster ∪
    /// boundary, full in-edges).
    blocks: Vec<Block>,
    cfg: GasConfig,
    /// Traffic ledger (history pulls/pushes + feature loads).
    pub counters: TrafficCounters,
    /// Cumulative per-stage attribution of `counters` (not checkpointed).
    pub timings: StageTimings,
    /// Observability state: sim-clock spans plus metrics, fed by the
    /// pipeline engine (not checkpointed).
    pub obs: Obs,
    machine: Machine,
    dims: Vec<usize>,
    epoch: u32,
    rng: Rng,
    faults: FaultState,
}

impl GasTrainer {
    /// Build GAS over `ds` with an `arch` model of `hidden` width.
    pub fn new(
        ds: &Dataset,
        arch: Arch,
        hidden: usize,
        num_layers: usize,
        machine: Machine,
        cfg: GasConfig,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::new(seed);
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(ds.spec.feature_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.spec.num_classes);
        let model = Model::new(arch, &dims, &mut rng);

        let parts: Partitioning = partition_ldg(&ds.graph, cfg.num_parts, &mut rng);
        let clusters: Vec<Vec<NodeId>> = parts
            .clusters()
            .into_iter()
            .filter(|c| !c.is_empty())
            .collect();
        let blocks = clusters
            .iter()
            .map(|c| build_cluster_block(ds, c, cfg.max_neighbors))
            .collect();

        // Full-size history per level 1..L (the top level history is kept
        // too, as GAS does, though only interior levels are read).
        let history = dims[1..]
            .iter()
            .map(|&d| Matrix::zeros(ds.num_nodes(), d))
            .collect();

        GasTrainer {
            model,
            history,
            clusters,
            blocks,
            cfg,
            counters: TrafficCounters::new(),
            timings: StageTimings::new(),
            obs: Obs::new(),
            machine,
            dims,
            epoch: 0,
            rng,
            faults: FaultState::none(),
        }
    }

    /// Inject interconnect faults: every subsequent epoch's transfers are
    /// subjected to `plan` under `policy` (same contract as
    /// [`crate::Trainer::inject_faults`]).
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        self.faults.inject(plan, policy);
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u32 {
        self.epoch
    }

    /// Capture the trainable state — model parameters, optimizer moments,
    /// RNG, epoch cursor, traffic ledger. The `O(Lnd)` history is *not*
    /// captured (it is exactly the storage GAS's design cannot bound, the
    /// paper's point); [`GasTrainer::restore`] therefore always resumes
    /// with zeroed histories and reports the degradation, mirroring the
    /// main trainer's cold-cache semantics.
    pub fn checkpoint(&mut self, opt: &dyn Optimizer) -> Checkpoint {
        Checkpoint {
            arch: self.model.arch,
            dims: self.dims.clone(),
            params: self.model.export_parameters(),
            optimizer: opt.export_state(),
            rng_state: self.rng.state(),
            epoch: self.epoch,
            iter: 0,
            counters: self.counters.clone(),
            static_resident: Vec::new(),
            cache: None,
            cache_degraded: false,
        }
    }

    /// Restore from a checkpoint taken by an identically-configured GAS
    /// trainer. Always returns `Ok(true)`: core state is exact but the
    /// histories restart cold (see [`GasTrainer::checkpoint`]).
    pub fn restore(
        &mut self,
        ckpt: &Checkpoint,
        opt: &mut dyn Optimizer,
    ) -> Result<bool, CheckpointError> {
        if ckpt.arch != self.model.arch {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint arch {} vs trainer {}",
                ckpt.arch, self.model.arch
            )));
        }
        if ckpt.dims != self.dims {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint dims {:?} vs trainer {:?}",
                ckpt.dims, self.dims
            )));
        }
        if ckpt.params.len() != self.model.num_parameters() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint has {} parameters, model has {}",
                ckpt.params.len(),
                self.model.num_parameters()
            )));
        }
        self.model.import_parameters(&ckpt.params);
        opt.import_state(ckpt.optimizer.clone());
        self.rng = Rng::from_state(ckpt.rng_state);
        self.epoch = ckpt.epoch;
        self.counters = ckpt.counters.clone();
        for h in &mut self.history {
            h.as_mut_slice().iter_mut().for_each(|x| *x = 0.0);
        }
        Ok(true)
    }

    /// The paper's OOM criterion: GAS must hold `O(Lnd)` history. Returns
    /// the history bytes for a *paper-scale* node count so experiments can
    /// report OOM exactly where Table 3 does.
    pub fn history_bytes_at_scale(&self, num_nodes: usize) -> u64 {
        self.dims[1..]
            .iter()
            .map(|&d| num_nodes as u64 * d as u64 * 4)
            .sum()
    }

    /// Resident history bytes at the current (scaled) size.
    pub fn history_bytes(&self) -> u64 {
        self.history
            .iter()
            .map(|m| (m.rows() * m.cols() * 4) as u64)
            .sum()
    }

    /// Train one epoch (= one pass over all clusters, shuffled) through the
    /// pipeline engine. GAS skips the `Sample`/`Prune`/`CacheUpdate` stages:
    /// its work units are precomputed cluster blocks and its "cache" (the
    /// history) is written inside `Forward`, which is exactly the design
    /// difference the per-stage ledger makes visible.
    pub fn train_epoch(&mut self, ds: &Dataset, opt: &mut dyn Optimizer) -> EpochStats {
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        let mut shuffle_rng = self.rng.fork();
        shuffle_rng.shuffle(&mut order);

        let topo = self.machine.topology.clone();
        let mut stages = GasStages {
            model: &mut self.model,
            history: &mut self.history,
            clusters: &self.clusters,
            blocks: &self.blocks,
            cfg: &self.cfg,
            dims: &self.dims,
            machine: &self.machine,
            ds,
        };
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            order.into_iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, ci| stages.train_cluster(ctx, counters, ci, opt),
        );
        let stats = result.unwrap();
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats
    }

    /// Shared accuracy protocol (plain neighbor sampling).
    pub fn evaluate(&mut self, ds: &Dataset, nodes: &[NodeId], fanouts: &[usize]) -> f64 {
        let mut rng = self.rng.fork();
        EvalHarness::accuracy(&self.model, ds, nodes, fanouts, 256, &mut rng)
    }
}

/// Disjoint borrows of [`GasTrainer`] fields used by the per-cluster step,
/// leaving `fault_plan`/`counters` free for [`Engine::run_epoch`].
struct GasStages<'s, 'd> {
    model: &'s mut Model,
    history: &'s mut Vec<Matrix>,
    clusters: &'s [Vec<NodeId>],
    blocks: &'s [Block],
    cfg: &'s GasConfig,
    dims: &'s [usize],
    machine: &'s Machine,
    ds: &'d Dataset,
}

impl<'t> GasStages<'_, '_> {
    fn train_cluster(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        ci: usize,
        opt: &mut dyn Optimizer,
    ) -> Option<BatchOutput> {
        let ds = self.ds;
        let cluster = &self.clusters[ci];
        let block = &self.blocks[ci];
        let n_cluster = cluster.len();
        let n_src = block.num_src();
        let row_bytes = ds.spec.feature_row_bytes() as u64;

        // Labels exist for train nodes inside the cluster.
        let train_local: Vec<usize> = cluster
            .iter()
            .enumerate()
            .filter(|(_, &g)| ds.train_nodes.binary_search(&g).is_ok())
            .map(|(i, _)| i)
            .collect();
        // (train_nodes is unsorted; fall back to a set lookup.)
        let train_local = if train_local.is_empty() {
            let set: std::collections::HashSet<NodeId> = ds.train_nodes.iter().copied().collect();
            cluster
                .iter()
                .enumerate()
                .filter(|(_, g)| set.contains(g))
                .map(|(i, _)| i)
                .collect()
        } else {
            train_local
        };
        if train_local.is_empty() {
            return None;
        }

        // Level-0 inputs: raw features of cluster + boundary (charged).
        let mut h_src = ctx.stage(StageKind::Load, counters, |engine, c| {
            let ids: Vec<usize> = block.src_global.iter().map(|&g| g as usize).collect();
            let h = ds.features.gather_rows(&ids);
            engine.one_sided_read(Node::Host, Node::Gpu(0), n_src as u64 * row_bytes, c);
            h
        });

        // Forward through all layers on the same block. History pushes and
        // boundary pulls are charged here: in GAS they are inseparable from
        // the forward pass.
        let num_layers = self.model.layers.len();
        let mut traces = Vec::with_capacity(num_layers);
        let mut h_srcs = Vec::with_capacity(num_layers);
        ctx.stage(StageKind::Forward, counters, |engine, c| {
            for l in 0..num_layers {
                let (h_dst, layer_ctx) = self.model.layers[l].forward(block, &h_src);
                // Push fresh cluster rows into history[l] (charged).
                push_rows(&mut self.history[l], cluster, &h_dst, self.cfg.momentum);
                let level_bytes = (n_cluster * self.dims[l + 1] * 4) as u64;
                engine.one_sided_read(Node::Gpu(0), Node::Host, level_bytes, c);

                h_srcs.push(h_src.clone());
                traces.push(layer_ctx);

                if l + 1 < num_layers {
                    // Next layer's src: fresh cluster rows + history boundary.
                    let boundary = &block.src_global[n_cluster..];
                    let mut next = Matrix::zeros(n_src, self.dims[l + 1]);
                    next.as_mut_slice()[..n_cluster * self.dims[l + 1]]
                        .copy_from_slice(h_dst.as_slice());
                    for (o, &g) in boundary.iter().enumerate() {
                        next.row_mut(n_cluster + o)
                            .copy_from_slice(self.history[l].row(g as usize));
                    }
                    // Pull boundary history (charged).
                    let pull = (boundary.len() * self.dims[l + 1] * 4) as u64;
                    engine.one_sided_read(Node::Host, Node::Gpu(0), pull, c);
                    h_src = next;
                } else {
                    h_src = h_dst;
                }
            }
        });
        let logits = &h_src; // output of the last layer (cluster rows)

        // Loss over train nodes in the cluster, then backward with boundary
        // rows detached (they are history constants).
        let loss = ctx.stage(StageKind::Backward, counters, |_engine, _c| {
            let sel: Vec<usize> = train_local.clone();
            let sel_logits = logits.gather_rows(&sel);
            let labels: Vec<u16> = sel
                .iter()
                .map(|&i| ds.labels[cluster[i] as usize])
                .collect();
            let (loss, d_sel) = softmax_cross_entropy(&sel_logits, &labels);

            // Scatter loss gradient back to cluster rows.
            let mut d = Matrix::zeros(n_cluster, self.dims[num_layers]);
            d.scatter_add_rows(&sel, &d_sel);

            self.model.zero_grad();
            for l in (0..num_layers).rev() {
                let d_src = self.model.layers[l].backward(block, &traces[l], &h_srcs[l], &d);
                // Boundary rows are history constants: truncate to cluster rows.
                d = Matrix::from_vec(
                    n_cluster,
                    self.dims[l],
                    d_src.as_slice()[..n_cluster * self.dims[l]].to_vec(),
                );
            }
            loss
        });

        ctx.stage(StageKind::OptimStep, counters, |_engine, _c| {
            let mut params = self.model.params_mut();
            opt.step(&mut params);
        });

        // Simulated compute, attributed to the backward/forward pass.
        let flops = 3.0
            * (0..num_layers)
                .map(|l| {
                    fgnn_memsim::presets::aggregation_flops(block.num_edges(), self.dims[l])
                        + fgnn_memsim::presets::dense_flops(
                            n_cluster,
                            if self.model.arch == Arch::Sage {
                                2 * self.dims[l]
                            } else {
                                self.dims[l]
                            },
                            self.dims[l + 1],
                        )
                })
                .sum::<f64>();
        ctx.stage(StageKind::Backward, counters, |_engine, c| {
            c.compute_seconds += self.machine.gpu.compute_seconds(flops);
        });

        Some(BatchOutput::loss_only(loss))
    }
}

/// Build a GAS cluster block: dst = cluster, src = cluster ∪ boundary,
/// adjacency = (capped) full in-edges of the cluster.
fn build_cluster_block(ds: &Dataset, cluster: &[NodeId], max_neighbors: usize) -> Block {
    let mut local_of = std::collections::HashMap::with_capacity(cluster.len() * 2);
    for (i, &g) in cluster.iter().enumerate() {
        local_of.insert(g, i as NodeId);
    }
    let mut src_global = cluster.to_vec();
    let mut lists = Vec::with_capacity(cluster.len());
    for &v in cluster {
        let nbrs = ds.graph.neighbors(v);
        let take = nbrs.len().min(max_neighbors);
        let mut local = Vec::with_capacity(take);
        for &u in &nbrs[..take] {
            let lu = *local_of.entry(u).or_insert_with(|| {
                src_global.push(u);
                (src_global.len() - 1) as NodeId
            });
            local.push(lu);
        }
        lists.push(local);
    }
    Block {
        dst_global: cluster.to_vec(),
        src_global,
        adj: Csr2::from_neighbor_lists(&lists),
    }
}

/// History push: overwrite (GAS) or momentum-blend (GraphFM).
fn push_rows(history: &mut Matrix, nodes: &[NodeId], fresh: &Matrix, momentum: Option<f32>) {
    match momentum {
        None => {
            for (i, &g) in nodes.iter().enumerate() {
                history.set_row(g as usize, fresh.row(i));
            }
        }
        Some(beta) => {
            for (i, &g) in nodes.iter().enumerate() {
                let dst = history.row_mut(g as usize);
                for (h, &f) in dst.iter_mut().zip(fresh.row(i)) {
                    *h = (1.0 - beta) * *h + beta * f;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::datasets::arxiv_spec;
    use fgnn_nn::Adam;

    fn tiny() -> Dataset {
        Dataset::materialize(arxiv_spec(0.0).with_dim(12), 7)
    }

    fn gas(ds: &Dataset, momentum: Option<f32>) -> GasTrainer {
        GasTrainer::new(
            ds,
            Arch::Gcn,
            16,
            2,
            Machine::single_a100(),
            GasConfig {
                num_parts: 8,
                max_neighbors: 32,
                momentum,
            },
            1,
        )
    }

    #[test]
    fn gas_trains_and_reduces_loss() {
        let ds = tiny();
        let mut t = gas(&ds, None);
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt).mean_loss;
        let mut last = first;
        for _ in 0..8 {
            last = t.train_epoch(&ds, &mut opt).mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn gas_history_is_o_lnd() {
        let ds = tiny();
        let t = gas(&ds, None);
        // 2 layers: history levels of dims 16 and 64 (classes).
        let expect = (ds.num_nodes() * (16 + 64) * 4) as u64;
        assert_eq!(t.history_bytes(), expect);
        // Paper-scale accounting for the OOM rows of Table 3/Fig 10.
        let at_mag = t.history_bytes_at_scale(244_200_000);
        assert!(
            at_mag > 70_000_000_000,
            "MAG240M history would need {at_mag} bytes"
        );
    }

    #[test]
    fn gas_moves_history_traffic() {
        let ds = tiny();
        let mut t = gas(&ds, None);
        let mut opt = Adam::new(0.01);
        t.train_epoch(&ds, &mut opt);
        assert!(t.counters.host_to_gpu_bytes > 0);
        assert!(t.counters.gpu_to_gpu_bytes == 0);
    }

    #[test]
    fn graphfm_momentum_blends_history() {
        let ds = tiny();
        let mut t = gas(&ds, Some(0.5));
        let mut opt = Adam::new(0.01);
        t.train_epoch(&ds, &mut opt);
        // History must be nonzero after one epoch.
        assert!(t.history[0].frobenius_norm() > 0.0);
    }

    #[test]
    fn gas_accuracy_beats_random_on_tiny_task() {
        let ds = tiny();
        let mut t = gas(&ds, None);
        let mut opt = Adam::new(0.01);
        for _ in 0..15 {
            t.train_epoch(&ds, &mut opt);
        }
        let acc = t.evaluate(&ds, &ds.test_nodes, &[4, 4]);
        assert!(acc > 0.08, "accuracy {acc}");
    }
}
