//! The paper's baseline training algorithms (§7.2–7.3, Table 3).
//!
//! * **Neighbor sampling** (DGL/PyG/PyTorch-Direct): the target baseline.
//!   Not a separate type — construct [`crate::Trainer`] with
//!   [`crate::FreshGnnConfig::neighbor_sampling`]; the paper notes that
//!   `p_grad = 0` or `t_stale = 0` degenerates FreshGNN to exactly this.
//!   The DGL/PyG/PT-Direct *system* differences (two-sided vs one-sided
//!   loading, sampler speed) are `LoadMode` plus bench-side constants.
//! * [`gas`] — GNNAutoScale: cluster batches with **full-graph history**
//!   for out-of-cluster neighbors (`O(Lnd)` storage), i.e. the
//!   `p_grad = 1, t_stale = ∞` corner of the FreshGNN design space.
//!   With `momentum`, the same machinery gives the **GraphFM**-style
//!   feature-momentum variant.
//! * [`cluster_gcn`] — ClusterGCN: trains on merged partition-induced
//!   subgraphs, dropping all cross-partition edges.
//! * [`sampling`] — the §2.3 "broader sampling methods": layer-wise
//!   (FastGCN-family) and graph-wise (GraphSAINT-family) training.

pub mod cluster_gcn;
pub mod gas;
pub mod sampling;

pub use cluster_gcn::ClusterGcnTrainer;
pub use gas::{GasConfig, GasTrainer};
pub use sampling::{SamplingBaselineTrainer, SamplingKind};

use fgnn_graph::sample::NeighborSampler;
use fgnn_graph::{Dataset, NodeId};
use fgnn_nn::metrics::accuracy;
use fgnn_nn::model::Model;
use fgnn_tensor::Rng;

/// Evaluate `model` on `nodes` with plain neighbor sampling — the shared
/// accuracy protocol for every method in Table 3.
pub fn evaluate_model(
    model: &Model,
    ds: &Dataset,
    nodes: &[NodeId],
    fanouts: &[usize],
    batch_size: usize,
    rng: &mut Rng,
) -> f64 {
    let mut sampler = NeighborSampler::new(ds.num_nodes());
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for chunk in nodes.chunks(batch_size.max(1)) {
        let mb = sampler.sample(&ds.graph, chunk, fanouts, rng);
        let ids: Vec<usize> = mb.input_nodes().iter().map(|&g| g as usize).collect();
        let h0 = ds.features.gather_rows(&ids);
        let trace = model.forward(&mb, h0);
        let labels: Vec<u16> = chunk.iter().map(|&s| ds.labels[s as usize]).collect();
        correct_weighted += accuracy(trace.h.last().unwrap(), &labels) * chunk.len() as f64;
        total += chunk.len();
    }
    if total == 0 {
        0.0
    } else {
        correct_weighted / total as f64
    }
}
