//! The paper's baseline training algorithms (§7.2–7.3, Table 3).
//!
//! * **Neighbor sampling** (DGL/PyG/PyTorch-Direct): the target baseline.
//!   Not a separate type — construct [`crate::Trainer`] with
//!   [`crate::FreshGnnConfig::neighbor_sampling`]; the paper notes that
//!   `p_grad = 0` or `t_stale = 0` degenerates FreshGNN to exactly this.
//!   The DGL/PyG/PT-Direct *system* differences (two-sided vs one-sided
//!   loading, sampler speed) are `LoadMode` plus bench-side constants.
//! * [`gas`] — GNNAutoScale: cluster batches with **full-graph history**
//!   for out-of-cluster neighbors (`O(Lnd)` storage), i.e. the
//!   `p_grad = 1, t_stale = ∞` corner of the FreshGNN design space.
//!   With `momentum`, the same machinery gives the **GraphFM**-style
//!   feature-momentum variant.
//! * [`cluster_gcn`] — ClusterGCN: trains on merged partition-induced
//!   subgraphs, dropping all cross-partition edges.
//! * [`sampling`] — the §2.3 "broader sampling methods": layer-wise
//!   (FastGCN-family) and graph-wise (GraphSAINT-family) training.

pub mod cluster_gcn;
pub mod gas;
pub mod sampling;

pub use cluster_gcn::ClusterGcnTrainer;
pub use gas::{GasConfig, GasTrainer};
pub use sampling::{SamplingBaselineTrainer, SamplingKind};
