//! The "broader sampling methods" of §2.3: layer-wise (FastGCN-family)
//! and graph-wise (GraphSAINT-family) training.
//!
//! Both bound the per-batch footprint without a cache, at the cost of
//! biased/sparser aggregations — the accuracy-vs-footprint tradeoff the
//! paper contrasts FreshGNN against (see `exp_ext_sampling_families`).

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::obs::Obs;
use crate::pipeline::{BatchOutput, Engine, EpochStats, EvalHarness, PipelineCtx, StallPolicy};
use fgnn_graph::block::{Block, MiniBatch};
use fgnn_graph::partition::induced_subgraph;
use fgnn_graph::sample::{layer_wise_sample, random_walk_nodes, split_batches};
use fgnn_graph::{Csr, Csr2, Dataset, NodeId};
use fgnn_memsim::fault::{FaultPlan, FaultState, RetryPolicy};
use fgnn_memsim::presets::Machine;
use fgnn_memsim::stage::{StageKind, StageTimings};
use fgnn_memsim::topology::Node;
use fgnn_memsim::TrafficCounters;
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::{Arch, Model};
use fgnn_nn::Optimizer;
use fgnn_tensor::{Matrix, Rng};
use std::collections::HashSet;

/// Which sampling family to train with.
#[derive(Clone, Debug)]
pub enum SamplingKind {
    /// Layer-wise: a fixed node budget per layer (FastGCN-style).
    LayerWise {
        /// Sampled sources per layer (input→output order).
        layer_sizes: Vec<usize>,
    },
    /// Graph-wise: random-walk subgraphs trained full-graph style
    /// (GraphSAINT-style).
    GraphWise {
        /// Walk roots per batch.
        roots: usize,
        /// Steps per walk.
        walk_length: usize,
    },
}

/// Trainer for the §2.3 sampling families.
pub struct SamplingBaselineTrainer {
    /// The GNN under training.
    pub model: Model,
    /// Sampling family and its parameters.
    pub kind: SamplingKind,
    /// Traffic ledger.
    pub counters: TrafficCounters,
    /// Cumulative per-stage attribution of `counters` (not checkpointed).
    pub timings: StageTimings,
    /// Observability state: sim-clock spans plus metrics, fed by the
    /// pipeline engine (not checkpointed).
    pub obs: Obs,
    batch_size: usize,
    machine: Machine,
    dims: Vec<usize>,
    train_set: HashSet<NodeId>,
    epoch: u32,
    rng: Rng,
    faults: FaultState,
}

impl SamplingBaselineTrainer {
    /// Build a trainer; model depth follows `num_layers`.
    // Mirrors the baseline's natural knobs, as in `ClusterGcnTrainer::new`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ds: &Dataset,
        arch: Arch,
        hidden: usize,
        num_layers: usize,
        batch_size: usize,
        kind: SamplingKind,
        machine: Machine,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::new(seed);
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(ds.spec.feature_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.spec.num_classes);
        if let SamplingKind::LayerWise { layer_sizes } = &kind {
            assert_eq!(layer_sizes.len(), num_layers, "one budget per layer");
        }
        SamplingBaselineTrainer {
            model: Model::new(arch, &dims, &mut rng),
            kind,
            counters: TrafficCounters::new(),
            timings: StageTimings::new(),
            obs: Obs::new(),
            batch_size,
            machine,
            dims,
            train_set: ds.train_nodes.iter().copied().collect(),
            epoch: 0,
            rng,
            faults: FaultState::none(),
        }
    }

    /// Inject interconnect faults (same contract as
    /// [`crate::Trainer::inject_faults`]).
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        self.faults.inject(plan, policy);
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u32 {
        self.epoch
    }

    /// Capture the full trainable state (lossless: no cross-epoch caches).
    pub fn checkpoint(&mut self, opt: &dyn Optimizer) -> Checkpoint {
        Checkpoint {
            arch: self.model.arch,
            dims: self.dims.clone(),
            params: self.model.export_parameters(),
            optimizer: opt.export_state(),
            rng_state: self.rng.state(),
            epoch: self.epoch,
            iter: 0,
            counters: self.counters.clone(),
            static_resident: Vec::new(),
            cache: None,
            cache_degraded: false,
        }
    }

    /// Restore from a checkpoint. Returns `Ok(false)`: nothing degrades.
    pub fn restore(
        &mut self,
        ckpt: &Checkpoint,
        opt: &mut dyn Optimizer,
    ) -> Result<bool, CheckpointError> {
        if ckpt.arch != self.model.arch {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint arch {} vs trainer {}",
                ckpt.arch, self.model.arch
            )));
        }
        if ckpt.dims != self.dims {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint dims {:?} vs trainer {:?}",
                ckpt.dims, self.dims
            )));
        }
        if ckpt.params.len() != self.model.num_parameters() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint has {} parameters, model has {}",
                ckpt.params.len(),
                self.model.num_parameters()
            )));
        }
        self.model.import_parameters(&ckpt.params);
        opt.import_state(ckpt.optimizer.clone());
        self.rng = Rng::from_state(ckpt.rng_state);
        self.epoch = ckpt.epoch;
        self.counters = ckpt.counters.clone();
        Ok(false)
    }

    /// Train one epoch through the pipeline engine. Layer-wise iterates
    /// train-node batches; graph-wise draws one random-walk subgraph per
    /// batch slot. Both run `Sample → Load → Forward → Backward →
    /// OptimStep`; neither has a `Prune` or `CacheUpdate` stage.
    pub fn train_epoch(&mut self, ds: &Dataset, opt: &mut dyn Optimizer) -> EpochStats {
        let topo = self.machine.topology.clone();
        let mut shuffle_rng = self.rng.fork();
        let batches = split_batches(&ds.train_nodes, self.batch_size, Some(&mut shuffle_rng));

        let mut stages = SamplingStages {
            model: &mut self.model,
            kind: &self.kind,
            rng: &mut self.rng,
            dims: &self.dims,
            train_set: &self.train_set,
            machine: &self.machine,
            ds,
        };
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            batches.iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, seeds| stages.train_batch(ctx, counters, seeds, opt),
        );
        let stats = result.unwrap();
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats
    }

    /// Shared accuracy protocol (plain neighbor sampling).
    pub fn evaluate(&mut self, ds: &Dataset, nodes: &[NodeId], fanouts: &[usize]) -> f64 {
        let mut rng = self.rng.fork();
        EvalHarness::accuracy(&self.model, ds, nodes, fanouts, 256, &mut rng)
    }
}

/// Disjoint borrows of [`SamplingBaselineTrainer`] fields for the per-batch
/// step.
struct SamplingStages<'s, 'd> {
    model: &'s mut Model,
    kind: &'s SamplingKind,
    rng: &'s mut Rng,
    dims: &'s [usize],
    train_set: &'s HashSet<NodeId>,
    machine: &'s Machine,
    ds: &'d Dataset,
}

impl<'t> SamplingStages<'_, '_> {
    fn train_batch(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        seeds: &[NodeId],
        opt: &mut dyn Optimizer,
    ) -> Option<BatchOutput> {
        match self.kind {
            SamplingKind::LayerWise { layer_sizes } => {
                let sizes = layer_sizes.clone();
                self.train_layer_wise(ctx, counters, seeds, &sizes, opt)
            }
            SamplingKind::GraphWise { roots, walk_length } => {
                let (r, w) = (*roots, *walk_length);
                self.train_graph_wise(ctx, counters, r, w, opt)
            }
        }
    }

    fn train_layer_wise(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        seeds: &[NodeId],
        layer_sizes: &[usize],
        opt: &mut dyn Optimizer,
    ) -> Option<BatchOutput> {
        let ds = self.ds;
        let mb = ctx.stage(StageKind::Sample, counters, |_engine, _c| {
            let mut rng = self.rng.fork();
            layer_wise_sample(&ds.graph, seeds, layer_sizes, &mut rng)
        });
        let h0 = ctx.stage(StageKind::Load, counters, |engine, c| {
            let ids: Vec<usize> = mb.input_nodes().iter().map(|&g| g as usize).collect();
            let h0 = ds.features.gather_rows(&ids);
            engine.one_sided_read(
                Node::Host,
                Node::Gpu(0),
                (ids.len() * ds.spec.feature_row_bytes()) as u64,
                c,
            );
            h0
        });
        let labels: Vec<u16> = seeds.iter().map(|&s| ds.labels[s as usize]).collect();
        let loss = self.step(ctx, counters, &mb, h0, &labels, None, opt);
        Some(BatchOutput::loss_only(loss))
    }

    fn train_graph_wise(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        roots: usize,
        walk_length: usize,
        opt: &mut dyn Optimizer,
    ) -> Option<BatchOutput> {
        let ds = self.ds;
        let sampled = ctx.stage(StageKind::Sample, counters, |_engine, _c| {
            let mut rng = self.rng.fork();
            let root_nodes: Vec<NodeId> = (0..roots)
                .map(|_| ds.train_nodes[rng.below(ds.train_nodes.len())])
                .collect();
            let nodes = random_walk_nodes(&ds.graph, &root_nodes, walk_length, &mut rng);
            let train_local: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, g)| self.train_set.contains(g))
                .map(|(i, _)| i)
                .collect();
            if train_local.is_empty() {
                return None;
            }
            let (sub, map) = induced_subgraph(&ds.graph, &nodes);
            let mb = full_subgraph_minibatch(&sub, &map, self.dims.len() - 1);
            Some((nodes, train_local, mb))
        });
        let (nodes, train_local, mb) = sampled?;
        let h0 = ctx.stage(StageKind::Load, counters, |engine, c| {
            let ids: Vec<usize> = nodes.iter().map(|&g| g as usize).collect();
            let h0 = ds.features.gather_rows(&ids);
            engine.one_sided_read(
                Node::Host,
                Node::Gpu(0),
                (nodes.len() * ds.spec.feature_row_bytes()) as u64,
                c,
            );
            h0
        });
        let labels: Vec<u16> = train_local
            .iter()
            .map(|&i| ds.labels[nodes[i] as usize])
            .collect();
        let loss = self.step(ctx, counters, &mb, h0, &labels, Some(&train_local), opt);
        Some(BatchOutput::loss_only(loss))
    }

    /// Shared forward/backward/step. `loss_rows` restricts the loss to a
    /// subset of output rows (graph-wise); `None` = all rows are seeds.
    // Stage plumbing (ctx + counters) pushes this over clippy's arg limit;
    // bundling the rest into a struct would add noise for two call sites.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        mb: &MiniBatch,
        h0: Matrix,
        labels: &[u16],
        loss_rows: Option<&[usize]>,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let trace = ctx.stage(StageKind::Forward, counters, |_engine, _c| {
            self.model.forward(mb, h0)
        });
        let loss = ctx.stage(StageKind::Backward, counters, |_engine, _c| {
            let logits = trace.h.last().unwrap();
            let (loss, d_top) = match loss_rows {
                None => softmax_cross_entropy(logits, labels),
                Some(rows) => {
                    let sel = logits.gather_rows(rows);
                    let (loss, d_sel) = softmax_cross_entropy(&sel, labels);
                    let mut d = Matrix::zeros(logits.rows(), logits.cols());
                    d.scatter_add_rows(rows, &d_sel);
                    (loss, d)
                }
            };
            self.model.zero_grad();
            self.model.backward(mb, &trace, d_top);
            loss
        });
        ctx.stage(StageKind::OptimStep, counters, |_engine, _c| {
            let mut params = self.model.params_mut();
            opt.step(&mut params);
        });

        let flops = 3.0
            * (0..self.dims.len() - 1)
                .map(|l| {
                    fgnn_memsim::presets::dense_flops(
                        mb.blocks[l].num_dst(),
                        self.dims[l],
                        self.dims[l + 1],
                    ) + fgnn_memsim::presets::aggregation_flops(
                        mb.blocks[l].num_edges(),
                        self.dims[l],
                    )
                })
                .sum::<f64>();
        ctx.stage(StageKind::Backward, counters, |_engine, c| {
            c.compute_seconds += self.machine.gpu.compute_seconds(flops);
        });
        loss
    }
}

/// An L-layer mini-batch covering the whole subgraph at every layer
/// (shared by ClusterGCN and GraphSAINT-style training).
pub fn full_subgraph_minibatch(sub: &Csr, map: &[NodeId], num_layers: usize) -> MiniBatch {
    let n = sub.num_nodes();
    let lists: Vec<Vec<NodeId>> = (0..n as NodeId)
        .map(|v| sub.neighbors(v).to_vec())
        .collect();
    let block = Block {
        dst_global: map.to_vec(),
        src_global: map.to_vec(),
        adj: Csr2::from_neighbor_lists(&lists),
    };
    MiniBatch {
        blocks: vec![block; num_layers],
        seeds: map.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::datasets::arxiv_spec;
    use fgnn_nn::Adam;

    fn tiny() -> Dataset {
        Dataset::materialize(arxiv_spec(0.0).with_dim(12), 13)
    }

    #[test]
    fn layer_wise_trains_and_bounds_traffic() {
        let ds = tiny();
        let mut t = SamplingBaselineTrainer::new(
            &ds,
            Arch::Gcn,
            16,
            2,
            64,
            SamplingKind::LayerWise {
                layer_sizes: vec![64, 64],
            },
            Machine::single_a100(),
            1,
        );
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt).mean_loss;
        let mut last = first;
        for _ in 0..8 {
            last = t.train_epoch(&ds, &mut opt).mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
        // Footprint bound: per batch at most seeds + Σ layer budgets rows.
        let batches = ds.train_nodes.len().div_ceil(64);
        let max_rows = (64 + 64 + 64) * batches * 9;
        assert!(
            t.counters.host_to_gpu_bytes <= (max_rows * ds.spec.feature_row_bytes()) as u64,
            "traffic {} exceeds layer-wise bound",
            t.counters.host_to_gpu_bytes
        );
    }

    #[test]
    fn graph_wise_trains() {
        let ds = tiny();
        let mut t = SamplingBaselineTrainer::new(
            &ds,
            Arch::Sage,
            16,
            2,
            64,
            SamplingKind::GraphWise {
                roots: 16,
                walk_length: 4,
            },
            Machine::single_a100(),
            2,
        );
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt).mean_loss;
        let mut last = first;
        for _ in 0..8 {
            last = t.train_epoch(&ds, &mut opt).mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
        assert!(t.counters.host_to_gpu_bytes > 0);
    }

    #[test]
    fn both_families_reach_above_random_accuracy() {
        let ds = tiny();
        for kind in [
            SamplingKind::LayerWise {
                layer_sizes: vec![96, 96],
            },
            SamplingKind::GraphWise {
                roots: 24,
                walk_length: 4,
            },
        ] {
            // Fresh optimizer per family (Adam state is per-model).
            let mut opt = Adam::new(0.01);
            let mut t = SamplingBaselineTrainer::new(
                &ds,
                Arch::Gcn,
                16,
                2,
                64,
                kind.clone(),
                Machine::single_a100(),
                3,
            );
            for _ in 0..20 {
                t.train_epoch(&ds, &mut opt);
            }
            // Layer-wise aggregation is genuinely weak (the paper's point);
            // require clearly-above-random (1/64 ≈ 1.6%), not parity.
            let acc = t.evaluate(&ds, &ds.test_nodes, &[4, 4]);
            assert!(acc > 0.04, "{kind:?}: accuracy {acc}");
        }
    }
}
