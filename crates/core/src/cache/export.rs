//! Policy-frontier export: the compact `fgnn-policy-v1` JSON that
//! `exp_ext_policy_frontier --bench-json` writes and
//! `scripts/bench_trajectory.sh` commits as `BENCH_policy.json`.
//!
//! Hand-rolled like the other exporters (zero registry dependencies) and
//! bit-for-bit reproducible from the same seed: every field is either an
//! exact counter or a deterministic float — no wall-clock time ever enters
//! the document.

use crate::obs::export::{json_escape, json_f64};

/// Schema tag stamped into the export (and grepped by `scripts/ci.sh`
/// against the committed `BENCH_policy.json`). Alias of
/// [`crate::obs::schema::POLICY_V1`].
pub const POLICY_SCHEMA_VERSION: &str = crate::obs::schema::POLICY_V1;

/// One point on the accuracy-vs-cache-traffic frontier: a (policy,
/// dataset) cell of the sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyFrontierRow {
    /// Policy name (the `PolicyKind` display form, e.g. `"gradient"`).
    pub policy: String,
    /// Dataset label (e.g. `"papers100m"`).
    pub dataset: String,
    /// Final training accuracy on the fixed config.
    pub accuracy: f64,
    /// Total host-to-device feature bytes moved over the run.
    pub h2d_bytes: u64,
    /// Fraction of feature I/O avoided versus the cache-off baseline.
    pub io_saving: f64,
    /// Historical-cache hit rate over the run.
    pub hit_rate: f64,
    /// Hits declined by the policy's refresh schedule (forced recomputes).
    pub scheduled_refreshes: u64,
    /// Reads extrapolated along update history.
    pub predicted_reads: u64,
    /// Reads scaled by a staleness weight.
    pub weighted_reads: u64,
}

/// Serialize the frontier as one deterministic JSON document. Row order is
/// preserved (callers sweep policies and datasets in a fixed order), so two
/// runs with the same seed produce byte-identical output.
pub fn policy_bench_json(seed: u64, rows: &[PolicyFrontierRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schemaVersion\":\"{POLICY_SCHEMA_VERSION}\",\"seed\":{seed},\"rows\":["
    ));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"policy\":\"{}\",\"dataset\":\"{}\",\"accuracy\":{},\"h2dBytes\":{},\
             \"ioSaving\":{},\"hitRate\":{},\"scheduledRefreshes\":{},\"predictedReads\":{},\
             \"weightedReads\":{}}}",
            json_escape(&r.policy),
            json_escape(&r.dataset),
            json_f64(r.accuracy),
            r.h2d_bytes,
            json_f64(r.io_saving),
            json_f64(r.hit_rate),
            r.scheduled_refreshes,
            r.predicted_reads,
            r.weighted_reads,
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> PolicyFrontierRow {
        PolicyFrontierRow {
            policy: "gradient".into(),
            dataset: "papers100m".into(),
            accuracy: 0.5,
            h2d_bytes: 1024,
            io_saving: 0.25,
            hit_rate: 0.75,
            scheduled_refreshes: 0,
            predicted_reads: 0,
            weighted_reads: 0,
        }
    }

    #[test]
    fn export_carries_schema_tag_and_seed() {
        let doc = policy_bench_json(42, &[row()]);
        assert!(doc.contains("\"schemaVersion\":\"fgnn-policy-v1\""));
        assert!(doc.contains("\"seed\":42"));
        assert!(doc.contains("\"policy\":\"gradient\""));
        assert!(doc.contains("\"h2dBytes\":1024"));
        assert!(doc.ends_with("]}\n"));
    }

    #[test]
    fn export_is_deterministic_and_order_preserving() {
        let mut second = row();
        second.policy = "coarse-refresh".into();
        second.scheduled_refreshes = 7;
        let rows = [row(), second];
        let a = policy_bench_json(7, &rows);
        let b = policy_bench_json(7, &rows);
        assert_eq!(a, b);
        let g = a.find("\"policy\":\"gradient\"").unwrap();
        let c = a.find("\"policy\":\"coarse-refresh\"").unwrap();
        assert!(g < c, "row order preserved");
    }

    #[test]
    fn empty_sweep_is_valid_json_shell() {
        let doc = policy_bench_json(1, &[]);
        assert_eq!(
            doc,
            "{\"schemaVersion\":\"fgnn-policy-v1\",\"seed\":1,\"rows\":[]}\n"
        );
    }
}
