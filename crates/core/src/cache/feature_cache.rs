//! Static raw-feature cache of high-degree nodes (§4.2).
//!
//! FreshGNN fills the empty entries of the embedding table with the raw
//! features of the highest-degree nodes so that layer-0 loads of hot nodes
//! never touch the wire — the same idea GNNLab/GNNTier build their whole
//! systems around, here used as backfill. We model it as a dedicated table
//! sharing the cache budget (the paper physically co-locates them in one
//! allocation; the traffic accounting is identical).

use fgnn_graph::{degree, Csr, NodeId};
use std::cell::Cell;

/// Membership-only static cache: the trainer needs to know *whether* a
/// node's features are resident (traffic accounting); the feature values
/// themselves stay in the dataset matrix either way.
pub struct StaticFeatureCache {
    resident: Vec<bool>,
    len: usize,
    /// Membership-test hits (observability only; `Cell` because
    /// [`StaticFeatureCache::contains`] is a `&self` query).
    hits: Cell<u64>,
    /// Membership-test misses (observability only).
    misses: Cell<u64>,
}

impl StaticFeatureCache {
    /// Cache the features of the `rows` highest-degree nodes of `graph`.
    pub fn by_degree(graph: &Csr, rows: usize) -> Self {
        let mut resident = vec![false; graph.num_nodes()];
        let order = degree::nodes_by_degree(graph);
        let len = rows.min(order.len());
        for &v in order.iter().take(len) {
            resident[v as usize] = true;
        }
        StaticFeatureCache {
            resident,
            len,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// An empty (disabled) cache for `num_nodes` nodes.
    pub fn disabled(num_nodes: usize) -> Self {
        StaticFeatureCache {
            resident: vec![false; num_nodes],
            len: 0,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Whether `node`'s features are resident on the compute device.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let hit = self.resident[node as usize];
        if hit {
            self.hits.set(self.hits.get() + 1);
        } else {
            self.misses.set(self.misses.get() + 1);
        }
        hit
    }

    /// Membership-test hits recorded so far (observability only; resets on
    /// checkpoint restore).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Membership-test misses recorded so far (observability only; resets
    /// on checkpoint restore).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of cached rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Size of the node ID space this cache covers.
    pub fn num_nodes(&self) -> usize {
        self.resident.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Serializable residency bitmap (for checkpointing — the selection is
    /// deterministic given the graph, but saving it avoids recomputing the
    /// degree order on resume and keeps the restore self-contained).
    pub fn export(&self) -> Vec<bool> {
        self.resident.clone()
    }

    /// Rebuild from [`StaticFeatureCache::export`]. Telemetry counters
    /// restart at zero (they are not part of the checkpoint format).
    pub fn import(resident: Vec<bool>) -> Self {
        let len = resident.iter().filter(|&&r| r).count();
        StaticFeatureCache {
            resident,
            len,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Csr {
        Csr::from_undirected_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)])
    }

    #[test]
    fn caches_highest_degree_nodes_first() {
        let g = star();
        let c = StaticFeatureCache::by_degree(&g, 2);
        assert!(c.contains(0), "hub must be cached");
        assert!(c.contains(1), "next-highest degree");
        assert!(!c.contains(5), "isolated node not cached");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_larger_than_graph_caches_everything() {
        let g = star();
        let c = StaticFeatureCache::by_degree(&g, 100);
        assert_eq!(c.len(), 6);
        assert!((0..6).all(|v| c.contains(v)));
    }

    #[test]
    fn disabled_cache_contains_nothing() {
        let c = StaticFeatureCache::disabled(4);
        assert!(c.is_empty());
        assert!(!(0..4).any(|v| c.contains(v)));
    }
}
