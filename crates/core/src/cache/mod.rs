//! The historical embedding cache (§4): per-layer ring buffers plus the
//! pluggable gradient/staleness policy family (DESIGN.md §11).

pub mod export;
pub mod feature_cache;
pub mod policy;
pub mod ring;

pub use export::{policy_bench_json, PolicyFrontierRow, POLICY_SCHEMA_VERSION};
pub use feature_cache::StaticFeatureCache;
pub use policy::{
    apply_policy, frequency_policy, gradient_policy, inverted_gradient_policy, CachePolicy,
    CoarseRefreshPolicy, FrequencyPolicy, GradientPolicy, InverseGradientPolicy, PolicyInput,
    PolicyKind, PredictivePolicy, RandomPolicy, StalenessWeightedPolicy, Verdict,
};
pub use ring::{RingCache, RingSnapshot};

use fgnn_graph::NodeId;
use fgnn_tensor::Matrix;
use std::cell::Cell;

/// Aggregated cache statistics across layers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups that returned a usable embedding.
    pub hits: u64,
    /// Lookups that missed (absent, recycled, or stale).
    pub misses: u64,
    /// Fresh embeddings admitted.
    pub admits: u64,
    /// Cached embeddings kept after the gradient test.
    pub keeps: u64,
    /// Evictions by the gradient criterion.
    pub grad_evictions: u64,
    /// Evictions by the staleness criterion.
    pub stale_evictions: u64,
    /// Ring-header overwrites.
    pub overwrites: u64,
    /// Live-entry hits declined by the policy's refresh schedule
    /// ([`CachePolicy::refresh_due`]) so the node recomputes and refreshes
    /// the entry in place. Always 0 under the baseline policy.
    pub scheduled_refreshes: u64,
    /// Cache reads scaled by a staleness weight ≠ 1.0. Always 0 under the
    /// baseline policy.
    pub weighted_reads: u64,
    /// Cache reads extrapolated along the entry's update history. Always 0
    /// under the baseline policy.
    pub predicted_reads: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Multi-layer historical embedding cache.
///
/// Level `l ∈ 1..=L` refers to the output of GNN layer `l` (`h^{(l)}` in
/// the paper); interior reuse reads levels `1..L`. A disabled cache (the
/// neighbor-sampling degeneration of §4.1) answers every lookup with a
/// miss and ignores admissions.
pub struct HistoricalCache {
    /// `levels[l-1]` caches `h^{(l)}`; `None` = level not cached.
    levels: Vec<Option<RingCache>>,
    t_stale: u32,
    hits: u64,
    misses: u64,
    admits: u64,
    keeps: u64,
    /// Hits declined by the policy's refresh schedule (policy telemetry;
    /// not checkpointed — restarts on resume like the ring telemetry,
    /// and is always 0 under the baseline policy).
    scheduled_refreshes: u64,
    /// Reads scaled by a staleness weight (`Cell`: the read path holds
    /// `&self` inside the forward closure, like the static-cache hit
    /// counters). Not checkpointed; 0 under the baseline policy.
    weighted_reads: Cell<u64>,
    /// Reads extrapolated along update history (`Cell`, as above).
    predicted_reads: Cell<u64>,
    /// Whether update-delta history is enabled on the rings (re-applied
    /// after `restore`, since snapshots never carry history).
    history: bool,
    /// Transient degraded-mode switch (never checkpointed): while set,
    /// every lookup misses silently and admissions are dropped, so the
    /// trainer fetches raw features instead of trusting stale entries.
    bypass: bool,
}

impl HistoricalCache {
    /// Build a cache for an `L`-layer model.
    ///
    /// `dims[l-1]` is the embedding dimension of level `l` (the model's
    /// hidden/output dims). `initial_capacity = 0` auto-sizes: tables start
    /// at 1024 rows and grow on demand (§4.2's "initialize the cache table
    /// with a fixed size and reallocate it on-demand").
    pub fn new(
        num_nodes: usize,
        dims: &[usize],
        t_stale: u32,
        initial_capacity: usize,
        cache_top_layer: bool,
        enabled: bool,
    ) -> Self {
        let num_levels = dims.len();
        let cap = if initial_capacity == 0 {
            1024
        } else {
            initial_capacity
        };
        let levels = dims
            .iter()
            .enumerate()
            .map(|(i, &dim)| {
                let is_top = i + 1 == num_levels;
                if enabled && (!is_top || cache_top_layer) {
                    Some(RingCache::new(num_nodes, cap, dim))
                } else {
                    None
                }
            })
            .collect();
        HistoricalCache {
            levels,
            t_stale,
            hits: 0,
            misses: 0,
            admits: 0,
            keeps: 0,
            scheduled_refreshes: 0,
            weighted_reads: Cell::new(0),
            predicted_reads: Cell::new(0),
            history: false,
            bypass: false,
        }
    }

    /// Enable per-entry update-delta history on every cached level (needed
    /// by policies whose [`CachePolicy::wants_history`] is true). Idempotent;
    /// re-applied automatically after [`HistoricalCache::restore`] and
    /// [`HistoricalCache::clear`].
    pub fn enable_history(&mut self) {
        self.history = true;
        for c in self.levels.iter_mut().flatten() {
            c.enable_history();
        }
    }

    /// Whether update-delta history is enabled.
    pub fn history_enabled(&self) -> bool {
        self.history
    }

    /// Engage or release degraded-mode bypass: while engaged, lookups miss
    /// silently (no counters move, like a disabled level) and
    /// [`HistoricalCache::apply_verdicts`] is a no-op. The flag is
    /// transient — it is not part of [`CacheSnapshot`] and survives
    /// neither `snapshot`/`restore` nor checkpointing.
    pub fn set_bypass(&mut self, bypass: bool) {
        self.bypass = bypass;
    }

    /// Whether degraded-mode bypass is currently engaged.
    pub fn bypassed(&self) -> bool {
        self.bypass
    }

    /// Whether level `l` (1-based) has a cache.
    pub fn level_enabled(&self, level: usize) -> bool {
        level >= 1 && level <= self.levels.len() && self.levels[level - 1].is_some()
    }

    /// Staleness bound in effect.
    pub fn t_stale(&self) -> u32 {
        self.t_stale
    }

    /// Look up `node` at `level` for iteration `now` under the baseline
    /// refresh schedule (none) — see [`HistoricalCache::lookup_with`].
    pub fn lookup(&mut self, level: usize, node: NodeId, now: u32) -> Option<u32> {
        self.lookup_with(level, node, now, &GradientPolicy)
    }

    /// Policy-aware lookup: like [`HistoricalCache::lookup`], but a live,
    /// in-bound entry whose age the policy's [`CachePolicy::refresh_due`]
    /// schedule flags is *declined* — the lookup reports a miss **without
    /// evicting the entry**, so the caller recomputes the node and, if it
    /// is still stable, re-admits it over the live entry: a refresh in
    /// place, which also records the update delta feeding
    /// [`CachePolicy::wants_history`] extrapolation. Under the baseline
    /// (no schedule) this is exactly [`HistoricalCache::lookup`].
    pub fn lookup_with(
        &mut self,
        level: usize,
        node: NodeId,
        now: u32,
        policy: &dyn CachePolicy,
    ) -> Option<u32> {
        if self.bypass {
            return None;
        }
        let t_stale = self.t_stale;
        let c = self.levels[level - 1].as_mut()?;
        if let Some(stamp) = c.stamp_of(node) {
            let age = now.saturating_sub(stamp);
            if age <= t_stale && policy.refresh_due(age, t_stale) {
                // Declined hit: counts as a ring lookup and a cache miss
                // (the caller will recompute), but the entry stays live so
                // the recompute's admit refreshes it in place.
                c.lookups += 1;
                self.misses += 1;
                self.scheduled_refreshes += 1;
                return None;
            }
        }
        let res = c.lookup(node, now, t_stale);
        if res.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        res
    }

    /// Copy a cached embedding into `dst`.
    pub fn fetch_into(&self, level: usize, slot: u32, dst: &mut [f32]) {
        let cache = self.levels[level - 1].as_ref().expect("level not cached");
        dst.copy_from_slice(cache.fetch(slot));
    }

    /// Policy-aware read: copy slot `slot` into `dst`, then let `policy`
    /// post-process the stale entry — extrapolate it along its update
    /// history ([`CachePolicy::wants_history`]) and/or scale it by a
    /// staleness weight ([`CachePolicy::read_weight`]). `now` is the
    /// current iteration; `slot` must come from a successful
    /// [`HistoricalCache::lookup`] at the same `now`, so the entry's age
    /// is within `t_stale` by construction. Under the baseline policy this
    /// is byte-identical to [`HistoricalCache::fetch_into`].
    pub fn read_into(
        &self,
        level: usize,
        slot: u32,
        now: u32,
        policy: &dyn CachePolicy,
        dst: &mut [f32],
    ) {
        let cache = self.levels[level - 1].as_ref().expect("level not cached");
        dst.copy_from_slice(cache.fetch(slot));
        let age = cache.age_of(slot, now);
        if age > 0 && policy.wants_history() && cache.extrapolate_into(slot, age, dst) {
            self.predicted_reads.set(self.predicted_reads.get() + 1);
        }
        let w = policy.read_weight(age, self.t_stale);
        if w != 1.0 {
            for x in dst.iter_mut() {
                *x *= w;
            }
            self.weighted_reads.set(self.weighted_reads.get() + 1);
        }
    }

    /// Apply a policy's verdicts for one level: admit fresh rows out of
    /// `h` (the level's representation matrix), evict unstable cached
    /// entries, refresh stamps of kept entries. An admit over a still-live
    /// entry (the [`HistoricalCache::lookup_with`] refresh-schedule path)
    /// refreshes it in place, recording the update delta when history is
    /// enabled.
    pub fn apply_verdicts(
        &mut self,
        level: usize,
        verdicts: &[(PolicyInput, Verdict)],
        h: &Matrix,
        now: u32,
    ) {
        if self.bypass {
            return;
        }
        let t_stale = self.t_stale;
        let Some(cache) = self.levels[level - 1].as_mut() else {
            return;
        };
        for &(input, verdict) in verdicts {
            match verdict {
                Verdict::Admit => {
                    cache.admit(input.node, h.row(input.local as usize), now, t_stale);
                    self.admits += 1;
                }
                Verdict::Keep => {
                    self.keeps += 1;
                }
                Verdict::Evict => cache.evict(input.node),
                Verdict::Skip => {}
            }
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats {
            hits: self.hits,
            misses: self.misses,
            admits: self.admits,
            keeps: self.keeps,
            scheduled_refreshes: self.scheduled_refreshes,
            weighted_reads: self.weighted_reads.get(),
            predicted_reads: self.predicted_reads.get(),
            ..Default::default()
        };
        for c in self.levels.iter().flatten() {
            s.grad_evictions += c.grad_evictions;
            s.stale_evictions += c.stale_evictions;
            s.overwrites += c.overwrites;
        }
        s
    }

    /// Total ring-level lookups across levels (observability only; not
    /// checkpointed). Disabled levels never reach a ring, so this always
    /// equals `stats().hits + stats().misses` on a fresh cache — the
    /// cross-layer invariant `tests/obs_invariants.rs` pins.
    pub fn lookups(&self) -> u64 {
        self.levels.iter().flatten().map(|c| c.lookups).sum()
    }

    /// Merged hit-age histogram across levels (observability only).
    pub fn hit_age_histogram(&self) -> crate::obs::Histogram {
        let mut out = crate::obs::Histogram::new(&crate::obs::AGE_BUCKETS);
        for c in self.levels.iter().flatten() {
            out.merge(c.hit_age_histogram());
        }
        out
    }

    /// Resident bytes across levels (tables + mapping arrays).
    pub fn bytes(&self) -> usize {
        self.levels.iter().flatten().map(RingCache::bytes).sum()
    }

    /// Total live entries across levels (O(capacity); metrics only).
    pub fn len(&self) -> usize {
        self.levels.iter().flatten().map(RingCache::len).sum()
    }

    /// Whether no level holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Full serializable state (for checkpointing).
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            levels: self
                .levels
                .iter()
                .map(|l| l.as_ref().map(RingCache::snapshot))
                .collect(),
            t_stale: self.t_stale,
            hits: self.hits,
            misses: self.misses,
            admits: self.admits,
            keeps: self.keeps,
        }
    }

    /// Replace this cache's state with a snapshot taken from an
    /// identically-configured cache. The level layout (which levels are
    /// enabled) must match the current configuration; contents and
    /// counters are restored verbatim.
    pub fn restore(&mut self, snapshot: CacheSnapshot) -> Result<(), String> {
        if snapshot.levels.len() != self.levels.len() {
            return Err(format!(
                "cache snapshot has {} levels, config expects {}",
                snapshot.levels.len(),
                self.levels.len()
            ));
        }
        let mut levels = Vec::with_capacity(snapshot.levels.len());
        for (i, (snap, cur)) in snapshot.levels.into_iter().zip(&self.levels).enumerate() {
            match (snap, cur) {
                (Some(s), Some(cur)) => {
                    if s.table.cols() != cur.dim() {
                        return Err(format!(
                            "cache snapshot level {} dim {} != configured {}",
                            i + 1,
                            s.table.cols(),
                            cur.dim()
                        ));
                    }
                    levels.push(Some(RingCache::from_snapshot(s)?));
                }
                (None, None) => levels.push(None),
                _ => {
                    return Err(format!(
                        "cache snapshot level {} enabled-ness disagrees with config",
                        i + 1
                    ))
                }
            }
        }
        self.levels = levels;
        self.t_stale = snapshot.t_stale;
        self.hits = snapshot.hits;
        self.misses = snapshot.misses;
        self.admits = snapshot.admits;
        self.keeps = snapshot.keeps;
        // Snapshots never carry history or policy telemetry: restart both
        // (the same restart-on-resume contract as the ring lookup counters).
        self.scheduled_refreshes = 0;
        self.weighted_reads.set(0);
        self.predicted_reads.set(0);
        if self.history {
            for c in self.levels.iter_mut().flatten() {
                c.enable_history();
            }
        }
        Ok(())
    }

    /// Evict, across all levels, every entry stamped after iteration
    /// `iter`; returns the number dropped. Called after restoring a
    /// checkpoint older than the cache contents so the `t_stale` bound
    /// holds over the restored iteration counter (see
    /// [`RingCache::evict_newer_than`]).
    pub fn evict_newer_than(&mut self, iter: u32) -> u64 {
        self.levels
            .iter_mut()
            .flatten()
            .map(|c| c.evict_newer_than(iter))
            .sum()
    }

    /// Drop all cached entries and counters, keeping the configuration
    /// (used for graceful degradation when a checkpoint's cache segment is
    /// missing or corrupt: training resumes correct but cold).
    pub fn clear(&mut self) {
        for c in self.levels.iter_mut().flatten() {
            *c = RingCache::new(c.num_nodes(), c.capacity(), c.dim());
            if self.history {
                c.enable_history();
            }
        }
        self.hits = 0;
        self.misses = 0;
        self.admits = 0;
        self.keeps = 0;
        self.scheduled_refreshes = 0;
        self.weighted_reads.set(0);
        self.predicted_reads.set(0);
    }
}

/// Serializable state of a [`HistoricalCache`].
#[derive(Clone, Debug, PartialEq)]
pub struct CacheSnapshot {
    /// Per-level ring snapshots (`None` = level not cached).
    pub levels: Vec<Option<RingSnapshot>>,
    /// Staleness bound at snapshot time.
    pub t_stale: u32,
    /// Lookup-hit counter.
    pub hits: u64,
    /// Lookup-miss counter.
    pub misses: u64,
    /// Admission counter.
    pub admits: u64,
    /// Keep counter.
    pub keeps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> HistoricalCache {
        HistoricalCache::new(100, &[4, 4, 3], 50, 8, false, true)
    }

    #[test]
    fn top_level_not_cached_by_default() {
        let c = cache();
        assert!(c.level_enabled(1));
        assert!(c.level_enabled(2));
        assert!(!c.level_enabled(3));
    }

    #[test]
    fn disabled_cache_always_misses_silently() {
        let mut c = HistoricalCache::new(100, &[4, 4], 50, 8, false, false);
        assert!(!c.level_enabled(1));
        assert!(c.lookup(1, 5, 0).is_none());
        // Disabled levels do not count lookups.
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn admit_via_verdicts_then_hit() {
        let mut c = cache();
        let h = Matrix::from_fn(3, 4, |r, _| r as f32);
        let inputs = vec![(
            PolicyInput {
                node: 7,
                local: 2,
                grad_norm: 0.0,
                was_cached: false,
            },
            Verdict::Admit,
        )];
        c.apply_verdicts(1, &inputs, &h, 1);
        let slot = c.lookup(1, 7, 2).expect("hit after admit");
        let mut row = [0.0f32; 4];
        c.fetch_into(1, slot, &mut row);
        assert_eq!(row, [2.0, 2.0, 2.0, 2.0]);
        let s = c.stats();
        assert_eq!(s.admits, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn evict_verdict_removes_entry() {
        let mut c = cache();
        let h = Matrix::zeros(1, 4);
        let admit = vec![(
            PolicyInput {
                node: 3,
                local: 0,
                grad_norm: 0.0,
                was_cached: false,
            },
            Verdict::Admit,
        )];
        c.apply_verdicts(2, &admit, &h, 0);
        assert!(c.lookup(2, 3, 1).is_some());
        let evict = vec![(
            PolicyInput {
                node: 3,
                local: 0,
                grad_norm: 9.0,
                was_cached: true,
            },
            Verdict::Evict,
        )];
        c.apply_verdicts(2, &evict, &h, 1);
        assert!(c.lookup(2, 3, 1).is_none());
        assert_eq!(c.stats().grad_evictions, 1);
    }

    #[test]
    fn levels_are_independent() {
        let mut c = cache();
        let h = Matrix::full(1, 4, 5.0);
        let admit = vec![(
            PolicyInput {
                node: 9,
                local: 0,
                grad_norm: 0.0,
                was_cached: false,
            },
            Verdict::Admit,
        )];
        c.apply_verdicts(1, &admit, &h, 0);
        assert!(c.lookup(1, 9, 0).is_some());
        assert!(c.lookup(2, 9, 0).is_none());
    }

    #[test]
    fn bypass_misses_silently_and_drops_admissions() {
        let mut c = cache();
        let h = Matrix::full(1, 4, 3.0);
        let admit = vec![(
            PolicyInput {
                node: 5,
                local: 0,
                grad_norm: 0.0,
                was_cached: false,
            },
            Verdict::Admit,
        )];
        c.apply_verdicts(1, &admit, &h, 0);
        assert!(c.lookup(1, 5, 1).is_some());
        let stats_before = c.stats();
        c.set_bypass(true);
        assert!(c.bypassed());
        assert!(c.lookup(1, 5, 1).is_none(), "bypass misses");
        c.apply_verdicts(1, &admit, &h, 1);
        assert_eq!(c.stats(), stats_before, "no counters move under bypass");
        c.set_bypass(false);
        assert!(c.lookup(1, 5, 2).is_some(), "entry intact after bypass");
    }

    #[test]
    fn evict_newer_than_spans_levels() {
        let mut c = cache();
        let h = Matrix::zeros(1, 4);
        for level in 1..=2usize {
            for (node, now) in [(1u32, 2u32), (2, 8)] {
                let admit = vec![(
                    PolicyInput {
                        node,
                        local: 0,
                        grad_norm: 0.0,
                        was_cached: false,
                    },
                    Verdict::Admit,
                )];
                c.apply_verdicts(level, &admit, &h, now);
            }
        }
        assert_eq!(c.evict_newer_than(4), 2, "one future entry per level");
        for level in 1..=2usize {
            assert!(c.lookup(level, 1, 4).is_some());
            assert!(c.lookup(level, 2, 4).is_none());
        }
    }

    #[test]
    fn scheduled_refresh_declines_hit_without_evicting() {
        let mut c = cache(); // t_stale 50
        c.enable_history();
        let admit = |val: f32| {
            (
                Matrix::full(1, 4, val),
                vec![(
                    PolicyInput {
                        node: 7,
                        local: 0,
                        grad_norm: 0.0,
                        was_cached: false,
                    },
                    Verdict::Admit,
                )],
            )
        };
        let (h, v) = admit(1.0);
        c.apply_verdicts(1, &v, &h, 0);
        let policy = CoarseRefreshPolicy { period: 10 };
        // Under the period: served normally.
        assert!(c.lookup_with(1, 7, 5, &policy).is_some());
        // At the period: declined, counted as a miss + scheduled refresh,
        // but the entry stays live (the baseline still sees it).
        assert!(c.lookup_with(1, 7, 10, &policy).is_none());
        let s = c.stats();
        assert_eq!(s.scheduled_refreshes, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(c.lookups(), s.hits + s.misses, "obs invariant holds");
        assert!(c.lookup(1, 7, 10).is_some(), "entry not evicted");
        // The forced recompute re-admits in place, recording the update
        // delta and restarting the entry's age.
        let (h2, v2) = admit(3.0);
        c.apply_verdicts(1, &v2, &h2, 10);
        let slot = c.lookup_with(1, 7, 12, &policy).expect("refreshed entry");
        let mut row = [0.0f32; 4];
        c.fetch_into(1, slot, &mut row);
        assert_eq!(row, [3.0; 4]);
        // History recorded: a predictive read at age 2 extrapolates along
        // the (3.0 - 1.0)/10 per-iteration delta.
        let mut pred = [0.0f32; 4];
        c.read_into(1, slot, 12, &PredictivePolicy::for_t_stale(50), &mut pred);
        assert!(pred[0] > 3.0, "extrapolated forward, got {}", pred[0]);
        assert_eq!(c.stats().predicted_reads, 1);
    }

    #[test]
    fn baseline_lookup_never_schedules_refreshes() {
        let mut c = cache();
        let h = Matrix::full(1, 4, 1.0);
        let v = vec![(
            PolicyInput {
                node: 3,
                local: 0,
                grad_norm: 0.0,
                was_cached: false,
            },
            Verdict::Admit,
        )];
        c.apply_verdicts(1, &v, &h, 0);
        for now in 1..=50 {
            assert!(c.lookup(1, 3, now).is_some(), "in-bound hit at {now}");
        }
        assert_eq!(c.stats().scheduled_refreshes, 0);
        assert!(c.lookup(1, 3, 51).is_none(), "t_stale bound still evicts");
    }

    #[test]
    fn hit_rate_reflects_lookups() {
        let mut c = cache();
        let h = Matrix::zeros(1, 4);
        let admit = vec![(
            PolicyInput {
                node: 1,
                local: 0,
                grad_norm: 0.0,
                was_cached: false,
            },
            Verdict::Admit,
        )];
        c.apply_verdicts(1, &admit, &h, 0);
        c.lookup(1, 1, 1); // hit
        c.lookup(1, 2, 1); // miss
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
