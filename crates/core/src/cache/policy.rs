//! The pluggable cache-policy family (§4.1, Fig 6, plus the
//! staleness-control successors from PAPERS.md).
//!
//! FreshGNN's own criterion: after backward propagation, every node
//! present at layer `l` of the mini-batch has an embedding-gradient norm
//! `‖∇_{h_v^{(l)}} L‖`. The bottom `p_grad` fraction (smallest norms —
//! most stable) are *admitted* (computed nodes) or *kept* (cache-read
//! nodes); the top `1 − p_grad` fraction are *not admitted* / *evicted*.
//!
//! The [`CachePolicy`] trait generalizes that rule into a single
//! admission/keep/read decision surface with three hooks:
//!
//! * [`CachePolicy::verdicts`] — who enters/leaves the cache (the
//!   quantile machinery above, on a policy-chosen stability score);
//! * [`CachePolicy::read_weight`] / [`CachePolicy::wants_history`] — what
//!   a stale read-back is worth: VISAGNN-style staleness weighting scales
//!   the embedding down with age instead of trusting it outright, and the
//!   online dynamic-embedding *prediction* approach (arXiv:2308.13466)
//!   extrapolates the entry from its recorded update delta;
//! * [`CachePolicy::refresh_due`] — when a *live* cached entry should be
//!   refreshed ahead of expiry: the lookup declines the hit (without
//!   evicting) so the node is recomputed and re-admitted in place. The
//!   baseline never schedules one (entries refresh only at the `t_stale`
//!   expiry); a periodic schedule is coarser than per-iteration streaming
//!   updates ("Haste Makes Waste") but finer than expiry-only, trading
//!   admit traffic for freshness.
//!
//! Every policy is deterministic given its RNG: the only randomness is
//! the explicit `rng` argument, consumed solely by [`RandomPolicy`].

use fgnn_graph::NodeId;
use fgnn_tensor::Rng;

/// Which admission/read/refresh policy drives the cache. The gradient
/// criterion is FreshGNN's; the rest are the ablation criteria plus the
/// staleness-control successors (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's criterion: smallest gradient norms are stable.
    Gradient,
    /// Ablation: admit a uniformly random `p` fraction.
    Random,
    /// Adversarial ablation: admit the *largest* gradient norms (the
    /// least stable embeddings) — isolates how much the criterion's
    /// direction matters.
    InverseGradient,
    /// Serving-time criterion: the score is a request count and the
    /// *hottest* fraction is admitted (stability surrogate at inference
    /// time, where no gradients exist).
    Frequency,
    /// VISAGNN-style: gradient admission, but read-back embeddings are
    /// down-weighted linearly with their age instead of trusted outright.
    StalenessWeighted,
    /// Dynamic-embedding prediction: gradient admission, but a stale read
    /// is extrapolated from the entry's recorded update delta (entries
    /// refresh in place mid-window so the delta history exists).
    Predictive,
    /// Coarse refresh schedule: gradient admission, but a live entry is
    /// recomputed and rewritten in place once per refresh period instead
    /// of only at `t_stale` expiry.
    CoarseRefresh,
}

impl PolicyKind {
    /// Every variant, in declaration order — the single source of truth
    /// for CLI sweeps and the parse/display round-trip test.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Gradient,
        PolicyKind::Random,
        PolicyKind::InverseGradient,
        PolicyKind::Frequency,
        PolicyKind::StalenessWeighted,
        PolicyKind::Predictive,
        PolicyKind::CoarseRefresh,
    ];

    /// Stable CLI/export name (round-trips through [`std::str::FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Gradient => "gradient",
            PolicyKind::Random => "random",
            PolicyKind::InverseGradient => "inverse-gradient",
            PolicyKind::Frequency => "frequency",
            PolicyKind::StalenessWeighted => "staleness-weighted",
            PolicyKind::Predictive => "predictive",
            PolicyKind::CoarseRefresh => "coarse-refresh",
        }
    }

    /// Instantiate the policy behind this kind. `t_stale` parameterizes
    /// the staleness-dependent policies (weighting decay, refresh period);
    /// the admission-only kinds ignore it.
    pub fn build(self, t_stale: u32) -> Box<dyn CachePolicy> {
        match self {
            PolicyKind::Gradient => Box::new(GradientPolicy),
            PolicyKind::Random => Box::new(RandomPolicy),
            PolicyKind::InverseGradient => Box::new(InverseGradientPolicy),
            PolicyKind::Frequency => Box::new(FrequencyPolicy),
            PolicyKind::StalenessWeighted => Box::new(StalenessWeightedPolicy::default()),
            PolicyKind::Predictive => Box::new(PredictivePolicy::for_t_stale(t_stale)),
            PolicyKind::CoarseRefresh => Box::new(CoarseRefreshPolicy::for_t_stale(t_stale)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
                format!(
                    "unknown policy '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// One node's policy input for a layer.
#[derive(Clone, Copy, Debug)]
pub struct PolicyInput {
    /// Global node ID.
    pub node: NodeId,
    /// Row index of this node in the layer's representation matrix.
    pub local: u32,
    /// The stability score: `‖∇_{h_v} L‖` harvested from backward in
    /// training, the observed request count in serving.
    pub grad_norm: f32,
    /// Whether this iteration *read* the node from the cache (true) or
    /// computed it fresh (false).
    pub was_cached: bool,
}

/// The policy's verdict for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Fresh embedding, stable: check in.
    Admit,
    /// Cached embedding, still stable: leave it cached.
    Keep,
    /// Cached embedding, now unstable: check out.
    Evict,
    /// Fresh embedding, unstable: do not admit.
    Skip,
}

impl Verdict {
    /// Stable numeric code for span attributes and metric export.
    pub fn code(self) -> u64 {
        match self {
            Verdict::Admit => 0,
            Verdict::Keep => 1,
            Verdict::Evict => 2,
            Verdict::Skip => 3,
        }
    }

    /// Stable lowercase name for logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Admit => "admit",
            Verdict::Keep => "keep",
            Verdict::Evict => "evict",
            Verdict::Skip => "skip",
        }
    }
}

/// A cache policy: the single admission/keep/read/refresh decision
/// surface shared by both trainer families, the serving embedding store
/// and the benches. Implementations are stateless (all hooks take
/// `&self`); any randomness flows through the explicit `rng`.
pub trait CachePolicy: Send + Sync {
    /// Which [`PolicyKind`] this policy implements.
    fn kind(&self) -> PolicyKind;

    /// Stable display/export name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Admission/keep verdicts for one layer's nodes. `p` is the stable
    /// fraction; `rng` is consumed only by randomized policies, so
    /// deterministic policies leave the caller's stream untouched.
    fn verdicts(
        &self,
        inputs: &[PolicyInput],
        p: f32,
        rng: &mut Rng,
    ) -> Vec<(PolicyInput, Verdict)> {
        let _ = rng;
        gradient_policy(inputs, p)
    }

    /// Multiplicative weight applied to a read-back embedding of the
    /// given `age` (iterations since admission) under staleness bound
    /// `t_stale`. The baseline trusts every in-bound entry fully (1.0).
    fn read_weight(&self, age: u32, t_stale: u32) -> f32 {
        let _ = (age, t_stale);
        1.0
    }

    /// Whether the ring should record per-entry update deltas so stale
    /// reads can be extrapolated ([`crate::cache::RingCache`] history).
    fn wants_history(&self) -> bool {
        false
    }

    /// Whether a *live* cached entry of the given `age` (< the `t_stale`
    /// bound) is due for a scheduled refresh. When true, the lookup
    /// declines the hit **without evicting**: the node is recomputed this
    /// iteration and, if still stable, re-admitted over the live entry —
    /// a refresh-in-place that also records the update delta feeding
    /// [`CachePolicy::wants_history`] extrapolation. The baseline never
    /// schedules one: entries refresh only at expiry.
    fn refresh_due(&self, age: u32, t_stale: u32) -> bool {
        let _ = (age, t_stale);
        false
    }
}

/// The paper baseline: bottom-`p_grad` gradient norms are stable, every
/// in-bound read is trusted fully, every admit rewrites.
pub struct GradientPolicy;

impl CachePolicy for GradientPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Gradient
    }
}

/// Ablation: a uniformly random `p` fraction is stable.
pub struct RandomPolicy;

impl CachePolicy for RandomPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Random
    }

    fn verdicts(
        &self,
        inputs: &[PolicyInput],
        p: f32,
        rng: &mut Rng,
    ) -> Vec<(PolicyInput, Verdict)> {
        randomized_policy(inputs, p, rng)
    }
}

/// Adversarial ablation: the *largest* scores are stable.
pub struct InverseGradientPolicy;

impl CachePolicy for InverseGradientPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::InverseGradient
    }

    fn verdicts(
        &self,
        inputs: &[PolicyInput],
        p: f32,
        rng: &mut Rng,
    ) -> Vec<(PolicyInput, Verdict)> {
        let _ = rng;
        inverted_gradient_policy(inputs, p)
    }
}

/// Serving-time admission: keep the most *requested* embeddings instead
/// of the most *stable* ones.
///
/// Training admits by gradient norm because stability predicts reuse
/// value; at inference time there are no gradients, so request frequency
/// is the surrogate stability score — a hot node's embedding amortizes
/// its recompute over many requests exactly as a stable node's amortizes
/// over many iterations. `grad_norm` carries the observed request count
/// and the *top* `p_hot` fraction is admitted/kept.
pub struct FrequencyPolicy;

impl CachePolicy for FrequencyPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Frequency
    }

    fn verdicts(
        &self,
        inputs: &[PolicyInput],
        p: f32,
        rng: &mut Rng,
    ) -> Vec<(PolicyInput, Verdict)> {
        let _ = rng;
        inverted_gradient_policy(inputs, p)
    }
}

/// VISAGNN-style staleness-aware weighting: gradient admission, but a
/// read-back embedding is scaled by a weight that decays linearly from
/// 1.0 at age 0 to `floor` at age `t_stale`, so older history counts for
/// less instead of being trusted outright until the hard bound evicts it.
pub struct StalenessWeightedPolicy {
    /// Weight at the staleness bound (age = `t_stale`); fresher entries
    /// interpolate linearly toward 1.0.
    pub floor: f32,
}

impl Default for StalenessWeightedPolicy {
    fn default() -> Self {
        StalenessWeightedPolicy { floor: 0.5 }
    }
}

impl CachePolicy for StalenessWeightedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::StalenessWeighted
    }

    fn read_weight(&self, age: u32, t_stale: u32) -> f32 {
        if age == 0 {
            return 1.0;
        }
        let frac = age as f32 / t_stale.max(1) as f32;
        (1.0 - (1.0 - self.floor) * frac).clamp(self.floor.min(1.0), 1.0)
    }
}

/// Online dynamic-embedding prediction (arXiv:2308.13466): gradient
/// admission, but the ring records each entry's update deltas and an aged
/// read is extrapolated forward along the last one instead of served
/// as-is. A mid-window refresh schedule (`refresh_age`, half the
/// staleness bound) forces the in-place rewrites that *produce* those
/// deltas — without it the baseline only ever writes an entry once per
/// staleness window and there is no trajectory to extrapolate.
pub struct PredictivePolicy {
    /// Age at which a live entry is refreshed in place to record a delta.
    pub refresh_age: u32,
}

impl PredictivePolicy {
    /// Refresh at half the staleness bound (at least 1): one delta
    /// observation per window, leaving the second half to extrapolate.
    pub fn for_t_stale(t_stale: u32) -> Self {
        PredictivePolicy {
            refresh_age: (t_stale / 2).max(1),
        }
    }
}

impl CachePolicy for PredictivePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Predictive
    }

    fn wants_history(&self) -> bool {
        true
    }

    fn refresh_due(&self, age: u32, _t_stale: u32) -> bool {
        age >= self.refresh_age
    }
}

/// Coarse refresh schedule: gradient admission, but a live entry is
/// recomputed and rewritten in place once its age reaches `period` —
/// coarser than per-iteration streaming updates ("Haste Makes Waste"),
/// finer than the baseline's expiry-only refresh. Caps the worst-case
/// served age at `period` instead of `t_stale`, buying freshness with
/// extra recompute/admit traffic.
pub struct CoarseRefreshPolicy {
    /// Age at which a live entry's hit is declined so it refreshes.
    pub period: u32,
}

impl CoarseRefreshPolicy {
    /// A quarter of the staleness bound (at least 1): entries refresh a
    /// few times per staleness window instead of once at expiry.
    pub fn for_t_stale(t_stale: u32) -> Self {
        CoarseRefreshPolicy {
            period: (t_stale / 4).max(1),
        }
    }
}

impl CachePolicy for CoarseRefreshPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CoarseRefresh
    }

    fn refresh_due(&self, age: u32, _t_stale: u32) -> bool {
        age >= self.period
    }
}

/// Apply the `p_grad` criterion to one layer's nodes.
///
/// Returns `(node, local, verdict)` triples. Deterministic: ties on the
/// norm are broken by node ID.
pub fn gradient_policy(inputs: &[PolicyInput], p_grad: f32) -> Vec<(PolicyInput, Verdict)> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        inputs[a]
            .grad_norm
            .partial_cmp(&inputs[b].grad_norm)
            .expect("NaN gradient norm")
            .then(inputs[a].node.cmp(&inputs[b].node))
    });
    // Bottom p_grad fraction is stable.
    let n_stable = ((inputs.len() as f64) * p_grad as f64).round() as usize;
    let mut out = Vec::with_capacity(inputs.len());
    for (rank, &i) in order.iter().enumerate() {
        let x = inputs[i];
        let stable = rank < n_stable;
        let verdict = match (stable, x.was_cached) {
            (true, false) => Verdict::Admit,
            (true, true) => Verdict::Keep,
            (false, true) => Verdict::Evict,
            (false, false) => Verdict::Skip,
        };
        out.push((x, verdict));
    }
    out
}

/// The shared inverted-score combinator: run [`gradient_policy`] with the
/// score negated — "smallest norm is most stable" becomes "largest score
/// is most stable" — and un-negate the reported score on the way out, so
/// callers see their own values. Ties break by node ID either way.
///
/// This is the one place the negate-then-rank trick lives;
/// [`frequency_policy`], [`InverseGradientPolicy`] and
/// [`FrequencyPolicy`] are all this combinator.
pub fn inverted_gradient_policy(inputs: &[PolicyInput], p: f32) -> Vec<(PolicyInput, Verdict)> {
    let flipped: Vec<PolicyInput> = inputs
        .iter()
        .map(|x| PolicyInput {
            grad_norm: -x.grad_norm,
            ..*x
        })
        .collect();
    gradient_policy(&flipped, p)
        .into_iter()
        .map(|(x, v)| {
            (
                PolicyInput {
                    grad_norm: -x.grad_norm,
                    ..x
                },
                v,
            )
        })
        .collect()
}

/// Serving-time admission by request frequency — see [`FrequencyPolicy`].
/// `grad_norm` carries the observed request count and the *top* `p_hot`
/// fraction is admitted/kept.
pub fn frequency_policy(inputs: &[PolicyInput], p_hot: f32) -> Vec<(PolicyInput, Verdict)> {
    inverted_gradient_policy(inputs, p_hot)
}

/// The random criterion: replace every score with a uniform draw, then
/// rank. The returned `grad_norm` is the surrogate score (verdict
/// application only consumes `node`/`local`/`was_cached`).
fn randomized_policy(inputs: &[PolicyInput], p: f32, rng: &mut Rng) -> Vec<(PolicyInput, Verdict)> {
    let randomized: Vec<PolicyInput> = inputs
        .iter()
        .map(|x| PolicyInput {
            grad_norm: rng.uniform(),
            ..*x
        })
        .collect();
    gradient_policy(&randomized, p)
}

/// Apply the chosen kind's *admission* rule (compat shim over the
/// [`CachePolicy`] trait — the trait adds the read/refresh hooks on top
/// of exactly these verdicts). `rng` is only consumed by
/// [`PolicyKind::Random`].
pub fn apply_policy(
    kind: PolicyKind,
    inputs: &[PolicyInput],
    p: f32,
    rng: &mut Rng,
) -> Vec<(PolicyInput, Verdict)> {
    match kind {
        PolicyKind::Gradient
        | PolicyKind::StalenessWeighted
        | PolicyKind::Predictive
        | PolicyKind::CoarseRefresh => gradient_policy(inputs, p),
        PolicyKind::InverseGradient | PolicyKind::Frequency => inverted_gradient_policy(inputs, p),
        PolicyKind::Random => randomized_policy(inputs, p, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(node: NodeId, norm: f32, cached: bool) -> PolicyInput {
        PolicyInput {
            node,
            local: node,
            grad_norm: norm,
            was_cached: cached,
        }
    }

    fn verdict_of(out: &[(PolicyInput, Verdict)], node: NodeId) -> Verdict {
        out.iter().find(|(x, _)| x.node == node).unwrap().1
    }

    #[test]
    fn small_gradients_admitted_large_skipped() {
        let inputs = vec![
            input(0, 0.1, false),
            input(1, 0.2, false),
            input(2, 5.0, false),
            input(3, 9.0, false),
        ];
        let out = gradient_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 0), Verdict::Admit);
        assert_eq!(verdict_of(&out, 1), Verdict::Admit);
        assert_eq!(verdict_of(&out, 2), Verdict::Skip);
        assert_eq!(verdict_of(&out, 3), Verdict::Skip);
    }

    #[test]
    fn cached_nodes_kept_or_evicted() {
        // Mirrors Fig 6: cached node 3 has the larger gradient and is
        // evicted while computed node 2 is admitted.
        let inputs = vec![input(2, 0.1, false), input(3, 4.0, true)];
        let out = gradient_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 2), Verdict::Admit);
        assert_eq!(verdict_of(&out, 3), Verdict::Evict);
    }

    #[test]
    fn cached_node_with_small_gradient_is_kept() {
        let inputs = vec![input(0, 0.1, true), input(1, 5.0, false)];
        let out = gradient_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 0), Verdict::Keep);
        assert_eq!(verdict_of(&out, 1), Verdict::Skip);
    }

    #[test]
    fn p_grad_one_admits_everything() {
        let inputs = vec![input(0, 0.1, false), input(1, 99.0, true)];
        let out = gradient_policy(&inputs, 1.0);
        assert_eq!(verdict_of(&out, 0), Verdict::Admit);
        assert_eq!(verdict_of(&out, 1), Verdict::Keep);
    }

    #[test]
    fn p_grad_zero_admits_nothing() {
        let inputs = vec![input(0, 0.1, false), input(1, 0.2, true)];
        let out = gradient_policy(&inputs, 0.0);
        assert_eq!(verdict_of(&out, 0), Verdict::Skip);
        assert_eq!(verdict_of(&out, 1), Verdict::Evict);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(gradient_policy(&[], 0.9).is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_node_id() {
        let inputs = vec![input(5, 1.0, false), input(2, 1.0, false)];
        let out = gradient_policy(&inputs, 0.5);
        // Exactly one admitted; the smaller node ID wins the tie.
        assert_eq!(verdict_of(&out, 2), Verdict::Admit);
        assert_eq!(verdict_of(&out, 5), Verdict::Skip);
    }

    #[test]
    fn random_policy_admits_requested_fraction() {
        let inputs: Vec<PolicyInput> = (0..100).map(|i| input(i, i as f32, false)).collect();
        let mut rng = fgnn_tensor::Rng::new(5);
        let out = apply_policy(PolicyKind::Random, &inputs, 0.7, &mut rng);
        let admitted = out.iter().filter(|(_, v)| *v == Verdict::Admit).count();
        assert_eq!(admitted, 70);
    }

    #[test]
    fn inverse_policy_admits_largest_norms() {
        let inputs = vec![input(0, 0.1, false), input(1, 9.0, false)];
        let mut rng = fgnn_tensor::Rng::new(5);
        let out = apply_policy(PolicyKind::InverseGradient, &inputs, 0.5, &mut rng);
        assert_eq!(verdict_of(&out, 1), Verdict::Admit);
        assert_eq!(verdict_of(&out, 0), Verdict::Skip);
    }

    #[test]
    fn frequency_policy_admits_hottest_nodes() {
        // grad_norm carries request counts: 3 hot nodes, 3 cold.
        let inputs = vec![
            input(0, 40.0, false),
            input(1, 2.0, false),
            input(2, 31.0, true),
            input(3, 1.0, true),
            input(4, 25.0, false),
            input(5, 3.0, false),
        ];
        let out = frequency_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 0), Verdict::Admit);
        assert_eq!(verdict_of(&out, 2), Verdict::Keep);
        assert_eq!(verdict_of(&out, 4), Verdict::Admit);
        assert_eq!(verdict_of(&out, 1), Verdict::Skip);
        assert_eq!(verdict_of(&out, 3), Verdict::Evict);
        assert_eq!(verdict_of(&out, 5), Verdict::Skip);
        // The reported score is the caller's frequency, not the negated
        // internal surrogate.
        assert!(out.iter().all(|(x, _)| x.grad_norm >= 0.0));
    }

    #[test]
    fn frequency_ties_break_by_node_id() {
        let inputs = vec![input(9, 5.0, false), input(4, 5.0, false)];
        let out = frequency_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 4), Verdict::Admit);
        assert_eq!(verdict_of(&out, 9), Verdict::Skip);
    }

    #[test]
    fn gradient_kind_matches_direct_call() {
        let inputs = vec![input(0, 0.1, true), input(1, 5.0, false)];
        let mut rng = fgnn_tensor::Rng::new(5);
        let via_kind = apply_policy(PolicyKind::Gradient, &inputs, 0.5, &mut rng);
        let direct = gradient_policy(&inputs, 0.5);
        for ((a, va), (b, vb)) in via_kind.iter().zip(&direct) {
            assert_eq!(a.node, b.node);
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn inverse_policy_reports_unflipped_scores() {
        // The shared combinator un-negates on the way out for every user.
        let inputs = vec![input(0, 0.1, false), input(1, 9.0, false)];
        let out = inverted_gradient_policy(&inputs, 0.5);
        assert!(out.iter().all(|(x, _)| x.grad_norm >= 0.0));
    }

    #[test]
    fn kind_name_round_trips_exhaustively() {
        for kind in PolicyKind::ALL {
            let parsed: PolicyKind = kind.name().parse().expect("name parses back");
            assert_eq!(parsed, kind);
            assert_eq!(format!("{kind}"), kind.name());
            // Exhaustive match: adding a PolicyKind variant without a name,
            // a builder and an ALL entry fails to compile here.
            match kind {
                PolicyKind::Gradient
                | PolicyKind::Random
                | PolicyKind::InverseGradient
                | PolicyKind::Frequency
                | PolicyKind::StalenessWeighted
                | PolicyKind::Predictive
                | PolicyKind::CoarseRefresh => {}
            }
            assert_eq!(kind.build(20).kind(), kind, "builder returns its kind");
        }
        assert!("no-such-policy".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn trait_verdicts_match_apply_policy_for_every_kind() {
        let inputs: Vec<PolicyInput> = (0..40)
            .map(|i| input(i, (i * 7 % 13) as f32, i % 3 == 0))
            .collect();
        for kind in PolicyKind::ALL {
            let policy = kind.build(20);
            let mut rng_a = Rng::new(11);
            let mut rng_b = Rng::new(11);
            let via_trait = policy.verdicts(&inputs, 0.6, &mut rng_a);
            let via_shim = apply_policy(kind, &inputs, 0.6, &mut rng_b);
            assert_eq!(via_trait.len(), via_shim.len());
            for ((a, va), (b, vb)) in via_trait.iter().zip(&via_shim) {
                assert_eq!(a.node, b.node, "{kind}");
                assert_eq!(va, vb, "{kind}");
            }
            assert_eq!(
                rng_a.state(),
                rng_b.state(),
                "{kind}: trait and shim must consume the rng identically"
            );
        }
    }

    #[test]
    fn staleness_weight_decays_linearly_to_floor() {
        let p = StalenessWeightedPolicy { floor: 0.5 };
        assert_eq!(p.read_weight(0, 20), 1.0);
        assert!((p.read_weight(10, 20) - 0.75).abs() < 1e-6);
        assert!((p.read_weight(20, 20) - 0.5).abs() < 1e-6);
        // Past the bound (only reachable if a caller bypasses lookup's
        // eviction) the weight clamps at the floor.
        assert_eq!(p.read_weight(40, 20), 0.5);
        // t_stale = 0 must not divide by zero.
        assert!(p.read_weight(1, 0) >= 0.5);
    }

    #[test]
    fn coarse_refresh_fires_at_period() {
        let p = CoarseRefreshPolicy::for_t_stale(20); // period 5
        assert_eq!(p.period, 5);
        assert!(!p.refresh_due(0, 20), "fresh entry not due");
        assert!(!p.refresh_due(4, 20), "under the period");
        assert!(p.refresh_due(5, 20), "boundary is due");
        assert!(p.refresh_due(19, 20));
        // Degenerate t_stale: period clamps to 1, so any aged entry is due
        // but a same-iteration re-read is not.
        let p = CoarseRefreshPolicy::for_t_stale(0);
        assert_eq!(p.period, 1);
        assert!(p.refresh_due(1, 0));
        assert!(!p.refresh_due(0, 0), "same-iteration hit served");
    }

    #[test]
    fn predictive_refreshes_mid_window_and_wants_history() {
        let p = PredictivePolicy::for_t_stale(30); // refresh_age 15
        assert_eq!(p.refresh_age, 15);
        assert!(p.wants_history());
        assert!(!p.refresh_due(14, 30));
        assert!(p.refresh_due(15, 30), "mid-window refresh is due");
        // Degenerate t_stale still clamps to 1.
        assert_eq!(PredictivePolicy::for_t_stale(1).refresh_age, 1);
    }

    #[test]
    fn baseline_hooks_are_identity() {
        let p = GradientPolicy;
        assert_eq!(p.read_weight(19, 20), 1.0);
        assert!(!p.wants_history());
        assert!(!p.refresh_due(19, 20), "baseline never schedules");
        assert_eq!(p.name(), "gradient");
    }
}
