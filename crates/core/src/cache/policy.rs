//! The gradient-based admission/eviction criterion (§4.1, Fig 6).
//!
//! After backward propagation, every node present at layer `l` of the
//! mini-batch has an embedding-gradient norm `‖∇_{h_v^{(l)}} L‖`. The
//! bottom `p_grad` fraction (smallest norms — most stable) are *admitted*
//! (computed nodes) or *kept* (cache-read nodes); the top `1 − p_grad`
//! fraction are *not admitted* / *evicted*.

use fgnn_graph::NodeId;
use fgnn_tensor::Rng;

/// Which stability criterion drives admission/eviction (the gradient
/// criterion is FreshGNN's; the others exist for the ablation study).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's criterion: smallest gradient norms are stable.
    Gradient,
    /// Ablation: admit a uniformly random `p` fraction.
    Random,
    /// Adversarial ablation: admit the *largest* gradient norms (the
    /// least stable embeddings) — isolates how much the criterion's
    /// direction matters.
    InverseGradient,
}

/// One node's policy input for a layer.
#[derive(Clone, Copy, Debug)]
pub struct PolicyInput {
    /// Global node ID.
    pub node: NodeId,
    /// Row index of this node in the layer's representation matrix.
    pub local: u32,
    /// `‖∇_{h_v} L‖` harvested from backward.
    pub grad_norm: f32,
    /// Whether this iteration *read* the node from the cache (true) or
    /// computed it fresh (false).
    pub was_cached: bool,
}

/// The policy's verdict for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Fresh embedding, stable: check in.
    Admit,
    /// Cached embedding, still stable: leave it cached.
    Keep,
    /// Cached embedding, now unstable: check out.
    Evict,
    /// Fresh embedding, unstable: do not admit.
    Skip,
}

/// Apply the `p_grad` criterion to one layer's nodes.
///
/// Returns `(node, local, verdict)` triples. Deterministic: ties on the
/// norm are broken by node ID.
pub fn gradient_policy(inputs: &[PolicyInput], p_grad: f32) -> Vec<(PolicyInput, Verdict)> {
    if inputs.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        inputs[a]
            .grad_norm
            .partial_cmp(&inputs[b].grad_norm)
            .expect("NaN gradient norm")
            .then(inputs[a].node.cmp(&inputs[b].node))
    });
    // Bottom p_grad fraction is stable.
    let n_stable = ((inputs.len() as f64) * p_grad as f64).round() as usize;
    let mut out = Vec::with_capacity(inputs.len());
    for (rank, &i) in order.iter().enumerate() {
        let x = inputs[i];
        let stable = rank < n_stable;
        let verdict = match (stable, x.was_cached) {
            (true, false) => Verdict::Admit,
            (true, true) => Verdict::Keep,
            (false, true) => Verdict::Evict,
            (false, false) => Verdict::Skip,
        };
        out.push((x, verdict));
    }
    out
}

/// Serving-time admission: keep the most *requested* embeddings instead
/// of the most *stable* ones.
///
/// Training admits by gradient norm because stability predicts reuse
/// value; at inference time there are no gradients, so request frequency
/// is the surrogate stability score — a hot node's embedding amortizes
/// its recompute over many requests exactly as a stable node's amortizes
/// over many iterations. `grad_norm` carries the observed request count
/// and the *top* `p_hot` fraction is admitted/kept (ties broken by node
/// ID, so verdicts are deterministic for equal-frequency nodes).
pub fn frequency_policy(inputs: &[PolicyInput], p_hot: f32) -> Vec<(PolicyInput, Verdict)> {
    // Reuse the gradient machinery with the score negated: "smallest
    // norm is most stable" becomes "largest frequency is most stable".
    let flipped: Vec<PolicyInput> = inputs
        .iter()
        .map(|x| PolicyInput {
            grad_norm: -x.grad_norm,
            ..*x
        })
        .collect();
    gradient_policy(&flipped, p_hot)
        .into_iter()
        .map(|(x, v)| {
            (
                PolicyInput {
                    grad_norm: -x.grad_norm,
                    ..x
                },
                v,
            )
        })
        .collect()
}

/// Apply the chosen criterion. `rng` is only consumed by
/// [`PolicyKind::Random`].
pub fn apply_policy(
    kind: PolicyKind,
    inputs: &[PolicyInput],
    p: f32,
    rng: &mut Rng,
) -> Vec<(PolicyInput, Verdict)> {
    match kind {
        PolicyKind::Gradient => gradient_policy(inputs, p),
        // For the ablation variants the returned `grad_norm` is the
        // surrogate stability score (negated / randomized); verdict
        // application only consumes `node`/`local`/`was_cached`, which the
        // quantile machinery carries through unchanged.
        PolicyKind::InverseGradient => {
            let flipped: Vec<PolicyInput> = inputs
                .iter()
                .map(|x| PolicyInput {
                    grad_norm: -x.grad_norm,
                    ..*x
                })
                .collect();
            gradient_policy(&flipped, p)
        }
        PolicyKind::Random => {
            let randomized: Vec<PolicyInput> = inputs
                .iter()
                .map(|x| PolicyInput {
                    grad_norm: rng.uniform(),
                    ..*x
                })
                .collect();
            gradient_policy(&randomized, p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(node: NodeId, norm: f32, cached: bool) -> PolicyInput {
        PolicyInput {
            node,
            local: node,
            grad_norm: norm,
            was_cached: cached,
        }
    }

    fn verdict_of(out: &[(PolicyInput, Verdict)], node: NodeId) -> Verdict {
        out.iter().find(|(x, _)| x.node == node).unwrap().1
    }

    #[test]
    fn small_gradients_admitted_large_skipped() {
        let inputs = vec![
            input(0, 0.1, false),
            input(1, 0.2, false),
            input(2, 5.0, false),
            input(3, 9.0, false),
        ];
        let out = gradient_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 0), Verdict::Admit);
        assert_eq!(verdict_of(&out, 1), Verdict::Admit);
        assert_eq!(verdict_of(&out, 2), Verdict::Skip);
        assert_eq!(verdict_of(&out, 3), Verdict::Skip);
    }

    #[test]
    fn cached_nodes_kept_or_evicted() {
        // Mirrors Fig 6: cached node 3 has the larger gradient and is
        // evicted while computed node 2 is admitted.
        let inputs = vec![input(2, 0.1, false), input(3, 4.0, true)];
        let out = gradient_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 2), Verdict::Admit);
        assert_eq!(verdict_of(&out, 3), Verdict::Evict);
    }

    #[test]
    fn cached_node_with_small_gradient_is_kept() {
        let inputs = vec![input(0, 0.1, true), input(1, 5.0, false)];
        let out = gradient_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 0), Verdict::Keep);
        assert_eq!(verdict_of(&out, 1), Verdict::Skip);
    }

    #[test]
    fn p_grad_one_admits_everything() {
        let inputs = vec![input(0, 0.1, false), input(1, 99.0, true)];
        let out = gradient_policy(&inputs, 1.0);
        assert_eq!(verdict_of(&out, 0), Verdict::Admit);
        assert_eq!(verdict_of(&out, 1), Verdict::Keep);
    }

    #[test]
    fn p_grad_zero_admits_nothing() {
        let inputs = vec![input(0, 0.1, false), input(1, 0.2, true)];
        let out = gradient_policy(&inputs, 0.0);
        assert_eq!(verdict_of(&out, 0), Verdict::Skip);
        assert_eq!(verdict_of(&out, 1), Verdict::Evict);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(gradient_policy(&[], 0.9).is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_node_id() {
        let inputs = vec![input(5, 1.0, false), input(2, 1.0, false)];
        let out = gradient_policy(&inputs, 0.5);
        // Exactly one admitted; the smaller node ID wins the tie.
        assert_eq!(verdict_of(&out, 2), Verdict::Admit);
        assert_eq!(verdict_of(&out, 5), Verdict::Skip);
    }

    #[test]
    fn random_policy_admits_requested_fraction() {
        let inputs: Vec<PolicyInput> = (0..100).map(|i| input(i, i as f32, false)).collect();
        let mut rng = fgnn_tensor::Rng::new(5);
        let out = apply_policy(PolicyKind::Random, &inputs, 0.7, &mut rng);
        let admitted = out.iter().filter(|(_, v)| *v == Verdict::Admit).count();
        assert_eq!(admitted, 70);
    }

    #[test]
    fn inverse_policy_admits_largest_norms() {
        let inputs = vec![input(0, 0.1, false), input(1, 9.0, false)];
        let mut rng = fgnn_tensor::Rng::new(5);
        let out = apply_policy(PolicyKind::InverseGradient, &inputs, 0.5, &mut rng);
        assert_eq!(verdict_of(&out, 1), Verdict::Admit);
        assert_eq!(verdict_of(&out, 0), Verdict::Skip);
    }

    #[test]
    fn frequency_policy_admits_hottest_nodes() {
        // grad_norm carries request counts: 3 hot nodes, 3 cold.
        let inputs = vec![
            input(0, 40.0, false),
            input(1, 2.0, false),
            input(2, 31.0, true),
            input(3, 1.0, true),
            input(4, 25.0, false),
            input(5, 3.0, false),
        ];
        let out = frequency_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 0), Verdict::Admit);
        assert_eq!(verdict_of(&out, 2), Verdict::Keep);
        assert_eq!(verdict_of(&out, 4), Verdict::Admit);
        assert_eq!(verdict_of(&out, 1), Verdict::Skip);
        assert_eq!(verdict_of(&out, 3), Verdict::Evict);
        assert_eq!(verdict_of(&out, 5), Verdict::Skip);
        // The reported score is the caller's frequency, not the negated
        // internal surrogate.
        assert!(out.iter().all(|(x, _)| x.grad_norm >= 0.0));
    }

    #[test]
    fn frequency_ties_break_by_node_id() {
        let inputs = vec![input(9, 5.0, false), input(4, 5.0, false)];
        let out = frequency_policy(&inputs, 0.5);
        assert_eq!(verdict_of(&out, 4), Verdict::Admit);
        assert_eq!(verdict_of(&out, 9), Verdict::Skip);
    }

    #[test]
    fn gradient_kind_matches_direct_call() {
        let inputs = vec![input(0, 0.1, true), input(1, 5.0, false)];
        let mut rng = fgnn_tensor::Rng::new(5);
        let via_kind = apply_policy(PolicyKind::Gradient, &inputs, 0.5, &mut rng);
        let direct = gradient_policy(&inputs, 0.5);
        for ((a, va), (b, vb)) in via_kind.iter().zip(&direct) {
            assert_eq!(a.node, b.node);
            assert_eq!(va, vb);
        }
    }
}
