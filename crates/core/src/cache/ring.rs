//! Ring-buffer embedding table with an O(|V|) node→slot mapping array
//! (§4.2, Fig 7).
//!
//! * **Lookup** is O(1): `slot_of[node]` indexes the table; a hit requires
//!   the reverse map to agree (the slot wasn't overwritten) and the entry
//!   to be within the staleness bound.
//! * **Admission** writes at the ring header and advances it; whatever
//!   occupied that row is implicitly evicted — the paper's "newly added
//!   embeddings overwrite the out-dated ones". (The paper resets the
//!   header every `t_stale` iterations; a modulo ring plus the lookup-time
//!   staleness check is behaviorally identical and simpler to size.)
//! * **Gradient eviction** just invalidates the mapping entry; the slot is
//!   recycled by the ring, "no physical deletion".
//! * If the header would overwrite an entry *younger* than `t_stale` (the
//!   paper's corner case), the table grows — "initialize the cache table
//!   with a fixed size and reallocate on-demand".

use crate::obs::{Histogram, AGE_BUCKETS};
use fgnn_graph::NodeId;
use fgnn_tensor::Matrix;

const INVALID: u32 = u32::MAX;

/// Extrapolation is clamped to this many multiples of the recorded update
/// delta — a short observed gap must not launch a long-stale entry
/// arbitrarily far along its last direction.
const MAX_EXTRAPOLATION: f32 = 4.0;

/// Optional per-slot update history for the predictive policy: the last
/// refresh's embedding delta and the iteration gap it was observed over.
/// Telemetry-like — never part of [`RingSnapshot`] (a resumed run
/// restarts with empty history exactly as the hit counters restart).
struct RingHistory {
    /// `capacity x dim`: row `s` holds `new - old` of slot `s`'s last
    /// in-place refresh.
    delta: Matrix,
    /// Iterations the delta was observed over (0 = no usable history).
    gap: Vec<u32>,
}

/// Per-layer ring-buffer cache of node embeddings.
pub struct RingCache {
    /// Embedding table, `capacity x dim`.
    table: Matrix,
    /// node → slot (INVALID when absent).
    slot_of: Vec<u32>,
    /// slot → node (INVALID when free).
    node_of: Vec<u32>,
    /// slot → iteration of admission.
    stamp: Vec<u32>,
    head: usize,
    dim: usize,
    /// Eviction counters for the experiment reports.
    pub stale_evictions: u64,
    /// Entries explicitly evicted by the gradient criterion.
    pub grad_evictions: u64,
    /// Entries overwritten by the advancing ring header.
    pub overwrites: u64,
    /// Total lookups (observability only; `hits + (lookups - hits)` must
    /// reconcile with the owning [`crate::cache::HistoricalCache`]'s
    /// hit/miss counters — pinned by `tests/obs_invariants.rs`). Not
    /// checkpointed: a resumed run restarts telemetry while the
    /// checkpointed [`crate::cache::CacheStats`] counters stay exact.
    pub lookups: u64,
    /// Lookups that returned a live, fresh entry (observability only; not
    /// checkpointed).
    pub hits: u64,
    /// Age (iterations since admission) of every served hit (observability
    /// only; not checkpointed).
    hit_age: Histogram,
    /// Update-delta history, enabled only by policies that extrapolate
    /// stale reads ([`RingCache::enable_history`]); not checkpointed.
    history: Option<RingHistory>,
}

impl RingCache {
    /// A cache over node IDs `0..num_nodes` with `capacity` rows of
    /// dimension `dim`.
    pub fn new(num_nodes: usize, capacity: usize, dim: usize) -> Self {
        let capacity = capacity.max(1);
        RingCache {
            table: Matrix::zeros(capacity, dim),
            slot_of: vec![INVALID; num_nodes],
            node_of: vec![INVALID; capacity],
            stamp: vec![0; capacity],
            head: 0,
            dim,
            stale_evictions: 0,
            grad_evictions: 0,
            overwrites: 0,
            lookups: 0,
            hits: 0,
            hit_age: Histogram::new(&AGE_BUCKETS),
            history: None,
        }
    }

    /// Start recording per-slot update deltas (idempotent). Enabled by
    /// history-wanting policies ([`crate::cache::policy::CachePolicy::wants_history`]);
    /// costs one extra `capacity x dim` matrix.
    pub fn enable_history(&mut self) {
        if self.history.is_none() {
            self.history = Some(RingHistory {
                delta: Matrix::zeros(self.capacity(), self.dim),
                gap: vec![0; self.capacity()],
            });
        }
    }

    /// Whether update-delta history is being recorded.
    pub fn history_enabled(&self) -> bool {
        self.history.is_some()
    }

    /// Admission stamp of `node`'s live entry (`None` when absent or
    /// dangling). Lets refresh scheduling ask "how old is the copy I would
    /// overwrite?" without touching the lookup counters.
    pub fn stamp_of(&self, node: NodeId) -> Option<u32> {
        let slot = self.slot_of[node as usize];
        if slot == INVALID || self.node_of[slot as usize] != node {
            return None;
        }
        Some(self.stamp[slot as usize])
    }

    /// Extrapolate `dst` (a copy of `slot`'s row) forward by `age`
    /// iterations along the slot's recorded update delta:
    /// `dst += delta * min(age / gap, MAX_EXTRAPOLATION)`. Returns whether
    /// any prediction was applied (history disabled or no recorded
    /// refresh ⇒ `false`, `dst` untouched).
    pub fn extrapolate_into(&self, slot: u32, age: u32, dst: &mut [f32]) -> bool {
        let Some(hist) = &self.history else {
            return false;
        };
        let s = slot as usize;
        let gap = hist.gap[s];
        if gap == 0 || age == 0 {
            return false;
        }
        let k = (age as f32 / gap as f32).min(MAX_EXTRAPOLATION);
        for (x, &d) in dst.iter_mut().zip(hist.delta.row(s)) {
            *x += k * d;
        }
        true
    }

    /// Record the delta of an in-place refresh of `slot` (call *before*
    /// overwriting the row).
    fn record_refresh_history(&mut self, slot: usize, row: &[f32], now: u32) {
        let Some(hist) = self.history.as_mut() else {
            return;
        };
        let gap = now.saturating_sub(self.stamp[slot]);
        if gap == 0 {
            // Same-iteration rewrite carries no velocity signal.
            return;
        }
        let old = self.table.row(slot);
        for (d, (&new, &prev)) in hist.delta.row_mut(slot).iter_mut().zip(row.iter().zip(old)) {
            *d = new - prev;
        }
        hist.gap[slot] = gap;
    }

    /// Clear `slot`'s history (a fresh occupant has no observed delta).
    fn reset_history(&mut self, slot: usize) {
        if let Some(hist) = self.history.as_mut() {
            hist.delta.row_mut(slot).iter_mut().for_each(|x| *x = 0.0);
            hist.gap[slot] = 0;
        }
    }

    /// Age histogram (iterations since admission) of every hit served.
    pub fn hit_age_histogram(&self) -> &Histogram {
        &self.hit_age
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current table rows.
    pub fn capacity(&self) -> usize {
        self.node_of.len()
    }

    /// Size of the node ID space this cache maps.
    pub fn num_nodes(&self) -> usize {
        self.slot_of.len()
    }

    /// Number of live entries (O(capacity); used by tests/metrics only).
    pub fn len(&self) -> usize {
        self.node_of
            .iter()
            .enumerate()
            .filter(|&(s, &n)| n != INVALID && self.slot_of[n as usize] == s as u32)
            .count()
    }

    /// Whether the cache holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `node` at iteration `now` under staleness bound `t_stale`.
    /// A stale entry is evicted on the spot and counts as a miss.
    pub fn lookup(&mut self, node: NodeId, now: u32, t_stale: u32) -> Option<u32> {
        self.lookups += 1;
        let slot = self.slot_of[node as usize];
        if slot == INVALID {
            return None;
        }
        let s = slot as usize;
        if self.node_of[s] != node {
            // Slot was recycled for another node; mapping is dangling.
            self.slot_of[node as usize] = INVALID;
            return None;
        }
        let age = now.saturating_sub(self.stamp[s]);
        if age > t_stale {
            self.slot_of[node as usize] = INVALID;
            self.node_of[s] = INVALID;
            self.stale_evictions += 1;
            return None;
        }
        self.hits += 1;
        self.hit_age.observe(age as f64);
        Some(slot)
    }

    /// Read the embedding row of a slot returned by [`RingCache::lookup`].
    pub fn fetch(&self, slot: u32) -> &[f32] {
        self.table.row(slot as usize)
    }

    /// Age at `now` of the entry in `slot` (same clock units as the
    /// `lookup` stamps). The serving read path records the exact age of
    /// every embedding it serves so the per-request staleness budget — the
    /// serving analogue of the training `t_stale` invariant — is provable
    /// rather than assumed.
    pub fn age_of(&self, slot: u32, now: u32) -> u32 {
        now.saturating_sub(self.stamp[slot as usize])
    }

    /// Admit (or refresh) `node` with `row` at iteration `now`.
    ///
    /// Grows the table when the ring header catches up with entries still
    /// inside the staleness window.
    pub fn admit(&mut self, node: NodeId, row: &[f32], now: u32, t_stale: u32) {
        debug_assert_eq!(row.len(), self.dim);
        // Refresh in place if already cached.
        let existing = self.slot_of[node as usize];
        if existing != INVALID && self.node_of[existing as usize] == node {
            self.record_refresh_history(existing as usize, row, now);
            self.table.set_row(existing as usize, row);
            self.stamp[existing as usize] = now;
            return;
        }

        // Grow if the header points at a still-fresh entry (corner case in
        // §4.2; "reallocate on-demand").
        let occupant = self.node_of[self.head];
        if occupant != INVALID
            && self.slot_of[occupant as usize] == self.head as u32
            && now.saturating_sub(self.stamp[self.head]) <= t_stale
        {
            self.grow();
        }

        let h = self.head;
        let occupant = self.node_of[h];
        if occupant != INVALID {
            if self.slot_of[occupant as usize] == h as u32 {
                self.slot_of[occupant as usize] = INVALID;
            }
            self.overwrites += 1;
        }
        self.reset_history(h);
        self.table.set_row(h, row);
        self.node_of[h] = node;
        self.stamp[h] = now;
        self.slot_of[node as usize] = h as u32;
        self.head = (h + 1) % self.capacity();
    }

    /// Admit (or refresh) `node` with `row` at `now` **without ever
    /// growing**: the header row is overwritten even when its occupant is
    /// still fresh. The serving engine uses this so cache capacity stays a
    /// real experiment knob under any admission burst; training keeps the
    /// §4.2 grow-on-demand semantics of [`RingCache::admit`].
    pub fn admit_fixed(&mut self, node: NodeId, row: &[f32], now: u32) {
        debug_assert_eq!(row.len(), self.dim);
        let existing = self.slot_of[node as usize];
        if existing != INVALID && self.node_of[existing as usize] == node {
            self.record_refresh_history(existing as usize, row, now);
            self.table.set_row(existing as usize, row);
            self.stamp[existing as usize] = now;
            return;
        }
        let h = self.head;
        let occupant = self.node_of[h];
        if occupant != INVALID {
            if self.slot_of[occupant as usize] == h as u32 {
                self.slot_of[occupant as usize] = INVALID;
            }
            self.overwrites += 1;
        }
        self.reset_history(h);
        self.table.set_row(h, row);
        self.node_of[h] = node;
        self.stamp[h] = now;
        self.slot_of[node as usize] = h as u32;
        self.head = (h + 1) % self.capacity();
    }

    /// Evict `node` by the gradient criterion: invalidate the mapping
    /// entry only (the ring recycles the slot).
    pub fn evict(&mut self, node: NodeId) {
        let slot = self.slot_of[node as usize];
        if slot != INVALID {
            if self.node_of[slot as usize] == node {
                self.node_of[slot as usize] = INVALID;
            }
            self.slot_of[node as usize] = INVALID;
            self.grad_evictions += 1;
        }
    }

    /// Evict every live entry stamped *after* iteration `iter`, returning
    /// how many were dropped (counted as staleness evictions).
    ///
    /// Needed when restoring a checkpoint taken at `iter` into a cache
    /// whose contents ran past it: a future-stamped entry would otherwise
    /// report `age = now.saturating_sub(stamp) = 0` forever and silently
    /// violate the `t_stale` bound after the rollback.
    pub fn evict_newer_than(&mut self, iter: u32) -> u64 {
        let mut dropped = 0u64;
        for s in 0..self.node_of.len() {
            let node = self.node_of[s];
            if node == INVALID || self.slot_of[node as usize] != s as u32 {
                continue;
            }
            if self.stamp[s] > iter {
                self.slot_of[node as usize] = INVALID;
                self.node_of[s] = INVALID;
                self.stale_evictions += 1;
                dropped += 1;
            }
        }
        dropped
    }

    /// Double the table (preserving slots `0..old_capacity` in place; the
    /// header continues into the fresh region).
    fn grow(&mut self) {
        let old_cap = self.capacity();
        let new_cap = old_cap * 2;
        let mut table = Matrix::zeros(new_cap, self.dim);
        table.as_mut_slice()[..old_cap * self.dim].copy_from_slice(self.table.as_slice());
        self.table = table;
        self.node_of.resize(new_cap, INVALID);
        self.stamp.resize(new_cap, 0);
        if let Some(hist) = &mut self.history {
            let mut delta = Matrix::zeros(new_cap, self.dim);
            delta.as_mut_slice()[..old_cap * self.dim].copy_from_slice(hist.delta.as_slice());
            hist.delta = delta;
            hist.gap.resize(new_cap, 0);
        }
        // Continue writing into the newly added free region.
        self.head = old_cap;
    }

    /// Resident bytes of the table plus the mapping array (and the
    /// update-delta history, when enabled).
    pub fn bytes(&self) -> usize {
        let hist = self
            .history
            .as_ref()
            .map_or(0, |h| h.delta.as_slice().len() * 4 + h.gap.len() * 4);
        self.table.as_slice().len() * 4 + self.slot_of.len() * 4 + self.node_of.len() * 8 + hist
    }

    /// Full serializable state (for checkpointing).
    pub fn snapshot(&self) -> RingSnapshot {
        RingSnapshot {
            table: self.table.clone(),
            slot_of: self.slot_of.clone(),
            node_of: self.node_of.clone(),
            stamp: self.stamp.clone(),
            head: self.head,
            stale_evictions: self.stale_evictions,
            grad_evictions: self.grad_evictions,
            overwrites: self.overwrites,
        }
    }

    /// Rebuild a cache from a [`RingSnapshot`], validating structural
    /// consistency (a corrupt-but-checksum-passing snapshot must not
    /// produce out-of-bounds slots later).
    pub fn from_snapshot(s: RingSnapshot) -> Result<RingCache, String> {
        let cap = s.table.rows();
        if cap == 0 {
            return Err("ring snapshot with empty table".into());
        }
        if s.node_of.len() != cap || s.stamp.len() != cap {
            return Err(format!(
                "ring snapshot maps disagree with capacity {cap}: node_of {} stamp {}",
                s.node_of.len(),
                s.stamp.len()
            ));
        }
        if s.head >= cap {
            return Err(format!("ring head {} out of range {cap}", s.head));
        }
        if let Some(&bad) = s
            .slot_of
            .iter()
            .find(|&&slot| slot != INVALID && slot as usize >= cap)
        {
            return Err(format!("slot_of entry {bad} out of range {cap}"));
        }
        if let Some(&bad) = s
            .node_of
            .iter()
            .find(|&&node| node != INVALID && node as usize >= s.slot_of.len())
        {
            return Err(format!("node_of entry {bad} out of node range"));
        }
        Ok(RingCache {
            dim: s.table.cols(),
            table: s.table,
            slot_of: s.slot_of,
            node_of: s.node_of,
            stamp: s.stamp,
            head: s.head,
            stale_evictions: s.stale_evictions,
            grad_evictions: s.grad_evictions,
            overwrites: s.overwrites,
            // Telemetry restarts on resume (not part of the snapshot);
            // so does update-delta history (re-enabled by the owner).
            lookups: 0,
            hits: 0,
            hit_age: Histogram::new(&AGE_BUCKETS),
            history: None,
        })
    }
}

/// Serializable state of a [`RingCache`] (see [`RingCache::snapshot`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RingSnapshot {
    /// Embedding table, `capacity x dim`.
    pub table: Matrix,
    /// node → slot map.
    pub slot_of: Vec<u32>,
    /// slot → node map.
    pub node_of: Vec<u32>,
    /// slot → admission iteration.
    pub stamp: Vec<u32>,
    /// Ring header position.
    pub head: usize,
    /// Staleness-eviction counter.
    pub stale_evictions: u64,
    /// Gradient-eviction counter.
    pub grad_evictions: u64,
    /// Ring-overwrite counter.
    pub overwrites: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32, dim: usize) -> Vec<f32> {
        vec![v; dim]
    }

    #[test]
    fn admit_fixed_overwrites_instead_of_growing() {
        let mut c = RingCache::new(32, 4, 2);
        // Eight same-tick admissions into a 4-slot ring: `admit` would
        // reallocate (every occupant is fresh at `now`); the fixed-size
        // variant wraps and overwrites instead.
        for n in 0..8u32 {
            c.admit_fixed(n, &row(n as f32, 2), 5);
        }
        assert_eq!(c.capacity(), 4, "capacity is pinned");
        assert_eq!(c.overwrites, 4);
        for n in 0..4u32 {
            assert!(c.lookup(n, 5, 0).is_none(), "node {n} was overwritten");
        }
        let slot = c.lookup(6, 5, 0).expect("recent admit survives");
        assert_eq!(c.fetch(slot), &[6.0, 6.0]);
        // Refreshing a live node updates in place, no header advance.
        c.admit_fixed(6, &row(9.0, 2), 6);
        let slot = c.lookup(6, 6, 0).expect("refreshed");
        assert_eq!(c.fetch(slot), &[9.0, 9.0]);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn admit_then_lookup_round_trips() {
        let mut c = RingCache::new(10, 4, 3);
        c.admit(7, &row(1.5, 3), 1, 100);
        let slot = c.lookup(7, 2, 100).expect("hit");
        assert_eq!(c.fetch(slot), &[1.5, 1.5, 1.5]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn missing_node_is_a_miss() {
        let mut c = RingCache::new(10, 4, 3);
        assert!(c.lookup(3, 0, 100).is_none());
    }

    #[test]
    fn stale_entry_evicted_on_lookup() {
        let mut c = RingCache::new(10, 4, 2);
        c.admit(1, &row(1.0, 2), 0, 5);
        assert!(c.lookup(1, 5, 5).is_some(), "within bound");
        assert!(c.lookup(1, 6, 5).is_none(), "beyond bound");
        assert_eq!(c.stale_evictions, 1);
        assert!(c.lookup(1, 5, 5).is_none(), "gone after eviction");
    }

    #[test]
    fn gradient_eviction_invalidates_mapping_only() {
        let mut c = RingCache::new(10, 4, 2);
        c.admit(1, &row(1.0, 2), 0, 100);
        c.evict(1);
        assert!(c.lookup(1, 0, 100).is_none());
        assert_eq!(c.grad_evictions, 1);
        // Slot is recycled naturally by later admissions.
        for n in 2..6 {
            c.admit(n, &row(n as f32, 2), 1, 100);
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn refresh_updates_in_place_without_consuming_a_slot() {
        let mut c = RingCache::new(10, 2, 2);
        c.admit(1, &row(1.0, 2), 0, 100);
        c.admit(1, &row(9.0, 2), 3, 100);
        let slot = c.lookup(1, 3, 100).unwrap();
        assert_eq!(c.fetch(slot), &[9.0, 9.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 2, "no growth for refresh");
    }

    #[test]
    fn ring_overwrites_oldest_when_entries_are_stale() {
        let mut c = RingCache::new(10, 2, 1);
        c.admit(1, &row(1.0, 1), 0, 3);
        c.admit(2, &row(2.0, 1), 0, 3);
        // Entries from iter 0 are beyond staleness at iter 10 → overwrite,
        // no growth.
        c.admit(3, &row(3.0, 1), 10, 3);
        c.admit(4, &row(4.0, 1), 10, 3);
        assert_eq!(c.capacity(), 2);
        assert!(c.lookup(1, 10, 3).is_none());
        assert!(c.lookup(3, 10, 3).is_some());
        assert_eq!(c.overwrites, 2);
    }

    #[test]
    fn grows_rather_than_overwriting_fresh_entries() {
        let mut c = RingCache::new(10, 2, 1);
        c.admit(1, &row(1.0, 1), 0, 100);
        c.admit(2, &row(2.0, 1), 0, 100);
        c.admit(3, &row(3.0, 1), 1, 100); // would overwrite node 1 (fresh)
        assert_eq!(c.capacity(), 4);
        assert!(c.lookup(1, 1, 100).is_some());
        assert!(c.lookup(2, 1, 100).is_some());
        assert!(c.lookup(3, 1, 100).is_some());
    }

    #[test]
    fn dangling_mapping_after_recycle_is_cleaned() {
        let mut c = RingCache::new(10, 2, 1);
        c.admit(1, &row(1.0, 1), 0, 0); // t_stale 0: immediately stale next iter
        c.admit(2, &row(2.0, 1), 1, 0);
        c.admit(3, &row(3.0, 1), 2, 0); // recycles node 1's slot
        assert!(c.lookup(1, 2, 0).is_none());
        assert!(c.lookup(3, 2, 0).is_some());
    }

    #[test]
    fn bytes_accounting_grows_with_capacity() {
        let c = RingCache::new(100, 8, 4);
        let small = c.bytes();
        let c2 = RingCache::new(100, 16, 4);
        assert!(c2.bytes() > small);
    }

    #[test]
    fn t_stale_one_wrap_around_recycles_without_growth() {
        // The tightest live staleness bound: entries survive exactly one
        // iteration. Drive the header around the ring several times and
        // check it recycles slots instead of growing.
        let mut c = RingCache::new(20, 4, 1);
        for now in 0..16u32 {
            // At iteration `now`, entries stamped `now - 1` are still
            // fresh; entries stamped `now - 2` are overwritable.
            c.admit(now, &row(now as f32, 1), now, 1);
            assert!(c.lookup(now, now, 1).is_some(), "fresh at admit time");
            if now >= 1 {
                assert!(
                    c.lookup(now - 1, now, 1).is_some(),
                    "iter {now}: age-1 entry still within t_stale = 1"
                );
            }
            if now >= 2 {
                assert!(
                    c.lookup(now - 2, now, 1).is_none(),
                    "iter {now}: age-2 entry must be stale"
                );
            }
        }
        // One wrap with everything stale: capacity 4 admits 16 entries by
        // recycling. (Growth can legally trigger once while the ring warms
        // up, but it must not compound every wrap.)
        assert!(c.capacity() <= 8, "capacity {}", c.capacity());
        assert!(c.overwrites + c.stale_evictions > 8);
    }

    #[test]
    fn admission_racing_eviction_on_same_slot() {
        // Gradient-evict a node, then admit a different node into the very
        // slot the ring recycles. The old node's mapping must not resurrect
        // or alias the new occupant.
        let mut c = RingCache::new(10, 2, 1);
        c.admit(1, &row(1.0, 1), 0, 100);
        let slot1 = c.lookup(1, 0, 100).unwrap();
        c.evict(1);
        // Head is at slot 1; fill it, then the next admit recycles slot 0
        // (node 1's old slot) because its occupant mapping was invalidated.
        c.admit(2, &row(2.0, 1), 1, 100);
        c.admit(3, &row(3.0, 1), 1, 100);
        let slot3 = c.lookup(3, 1, 100).unwrap();
        assert_eq!(slot3, slot1, "ring reuses the evicted slot, no growth");
        assert_eq!(c.capacity(), 2);
        assert!(c.lookup(1, 1, 100).is_none(), "evicted node stays evicted");
        assert_eq!(c.fetch(slot3), &[3.0]);
        // And re-admitting the evicted node works like any fresh admission.
        c.admit(1, &row(9.0, 1), 2, 100);
        let s = c.lookup(1, 2, 100).unwrap();
        assert_eq!(c.fetch(s), &[9.0]);
    }

    #[test]
    fn lookup_exactly_at_staleness_boundary_is_a_hit() {
        // age == t_stale is fresh; age == t_stale + 1 is stale — the
        // boundary itself must hit (the paper reuses embeddings *up to*
        // t_stale iterations old).
        for t_stale in [0u32, 1, 7] {
            let mut c = RingCache::new(4, 4, 1);
            c.admit(0, &row(1.0, 1), 10, t_stale);
            assert!(
                c.lookup(0, 10 + t_stale, t_stale).is_some(),
                "t_stale {t_stale}: boundary age is a hit"
            );
            assert!(
                c.lookup(0, 10 + t_stale + 1, t_stale).is_none(),
                "t_stale {t_stale}: boundary + 1 is stale"
            );
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_behavior() {
        let mut c = RingCache::new(30, 4, 2);
        for n in 0..10u32 {
            c.admit(n, &row(n as f32, 2), n, 3);
        }
        c.evict(4);
        let restored = RingCache::from_snapshot(c.snapshot()).expect("valid snapshot");
        // Same live set, same counters, and identical future behavior.
        assert_eq!(restored.len(), c.len());
        assert_eq!(restored.grad_evictions, c.grad_evictions);
        assert_eq!(restored.overwrites, c.overwrites);
        let (mut a, mut b) = (c, restored);
        for n in 10..20u32 {
            a.admit(n, &row(n as f32, 2), n, 3);
            b.admit(n, &row(n as f32, 2), n, 3);
            assert_eq!(a.lookup(n - 1, n, 3), b.lookup(n - 1, n, 3));
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn snapshot_validation_rejects_corrupt_maps() {
        let c = RingCache::new(10, 4, 2);
        let mut s = c.snapshot();
        s.head = 99;
        assert!(RingCache::from_snapshot(s).is_err());
        let mut s = RingCache::new(10, 4, 2).snapshot();
        s.slot_of[3] = 77; // points past capacity
        assert!(RingCache::from_snapshot(s).is_err());
        let mut s = RingCache::new(10, 4, 2).snapshot();
        s.node_of.truncate(2);
        assert!(RingCache::from_snapshot(s).is_err());
    }

    #[test]
    fn snapshot_validation_rejects_capacity_mismatch() {
        // A stamp array shorter than the table's row count.
        let mut s = RingCache::new(10, 4, 2).snapshot();
        s.stamp.truncate(3);
        let err = RingCache::from_snapshot(s)
            .err()
            .expect("snapshot must be rejected");
        assert!(err.contains("capacity"), "{err}");
        // node_of longer than the table's row count.
        let mut s = RingCache::new(10, 4, 2).snapshot();
        s.node_of.push(INVALID);
        let err = RingCache::from_snapshot(s)
            .err()
            .expect("snapshot must be rejected");
        assert!(err.contains("capacity"), "{err}");
        // A table with no rows at all (e.g. a zeroed length field).
        let mut s = RingCache::new(10, 4, 2).snapshot();
        s.table = Matrix::zeros(0, 2);
        s.node_of.clear();
        s.stamp.clear();
        s.head = 0;
        let err = RingCache::from_snapshot(s)
            .err()
            .expect("snapshot must be rejected");
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn snapshot_validation_rejects_slot_map_entries_out_of_node_range() {
        // node_of must only name nodes inside the cache's ID space —
        // a corrupted entry would index out of bounds on later evictions.
        let mut s = RingCache::new(10, 4, 2).snapshot();
        s.node_of[0] = 10; // valid nodes are 0..10
        let err = RingCache::from_snapshot(s)
            .err()
            .expect("snapshot must be rejected");
        assert!(err.contains("node range"), "{err}");
    }

    #[test]
    fn restore_rejects_dim_mismatch_against_config() {
        // Dim validation lives in HistoricalCache::restore (the ring takes
        // its dim from the snapshot's table): a snapshot whose embedding
        // width disagrees with the configured cache must be rejected.
        let donor = crate::cache::HistoricalCache::new(10, &[3, 3], 5, 4, true, true);
        let snapshot = donor.snapshot();
        let mut wrong_dim = crate::cache::HistoricalCache::new(10, &[4, 4], 5, 4, true, true);
        let err = wrong_dim.restore(snapshot).unwrap_err();
        assert!(err.contains("dim"), "{err}");
    }

    #[test]
    fn evict_newer_than_drops_only_future_stamps() {
        let mut c = RingCache::new(20, 8, 1);
        for n in 0..6u32 {
            c.admit(n, &row(n as f32, 1), n, 100);
        }
        // Roll back to iteration 3: entries stamped 4 and 5 must go.
        let dropped = c.evict_newer_than(3);
        assert_eq!(dropped, 2);
        for n in 0..4u32 {
            assert!(c.lookup(n, 3, 100).is_some(), "node {n} kept");
        }
        for n in 4..6u32 {
            assert!(c.lookup(n, 3, 100).is_none(), "node {n} evicted");
        }
        // Idempotent once the future entries are gone.
        assert_eq!(c.evict_newer_than(3), 0);
    }

    #[test]
    fn history_records_refresh_delta_and_extrapolates() {
        let mut c = RingCache::new(10, 4, 2);
        c.enable_history();
        assert!(c.history_enabled());
        c.admit(1, &[1.0, 2.0], 0, 100);
        // A fresh admit has no delta: extrapolation is a no-op.
        let slot = c.lookup(1, 2, 100).unwrap();
        let mut row = [0.0f32; 2];
        row.copy_from_slice(c.fetch(slot));
        assert!(!c.extrapolate_into(slot, 2, &mut row));
        assert_eq!(row, [1.0, 2.0]);
        // Refresh after 2 iterations: delta (+0.4, -0.2) over gap 2.
        c.admit(1, &[1.4, 1.8], 2, 100);
        let slot = c.lookup(1, 6, 100).unwrap();
        row.copy_from_slice(c.fetch(slot));
        // age 4 = 2x the observed gap: extrapolate two deltas forward.
        assert!(c.extrapolate_into(slot, 4, &mut row));
        assert!((row[0] - 2.2).abs() < 1e-6, "{row:?}");
        assert!((row[1] - 1.4).abs() < 1e-6, "{row:?}");
    }

    #[test]
    fn history_extrapolation_is_clamped() {
        let mut c = RingCache::new(10, 4, 1);
        c.enable_history();
        c.admit(3, &[0.0], 0, 1000);
        c.admit(3, &[1.0], 1, 1000); // delta +1 over gap 1
        let slot = c.lookup(3, 100, 1000).unwrap();
        let mut row = [0.0f32];
        row.copy_from_slice(c.fetch(slot));
        c.extrapolate_into(slot, 99, &mut row);
        // min(99/1, 4) = 4 deltas, not 99.
        assert!((row[0] - 5.0).abs() < 1e-6, "{row:?}");
    }

    #[test]
    fn history_resets_when_slot_is_recycled() {
        let mut c = RingCache::new(10, 2, 1);
        c.enable_history();
        c.admit(1, &[1.0], 0, 1);
        c.admit(1, &[3.0], 1, 1); // delta +2 over gap 1
                                  // Ring the slot away to a new node (old entries stale at now=10).
        c.admit(2, &[7.0], 10, 1);
        c.admit(3, &[8.0], 10, 1);
        let slot = c.lookup(2, 10, 1).or_else(|| c.lookup(3, 10, 1)).unwrap();
        let mut row = [0.0f32];
        row.copy_from_slice(c.fetch(slot));
        assert!(
            !c.extrapolate_into(slot, 1, &mut row),
            "fresh occupant must not inherit the old delta"
        );
    }

    #[test]
    fn stamp_of_reports_live_entries_only() {
        let mut c = RingCache::new(10, 4, 1);
        assert_eq!(c.stamp_of(1), None);
        c.admit(1, &[1.0], 7, 100);
        assert_eq!(c.stamp_of(1), Some(7));
        c.evict(1);
        assert_eq!(c.stamp_of(1), None, "evicted entry has no stamp");
        // stamp_of never moves the lookup telemetry.
        assert_eq!(c.lookups, 0);
    }

    #[test]
    fn history_survives_growth() {
        let mut c = RingCache::new(10, 2, 1);
        c.enable_history();
        c.admit(1, &[0.0], 0, 100);
        c.admit(1, &[2.0], 2, 100); // delta +2 over gap 2
        c.admit(2, &[5.0], 2, 100);
        c.admit(3, &[6.0], 2, 100); // forces growth (occupants fresh)
        assert!(c.capacity() > 2);
        let slot = c.lookup(1, 4, 100).unwrap();
        let mut row = [0.0f32];
        row.copy_from_slice(c.fetch(slot));
        assert!(c.extrapolate_into(slot, 2, &mut row));
        assert!((row[0] - 4.0).abs() < 1e-6, "{row:?}");
    }

    #[test]
    fn lookup_telemetry_reconciles_hits_and_misses() {
        let mut c = RingCache::new(10, 4, 2);
        c.admit(1, &row(1.0, 2), 0, 5);
        assert!(c.lookup(1, 3, 5).is_some()); // hit at age 3
        assert!(c.lookup(2, 3, 5).is_none()); // absent
        assert!(c.lookup(1, 9, 5).is_none()); // stale
        assert_eq!(c.lookups, 3);
        assert_eq!(c.hits, 1);
        let h = c.hit_age_histogram();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3.0);
        // Telemetry restarts across snapshot/restore.
        let restored = RingCache::from_snapshot(c.snapshot()).unwrap();
        assert_eq!(restored.lookups, 0);
        assert_eq!(restored.hit_age_histogram().count(), 0);
    }
}
