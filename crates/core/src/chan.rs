//! Minimal bounded multi-producer single-consumer channel.
//!
//! Replaces `crossbeam::channel::bounded` for the async sampler so the
//! workspace carries no registry dependencies (the tier-1 gate must build
//! with no network access). Semantics match what the sampler needs:
//!
//! * `send` blocks while the buffer is full (the paper's GPU-memory
//!   backpressure) and fails once the receiver is gone, so producer
//!   threads drain out instead of deadlocking;
//! * `recv` blocks while the buffer is empty and fails once every sender
//!   is gone *and* the buffer is drained — which is how the consumer
//!   detects worker death.
//!
//! Built on `std::sync::{Mutex, Condvar}`; fairness is whatever the OS
//! gives us, which is fine for a work queue whose items are reordered by
//! batch index downstream anyway.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when the receiver was dropped.
/// Carries the unsent value back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the deadline; senders are still alive.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct State<T> {
    buf: VecDeque<T>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// Producer half of a bounded channel. Cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer half of a bounded channel. Single owner.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Create a bounded channel with room for `cap` queued items (`cap >= 1`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            senders: 1,
            rx_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue `value`. Fails (returning
    /// the value) if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        loop {
            if !st.rx_alive {
                return Err(SendError(value));
            }
            if st.buf.len() < st.cap {
                st.buf.push_back(value);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self.inner.not_full.wait(st).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            // Wake a consumer blocked on an empty queue so it observes
            // disconnection.
            drop(st);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until an item arrives. Fails once the buffer is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.not_empty.wait(st).expect("channel poisoned");
        }
    }

    /// [`Receiver::recv`] with a deadline: blocks at most `dur`, returning
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time (the
    /// straggler-detection primitive the hedged sampler is built on).
    pub fn recv_timeout(&self, dur: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(v) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            // Spurious wakeups just re-loop against the absolute deadline.
            let (guard, _) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .expect("channel poisoned");
            st = guard;
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("channel poisoned");
        st.rx_alive = false;
        // Unstick any producer blocked on a full queue.
        drop(st);
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1, "buffered items still drain");
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = bounded(1);
        drop(rx);
        let err = tx.send(7).unwrap_err();
        assert_eq!(err.0, 7, "value handed back");
    }

    #[test]
    fn full_queue_blocks_until_consumed() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the consumer drains slot 0
            2
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(h.join().unwrap(), 2);
    }

    #[test]
    fn dropping_receiver_unblocks_full_senders() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1).is_err());
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap(), "blocked sender must error out");
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u32>(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded(3);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut n = 0;
        while rx.recv().is_ok() {
            n += 1;
        }
        assert_eq!(n, 400);
        for h in handles {
            h.join().unwrap();
        }
    }
}
