//! Deterministic checkpoint/resume for the trainer.
//!
//! Long training runs must survive preemption: the checkpoint captures
//! *everything* that feeds the training stream — model parameters,
//! optimizer moments, the trainer RNG state, the `(epoch, iteration)`
//! cursor, the traffic ledger, the static feature cache and the historical
//! embedding cache — so a resumed run replays the exact batch stream and
//! finishes with bitwise-identical parameters (tested in
//! `tests/checkpoint_resume.rs`).
//!
//! ## Format (version 1)
//!
//! Hand-rolled little-endian binary — the workspace builds offline with no
//! serialization dependency:
//!
//! ```text
//! magic   b"FGNNCKPT"           8 bytes
//! version u32                   currently 1
//! core    u64 len, payload, u64 FNV-1a checksum
//! cache   u64 len, payload, u64 FNV-1a checksum
//! ```
//!
//! The **core** segment (params, optimizer, RNG, cursor, counters, static
//! cache) must decode and checksum exactly — corruption there is a hard
//! [`CheckpointError`]. The **cache** segment holds only the historical
//! embedding cache, which is an accelerator, not correctness state: if it
//! is missing or corrupt the load still succeeds with
//! [`Checkpoint::cache`]` = None` and `cache_degraded = true`, and the
//! trainer resumes with a cold cache (see DESIGN.md "Fault model &
//! recovery").

use crate::cache::{CacheSnapshot, RingSnapshot};
use fgnn_memsim::TrafficCounters;
use fgnn_nn::model::Arch;
use fgnn_nn::OptimizerState;
use fgnn_tensor::Matrix;
use std::fmt;
use std::path::Path;

/// File magic.
pub const MAGIC: [u8; 8] = *b"FGNNCKPT";
/// Current format version. v2 added the NIC byte/time fields to the
/// traffic-counter segment (cluster simulation).
pub const VERSION: u32 = 2;

/// Why a checkpoint failed to save or load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file's format version is not readable by this build.
    UnsupportedVersion(u32),
    /// A segment's checksum does not match its payload.
    ChecksumMismatch {
        /// Which segment failed (`"core"` / `"cache"`).
        segment: &'static str,
    },
    /// The file ended before a declared segment/field was complete.
    Truncated,
    /// A payload decoded but violates a structural invariant.
    Malformed(String),
    /// The checkpoint is valid but belongs to a differently-shaped
    /// trainer (arch/dims mismatch).
    ShapeMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a FreshGNN checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch { segment } => {
                write!(f, "checkpoint {segment} segment failed its checksum")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::ShapeMismatch(m) => {
                write!(f, "checkpoint does not fit this trainer: {m}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A fully-decoded trainer checkpoint.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Model architecture (sanity-checked on restore).
    pub arch: Arch,
    /// Layer dimensions `[in, hidden.., out]` (sanity-checked on restore).
    pub dims: Vec<usize>,
    /// Flat model parameters ([`fgnn_nn::Model::export_parameters`] order).
    pub params: Vec<f32>,
    /// Optimizer moments and counters.
    pub optimizer: OptimizerState,
    /// Trainer RNG state — resuming continues the exact shuffle/sample
    /// stream.
    pub rng_state: [u64; 4],
    /// Completed epochs at checkpoint time.
    pub epoch: u32,
    /// Global iteration cursor at checkpoint time.
    pub iter: u32,
    /// Cumulative traffic/time ledger.
    pub counters: TrafficCounters,
    /// Static feature cache residency bitmap.
    pub static_resident: Vec<bool>,
    /// Historical embedding cache contents; `None` when the segment was
    /// missing or corrupt (graceful degradation — resume cold).
    pub cache: Option<CacheSnapshot>,
    /// Whether the cache segment had to be dropped during load.
    pub cache_degraded: bool,
}

impl Checkpoint {
    /// Serialize to the version-1 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let core = encode_core(self);
        let cache = encode_cache(self.cache.as_ref());
        let mut out = Vec::with_capacity(core.len() + cache.len() + 48);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        for seg in [&core, &cache] {
            out.extend_from_slice(&(seg.len() as u64).to_le_bytes());
            out.extend_from_slice(seg);
            out.extend_from_slice(&fnv1a(seg).to_le_bytes());
        }
        out
    }

    /// Decode a checkpoint. Core-segment problems are hard errors; a bad
    /// cache segment degrades (`cache = None`, `cache_degraded = true`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader::new(bytes);
        if r.take(8)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let core = read_segment(&mut r).ok_or(CheckpointError::Truncated)?;
        let core = core.ok_or(CheckpointError::ChecksumMismatch { segment: "core" })?;
        let mut ckpt = decode_core(&core)?;
        // Cache segment: any failure here — truncation, checksum, decode —
        // degrades instead of erroring.
        ckpt.cache = match read_segment(&mut r) {
            Some(Some(payload)) => decode_cache(&payload).ok().flatten(),
            _ => None,
        };
        ckpt.cache_degraded = ckpt.cache.is_none();
        Ok(ckpt)
    }

    /// Write to `path` (atomically via a sibling temp file, so a crash
    /// mid-save never leaves a half-written checkpoint in place).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and decode from `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::from_bytes(&std::fs::read(path)?)
    }
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Read one `len + payload + checksum` segment. Outer `None` = truncated;
/// inner `None` = checksum mismatch.
fn read_segment(r: &mut Reader<'_>) -> Option<Option<Vec<u8>>> {
    let len = r.u64().ok()? as usize;
    let payload = r.take(len).ok()?.to_vec();
    let want = r.u64().ok()?;
    Some((fnv1a(&payload) == want).then_some(payload))
}

// ---------------------------------------------------------------- encoding

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_slice(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    fn u32_slice(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }
    fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &x in m.as_slice() {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    fn bools(&mut self, v: &[bool]) {
        // Bit-packed: the static-cache bitmap is O(|V|).
        self.u64(v.len() as u64);
        let mut byte = 0u8;
        for (i, &b) in v.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !v.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Guard a declared element count against the bytes actually left, so
    /// a corrupt length cannot trigger a huge allocation.
    fn checked_len(&self, n: u64, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = n as usize;
        if n.checked_mul(elem_bytes)
            .is_none_or(|total| self.pos + total > self.bytes.len())
        {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }
    fn f32_slice(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u64()?;
        let n = self.checked_len(n, 4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn u32_slice(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.u64()?;
        let n = self.checked_len(n, 4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.u64()?;
        let cols = self.u64()?;
        let n = self.checked_len(rows.saturating_mul(cols), 4)?;
        if rows != 0 && n / rows as usize != cols as usize {
            return Err(CheckpointError::Malformed("matrix shape overflow".into()));
        }
        let raw = self.take(n * 4)?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Matrix::from_vec(rows as usize, cols as usize, data))
    }
    fn bools(&mut self) -> Result<Vec<bool>, CheckpointError> {
        let n = self.u64()? as usize;
        let nbytes = n.div_ceil(8);
        if self.pos + nbytes > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let raw = self.take(nbytes)?;
        Ok((0..n).map(|i| raw[i / 8] & (1 << (i % 8)) != 0).collect())
    }
}

fn encode_arch(a: Arch) -> u8 {
    match a {
        Arch::Gcn => 0,
        Arch::Sage => 1,
        Arch::Gat => 2,
    }
}

fn decode_arch(b: u8) -> Result<Arch, CheckpointError> {
    match b {
        0 => Ok(Arch::Gcn),
        1 => Ok(Arch::Sage),
        2 => Ok(Arch::Gat),
        _ => Err(CheckpointError::Malformed(format!("unknown arch tag {b}"))),
    }
}

fn encode_counters(w: &mut Writer, c: &TrafficCounters) {
    w.u64(c.host_to_gpu_bytes);
    w.u64(c.gpu_to_gpu_bytes);
    w.u64(c.cache_hit_bytes);
    w.u64(c.index_bytes);
    w.u64(c.num_transfers);
    w.f64(c.transfer_seconds);
    w.f64(c.compute_seconds);
    w.f64(c.sample_seconds);
    w.f64(c.prune_seconds);
    w.u64(c.retries);
    w.f64(c.retry_seconds);
    w.u64(c.failed_transfers);
    w.u64(c.nic_bytes);
    w.f64(c.nic_seconds);
}

fn decode_counters(r: &mut Reader<'_>) -> Result<TrafficCounters, CheckpointError> {
    Ok(TrafficCounters {
        host_to_gpu_bytes: r.u64()?,
        gpu_to_gpu_bytes: r.u64()?,
        cache_hit_bytes: r.u64()?,
        index_bytes: r.u64()?,
        num_transfers: r.u64()?,
        transfer_seconds: r.f64()?,
        compute_seconds: r.f64()?,
        sample_seconds: r.f64()?,
        prune_seconds: r.f64()?,
        retries: r.u64()?,
        retry_seconds: r.f64()?,
        failed_transfers: r.u64()?,
        nic_bytes: r.u64()?,
        nic_seconds: r.f64()?,
    })
}

fn encode_core(c: &Checkpoint) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(encode_arch(c.arch));
    w.u64(c.dims.len() as u64);
    for &d in &c.dims {
        w.u64(d as u64);
    }
    w.f32_slice(&c.params);
    w.u64(c.optimizer.counters.len() as u64);
    for &x in &c.optimizer.counters {
        w.u64(x);
    }
    w.u64(c.optimizer.tensors.len() as u64);
    for m in &c.optimizer.tensors {
        w.matrix(m);
    }
    for &s in &c.rng_state {
        w.u64(s);
    }
    w.u32(c.epoch);
    w.u32(c.iter);
    encode_counters(&mut w, &c.counters);
    w.bools(&c.static_resident);
    w.buf
}

fn decode_core(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let mut r = Reader::new(bytes);
    let arch = decode_arch(r.u8()?)?;
    let ndims = r.u64()?;
    let ndims = r.checked_len(ndims, 8)?;
    let dims = (0..ndims)
        .map(|_| r.u64().map(|d| d as usize))
        .collect::<Result<Vec<_>, _>>()?;
    if dims.len() < 2 {
        return Err(CheckpointError::Malformed(format!(
            "{} layer dims; a model needs at least 2",
            dims.len()
        )));
    }
    let params = r.f32_slice()?;
    let ncounters = r.u64()?;
    let ncounters = r.checked_len(ncounters, 8)?;
    let counters_vec = (0..ncounters)
        .map(|_| r.u64())
        .collect::<Result<Vec<_>, _>>()?;
    let ntensors = r.u64()? as usize;
    let mut tensors = Vec::new();
    for _ in 0..ntensors {
        tensors.push(r.matrix()?);
    }
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = r.u64()?;
    }
    if rng_state.iter().all(|&w| w == 0) {
        return Err(CheckpointError::Malformed("all-zero RNG state".into()));
    }
    let epoch = r.u32()?;
    let iter = r.u32()?;
    let counters = decode_counters(&mut r)?;
    let static_resident = r.bools()?;
    Ok(Checkpoint {
        arch,
        dims,
        params,
        optimizer: OptimizerState {
            counters: counters_vec,
            tensors,
        },
        rng_state,
        epoch,
        iter,
        counters,
        static_resident,
        cache: None,
        cache_degraded: false,
    })
}

fn encode_ring(w: &mut Writer, s: &RingSnapshot) {
    w.matrix(&s.table);
    w.u32_slice(&s.slot_of);
    w.u32_slice(&s.node_of);
    w.u32_slice(&s.stamp);
    w.u64(s.head as u64);
    w.u64(s.stale_evictions);
    w.u64(s.grad_evictions);
    w.u64(s.overwrites);
}

fn decode_ring(r: &mut Reader<'_>) -> Result<RingSnapshot, CheckpointError> {
    Ok(RingSnapshot {
        table: r.matrix()?,
        slot_of: r.u32_slice()?,
        node_of: r.u32_slice()?,
        stamp: r.u32_slice()?,
        head: r.u64()? as usize,
        stale_evictions: r.u64()?,
        grad_evictions: r.u64()?,
        overwrites: r.u64()?,
    })
}

fn encode_cache(snapshot: Option<&CacheSnapshot>) -> Vec<u8> {
    let mut w = Writer::new();
    let Some(s) = snapshot else {
        w.u8(0);
        return w.buf;
    };
    w.u8(1);
    w.u64(s.levels.len() as u64);
    for level in &s.levels {
        match level {
            Some(ring) => {
                w.u8(1);
                encode_ring(&mut w, ring);
            }
            None => w.u8(0),
        }
    }
    w.u32(s.t_stale);
    w.u64(s.hits);
    w.u64(s.misses);
    w.u64(s.admits);
    w.u64(s.keeps);
    w.buf
}

fn decode_cache(bytes: &[u8]) -> Result<Option<CacheSnapshot>, CheckpointError> {
    let mut r = Reader::new(bytes);
    if r.u8()? == 0 {
        return Ok(None);
    }
    let nlevels = r.u64()? as usize;
    let mut levels = Vec::new();
    for _ in 0..nlevels {
        levels.push(if r.u8()? == 1 {
            Some(decode_ring(&mut r)?)
        } else {
            None
        });
    }
    Ok(Some(CacheSnapshot {
        levels,
        t_stale: r.u32()?,
        hits: r.u64()?,
        misses: r.u64()?,
        admits: r.u64()?,
        keeps: r.u64()?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            arch: Arch::Sage,
            dims: vec![16, 8, 4],
            params: (0..32).map(|i| i as f32 * 0.5).collect(),
            optimizer: OptimizerState {
                counters: vec![7],
                tensors: vec![Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32)],
            },
            rng_state: [1, 2, 3, 4],
            epoch: 3,
            iter: 17,
            counters: {
                let mut c = TrafficCounters::new();
                c.host_to_gpu_bytes = 12345;
                c.transfer_seconds = 0.5;
                c.retries = 2;
                c.retry_seconds = 0.01;
                c
            },
            static_resident: (0..37).map(|i| i % 3 == 0).collect(),
            cache: Some(CacheSnapshot {
                levels: vec![
                    Some(crate::cache::RingCache::new(37, 4, 8).snapshot()),
                    None,
                ],
                t_stale: 50,
                hits: 9,
                misses: 4,
                admits: 6,
                keeps: 2,
            }),
            cache_degraded: false,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let c = sample_checkpoint();
        let d = Checkpoint::from_bytes(&c.to_bytes()).expect("round trip");
        assert_eq!(d.arch, c.arch);
        assert_eq!(d.dims, c.dims);
        assert_eq!(d.params, c.params);
        assert_eq!(d.optimizer, c.optimizer);
        assert_eq!(d.rng_state, c.rng_state);
        assert_eq!(d.epoch, 3);
        assert_eq!(d.iter, 17);
        assert_eq!(d.counters.host_to_gpu_bytes, 12345);
        assert_eq!(d.counters.retries, 2);
        assert_eq!(d.static_resident, c.static_resident);
        assert_eq!(d.cache, c.cache);
        assert!(!d.cache_degraded);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corrupt_core_segment_is_a_hard_error() {
        let bytes = sample_checkpoint().to_bytes();
        // Flip a byte inside the core payload (after magic+version+len).
        let mut bad = bytes.clone();
        bad[25] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::ChecksumMismatch { segment: "core" })
        ));
    }

    #[test]
    fn corrupt_cache_segment_degrades_gracefully() {
        let c = sample_checkpoint();
        let bytes = c.to_bytes();
        // The cache payload occupies the run before its trailing checksum.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 12] ^= 0xFF;
        let d = Checkpoint::from_bytes(&bad).expect("core still loads");
        assert!(d.cache.is_none());
        assert!(d.cache_degraded);
        assert_eq!(d.params, c.params, "core state intact");
    }

    #[test]
    fn truncated_cache_segment_degrades_gracefully() {
        let c = sample_checkpoint();
        let core_only_len = {
            // magic + version + (len + core + sum): recompute from parts.
            let core = encode_core(&c);
            8 + 4 + 8 + core.len() + 8
        };
        let bytes = c.to_bytes();
        let d = Checkpoint::from_bytes(&bytes[..core_only_len + 3]).expect("core loads");
        assert!(d.cache_degraded);
    }

    #[test]
    fn truncated_core_is_truncation_error() {
        let bytes = sample_checkpoint().to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(&bytes[..20]),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("fgnn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.ckpt");
        let c = sample_checkpoint();
        c.save(&path).expect("save");
        let d = Checkpoint::load(&path).expect("load");
        assert_eq!(d.params, c.params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_length_field_does_not_overallocate() {
        // A corrupt u64 length must hit Truncated, not abort on an OOM
        // allocation. (Lengths are validated against remaining bytes.)
        let c = sample_checkpoint();
        let core = encode_core(&c);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(core.len() as u64).to_le_bytes());
        let mut bad_core = core.clone();
        // params length lives right after arch (1) + ndims (8) + dims (3*8).
        bad_core[33..41].copy_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&bad_core);
        bytes.extend_from_slice(&fnv1a(&bad_core).to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Truncated)
        ));
    }
}
