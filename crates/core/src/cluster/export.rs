//! Cluster-sweep export: the compact `fgnn-cluster-v1` JSON that
//! `exp_cluster --bench-json` writes and `scripts/bench_trajectory.sh`
//! commits as `BENCH_cluster.json`.
//!
//! Hand-rolled like the other exporters (zero registry dependencies). The
//! gated fields are exact simulated quantities — BSP rounds make every
//! one of them a deterministic function of the seed and the fault
//! schedule, so `exp_report compare_cluster` can hold them to tight
//! tolerances. `wallSeconds` is measured context only.

use crate::obs::export::{json_escape, json_f64};

/// Schema tag stamped into the export (and grepped by `scripts/ci.sh`
/// against the committed `BENCH_cluster.json`). Alias of
/// [`crate::obs::schema::CLUSTER_V1`].
pub const CLUSTER_SCHEMA_VERSION: &str = crate::obs::schema::CLUSTER_V1;

/// One cell of the cluster sweep: a (dataset, host count, fault
/// schedule) point.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterBenchRow {
    /// Dataset label (e.g. `"papers100m"`).
    pub dataset: String,
    /// Hosts (= shards = failure domains) in the cluster.
    pub hosts: usize,
    /// Fault-schedule label (`"none"`, `"crash"`, …).
    pub schedule: String,
    /// Final-epoch cluster mean loss (exact; fault-schedule invariant —
    /// recovery replays to the fault-free trajectory).
    pub mean_loss: f64,
    /// Total host-to-GPU feature bytes across hosts (exact).
    pub h2d_bytes: u64,
    /// Inter-host NIC bytes moved, including recovery re-fetches (exact).
    pub nic_bytes: u64,
    /// Exact simulated seconds: slowest host's pipeline stream + NIC +
    /// retry time.
    pub sim_seconds: f64,
    /// Halo entries served stale by a peer for a dead owner (exact).
    pub degraded_reads: u64,
    /// Worst staleness (rounds) any degraded read was served at (exact;
    /// bounded by `t_stale`).
    pub max_staleness: u64,
    /// Measured wall seconds for the whole cell (context only).
    pub wall_seconds: f64,
}

/// Serialize the sweep as one deterministic JSON document. Row order is
/// preserved (callers sweep datasets × hosts × schedules in a fixed
/// order), so the gated fields reproduce byte-identically from the same
/// seed.
pub fn cluster_bench_json(seed: u64, rows: &[ClusterBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schemaVersion\":\"{CLUSTER_SCHEMA_VERSION}\",\"seed\":{seed},\"rows\":["
    ));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"dataset\":\"{}\",\"hosts\":{},\"schedule\":\"{}\",\"meanLoss\":{},\
             \"h2dBytes\":{},\"nicBytes\":{},\"simSeconds\":{},\"degradedReads\":{},\
             \"maxStaleness\":{},\"wallSeconds\":{}}}",
            json_escape(&r.dataset),
            r.hosts,
            json_escape(&r.schedule),
            json_f64(r.mean_loss),
            r.h2d_bytes,
            r.nic_bytes,
            json_f64(r.sim_seconds),
            r.degraded_reads,
            r.max_staleness,
            json_f64(r.wall_seconds),
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ClusterBenchRow {
        ClusterBenchRow {
            dataset: "papers100m".into(),
            hosts: 4,
            schedule: "crash".into(),
            mean_loss: 1.25,
            h2d_bytes: 4096,
            nic_bytes: 1024,
            sim_seconds: 0.5,
            degraded_reads: 17,
            max_staleness: 3,
            wall_seconds: 0.125,
        }
    }

    #[test]
    fn export_carries_schema_tag_and_fields() {
        let doc = cluster_bench_json(42, &[row()]);
        assert!(doc.contains("\"schemaVersion\":\"fgnn-cluster-v1\""));
        assert!(doc.contains("\"seed\":42"));
        assert!(doc.contains("\"hosts\":4"));
        assert!(doc.contains("\"schedule\":\"crash\""));
        assert!(doc.contains("\"nicBytes\":1024"));
        assert!(doc.contains("\"degradedReads\":17"));
        assert!(doc.contains("\"maxStaleness\":3"));
        assert!(doc.ends_with("]}\n"));
    }

    #[test]
    fn export_is_deterministic_and_order_preserving() {
        let mut second = row();
        second.hosts = 8;
        let rows = [row(), second];
        let a = cluster_bench_json(7, &rows);
        let b = cluster_bench_json(7, &rows);
        assert_eq!(a, b);
        let h4 = a.find("\"hosts\":4").unwrap();
        let h8 = a.find("\"hosts\":8").unwrap();
        assert!(h4 < h8, "row order preserved");
    }

    #[test]
    fn empty_sweep_is_valid_json_shell() {
        let doc = cluster_bench_json(1, &[]);
        assert_eq!(
            doc,
            "{\"schemaVersion\":\"fgnn-cluster-v1\",\"seed\":1,\"rows\":[]}\n"
        );
    }

    #[test]
    fn gated_floats_round_trip_through_the_json_parser() {
        let mut r = row();
        r.mean_loss = 1.0 / 3.0;
        r.sim_seconds = 2.0816e-3_f64;
        let doc = cluster_bench_json(9, &[r.clone()]);
        let parsed = crate::obs::parse_json(&doc).expect("valid JSON");
        let rows = parsed.get("rows").and_then(|v| v.as_array()).unwrap();
        let loss = rows[0].get("meanLoss").and_then(|v| v.as_f64()).unwrap();
        let sim = rows[0].get("simSeconds").and_then(|v| v.as_f64()).unwrap();
        assert_eq!(loss.to_bits(), r.mean_loss.to_bits());
        assert_eq!(sim.to_bits(), r.sim_seconds.to_bits());
    }
}
