//! Deterministic heartbeat-based failure detection and membership.
//!
//! Every alive host beats once per `heartbeat_every` rounds. The detector
//! (run as part of the lock-step round loop, so it is a pure function of
//! the fault schedule) marks a silent host **Suspect** after
//! `suspect_after` missed beats and **Dead** after `dead_after`; a beat
//! from a restarted host brings it straight back to **Alive**. Each
//! transition bumps the membership-view version, the cluster analogue of
//! an epoch number in a real group-membership protocol: remote-read
//! routing decisions key off the *view*, never off ground truth, so the
//! crashed-but-undetected window (retries, then fallback) and the
//! declared-dead window (degraded peer serving) are modelled faithfully.

/// What the detector currently believes about one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostStatus {
    /// Beating on schedule.
    Alive,
    /// Missed `suspect_after` beats — reads still try it first.
    Suspect,
    /// Missed `dead_after` beats — reads go straight to peer shards.
    Dead,
}

impl HostStatus {
    /// Stable lowercase name for logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            HostStatus::Alive => "alive",
            HostStatus::Suspect => "suspect",
            HostStatus::Dead => "dead",
        }
    }
}

/// One recorded membership transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipTransition {
    /// Round the detector changed its mind.
    pub round: u64,
    /// The host whose status changed.
    pub host: usize,
    /// Previous status.
    pub from: HostStatus,
    /// New status.
    pub to: HostStatus,
    /// View version after the transition.
    pub version: u64,
}

/// The detector's current picture of the cluster.
#[derive(Clone, Debug)]
pub struct MembershipView {
    /// Per-host status.
    pub status: Vec<HostStatus>,
    /// Monotonic view version; bumps on every status change.
    pub version: u64,
}

impl MembershipView {
    /// Hosts currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s == HostStatus::Alive)
            .count()
    }
}

/// Heartbeat bookkeeping + the view it produces.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    heartbeat_every: u64,
    suspect_after: u64,
    dead_after: u64,
    last_beat: Vec<u64>,
    view: MembershipView,
    log: Vec<MembershipTransition>,
}

impl FailureDetector {
    /// A detector for `num_hosts` hosts, all initially alive with a beat
    /// at round 0.
    pub fn new(
        num_hosts: usize,
        heartbeat_every: u64,
        suspect_after: u64,
        dead_after: u64,
    ) -> Self {
        assert!(heartbeat_every >= 1);
        assert!(suspect_after >= 1 && dead_after >= suspect_after);
        FailureDetector {
            heartbeat_every,
            suspect_after,
            dead_after,
            last_beat: vec![0; num_hosts],
            view: MembershipView {
                status: vec![HostStatus::Alive; num_hosts],
                version: 0,
            },
            log: Vec::new(),
        }
    }

    fn set_status(&mut self, round: u64, host: usize, to: HostStatus) {
        let from = self.view.status[host];
        if from == to {
            return;
        }
        self.view.status[host] = to;
        self.view.version += 1;
        self.log.push(MembershipTransition {
            round,
            host,
            from,
            to,
            version: self.view.version,
        });
    }

    /// Advance one lock-step round: hosts in `alive` beat if the round is
    /// on their heartbeat schedule; silent hosts accrue missed beats and
    /// transition Suspect → Dead at the configured thresholds.
    pub fn tick(&mut self, round: u64, alive: &[bool]) {
        for (host, &up) in alive.iter().enumerate() {
            if up {
                // A beat restores the host in the view; a restarted host
                // stays Suspect/Dead until its next beat slot comes
                // around.
                if round.is_multiple_of(self.heartbeat_every) {
                    self.last_beat[host] = round;
                    self.set_status(round, host, HostStatus::Alive);
                }
            } else {
                let missed = (round.saturating_sub(self.last_beat[host])) / self.heartbeat_every;
                if missed >= self.dead_after {
                    self.set_status(round, host, HostStatus::Dead);
                } else if missed >= self.suspect_after {
                    self.set_status(round, host, HostStatus::Suspect);
                }
            }
        }
    }

    /// The current view.
    pub fn view(&self) -> &MembershipView {
        &self.view
    }

    /// Every transition the detector made, in round order.
    pub fn log(&self) -> &[MembershipTransition] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_host_walks_suspect_then_dead_then_rejoins() {
        let mut d = FailureDetector::new(2, 1, 1, 3);
        let mut alive = [true, true];
        d.tick(1, &alive);
        assert_eq!(d.view().status, vec![HostStatus::Alive; 2]);
        assert_eq!(d.view().version, 0);

        alive[1] = false; // crash after its round-1 beat
        d.tick(2, &alive);
        assert_eq!(d.view().status[1], HostStatus::Suspect);
        d.tick(3, &alive);
        assert_eq!(d.view().status[1], HostStatus::Suspect);
        d.tick(4, &alive);
        assert_eq!(d.view().status[1], HostStatus::Dead);
        assert_eq!(d.view().alive_count(), 1);

        alive[1] = true; // restart
        d.tick(5, &alive);
        assert_eq!(d.view().status[1], HostStatus::Alive);
        // Suspect → Dead → Alive = three transitions, three version bumps.
        assert_eq!(d.view().version, 3);
        assert_eq!(d.log().len(), 3);
        assert_eq!(d.log()[2].to, HostStatus::Alive);
    }

    #[test]
    fn heartbeat_cadence_scales_thresholds() {
        // Beats every 2 rounds, suspect after 1 missed beat.
        let mut d = FailureDetector::new(1, 2, 1, 2);
        let alive = [false];
        d.tick(1, &alive); // (1-0)/2 = 0 missed — still alive in view
        assert_eq!(d.view().status[0], HostStatus::Alive);
        d.tick(2, &alive); // 1 missed beat
        assert_eq!(d.view().status[0], HostStatus::Suspect);
        d.tick(4, &alive); // 2 missed beats
        assert_eq!(d.view().status[0], HostStatus::Dead);
    }
}
