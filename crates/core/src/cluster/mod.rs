//! Multi-host partitioned training with failure domains (DESIGN.md §14).
//!
//! A cluster is `num_hosts` hosts × `gpus_per_host` GPUs joined by
//! RDMA-style NICs ([`fgnn_memsim::cluster::ClusterTopology`]). Each host
//! owns one LDG graph shard ([`fgnn_graph::partition::partition_ldg`] +
//! [`fgnn_graph::partition::induced_subgraph`]) and runs its own [`crate::Trainer`]
//! — model replica, optimizer, historical-embedding cache shard — over
//! that shard. Hosts advance in deterministic lock-step *rounds* (one
//! mini-batch per round); remote halo reads are batched into one active
//! message per destination per round, the `team_am_batcher` idiom.
//!
//! The host is the **failure domain**: a crash takes down its NIC, its
//! GPUs and its cache shard together. A seeded
//! [`fgnn_memsim::ClusterFaultPlan`] schedules crashes, restarts and NIC
//! degradations at absolute rounds; a deterministic heartbeat
//! [`FailureDetector`] turns ground truth into the membership *view* that
//! routing actually uses, so both the crashed-but-undetected window
//! (bounded retries, then fallback) and the declared-dead window
//! (degraded peer serving under the `t_stale` budget) are modelled.
//! Recovery restores the host from its epoch-start checkpoint — evicting
//! cache entries newer than the recovery point, exactly the rollback
//! semantics of [`crate::Trainer::restore`] — and replays, so the
//! committed training quantities of any crash/restart schedule match the
//! fault-free run bit for bit while the NIC/retry/recovery ledger records
//! what the faults cost.

mod export;
mod membership;
mod trainer;

pub use export::{cluster_bench_json, ClusterBenchRow, CLUSTER_SCHEMA_VERSION};
pub use membership::{FailureDetector, HostStatus, MembershipTransition, MembershipView};
pub use trainer::{ClusterReport, ClusterTrainer, RoundEngine, StalenessLedger};

use crate::config::FreshGnnConfig;
use fgnn_nn::model::Arch;

/// Configuration for a partitioned multi-host training run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of hosts (= graph shards = failure domains).
    pub num_hosts: usize,
    /// GPUs per host (shapes the intra-host PCIe topology).
    pub gpus_per_host: usize,
    /// Heartbeat cadence in rounds.
    pub heartbeat_every: u64,
    /// Missed beats before a silent host turns Suspect in the view.
    pub suspect_after: u64,
    /// Missed beats before a silent host is declared Dead.
    pub dead_after: u64,
    /// Seed for the LDG partitioner (independent of the training seed so
    /// the sharding is stable across trainer-seed sweeps).
    pub partition_seed: u64,
    /// Model architecture for every host's replica.
    pub arch: Arch,
    /// Hidden width for every host's replica.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Numeric-rollback budget per host (see `SupervisorConfig`).
    pub max_rollbacks: u32,
    /// Per-host FreshGNN training hyper-parameters.
    pub train: FreshGnnConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_hosts: 2,
            gpus_per_host: 1,
            heartbeat_every: 1,
            suspect_after: 1,
            dead_after: 2,
            partition_seed: 0xC0FFEE,
            arch: Arch::Sage,
            hidden: 16,
            lr: 0.003,
            max_rollbacks: 3,
            train: FreshGnnConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Check the knobs for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_hosts == 0 {
            return Err("num_hosts must be >= 1".into());
        }
        if self.gpus_per_host == 0 {
            return Err("gpus_per_host must be >= 1".into());
        }
        if self.heartbeat_every == 0 {
            return Err("heartbeat_every must be >= 1 round".into());
        }
        if self.suspect_after == 0 || self.dead_after < self.suspect_after {
            return Err(format!(
                "need 1 <= suspect_after <= dead_after, got suspect_after={} dead_after={}",
                self.suspect_after, self.dead_after
            ));
        }
        if self.hidden == 0 {
            return Err("hidden width must be >= 1".into());
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return Err(format!("learning rate {} must be finite and > 0", self.lr));
        }
        self.train.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ClusterConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_knobs_are_rejected() {
        for (cfg, needle) in [
            (
                ClusterConfig {
                    num_hosts: 0,
                    ..Default::default()
                },
                "num_hosts",
            ),
            (
                ClusterConfig {
                    gpus_per_host: 0,
                    ..Default::default()
                },
                "gpus_per_host",
            ),
            (
                ClusterConfig {
                    heartbeat_every: 0,
                    ..Default::default()
                },
                "heartbeat_every",
            ),
            (
                ClusterConfig {
                    suspect_after: 3,
                    dead_after: 2,
                    ..Default::default()
                },
                "suspect_after",
            ),
            (
                ClusterConfig {
                    lr: f32::NAN,
                    ..Default::default()
                },
                "learning rate",
            ),
        ] {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle}");
        }
    }
}
