//! The partitioned BSP cluster trainer (DESIGN.md §14).
//!
//! Hosts advance in lock-step **rounds**; every round each live host
//! fetches the remote halo of its next mini-batch (one batched active
//! message per destination), trains that one batch, and feeds the loss to
//! its numeric guard. Fault events ([`ClusterFaultPlan`]) fire at absolute
//! rounds *before* the round's work; the heartbeat detector ticks right
//! after, so routing always uses the view the schedule deterministically
//! produces.
//!
//! **Recovery invariant:** a restarted host restores its epoch-start
//! baseline checkpoint (rewinding RNG/model/optimizer and evicting cache
//! entries newer than the recovery point) and re-executes its epoch one
//! batch per round. A NaN-guard trip rolls back the same baseline but
//! replays the already-completed prefix *inside* the round without
//! re-charging comms (the halo bytes were already paid for). Either way
//! the committed training quantities — losses, parameters, H2D bytes,
//! cache hit counters — end bit-identical to the fault-free run; only the
//! cluster comms/retry ledger records what the faults cost.

use std::collections::BTreeSet;

use super::membership::{FailureDetector, HostStatus, MembershipTransition, MembershipView};
use super::ClusterConfig;
use crate::checkpoint::Checkpoint;
use crate::error::FgnnError;
use crate::obs::{MetricClass, Obs};
use crate::resilience::{GuardConfig, HealthState, NumericFault, Supervisor, SupervisorConfig};
use crate::trainer::Trainer;
use fgnn_graph::datasets::Dataset;
use fgnn_graph::partition::{induced_subgraph, partition_ldg};
use fgnn_graph::NodeId;
use fgnn_memsim::cluster::{AmBatcher, AmTransfer, ClusterEventKind, ClusterTopology};
use fgnn_memsim::fault::LinkHealth;
use fgnn_memsim::presets::{GpuSpec, Machine};
use fgnn_memsim::transfer::FALLBACK_PENALTY;
use fgnn_memsim::{ClusterFaultPlan, RetryPolicy, TrafficCounters};
use fgnn_nn::Adam;
use fgnn_tensor::Rng;

/// Golden-ratio host salt: host 0 keeps the user seed bit-for-bit so a
/// 1-host cluster matches the single-host [`Trainer`] exactly.
fn host_seed(seed: u64, host: usize) -> u64 {
    seed ^ (host as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// How each host executes its one batch per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundEngine {
    /// Synchronous sampling + pipeline ([`Trainer::train_on_batches`]).
    Sync,
    /// Work-stealing async sampler ([`Trainer::train_on_batches_async`]).
    Async {
        /// Sampler worker threads per host.
        workers: usize,
        /// Bounded prefetch queue depth.
        queue_capacity: usize,
    },
}

/// Ledger of how remote reads were served, and how stale the degraded
/// ones were allowed to get.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StalenessLedger {
    /// Staleness budget (rounds) for degraded serving = `t_stale`.
    pub budget: u64,
    /// Halo entries served by their live owner host.
    pub remote_reads: u64,
    /// Halo entries served stale by a surviving peer for a dead owner.
    pub degraded_reads: u64,
    /// Halo entries past the staleness budget, re-fetched as raw
    /// features at [`FALLBACK_PENALTY`].
    pub fallback_reads: u64,
    /// Retry attempts burned on crashed-but-not-yet-declared hosts.
    pub retries: u64,
    /// Worst staleness (rounds) any degraded read was served at.
    pub max_staleness: u64,
}

/// One host: its shard, its trainer replica, and its round-loop state.
struct HostShard {
    ds: Dataset,
    /// Local → global node ID map for the shard.
    global_ids: Vec<NodeId>,
    trainer: Trainer,
    opt: Adam,
    sup: Supervisor,
    /// Current epoch's batch schedule (local IDs).
    batches: Vec<Vec<NodeId>>,
    /// Next batch index within `batches`.
    cursor: usize,
    /// Per-batch losses of the current epoch, in execution order.
    losses: Vec<f64>,
    /// Mean loss of every completed epoch, in order.
    epoch_means: Vec<f64>,
    /// 1-based epoch this plan belongs to (0 = not yet begun).
    epoch_id: u32,
    /// Ground truth — the fault plan flips this; the *view* may lag.
    alive: bool,
    /// This host's NIC health (Down exactly while crashed).
    nic: LinkHealth,
    /// Epoch-start checkpoint; restore target for crash and NaN recovery.
    baseline: Option<Checkpoint>,
    /// Round the baseline was taken — staleness zero-point for peers
    /// serving this host's shard while it is dead.
    baseline_round: u64,
    /// Rounds whose observed loss is forced to NaN (chaos hook).
    nan_rounds: BTreeSet<u64>,
}

/// Outcome of a whole cluster run ([`ClusterTrainer::train`]).
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Epochs trained.
    pub epochs: u32,
    /// Lock-step rounds the cluster executed.
    pub rounds: u64,
    /// Per-epoch cluster loss: unweighted mean over hosts of each host's
    /// epoch-mean loss (host order, so bit-stable).
    pub epoch_losses: Vec<f64>,
    /// Per-host per-epoch mean losses.
    pub per_host_losses: Vec<Vec<f64>>,
    /// Total host-to-GPU feature bytes across hosts (committed quantity —
    /// equals the fault-free run).
    pub h2d_bytes: u64,
    /// Cluster comms ledger: NIC bytes/seconds, retries, failed
    /// transfers. Differs from the fault-free run under faults, but is
    /// byte-identical across same-seed reruns.
    pub comms: TrafficCounters,
    /// How remote reads were served.
    pub ledger: StalenessLedger,
    /// Host crashes applied.
    pub crashes: u64,
    /// Host restarts applied.
    pub restarts: u64,
    /// Final membership-view version (= total status transitions).
    pub membership_version: u64,
    /// Simulated seconds the AM batcher saved vs. one message per halo
    /// entry (latency amortization).
    pub am_saving_seconds: f64,
    /// Exact simulated seconds: slowest host's deterministic pipeline
    /// stream plus the cluster's NIC and retry time.
    pub sim_seconds: f64,
}

/// Partitioned multi-host BSP trainer with failure domains.
pub struct ClusterTrainer {
    cfg: ClusterConfig,
    topo: ClusterTopology,
    /// Full-graph adjacency for halo discovery (in a real deployment this
    /// is the immutable partition book every host holds).
    full: Dataset,
    /// Global node → owning host.
    assignment: Vec<u32>,
    shards: Vec<HostShard>,
    detector: FailureDetector,
    plan: ClusterFaultPlan,
    next_event: usize,
    retry: RetryPolicy,
    engine: RoundEngine,
    round: u64,
    comms: TrafficCounters,
    ledger: StalenessLedger,
    batcher: AmBatcher,
    am_saving_seconds: f64,
    crashes: u64,
    restarts: u64,
    epochs_done: u32,
    obs: Obs,
}

impl ClusterTrainer {
    /// Build a cluster over `ds` on the default A100 topology.
    pub fn new(ds: &Dataset, cfg: ClusterConfig, seed: u64) -> Result<Self, FgnnError> {
        let topo = ClusterTopology::a100_cluster(cfg.num_hosts.max(1), cfg.gpus_per_host.max(1));
        Self::with_topology(ds, cfg, topo, seed)
    }

    /// Build a cluster with an explicit [`ClusterTopology`].
    pub fn with_topology(
        ds: &Dataset,
        cfg: ClusterConfig,
        topo: ClusterTopology,
        seed: u64,
    ) -> Result<Self, FgnnError> {
        cfg.validate().map_err(FgnnError::Config)?;
        if topo.num_hosts != cfg.num_hosts {
            return Err(FgnnError::Config(format!(
                "topology has {} hosts but config wants {}",
                topo.num_hosts, cfg.num_hosts
            )));
        }
        let h = cfg.num_hosts;
        let n = ds.num_nodes();
        let (assignment, host_nodes): (Vec<u32>, Vec<Vec<NodeId>>) = if h == 1 {
            (vec![0; n], vec![(0..n as NodeId).collect()])
        } else {
            let mut prng = Rng::new(cfg.partition_seed);
            let p = partition_ldg(&ds.graph, h, &mut prng);
            let clusters = p.clusters();
            (p.assignment, clusters)
        };

        let mut shards = Vec::with_capacity(h);
        for (host, nodes) in host_nodes.iter().enumerate() {
            let (shard_ds, global_ids) = if h == 1 {
                (ds.clone(), nodes.clone())
            } else {
                (shard_dataset(ds, nodes), nodes.clone())
            };
            let machine = Machine {
                name: "cluster-host",
                gpu: GpuSpec::a100_40gb(),
                topology: topo.host.clone(),
            };
            let trainer = Trainer::new(
                &shard_ds,
                cfg.arch,
                cfg.hidden,
                machine,
                cfg.train.clone(),
                host_seed(seed, host),
            );
            let sup = Supervisor::new(SupervisorConfig {
                max_rollbacks: cfg.max_rollbacks,
                guard: GuardConfig::default(),
            });
            shards.push(HostShard {
                ds: shard_ds,
                global_ids,
                trainer,
                opt: Adam::new(cfg.lr),
                sup,
                batches: Vec::new(),
                cursor: 0,
                losses: Vec::new(),
                epoch_means: Vec::new(),
                epoch_id: 0,
                alive: true,
                nic: LinkHealth::Up,
                baseline: None,
                baseline_round: 0,
                nan_rounds: BTreeSet::new(),
            });
        }
        let detector =
            FailureDetector::new(h, cfg.heartbeat_every, cfg.suspect_after, cfg.dead_after);
        let ledger = StalenessLedger {
            budget: cfg.train.t_stale as u64,
            ..StalenessLedger::default()
        };
        Ok(ClusterTrainer {
            cfg,
            topo,
            full: ds.clone(),
            assignment,
            batcher: AmBatcher::new(h),
            shards,
            detector,
            plan: ClusterFaultPlan::none(),
            next_event: 0,
            retry: RetryPolicy::default(),
            engine: RoundEngine::Sync,
            round: 0,
            comms: TrafficCounters::new(),
            ledger,
            am_saving_seconds: 0.0,
            crashes: 0,
            restarts: 0,
            epochs_done: 0,
            obs: Obs::new(),
        })
    }

    /// Arm a validated cluster fault schedule. Must be called before
    /// [`ClusterTrainer::train`]; events at rounds already executed are
    /// rejected.
    pub fn inject_cluster_faults(&mut self, plan: ClusterFaultPlan) -> Result<(), FgnnError> {
        plan.validate(self.cfg.num_hosts)
            .map_err(|e| FgnnError::Config(e.to_string()))?;
        if let Some(ev) = plan.events().first() {
            // Any event still fires on a fresh cluster (the loop starts
            // at round 1 and applies events `<= round`).
            if self.round > 0 && ev.round <= self.round {
                return Err(FgnnError::Config(format!(
                    "fault plan starts at round {} but the cluster is already at round {}",
                    ev.round, self.round
                )));
            }
        }
        self.plan = plan;
        self.next_event = 0;
        Ok(())
    }

    /// Force `host`'s observed loss to NaN at the given absolute rounds
    /// (chaos hook for the numeric-recovery path).
    pub fn inject_nan_at(&mut self, host: usize, rounds: impl IntoIterator<Item = u64>) {
        self.shards[host].nan_rounds.extend(rounds);
    }

    /// Choose the per-round execution engine (default [`RoundEngine::Sync`]).
    pub fn set_round_engine(&mut self, engine: RoundEngine) {
        self.engine = engine;
    }

    /// Override the retry policy used against crashed-but-undetected hosts.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Borrow host `h`'s trainer (tests compare against single-host runs).
    pub fn trainer(&self, h: usize) -> &Trainer {
        &self.shards[h].trainer
    }

    /// Mutably borrow host `h`'s trainer (per-host fault injection).
    pub fn trainer_mut(&mut self, h: usize) -> &mut Trainer {
        &mut self.shards[h].trainer
    }

    /// Checkpoint host `h`'s trainer + optimizer state (tests compare
    /// final cluster states against fault-free references with this).
    pub fn checkpoint_host(&mut self, h: usize) -> Checkpoint {
        let s = &mut self.shards[h];
        s.trainer.checkpoint(&s.opt)
    }

    /// Host `h`'s shard dataset.
    pub fn shard_dataset(&self, h: usize) -> &Dataset {
        &self.shards[h].ds
    }

    /// The detector's current membership view.
    pub fn membership(&self) -> &MembershipView {
        self.detector.view()
    }

    /// Every membership transition so far, in round order.
    pub fn membership_log(&self) -> &[MembershipTransition] {
        self.detector.log()
    }

    /// The remote-read staleness ledger.
    pub fn ledger(&self) -> &StalenessLedger {
        &self.ledger
    }

    /// The cluster comms ledger (NIC traffic, retries).
    pub fn comms(&self) -> &TrafficCounters {
        &self.comms
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Cluster-level observability (spans + Exact metrics).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Train `epochs` epochs across the cluster and report.
    ///
    /// Every host must finish every epoch: a crashed host freezes at its
    /// cursor and the loop keeps spinning rounds (survivors idle once
    /// done) until its scheduled restart lets it recover and catch up.
    /// Errors if the schedule wedges the cluster (a host is down with no
    /// restart left in the plan — [`ClusterFaultPlan::validate`] makes
    /// that unreachable for validated plans).
    pub fn train(&mut self, epochs: u32) -> Result<ClusterReport, FgnnError> {
        if epochs == 0 {
            return Ok(self.report());
        }
        let target = self.epochs_done + epochs;
        let now = self.obs.clock.now_ns();
        self.obs.tracer.begin("cluster-train", "cluster", now);

        for h in 0..self.shards.len() {
            if self.shards[h].epoch_id == 0 {
                self.begin_host_epoch(h);
            }
        }

        let max_batches = self
            .shards
            .iter()
            .map(|s| s.batches.len().max(1))
            .max()
            .unwrap_or(1) as u64;
        let last_event = self.plan.events().last().map_or(0, |e| e.round);
        // Worst case: every epoch fully re-executed once per rollback,
        // plus the tail of the fault schedule, plus slack.
        let round_cap = self.round
            + (target as u64) * max_batches * (2 + self.cfg.max_rollbacks as u64)
            + last_event
            + 64;

        while !self.all_done(target) {
            self.round += 1;
            if self.round > round_cap {
                return Err(FgnnError::Config(format!(
                    "cluster wedged: round cap {round_cap} exceeded (a host cannot finish \
                     epoch {target} under the injected schedule)"
                )));
            }
            self.apply_fault_events()?;
            let alive: Vec<bool> = self.shards.iter().map(|s| s.alive).collect();
            self.detector.tick(self.round, &alive);
            let nic_before = self.comms.nic_seconds + self.comms.retry_seconds;
            for h in 0..self.shards.len() {
                self.step_host(h, target)?;
            }
            let nic_after = self.comms.nic_seconds + self.comms.retry_seconds;
            self.obs.clock.advance_secs(nic_after - nic_before);
        }
        self.epochs_done = target;
        for h in 0..self.shards.len() {
            self.complete_host_epoch(h);
        }

        let end = self.obs.clock.now_ns();
        self.obs.tracer.end_with(
            end,
            vec![
                ("rounds", self.round),
                ("crashes", self.crashes),
                ("restarts", self.restarts),
                ("view_version", self.detector.view().version),
            ],
        );
        self.sync_obs_metrics();
        Ok(self.report())
    }

    fn all_done(&self, target: u32) -> bool {
        self.shards
            .iter()
            .all(|s| s.alive && s.epoch_id >= target && s.cursor >= s.batches.len())
    }

    /// Fire every scheduled fault event at or before the current round.
    fn apply_fault_events(&mut self) -> Result<(), FgnnError> {
        while self.next_event < self.plan.events().len() {
            let ev = self.plan.events()[self.next_event];
            if ev.round > self.round {
                break;
            }
            self.next_event += 1;
            let s = &mut self.shards[ev.host];
            match ev.kind {
                ClusterEventKind::HostCrash => {
                    if s.alive {
                        s.alive = false;
                        s.nic = LinkHealth::Down;
                        self.crashes += 1;
                        self.obs
                            .metrics
                            .counter_add("cluster.crashes", MetricClass::Exact, 1);
                    }
                }
                ClusterEventKind::HostRestart => {
                    if !s.alive {
                        s.alive = true;
                        s.nic = LinkHealth::Up;
                        self.restarts += 1;
                        self.obs
                            .metrics
                            .counter_add("cluster.restarts", MetricClass::Exact, 1);
                        self.restart_host(ev.host)?;
                    }
                }
                ClusterEventKind::NicDegrade(factor) => {
                    if s.alive {
                        s.nic = LinkHealth::Degraded(factor);
                    }
                }
                ClusterEventKind::NicRestore => {
                    if s.alive {
                        s.nic = LinkHealth::Up;
                    }
                }
            }
        }
        Ok(())
    }

    /// Shard recovery: restore the epoch-start baseline (rewinds RNG /
    /// model / optimizer, evicts cache entries newer than the recovery
    /// point) and restart the epoch plan from batch 0. Re-executed rounds
    /// re-charge comms — recovery cost is visible in the NIC ledger while
    /// the committed training quantities stay fault-free-identical.
    fn restart_host(&mut self, h: usize) -> Result<(), FgnnError> {
        let s = &mut self.shards[h];
        let baseline = s
            .baseline
            .clone()
            .expect("host restarted before its first epoch began");
        s.trainer
            .restore(&baseline, &mut s.opt)
            .map_err(FgnnError::Checkpoint)?;
        s.batches = s.trainer.plan_epoch_batches(&s.ds);
        s.cursor = 0;
        s.losses.clear();
        s.sup.guard.reset();
        let (iter, epoch) = (s.trainer.iterations(), s.epoch_id);
        s.sup.transition(
            HealthState::Recovering,
            iter,
            epoch,
            "host-restart",
            &mut s.trainer.obs,
        );
        Ok(())
    }

    /// One host's share of one round: catch up on epoch bookkeeping, then
    /// fetch the halo and train exactly one batch.
    fn step_host(&mut self, h: usize, target: u32) -> Result<(), FgnnError> {
        if !self.shards[h].alive {
            return Ok(());
        }
        if self.shards[h].cursor >= self.shards[h].batches.len() {
            if self.shards[h].epoch_id >= target {
                return Ok(()); // fully done; idling while others catch up
            }
            self.complete_host_epoch(h);
            self.begin_host_epoch(h);
        }
        self.exchange_halo(h)?;
        let idx = self.shards[h].cursor;
        let stats_loss = self.run_host_batch(h, idx)?;
        let observed = if self.shards[h].nan_rounds.remove(&self.round) {
            f64::NAN
        } else {
            stats_loss
        };
        let fault = {
            let s = &mut self.shards[h];
            let iter = s.trainer.iterations();
            s.sup.guard.observe(iter, observed as f32)
        };
        match fault {
            Some(f) => self.numeric_rollback(h, f)?,
            None => {
                let s = &mut self.shards[h];
                s.losses.push(stats_loss);
                s.cursor += 1;
            }
        }
        Ok(())
    }

    /// Close out host `h`'s finished epoch plan. Idempotent per epoch —
    /// the round loop flushes lazily (when the next epoch begins) and
    /// [`ClusterTrainer::train`] sweeps the final epoch after the loop.
    fn complete_host_epoch(&mut self, h: usize) {
        let s = &mut self.shards[h];
        if s.epoch_means.len() >= s.epoch_id as usize {
            return; // already flushed
        }
        let mean = if s.losses.is_empty() {
            0.0
        } else {
            s.losses.iter().sum::<f64>() / s.losses.len() as f64
        };
        s.epoch_means.push(mean);
        if s.sup.state() != HealthState::Healthy {
            let (iter, epoch) = (s.trainer.iterations(), s.epoch_id);
            s.sup.transition(
                HealthState::Healthy,
                iter,
                epoch,
                "epoch-complete",
                &mut s.trainer.obs,
            );
        }
    }

    /// Start host `h`'s next epoch: checkpoint the recovery baseline and
    /// plan the batch schedule.
    fn begin_host_epoch(&mut self, h: usize) {
        let round = self.round;
        let s = &mut self.shards[h];
        s.epoch_id += 1;
        let ckpt = s.trainer.checkpoint(&s.opt);
        s.baseline = Some(ckpt);
        s.baseline_round = round;
        s.batches = s.trainer.plan_epoch_batches(&s.ds);
        s.cursor = 0;
        s.losses.clear();
    }

    /// NaN-guard recovery: roll back to the epoch baseline and replay the
    /// completed prefix *plus* the faulted batch inside this round. The
    /// replay is local — comms for those batches were already charged —
    /// so only training compute is redone.
    fn numeric_rollback(&mut self, h: usize, fault: NumericFault) -> Result<(), FgnnError> {
        let round = self.round;
        {
            let s = &mut self.shards[h];
            let (iter, epoch) = (s.trainer.iterations(), s.epoch_id);
            s.sup.transition(
                HealthState::Degraded,
                iter,
                epoch,
                fault.cause(),
                &mut s.trainer.obs,
            );
            if !s.sup.can_roll_back() {
                return Err(FgnnError::Numeric(format!(
                    "host {h} exhausted its rollback budget at round {round}: {}",
                    fault.cause()
                )));
            }
            let baseline = s
                .baseline
                .clone()
                .expect("numeric fault before the first epoch began");
            s.trainer
                .restore(&baseline, &mut s.opt)
                .map_err(FgnnError::Checkpoint)?;
            s.sup.record_rollback(&mut s.trainer.obs);
            s.batches = s.trainer.plan_epoch_batches(&s.ds);
            s.losses.clear();
            s.sup.guard.reset();
            let iter = s.trainer.iterations();
            s.sup.transition(
                HealthState::Recovering,
                iter,
                epoch,
                "numeric-rollback",
                &mut s.trainer.obs,
            );
        }
        let replay_through = self.shards[h].cursor;
        for i in 0..=replay_through {
            let loss = self.run_host_batch(h, i)?;
            self.shards[h].losses.push(loss);
        }
        self.shards[h].cursor = replay_through + 1;
        Ok(())
    }

    /// Train exactly `batches[idx]` on host `h`, returning its loss.
    fn run_host_batch(&mut self, h: usize, idx: usize) -> Result<f64, FgnnError> {
        let engine = self.engine;
        let s = &mut self.shards[h];
        let slice = &s.batches[idx..idx + 1];
        let stats = match engine {
            RoundEngine::Sync => s.trainer.train_on_batches(&s.ds, slice, &mut s.opt),
            RoundEngine::Async {
                workers,
                queue_capacity,
            } => s
                .trainer
                .train_on_batches_async(&s.ds, slice, &mut s.opt, workers, queue_capacity)
                .map_err(FgnnError::Sample)?,
        };
        Ok(stats.mean_loss)
    }

    /// Fetch the remote halo of host `h`'s next batch: the deduplicated
    /// out-of-shard 1-hop neighbors of the batch seeds in the full graph,
    /// batched into one active message per owning host.
    fn exchange_halo(&mut self, h: usize) -> Result<(), FgnnError> {
        let embed_bytes = (self.cfg.hidden * 4) as u64;
        let transfers: Vec<AmTransfer> = {
            let s = &self.shards[h];
            let batch = &s.batches[s.cursor];
            let mut remote: BTreeSet<NodeId> = BTreeSet::new();
            for &local in batch {
                let g = s.global_ids[local as usize];
                for &u in self.full.graph.neighbors(g) {
                    if self.assignment[u as usize] as usize != h {
                        remote.insert(u);
                    }
                }
            }
            if remote.is_empty() {
                return Ok(());
            }
            for &u in &remote {
                self.batcher
                    .enqueue(self.assignment[u as usize] as usize, embed_bytes);
            }
            self.batcher.flush()
        };
        for t in transfers {
            self.serve_remote_fetch(h, t)?;
        }
        Ok(())
    }

    /// Route one batched active message from reader `h` to owner `t.dst`.
    fn serve_remote_fetch(&mut self, h: usize, t: AmTransfer) -> Result<(), FgnnError> {
        let dst = t.dst;
        let reader_nic = self.shards[h].nic;
        if self.shards[dst].alive {
            // Healthy path: one one-sided RDMA read per destination per
            // round — the AM batcher amortizes the NIC latency over every
            // halo entry headed there.
            let health = combine_health(reader_nic, self.shards[dst].nic);
            let batched = self
                .topo
                .one_sided_read_seconds(t.bytes, health)
                .expect("alive host's NIC cannot be Down");
            let naive = self
                .topo
                .naive_read_seconds(t.bytes, t.messages, health)
                .expect("alive host's NIC cannot be Down");
            self.am_saving_seconds += naive - batched;
            self.comms.nic_bytes += t.bytes;
            self.comms.nic_seconds += batched;
            self.comms.num_transfers += 1;
            self.ledger.remote_reads += t.messages;
            return Ok(());
        }
        if self.detector.view().status[dst] != HostStatus::Dead {
            // Crashed but not yet declared: burn the retry ladder first.
            // Latency + exponential backoff per attempt, no jitter — the
            // ladder must replay bit-identically.
            let attempts = 1 + self.retry.max_retries;
            let mut waste = 0.0;
            for k in 0..attempts {
                waste += self.topo.nic.latency
                    + self.retry.base_backoff * self.retry.multiplier.powi(k as i32);
            }
            self.comms.retries += attempts as u64;
            self.comms.retry_seconds += waste;
            self.comms.failed_transfers += 1;
            self.ledger.retries += attempts as u64;
        }
        self.degraded_serve(h, t)
    }

    /// Serve a dead owner's shard from a surviving peer: stale within the
    /// `t_stale` budget, raw-feature fallback past it.
    fn degraded_serve(&mut self, h: usize, t: AmTransfer) -> Result<(), FgnnError> {
        let dst = t.dst;
        let num_hosts = self.shards.len();
        // The dead host's shard state is reconstructable from its
        // epoch-start baseline, which every peer can re-derive — model the
        // replica as the next live host in ring order.
        let replica = (1..num_hosts)
            .map(|d| (dst + d) % num_hosts)
            .find(|&r| self.shards[r].alive)
            .ok_or_else(|| {
                FgnnError::Config(format!(
                    "no live replica for host {dst}'s shard at round {}",
                    self.round
                ))
            })?;
        let staleness = self.round.saturating_sub(self.shards[dst].baseline_round);
        let reader_nic = self.shards[h].nic;
        if self.ledger.budget > 0 && staleness <= self.ledger.budget {
            // Stale-within-budget: embeddings as of the dead host's
            // baseline. t_stale still bounds what training consumes.
            self.ledger.degraded_reads += t.messages;
            self.ledger.max_staleness = self.ledger.max_staleness.max(staleness);
            if replica != h {
                let health = combine_health(reader_nic, self.shards[replica].nic);
                let secs = self
                    .topo
                    .one_sided_read_seconds(t.bytes, health)
                    .expect("live replica's NIC cannot be Down");
                self.comms.nic_bytes += t.bytes;
                self.comms.nic_seconds += secs;
                self.comms.num_transfers += 1;
            }
        } else {
            // Budget exceeded (or cache disabled): re-fetch raw features
            // at the fallback penalty. Staleness served is zero, so the
            // t_stale invariant holds by construction.
            let raw_bytes = t.messages * self.full.spec.feature_row_bytes() as u64;
            self.ledger.fallback_reads += t.messages;
            if replica != h {
                let health = combine_health(reader_nic, self.shards[replica].nic);
                let secs = self
                    .topo
                    .one_sided_read_seconds(raw_bytes, health)
                    .expect("live replica's NIC cannot be Down")
                    * FALLBACK_PENALTY;
                self.comms.nic_bytes += raw_bytes;
                self.comms.nic_seconds += secs;
                self.comms.num_transfers += 1;
            }
        }
        Ok(())
    }

    fn sync_obs_metrics(&mut self) {
        let m = &mut self.obs.metrics;
        m.counter_set("cluster.rounds", MetricClass::Exact, self.round);
        m.counter_set(
            "cluster.nic.bytes",
            MetricClass::Exact,
            self.comms.nic_bytes,
        );
        m.counter_set("cluster.retries", MetricClass::Exact, self.comms.retries);
        m.counter_set(
            "cluster.reads.remote",
            MetricClass::Exact,
            self.ledger.remote_reads,
        );
        m.counter_set(
            "cluster.reads.degraded",
            MetricClass::Exact,
            self.ledger.degraded_reads,
        );
        m.counter_set(
            "cluster.reads.fallback",
            MetricClass::Exact,
            self.ledger.fallback_reads,
        );
        m.counter_set(
            "cluster.staleness.max",
            MetricClass::Exact,
            self.ledger.max_staleness,
        );
        m.gauge_set(
            "cluster.membership.version",
            MetricClass::Exact,
            self.detector.view().version as f64,
        );
    }

    /// Snapshot the run into a [`ClusterReport`].
    pub fn report(&self) -> ClusterReport {
        let per_host_losses: Vec<Vec<f64>> =
            self.shards.iter().map(|s| s.epoch_means.clone()).collect();
        let epochs = per_host_losses.iter().map(|l| l.len()).min().unwrap_or(0);
        let mut epoch_losses = Vec::with_capacity(epochs);
        for e in 0..epochs {
            let sum: f64 = per_host_losses.iter().map(|l| l[e]).sum();
            epoch_losses.push(sum / per_host_losses.len() as f64);
        }
        let h2d_bytes = self
            .shards
            .iter()
            .map(|s| s.trainer.counters.host_to_gpu_bytes)
            .sum();
        // Exact-only per-host stream (transfer + retry + compute): the
        // measured sample/prune walls are excluded so the number is
        // byte-stable across reruns.
        let host_stream = self
            .shards
            .iter()
            .map(|s| {
                let c = &s.trainer.counters;
                c.transfer_seconds + c.retry_seconds + c.compute_seconds
            })
            .fold(0.0_f64, f64::max);
        ClusterReport {
            epochs: self.epochs_done,
            rounds: self.round,
            epoch_losses,
            per_host_losses,
            h2d_bytes,
            comms: self.comms.clone(),
            ledger: self.ledger,
            crashes: self.crashes,
            restarts: self.restarts,
            membership_version: self.detector.view().version,
            am_saving_seconds: self.am_saving_seconds,
            sim_seconds: host_stream + self.comms.nic_seconds + self.comms.retry_seconds,
        }
    }
}

/// Effective link health of a read crossing both endpoints' NICs:
/// degradation factors compose multiplicatively; a Down endpoint wins.
fn combine_health(a: LinkHealth, b: LinkHealth) -> LinkHealth {
    match (a, b) {
        (LinkHealth::Down, _) | (_, LinkHealth::Down) => LinkHealth::Down,
        (LinkHealth::Degraded(x), LinkHealth::Degraded(y)) => LinkHealth::Degraded(x * y),
        (LinkHealth::Degraded(x), LinkHealth::Up) | (LinkHealth::Up, LinkHealth::Degraded(x)) => {
            LinkHealth::Degraded(x)
        }
        (LinkHealth::Up, LinkHealth::Up) => LinkHealth::Up,
    }
}

/// Build host-local [`Dataset`] for the shard `nodes` (ascending global
/// IDs): induced subgraph, gathered feature rows, remapped labels and
/// splits.
fn shard_dataset(ds: &Dataset, nodes: &[NodeId]) -> Dataset {
    let (graph, global_ids) = induced_subgraph(&ds.graph, nodes);
    let rows: Vec<usize> = global_ids.iter().map(|&g| g as usize).collect();
    let features = ds.features.gather_rows(&rows);
    let labels: Vec<u16> = rows.iter().map(|&g| ds.labels[g]).collect();

    // Role map over global IDs → remapped local split lists. The local
    // lists inherit the shard's ascending-ID order, which is fine: the
    // per-epoch shuffle owns batch order.
    const TRAIN: u8 = 1;
    const VAL: u8 = 2;
    const TEST: u8 = 3;
    let mut role = vec![0u8; ds.num_nodes()];
    for &v in &ds.train_nodes {
        role[v as usize] = TRAIN;
    }
    for &v in &ds.val_nodes {
        role[v as usize] = VAL;
    }
    for &v in &ds.test_nodes {
        role[v as usize] = TEST;
    }
    let mut train_nodes = Vec::new();
    let mut val_nodes = Vec::new();
    let mut test_nodes = Vec::new();
    for (local, &g) in global_ids.iter().enumerate() {
        match role[g as usize] {
            TRAIN => train_nodes.push(local as NodeId),
            VAL => val_nodes.push(local as NodeId),
            TEST => test_nodes.push(local as NodeId),
            _ => {}
        }
    }
    let mut spec = ds.spec.clone();
    spec.num_nodes = global_ids.len();
    Dataset {
        spec,
        graph,
        features,
        labels,
        train_nodes,
        val_nodes,
        test_nodes,
    }
}
