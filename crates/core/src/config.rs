//! Configuration of the FreshGNN trainer.

/// How the loader moves feature bytes (§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// One-sided UVA reads from mapped storage memory (FreshGNN,
    /// PyTorch-Direct).
    OneSided,
    /// Classic two-sided index-ship + gather (DGL, PyG).
    TwoSided,
}

/// FreshGNN hyper-parameters (paper defaults from §7.1).
#[derive(Clone, Debug)]
pub struct FreshGnnConfig {
    /// Fraction of mini-batch nodes (smallest gradient norms first)
    /// admitted to / kept in the cache each iteration. `0.0` disables the
    /// historical cache entirely (plain neighbor sampling). Paper default
    /// 0.9.
    pub p_grad: f32,
    /// Maximum staleness in iterations before a cached embedding is
    /// evicted. `0` disables the cache. Paper default 200.
    pub t_stale: u32,
    /// Neighbor-sampling fanouts in input→output order (paper: 20, 15, 10).
    pub fanouts: Vec<usize>,
    /// Seed nodes per mini-batch (paper: 1000).
    pub batch_size: usize,
    /// Ring-buffer rows per cached layer. `0` = auto-size from the first
    /// mini-batch (`admitted-per-iter × t_stale`, the paper's
    /// "initialize fixed and reallocate on demand").
    pub cache_capacity: usize,
    /// Rows of the static raw-feature cache (highest-degree nodes) used to
    /// backfill the embedding table (§4.2). `0` disables.
    pub feature_cache_rows: usize,
    /// Transfer mode for feature loading.
    pub load_mode: LoadMode,
    /// Whether to cache the top (output) layer too. Algorithm 1 updates
    /// every layer's cache; interior reuse only ever reads layers
    /// `1..L-1`, so this defaults to false.
    pub cache_top_layer: bool,
    /// Cache policy — [`crate::cache::PolicyKind::Gradient`] is the
    /// paper's admission criterion; the others cover the ablation study
    /// (`exp_ablation_policy`) and the staleness-control literature swept
    /// by `exp_ext_policy_frontier` (DESIGN.md §11). Instantiated once per
    /// trainer via [`FreshGnnConfig::build_policy`].
    pub policy: crate::cache::PolicyKind,
    /// How many times an async sampler worker re-samples a batch whose
    /// sampling panicked before the epoch errors out (same `(seed, batch)`
    /// RNG each attempt, so recovery never changes the stream).
    pub sampler_retries: u32,
}

impl Default for FreshGnnConfig {
    fn default() -> Self {
        FreshGnnConfig {
            p_grad: 0.9,
            t_stale: 200,
            fanouts: vec![20, 15, 10],
            batch_size: 1000,
            cache_capacity: 0,
            feature_cache_rows: 0,
            load_mode: LoadMode::OneSided,
            cache_top_layer: false,
            policy: crate::cache::PolicyKind::Gradient,
            sampler_retries: crate::sampler::DEFAULT_SAMPLER_RETRIES,
        }
    }
}

impl FreshGnnConfig {
    /// Whether the historical cache is active (`p_grad > 0 && t_stale > 0`
    /// — either at zero degenerates to plain neighbor sampling, §4.1).
    pub fn cache_enabled(&self) -> bool {
        self.p_grad > 0.0 && self.t_stale > 0
    }

    /// Number of GNN layers implied by the fanouts.
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Instantiate the configured [`crate::cache::CachePolicy`]
    /// (policy-specific knobs — e.g. the coarse-refresh period — derive
    /// from `t_stale`).
    pub fn build_policy(&self) -> Box<dyn crate::cache::CachePolicy> {
        self.policy.build(self.t_stale)
    }

    /// A configuration equivalent to vanilla neighbor sampling (the
    /// paper's target baseline).
    pub fn neighbor_sampling(fanouts: Vec<usize>, batch_size: usize) -> Self {
        FreshGnnConfig {
            p_grad: 0.0,
            t_stale: 0,
            fanouts,
            batch_size,
            ..Default::default()
        }
    }

    /// Validate invariants; called by the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.p_grad) {
            return Err(format!("p_grad {} outside [0, 1]", self.p_grad));
        }
        if self.fanouts.is_empty() {
            return Err("fanouts must be non-empty".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FreshGnnConfig::default();
        assert_eq!(c.p_grad, 0.9);
        assert_eq!(c.t_stale, 200);
        assert_eq!(c.fanouts, vec![20, 15, 10]);
        assert_eq!(c.batch_size, 1000);
        assert!(c.cache_enabled());
        assert_eq!(c.num_layers(), 3);
    }

    #[test]
    fn zero_thresholds_disable_cache() {
        let c = FreshGnnConfig {
            p_grad: 0.0,
            ..Default::default()
        };
        assert!(!c.cache_enabled());
        let c = FreshGnnConfig {
            t_stale: 0,
            ..Default::default()
        };
        assert!(!c.cache_enabled());
    }

    #[test]
    fn neighbor_sampling_config_is_cache_free() {
        let c = FreshGnnConfig::neighbor_sampling(vec![5, 5], 32);
        assert!(!c.cache_enabled());
        assert_eq!(c.num_layers(), 2);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = FreshGnnConfig {
            p_grad: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FreshGnnConfig {
            fanouts: vec![],
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FreshGnnConfig {
            batch_size: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
