//! The unified error type for runtime fault handling.
//!
//! Historically each subsystem grew its own failure surface: checkpointing
//! returns [`CheckpointError`], the async sampler returns
//! [`SampleError`], the cache and config validate with ad-hoc `String`s,
//! and the feature loader just panicked on a bad index. Resilience code
//! (the [`crate::resilience`] supervisor) needs to *match on error kinds*
//! to pick a recovery action, so everything funnels into [`FgnnError`]
//! via `From` impls — `?` works across subsystem boundaries and the
//! supervisor can name the failure domain in its transition log.

use crate::checkpoint::CheckpointError;
use crate::sampler::SampleError;
use std::fmt;

/// Any failure the training runtime can surface.
#[derive(Debug)]
pub enum FgnnError {
    /// Checkpoint save/load/restore failed.
    Checkpoint(CheckpointError),
    /// The async sampler lost a batch or its workers.
    Sample(SampleError),
    /// Historical-cache snapshot/restore failed structural validation.
    Cache(String),
    /// Feature loading was asked for out-of-range rows.
    Load(String),
    /// Invalid configuration.
    Config(String),
    /// Numeric health guard tripped and recovery was exhausted.
    Numeric(String),
    /// The serving engine hit an invalid configuration or request (bad
    /// trace, zero-capacity queue, node outside the embedding store).
    Serve(String),
    /// The serving admission controller rejected work it cannot absorb:
    /// offered load exceeds what the bounded queue + token bucket accept.
    Overload(String),
    /// Underlying I/O failure outside the checkpoint framing.
    Io(std::io::Error),
}

impl FgnnError {
    /// Short stable name of the failure domain (used in supervisor
    /// transition-log causes).
    pub fn kind(&self) -> &'static str {
        match self {
            FgnnError::Checkpoint(_) => "checkpoint",
            FgnnError::Sample(_) => "sample",
            FgnnError::Cache(_) => "cache",
            FgnnError::Load(_) => "load",
            FgnnError::Config(_) => "config",
            FgnnError::Numeric(_) => "numeric",
            FgnnError::Serve(_) => "serve",
            FgnnError::Overload(_) => "overload",
            FgnnError::Io(_) => "io",
        }
    }
}

impl fmt::Display for FgnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FgnnError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            FgnnError::Sample(e) => write!(f, "sampler error: {e}"),
            FgnnError::Cache(m) => write!(f, "cache error: {m}"),
            FgnnError::Load(m) => write!(f, "feature-load error: {m}"),
            FgnnError::Config(m) => write!(f, "config error: {m}"),
            FgnnError::Numeric(m) => write!(f, "numeric-health error: {m}"),
            FgnnError::Serve(m) => write!(f, "serving error: {m}"),
            FgnnError::Overload(m) => write!(f, "overload error: {m}"),
            FgnnError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FgnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FgnnError::Checkpoint(e) => Some(e),
            FgnnError::Sample(e) => Some(e),
            FgnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for FgnnError {
    fn from(e: CheckpointError) -> Self {
        FgnnError::Checkpoint(e)
    }
}

impl From<SampleError> for FgnnError {
    fn from(e: SampleError) -> Self {
        FgnnError::Sample(e)
    }
}

impl From<std::io::Error> for FgnnError {
    fn from(e: std::io::Error) -> Self {
        FgnnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_allow_question_mark_across_domains() {
        fn load() -> Result<(), FgnnError> {
            Err(CheckpointError::BadMagic)?
        }
        fn sample() -> Result<(), FgnnError> {
            Err(SampleError::BatchPanicked {
                batch_index: 3,
                attempts: 2,
            })?
        }
        assert!(matches!(load(), Err(FgnnError::Checkpoint(_))));
        assert!(matches!(sample(), Err(FgnnError::Sample(_))));
    }

    #[test]
    fn kind_and_display_are_stable() {
        let e = FgnnError::Cache("snapshot level 2 dim 3 != configured 4".into());
        assert_eq!(e.kind(), "cache");
        assert!(e.to_string().contains("cache error"));
        let e: FgnnError = CheckpointError::Truncated.into();
        assert_eq!(e.kind(), "checkpoint");
        assert!(e.to_string().contains("truncated"));
    }

    /// Exhaustive display/kind round-trip: one instance of *every*
    /// variant (the match below fails to compile when a variant is added
    /// without extending this list), each checked for a stable `kind()`
    /// and a display string that leads with its domain.
    #[test]
    fn every_variant_displays_and_round_trips_its_kind() {
        let variants: Vec<FgnnError> = vec![
            FgnnError::Checkpoint(CheckpointError::BadMagic),
            FgnnError::Sample(SampleError::BatchPanicked {
                batch_index: 0,
                attempts: 1,
            }),
            FgnnError::Cache("c".into()),
            FgnnError::Load("l".into()),
            FgnnError::Config("c".into()),
            FgnnError::Numeric("n".into()),
            FgnnError::Serve("queue cap 0".into()),
            FgnnError::Overload("bucket empty".into()),
            FgnnError::Io(std::io::Error::other("disk on fire")),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in &variants {
            // Compile-time exhaustiveness + the expected display prefix.
            let prefix = match e {
                FgnnError::Checkpoint(_) => "checkpoint error",
                FgnnError::Sample(_) => "sampler error",
                FgnnError::Cache(_) => "cache error",
                FgnnError::Load(_) => "feature-load error",
                FgnnError::Config(_) => "config error",
                FgnnError::Numeric(_) => "numeric-health error",
                FgnnError::Serve(_) => "serving error",
                FgnnError::Overload(_) => "overload error",
                FgnnError::Io(_) => "i/o error",
            };
            let shown = e.to_string();
            assert!(
                shown.starts_with(prefix),
                "{shown:?} should start with {prefix:?}"
            );
            assert!(seen.insert(e.kind()), "duplicate kind {:?}", e.kind());
        }
        assert_eq!(seen.len(), variants.len());
        // The serving-side kinds the supervisor matches on are pinned.
        assert!(seen.contains("serve") && seen.contains("overload"));
    }

    #[test]
    fn source_chains_to_the_underlying_error() {
        use std::error::Error;
        let e: FgnnError = CheckpointError::BadMagic.into();
        assert!(e.source().is_some());
        let e = FgnnError::Config("bad p_grad".into());
        assert!(e.source().is_none());
    }
}
