// Index-based loops below intentionally walk several parallel arrays in
// lockstep; iterator zips would obscure the math. Clippy disagrees.
#![allow(clippy::needless_range_loop)]

//! Heterogeneous-graph extension (§7.6): R-GraphSAGE with the historical
//! embedding cache on the target node type.
//!
//! The cache machinery carries over unchanged: the labeled (paper) type's
//! per-level embeddings are cached under the same `p_grad`/`t_stale`
//! policy; a cached paper destination has every incoming relation pruned
//! and its typed subtree dies, skipping the corresponding author/
//! institution expansions and feature loads. (Caching the unlabeled types
//! too would be a straightforward extension; the paper's experiment only
//! needs the target type, where gradient feedback exists every iteration.)

use crate::cache::{CachePolicy, HistoricalCache, PolicyInput};
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::config::FreshGnnConfig;
use crate::obs::Obs;
use crate::pipeline::{BatchOutput, Engine, EpochStats, EvalHarness, PipelineCtx, StallPolicy};
use crate::resilience::{HealthState, NumericFault, NumericGuard, Supervisor};
use crate::runtime::RuntimeConfig;
use crate::sampler::SampleError;
use fgnn_graph::hetero::{HeteroDataset, HeteroMiniBatch, HeteroSampler};
use fgnn_graph::sample::split_batches;
use fgnn_graph::NodeId;
use fgnn_memsim::fault::{BreakerPolicy, BreakerState, FaultPlan, FaultState, RetryPolicy};
use fgnn_memsim::presets::Machine;
use fgnn_memsim::stage::{StageKind, StageTimings};
use fgnn_memsim::topology::Node;
use fgnn_memsim::TrafficCounters;
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::Arch;
use fgnn_nn::rsage::RSageModel;
use fgnn_nn::Optimizer;
use fgnn_tensor::{Matrix, Rng};
use std::collections::BTreeSet;

/// R-GraphSAGE trainer over a [`HeteroDataset`].
pub struct HeteroTrainer {
    /// The relational model under training.
    pub model: RSageModel,
    /// Historical cache on the target type's levels.
    pub cache: HistoricalCache,
    /// Cache policy built from `cfg.policy` (DESIGN.md §11).
    policy: Box<dyn CachePolicy>,
    /// Dedicated side-stream RNG for randomized policies. Deliberately
    /// *not* forked from the main RNG: the historical hetero trainer never
    /// consumed randomness in its cache update, and forking per batch
    /// would shift the batch schedule pinned by the equivalence goldens.
    policy_rng: Rng,
    /// Hyper-parameters (fanouts/batch size/p_grad/t_stale reused).
    pub cfg: FreshGnnConfig,
    /// Traffic ledger.
    pub counters: TrafficCounters,
    /// Cumulative per-stage attribution of `counters` (not checkpointed).
    pub timings: StageTimings,
    /// Observability state: sim-clock spans plus metrics, fed by the
    /// pipeline engine (not checkpointed).
    pub obs: Obs,
    machine: Machine,
    sampler: HeteroSampler,
    /// `(src_type, dst_type)` per relation, in the graph's relation order.
    rel_types: Vec<(usize, usize)>,
    dims: Vec<usize>,
    iter: u32,
    epoch: u32,
    rng: Rng,
    faults: FaultState,
    /// Iterations whose reported loss is forced to NaN (chaos-test hook).
    nan_iters: BTreeSet<u32>,
    /// Seeded adversarial scheduling on the async runtime (`None` in
    /// production; the schedule-fuzzing suite turns it on).
    runtime_chaos: Option<crate::runtime::ChaosPolicy>,
    /// Set by a degraded restore; consumed into the next epoch's stats.
    degraded_resume: bool,
}

impl HeteroTrainer {
    /// Build a trainer for `ds` with `hidden` units per hidden layer.
    pub fn new(
        ds: &HeteroDataset,
        hidden: usize,
        machine: Machine,
        cfg: FreshGnnConfig,
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid config");
        let mut rng = Rng::new(seed);
        let num_layers = cfg.num_layers();
        let in_dim = ds.features[ds.target_type].cols();
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(in_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.num_classes);
        let model = RSageModel::new(&ds.graph, ds.target_type, &dims, &mut rng);
        let policy = cfg.build_policy();
        let mut cache = HistoricalCache::new(
            ds.graph.node_counts[ds.target_type],
            &dims[1..],
            cfg.t_stale,
            cfg.cache_capacity,
            cfg.cache_top_layer,
            cfg.cache_enabled(),
        );
        if policy.wants_history() {
            cache.enable_history();
        }
        HeteroTrainer {
            model,
            cache,
            policy,
            policy_rng: Rng::new(seed ^ 0x0000_504F_4C49_4359), // "POLICY" side stream
            counters: TrafficCounters::new(),
            timings: StageTimings::new(),
            obs: Obs::new(),
            machine,
            sampler: HeteroSampler::new(&ds.graph),
            rel_types: ds
                .graph
                .relations
                .iter()
                .map(|r| (r.src_type, r.dst_type))
                .collect(),
            dims,
            cfg,
            iter: 0,
            epoch: 0,
            rng,
            faults: FaultState::none(),
            nan_iters: BTreeSet::new(),
            runtime_chaos: None,
            degraded_resume: false,
        }
    }

    /// Inject interconnect faults (same contract as
    /// [`crate::Trainer::inject_faults`]).
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        self.faults.inject(plan, policy);
    }

    /// Arm the interconnect circuit breaker (same contract as
    /// [`crate::Trainer::enable_breaker`]).
    pub fn enable_breaker(&mut self, policy: BreakerPolicy) {
        self.faults.arm_breaker(policy);
    }

    /// Force the loss reported at the given iterations to NaN (chaos-test
    /// hook, same contract as [`crate::Trainer::inject_nan_at`]).
    pub fn inject_nan_at(&mut self, iters: impl IntoIterator<Item = u32>) {
        self.nan_iters.extend(iters);
    }

    /// State of the interconnect circuit breaker, if one is armed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.faults.breaker_state()
    }

    /// Breaker lifetime statistics `(trips, fast_fails)`, if one is armed.
    pub fn breaker_stats(&self) -> Option<(u64, u64)> {
        self.faults
            .breaker
            .as_ref()
            .map(|b| (b.trips, b.fast_fails))
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u32 {
        self.iter
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u32 {
        self.epoch
    }

    /// Capture the full trainable state, including the historical-cache
    /// snapshot. The arch slot records [`Arch::Sage`]: R-GraphSAGE is the
    /// relational form of SAGE and has no own `Arch` variant.
    pub fn checkpoint(&mut self, opt: &dyn Optimizer) -> Checkpoint {
        Checkpoint {
            arch: Arch::Sage,
            dims: self.dims.clone(),
            params: self.model.export_parameters(),
            optimizer: opt.export_state(),
            rng_state: self.rng.state(),
            epoch: self.epoch,
            iter: self.iter,
            counters: self.counters.clone(),
            static_resident: Vec::new(),
            cache: Some(self.cache.snapshot()),
            cache_degraded: false,
        }
    }

    /// Restore from a checkpoint taken by an identically-configured hetero
    /// trainer. Returns `Ok(degraded)` with the same semantics as
    /// [`crate::Trainer::restore`]: a missing or incompatible cache segment
    /// resumes cold rather than failing.
    pub fn restore(
        &mut self,
        ckpt: &Checkpoint,
        opt: &mut dyn Optimizer,
    ) -> Result<bool, CheckpointError> {
        if ckpt.arch != Arch::Sage {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint arch {} is not an R-GraphSAGE checkpoint",
                ckpt.arch
            )));
        }
        if ckpt.dims != self.dims {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint dims {:?} vs trainer {:?}",
                ckpt.dims, self.dims
            )));
        }
        if ckpt.params.len() != self.model.num_parameters() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint has {} parameters, model has {}",
                ckpt.params.len(),
                self.model.num_parameters()
            )));
        }
        self.model.import_parameters(&ckpt.params);
        opt.import_state(ckpt.optimizer.clone());
        self.rng = Rng::from_state(ckpt.rng_state);
        self.epoch = ckpt.epoch;
        self.iter = ckpt.iter;
        self.counters = ckpt.counters.clone();
        let mut degraded = ckpt.cache_degraded;
        let restored = match &ckpt.cache {
            Some(snapshot) => self.cache.restore(snapshot.clone()).is_ok(),
            None => false,
        };
        if !restored {
            self.cache.clear();
            degraded = true;
        } else {
            // Drop cache entries stamped after the restored iteration so
            // the t_stale bound holds post-rollback (see
            // `Trainer::restore`).
            self.cache.evict_newer_than(ckpt.iter);
        }
        self.degraded_resume = degraded;
        Ok(degraded)
    }

    /// Train one epoch over the target-type training nodes through the
    /// pipeline engine (full FreshGNN stage set, typed).
    pub fn train_epoch(&mut self, ds: &HeteroDataset, opt: &mut dyn Optimizer) -> EpochStats {
        let mut shuffle_rng = self.rng.fork();
        let batches = split_batches(&ds.train_nodes, self.cfg.batch_size, Some(&mut shuffle_rng));
        let topo = self.machine.topology.clone();
        let mut stages = HeteroStages {
            model: &mut self.model,
            cache: &mut self.cache,
            policy: &*self.policy,
            policy_rng: &mut self.policy_rng,
            sampler: &mut self.sampler,
            rng: &mut self.rng,
            iter: &mut self.iter,
            cfg: &self.cfg,
            rel_types: &self.rel_types,
            dims: &self.dims,
            machine: &self.machine,
            ds,
        };
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            batches.iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, seeds| Some(stages.train_batch(ctx, counters, seeds, opt)),
        );
        let mut stats = result.unwrap();
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats.cache_degraded = std::mem::take(&mut self.degraded_resume);
        stats
    }

    /// Enable (or disable with `None`) seeded adversarial scheduling on
    /// [`HeteroTrainer::train_epoch_async`]'s runtime (same contract as
    /// [`crate::Trainer::set_sampler_chaos`]: the schedule scrambles, the
    /// numbers never do).
    pub fn set_runtime_chaos(&mut self, chaos: Option<crate::runtime::ChaosPolicy>) {
        self.runtime_chaos = chaos;
    }

    /// Train one epoch with **cross-batch prestage overlap**: typed
    /// sampling for every mini-batch is scheduled on the in-tree
    /// work-stealing runtime ([`Engine::run_epoch_overlapped`]) while this
    /// thread prunes/loads/trains, so sampling for future batches runs
    /// under the current batch's GPU stages. Only consumer queue stalls
    /// are charged as `Sample` time.
    ///
    /// Deterministic: each batch's sampling RNG derives from
    /// `(batch_seed, index)` alone and results commit in index order, so
    /// losses, counters and every `Exact` metric are byte-identical at any
    /// `num_threads` (note the stream differs from [`Self::train_epoch`],
    /// which draws per-batch RNGs sequentially from the trainer stream).
    ///
    /// Errors mirror [`crate::Trainer::train_epoch_async`]: a batch whose
    /// sampling task panicked on every attempt surfaces as
    /// [`SampleError::BatchPanicked`], dead workers as
    /// [`SampleError::WorkersLost`]; progress made before the failure is
    /// kept.
    pub fn train_epoch_async(
        &mut self,
        ds: &HeteroDataset,
        opt: &mut dyn Optimizer,
        num_threads: usize,
        queue_capacity: usize,
    ) -> Result<EpochStats, SampleError> {
        let mut shuffle_rng = self.rng.fork();
        let batches = split_batches(&ds.train_nodes, self.cfg.batch_size, Some(&mut shuffle_rng));
        let batch_seed = self.rng.fork().next_u64();

        let graph = std::sync::Arc::new(ds.graph.clone());
        let runtime_cfg = RuntimeConfig {
            workers: num_threads.max(1),
            queue_capacity: queue_capacity.max(1),
            max_retries: self.cfg.sampler_retries,
            chaos: self.runtime_chaos,
            ..RuntimeConfig::default()
        };
        let target = ds.target_type;
        let fanouts = self.cfg.fanouts.clone();
        let topo = self.machine.topology.clone();
        let mut stages = HeteroStages {
            model: &mut self.model,
            cache: &mut self.cache,
            policy: &*self.policy,
            policy_rng: &mut self.policy_rng,
            sampler: &mut self.sampler,
            rng: &mut self.rng,
            iter: &mut self.iter,
            cfg: &self.cfg,
            rel_types: &self.rel_types,
            dims: &self.dims,
            machine: &self.machine,
            ds,
        };
        let init_graph = std::sync::Arc::clone(&graph);
        let result = Engine::run_epoch_overlapped::<_, _, _, SampleError>(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            &runtime_cfg,
            batches,
            move || HeteroSampler::new(&init_graph),
            move |sampler: &mut HeteroSampler, i, seeds: &Vec<NodeId>, _attempt| {
                // Per-batch RNG, recreated per attempt => schedule- and
                // retry-independent output (same discipline as
                // `AsyncSampler`).
                let mut rng = Rng::new(batch_seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let mb = sampler.sample(&graph, target, seeds, &fanouts, &mut rng);
                (seeds.clone(), mb)
            },
            |ctx, counters, (seeds, mb)| Some(stages.train_sampled(ctx, counters, &seeds, mb, opt)),
        );
        let mut stats = result?;
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats.cache_degraded = std::mem::take(&mut self.degraded_resume);
        Ok(stats)
    }

    /// Train one epoch under the health supervisor — the heterogeneous
    /// analogue of [`crate::Trainer::train_epoch_resilient`]: a tripped
    /// numeric guard aborts the epoch, rolls back to the supervisor's
    /// baseline checkpoint (evicting future-stamped cache entries) and
    /// replays the identical batch schedule; the rollback budget bounds
    /// deterministic divergences.
    pub fn train_epoch_resilient(
        &mut self,
        ds: &HeteroDataset,
        opt: &mut dyn Optimizer,
        sup: &mut Supervisor,
    ) -> Result<EpochStats, crate::error::FgnnError> {
        use crate::error::FgnnError;
        if !sup.has_baseline() {
            sup.set_baseline(self.checkpoint(opt));
        }
        loop {
            let mut nan_iters = std::mem::take(&mut self.nan_iters);
            let (stats, fault) = self.train_epoch_guarded(ds, opt, &mut sup.guard, &mut nan_iters);
            self.nan_iters = nan_iters;
            let Some(fault) = fault else {
                let breaker_open = matches!(self.faults.breaker_state(), Some(BreakerState::Open));
                if breaker_open || stats.degraded_batches > 0 {
                    sup.transition(
                        HealthState::Degraded,
                        self.iter,
                        self.epoch,
                        "breaker-open",
                        &mut self.obs,
                    );
                } else {
                    sup.transition(
                        HealthState::Healthy,
                        self.iter,
                        self.epoch,
                        "epoch-clean",
                        &mut self.obs,
                    );
                    sup.set_baseline(self.checkpoint(opt));
                }
                return Ok(stats);
            };
            sup.transition(
                HealthState::Degraded,
                fault.iter(),
                self.epoch,
                fault.cause(),
                &mut self.obs,
            );
            if !sup.can_roll_back() {
                return Err(FgnnError::Numeric(format!(
                    "rollback budget exhausted after {} rollbacks: {}",
                    sup.rollbacks(),
                    fault.cause()
                )));
            }
            let ckpt = sup.baseline().cloned().ok_or_else(|| {
                FgnnError::Numeric(format!("no baseline to roll back to: {}", fault.cause()))
            })?;
            self.restore(&ckpt, opt)?;
            sup.record_rollback(&mut self.obs);
            sup.transition(
                HealthState::Recovering,
                ckpt.iter,
                self.epoch,
                "rollback",
                &mut self.obs,
            );
        }
    }

    /// [`HeteroTrainer::train_epoch`] with the numeric-health guard in the
    /// loop; once it trips, remaining batches are skipped and the fault is
    /// returned with the partial stats.
    fn train_epoch_guarded(
        &mut self,
        ds: &HeteroDataset,
        opt: &mut dyn Optimizer,
        guard: &mut NumericGuard,
        nan_iters: &mut BTreeSet<u32>,
    ) -> (EpochStats, Option<NumericFault>) {
        let mut shuffle_rng = self.rng.fork();
        let batches = split_batches(&ds.train_nodes, self.cfg.batch_size, Some(&mut shuffle_rng));
        let topo = self.machine.topology.clone();
        let mut stages = HeteroStages {
            model: &mut self.model,
            cache: &mut self.cache,
            policy: &*self.policy,
            policy_rng: &mut self.policy_rng,
            sampler: &mut self.sampler,
            rng: &mut self.rng,
            iter: &mut self.iter,
            cfg: &self.cfg,
            rel_types: &self.rel_types,
            dims: &self.dims,
            machine: &self.machine,
            ds,
        };
        let mut fault: Option<NumericFault> = None;
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            batches.iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, seeds| {
                if fault.is_some() {
                    return None;
                }
                let it = *stages.iter;
                let mut out = stages.train_batch(ctx, counters, seeds, opt);
                if nan_iters.remove(&it) {
                    out.loss = f32::NAN;
                }
                if let Some(f) = guard.observe(it, out.loss) {
                    fault = Some(f);
                    return None;
                }
                Some(out)
            },
        );
        let mut stats = result.unwrap();
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats.cache_degraded = std::mem::take(&mut self.degraded_resume);
        (stats, fault)
    }

    /// Evaluate accuracy on target-type `nodes` with plain (uncached)
    /// sampling.
    pub fn evaluate(&mut self, ds: &HeteroDataset, nodes: &[NodeId], batch_size: usize) -> f64 {
        let mut rng = self.rng.fork();
        EvalHarness::accuracy_hetero(
            &self.model,
            ds,
            nodes,
            &self.cfg.fanouts,
            batch_size,
            &mut rng,
        )
    }
}

/// Disjoint borrows of [`HeteroTrainer`] fields for the per-batch step.
struct HeteroStages<'s, 'd> {
    model: &'s mut RSageModel,
    cache: &'s mut HistoricalCache,
    policy: &'s dyn CachePolicy,
    policy_rng: &'s mut Rng,
    sampler: &'s mut HeteroSampler,
    rng: &'s mut Rng,
    iter: &'s mut u32,
    cfg: &'s FreshGnnConfig,
    rel_types: &'s [(usize, usize)],
    dims: &'s [usize],
    machine: &'s Machine,
    ds: &'d HeteroDataset,
}

impl<'t> HeteroStages<'_, '_> {
    fn train_batch(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        seeds: &[NodeId],
        opt: &mut dyn Optimizer,
    ) -> BatchOutput {
        let ds = self.ds;
        let target = ds.target_type;
        let mb = ctx.stage(StageKind::Sample, counters, |_engine, _c| {
            let mut sample_rng = self.rng.fork();
            self.sampler
                .sample(&ds.graph, target, seeds, &self.cfg.fanouts, &mut sample_rng)
        });
        self.train_sampled(ctx, counters, seeds, mb, opt)
    }

    /// Run a pre-sampled batch through prune → load → forward → backward →
    /// cache-update → optim-step. The async path prestages the `Sample`
    /// stage on the work-stealing runtime and enters here; the sync path
    /// samples inline first.
    fn train_sampled(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        seeds: &[NodeId],
        mut mb: HeteroMiniBatch,
        opt: &mut dyn Optimizer,
    ) -> BatchOutput {
        let ds = self.ds;
        let target = ds.target_type;
        let now = *self.iter;

        // Degraded mode: breaker open — bypass the ring cache for this
        // batch (see `FreshGnnStages::train_sampled`).
        let degraded = ctx.breaker_open();
        self.cache.set_bypass(degraded);

        // Cache-aware typed pruning (top-down reachability).
        let outcome = ctx.stage(StageKind::Prune, counters, |_engine, _c| {
            prune_hetero_with(
                &mut mb,
                self.rel_types,
                self.cache,
                target,
                now,
                self.policy,
            )
        });

        // Load per-type input features for surviving src nodes.
        let n_types = ds.graph.node_counts.len();
        let h0 = ctx.stage(StageKind::Load, counters, |engine, c| {
            let mut h0 = Vec::with_capacity(n_types);
            let mut wire_bytes = 0u64;
            let mut saved_bytes = 0u64;
            for t in 0..n_types {
                let row_bytes = (ds.features[t].cols() * 4) as u64;
                let srcs = &mb.blocks[0].src[t];
                let mut m = Matrix::zeros(srcs.len(), ds.features[t].cols());
                for (i, &g) in srcs.iter().enumerate() {
                    if outcome.needed_input[t][i] {
                        m.row_mut(i).copy_from_slice(ds.features[t].row(g as usize));
                        wire_bytes += row_bytes;
                    } else {
                        saved_bytes += row_bytes;
                    }
                }
                h0.push(m);
            }
            if wire_bytes > 0 {
                engine.one_sided_read(Node::Host, Node::Gpu(0), wire_bytes, c);
            }
            c.cache_hit_bytes += saved_bytes;
            h0
        });

        // Forward with cache overrides on the target type (the policy
        // post-processes each read; plain copy under the baseline).
        let trace = ctx.stage(StageKind::Forward, counters, |_engine, _c| {
            let cache = &*self.cache;
            let policy = self.policy;
            let cached = &outcome.cached;
            self.model.forward_with(&mb, h0, |level, h| {
                let b = level - 1;
                if b < cached.len() {
                    for &(local, slot) in &cached[b] {
                        cache.read_into(
                            level,
                            slot,
                            now,
                            policy,
                            h[target].row_mut(local as usize),
                        );
                    }
                }
            })
        });

        let num_levels = self.dims.len() - 1;
        let (loss, policy_inputs) = ctx.stage(StageKind::Backward, counters, |_engine, _c| {
            let logits = self.model.logits(&trace);
            let labels: Vec<u16> = seeds.iter().map(|&s| ds.labels[s as usize]).collect();
            let (loss, d_logits) = softmax_cross_entropy(logits, &labels);

            self.model.zero_grad();
            let mut policy_inputs: Vec<Vec<PolicyInput>> = vec![Vec::new(); num_levels + 1];
            {
                let cache_enabled = self.cfg.cache_enabled();
                let inputs = &mut policy_inputs;
                self.model.backward_with(&mb, &trace, d_logits, |level, d| {
                    if !cache_enabled || level == num_levels {
                        return; // top level = seeds, never cached
                    }
                    let b = level - 1;
                    let block = &mb.blocks[b];
                    let mut is_cached = vec![false; block.dst[target].len()];
                    for &(local, _) in &outcome.cached[b] {
                        is_cached[local as usize] = true;
                    }
                    for v in 0..block.dst[target].len() {
                        if !(outcome.computed[b][v] || is_cached[v]) {
                            continue;
                        }
                        let row = d[target].row(v);
                        let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
                        inputs[level].push(PolicyInput {
                            node: block.dst[target][v],
                            local: v as u32,
                            grad_norm: norm,
                            was_cached: is_cached[v],
                        });
                    }
                    for &(local, _) in &outcome.cached[b] {
                        d[target]
                            .row_mut(local as usize)
                            .iter_mut()
                            .for_each(|x| *x = 0.0);
                    }
                });
            }
            (loss, policy_inputs)
        });

        ctx.stage(StageKind::CacheUpdate, counters, |_engine, _c| {
            for level in 1..num_levels {
                if policy_inputs[level].is_empty() {
                    continue;
                }
                let verdicts =
                    self.policy
                        .verdicts(&policy_inputs[level], self.cfg.p_grad, self.policy_rng);
                self.cache
                    .apply_verdicts(level, &verdicts, &trace.h[level][target], now);
            }
        });

        ctx.stage(StageKind::OptimStep, counters, |_engine, _c| {
            let mut params = self.model.params_mut();
            opt.step(&mut params);
        });

        // Simulated compute from live relation edges, attributed to the
        // forward/backward pass (charged after opt.step exactly as the
        // pre-pipeline loop did, to keep f64 accumulation order).
        let mut flops = 0.0;
        for (b, block) in mb.blocks.iter().enumerate() {
            let edges: usize = block.num_edges();
            flops += fgnn_memsim::presets::aggregation_flops(edges, self.dims[b]);
            let n_dst: usize = block.dst.iter().map(Vec::len).sum();
            flops += fgnn_memsim::presets::dense_flops(n_dst, self.dims[b], self.dims[b + 1]);
        }
        ctx.stage(StageKind::Backward, counters, |_engine, c| {
            c.compute_seconds += self.machine.gpu.compute_seconds(3.0 * flops);
        });

        self.cache.set_bypass(false);
        *self.iter += 1;
        BatchOutput::loss_only(loss).with_degraded(degraded)
    }
}

/// Typed pruning outcome.
pub struct HeteroPruneOutcome {
    /// Per block: `(local target-type dst index, slot)` cache reads.
    pub cached: Vec<Vec<(u32, u32)>>,
    /// Per block: whether each target-type dst is computed.
    pub computed: Vec<Vec<bool>>,
    /// Per type: which input src nodes need feature loads.
    pub needed_input: Vec<Vec<bool>>,
}

/// Top-down typed reachability pruning under the baseline policy (no
/// refresh schedule) — see [`prune_hetero_with`].
pub fn prune_hetero(
    mb: &mut HeteroMiniBatch,
    rel_types: &[(usize, usize)],
    cache: &mut HistoricalCache,
    target: usize,
    now: u32,
) -> HeteroPruneOutcome {
    prune_hetero_with(
        mb,
        rel_types,
        cache,
        target,
        now,
        &crate::cache::GradientPolicy,
    )
}

/// Top-down typed reachability pruning — the heterogeneous analogue of
/// [`crate::prune::prune_with_cache_policy`]. `rel_types[r]` gives
/// relation `r`'s `(src_type, dst_type)`. Cache probes route through
/// `policy` ([`HistoricalCache::lookup_with`]), so a refresh schedule can
/// decline live hits and force in-place refreshes.
pub fn prune_hetero_with(
    mb: &mut HeteroMiniBatch,
    rel_types: &[(usize, usize)],
    cache: &mut HistoricalCache,
    target: usize,
    now: u32,
    policy: &dyn CachePolicy,
) -> HeteroPruneOutcome {
    let num_blocks = mb.blocks.len();
    let n_types = mb.blocks[0].dst.len();
    let mut cached: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_blocks];
    let mut computed: Vec<Vec<bool>> = mb
        .blocks
        .iter()
        .map(|b| vec![false; b.dst[target].len()])
        .collect();

    // Top block: only target-type seeds are needed.
    let mut needed: Vec<Vec<bool>> = (0..n_types)
        .map(|t| vec![t == target; mb.blocks[num_blocks - 1].dst[t].len()])
        .collect();

    for b in (0..num_blocks).rev() {
        let level = b + 1;
        let is_top = b + 1 == num_blocks;
        let mut needed_below: Vec<Vec<bool>> = (0..n_types)
            .map(|t| vec![false; mb.blocks[b].src[t].len()])
            .collect();

        // Target-type cache check.
        let n_target_dst = mb.blocks[b].dst[target].len();
        let mut is_cached = vec![false; n_target_dst];
        for v in 0..n_target_dst {
            if !needed[target][v] {
                continue;
            }
            let node = mb.blocks[b].dst[target][v];
            if !is_top {
                if let Some(slot) = cache.lookup_with(level, node, now, policy) {
                    cached[b].push((v as u32, slot));
                    is_cached[v] = true;
                    continue;
                }
            }
            computed[b][v] = true;
        }

        // Per relation: prune dead/cached rows, expand live ones.
        for (r, &(src_t, dst_t)) in rel_types.iter().enumerate() {
            for v in 0..mb.blocks[b].rel_adj[r].num_nodes() {
                let live = needed[dst_t].get(v).copied().unwrap_or(false)
                    && !(dst_t == target && is_cached[v]);
                if !live {
                    mb.blocks[b].rel_adj[r].prune(v);
                    continue;
                }
                for &u in mb.blocks[b].rel_adj[r].neighbors(v) {
                    needed_below[src_t][u as usize] = true;
                }
            }
        }

        // Self terms: every live destination needs its own lower row.
        for t in 0..n_types {
            for v in 0..mb.blocks[b].dst[t].len() {
                let live = needed[t][v] && !(t == target && is_cached[v]);
                if live {
                    needed_below[t][v] = true;
                }
            }
        }

        if b == 0 {
            return HeteroPruneOutcome {
                cached,
                computed,
                needed_input: needed_below,
            };
        }
        needed = needed_below;
    }
    unreachable!("loop returns at b == 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::hetero::mag_hetero;
    use fgnn_nn::Adam;

    fn tiny() -> HeteroDataset {
        mag_hetero(400, 4, 8, 3)
    }

    fn config(p_grad: f32, t_stale: u32) -> FreshGnnConfig {
        FreshGnnConfig {
            p_grad,
            t_stale,
            fanouts: vec![3, 3],
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn hetero_training_reduces_loss() {
        let ds = tiny();
        let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 1);
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt).mean_loss;
        let mut last = first;
        for _ in 0..6 {
            last = t.train_epoch(&ds, &mut opt).mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn hetero_cache_serves_hits_and_saves_traffic() {
        let ds = tiny();
        let machine = Machine::single_a100();
        let mut cached = HeteroTrainer::new(&ds, 16, machine.clone(), config(0.95, 100), 2);
        let mut plain = HeteroTrainer::new(&ds, 16, machine, config(0.0, 0), 2);
        let mut o1 = Adam::new(0.01);
        let mut o2 = Adam::new(0.01);
        for _ in 0..4 {
            cached.train_epoch(&ds, &mut o1);
            plain.train_epoch(&ds, &mut o2);
        }
        assert!(cached.cache.stats().hits > 0);
        assert!(
            cached.counters.host_to_gpu_bytes < plain.counters.host_to_gpu_bytes,
            "cached {} vs plain {}",
            cached.counters.host_to_gpu_bytes,
            plain.counters.host_to_gpu_bytes
        );
    }

    #[test]
    fn hetero_async_epochs_are_worker_count_invariant() {
        let ds = tiny();
        let run = |workers: usize, chaos: Option<crate::runtime::ChaosPolicy>| {
            let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 3);
            t.set_runtime_chaos(chaos);
            let mut opt = Adam::new(0.01);
            let mut losses = Vec::new();
            for _ in 0..3 {
                let stats = t.train_epoch_async(&ds, &mut opt, workers, 4).unwrap();
                losses.push(stats.mean_loss.to_bits());
            }
            (losses, t.counters.host_to_gpu_bytes, t.cache.stats().hits)
        };
        let reference = run(1, None);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers, None), reference, "workers={workers}");
        }
        // Adversarial schedules scramble who samples what when — never
        // the committed stream.
        let chaos = crate::runtime::ChaosPolicy::aggressive(11);
        assert_eq!(run(4, Some(chaos)), reference, "chaos");
    }

    #[test]
    fn hetero_async_training_reduces_loss() {
        let ds = tiny();
        let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 1);
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch_async(&ds, &mut opt, 2, 4).unwrap().mean_loss;
        let mut last = first;
        for _ in 0..6 {
            last = t.train_epoch_async(&ds, &mut opt, 2, 4).unwrap().mean_loss;
        }
        assert!(last < first, "loss {first} -> {last}");
        assert_eq!(t.epochs(), 7);
    }

    #[test]
    fn hetero_accuracy_above_random() {
        let ds = tiny();
        let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 4);
        let mut opt = Adam::new(0.01);
        for _ in 0..10 {
            t.train_epoch(&ds, &mut opt);
        }
        let acc = t.evaluate(&ds, &ds.test_nodes, 128);
        assert!(acc > 0.3, "4-class accuracy {acc}");
    }

    #[test]
    fn hetero_resilient_epoch_rolls_back_on_injected_nan() {
        use crate::resilience::Supervisor;
        let ds = tiny();
        let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 9);
        let mut opt = Adam::new(0.01);
        let mut sup = Supervisor::default();
        let clean = t.train_epoch_resilient(&ds, &mut opt, &mut sup).unwrap();
        assert!(sup.transitions().is_empty());
        t.inject_nan_at([t.iter + 1]);
        let recovered = t.train_epoch_resilient(&ds, &mut opt, &mut sup).unwrap();
        assert_eq!(sup.rollbacks(), 1);
        assert_eq!(sup.state(), crate::resilience::HealthState::Healthy);
        assert_eq!(recovered.batches, clean.batches);
        assert!(recovered.mean_loss.is_finite());
        assert_eq!(t.epochs(), 2);
    }

    #[test]
    fn prune_hetero_with_empty_cache_keeps_everything_reachable() {
        let ds = tiny();
        let mut sampler = HeteroSampler::new(&ds.graph);
        let mut rng = Rng::new(5);
        let seeds: Vec<NodeId> = ds.train_nodes[..8].to_vec();
        let mut mb = sampler.sample(&ds.graph, 0, &seeds, &[3, 3], &mut rng);
        let edges_before = mb.blocks.iter().map(|b| b.num_edges()).sum::<usize>();
        let rel_types: Vec<(usize, usize)> = ds
            .graph
            .relations
            .iter()
            .map(|r| (r.src_type, r.dst_type))
            .collect();
        let mut cache = HistoricalCache::new(400, &[16, 4], 50, 8, false, true);
        let out = prune_hetero(&mut mb, &rel_types, &mut cache, 0, 0);
        assert!(out.cached.iter().all(Vec::is_empty));
        // All target dst computed.
        assert!(out.computed.last().unwrap().iter().all(|&c| c));
        let edges_after = mb.blocks.iter().map(|b| b.num_edges()).sum::<usize>();
        assert_eq!(edges_before, edges_after, "nothing pruned without hits");
        // All target inputs needed.
        assert!(out.needed_input[0].iter().all(|&n| n));
    }

    #[test]
    fn hetero_prune_with_hit_saves_typed_inputs() {
        use crate::cache::{PolicyInput, Verdict};
        let ds = tiny();
        let mut sampler = HeteroSampler::new(&ds.graph);
        let mut rng = Rng::new(7);
        let seeds: Vec<NodeId> = ds.train_nodes[..8].to_vec();
        let rel_types: Vec<(usize, usize)> = ds
            .graph
            .relations
            .iter()
            .map(|r| (r.src_type, r.dst_type))
            .collect();

        // Baseline pruning with an empty cache.
        let mut mb_plain = sampler.sample(&ds.graph, 0, &seeds, &[3, 3], &mut rng);
        let mut empty = HistoricalCache::new(
            ds.graph.node_counts[0],
            &[16, ds.num_classes],
            50,
            8,
            false,
            true,
        );
        let base = prune_hetero(&mut mb_plain, &rel_types, &mut empty, 0, 0);
        let base_needed: usize = base
            .needed_input
            .iter()
            .map(|t| t.iter().filter(|&&b| b).count())
            .sum();

        // Cache every level-1 paper destination, same batch stream.
        let mut sampler2 = HeteroSampler::new(&ds.graph);
        let mut rng2 = Rng::new(7);
        let mut mb = sampler2.sample(&ds.graph, 0, &seeds, &[3, 3], &mut rng2);
        let mut cache = HistoricalCache::new(
            ds.graph.node_counts[0],
            &[16, ds.num_classes],
            50,
            64,
            false,
            true,
        );
        let h = Matrix::zeros(1, 16);
        for &node in &mb.blocks[0].dst[0] {
            cache.apply_verdicts(
                1,
                &[(
                    PolicyInput {
                        node,
                        local: 0,
                        grad_norm: 0.0,
                        was_cached: false,
                    },
                    Verdict::Admit,
                )],
                &h,
                0,
            );
        }
        let out = prune_hetero(&mut mb, &rel_types, &mut cache, 0, 1);
        assert!(!out.cached[0].is_empty(), "level-1 hits expected");
        let needed: usize = out
            .needed_input
            .iter()
            .map(|t| t.iter().filter(|&&b| b).count())
            .sum();
        assert!(
            needed < base_needed,
            "typed subtree pruning must cut inputs: {needed} vs {base_needed}"
        );
    }
}
