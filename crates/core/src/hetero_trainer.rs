// Index-based loops below intentionally walk several parallel arrays in
// lockstep; iterator zips would obscure the math. Clippy disagrees.
#![allow(clippy::needless_range_loop)]

//! Heterogeneous-graph extension (§7.6): R-GraphSAGE with the historical
//! embedding cache on the target node type.
//!
//! The cache machinery carries over unchanged: the labeled (paper) type's
//! per-level embeddings are cached under the same `p_grad`/`t_stale`
//! policy; a cached paper destination has every incoming relation pruned
//! and its typed subtree dies, skipping the corresponding author/
//! institution expansions and feature loads. (Caching the unlabeled types
//! too would be a straightforward extension; the paper's experiment only
//! needs the target type, where gradient feedback exists every iteration.)

use crate::cache::{gradient_policy, HistoricalCache, PolicyInput};
use crate::config::FreshGnnConfig;
use fgnn_graph::hetero::{HeteroDataset, HeteroMiniBatch, HeteroSampler};
use fgnn_graph::sample::split_batches;
use fgnn_graph::NodeId;
use fgnn_memsim::presets::Machine;
use fgnn_memsim::topology::Node;
use fgnn_memsim::{TrafficCounters, TransferEngine};
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::metrics::accuracy;
use fgnn_nn::rsage::RSageModel;
use fgnn_nn::Optimizer;
use fgnn_tensor::{Matrix, Rng};

/// R-GraphSAGE trainer over a [`HeteroDataset`].
pub struct HeteroTrainer {
    /// The relational model under training.
    pub model: RSageModel,
    /// Historical cache on the target type's levels.
    pub cache: HistoricalCache,
    /// Hyper-parameters (fanouts/batch size/p_grad/t_stale reused).
    pub cfg: FreshGnnConfig,
    /// Traffic ledger.
    pub counters: TrafficCounters,
    machine: Machine,
    sampler: HeteroSampler,
    /// `(src_type, dst_type)` per relation, in the graph's relation order.
    rel_types: Vec<(usize, usize)>,
    dims: Vec<usize>,
    iter: u32,
    rng: Rng,
}

impl HeteroTrainer {
    /// Build a trainer for `ds` with `hidden` units per hidden layer.
    pub fn new(
        ds: &HeteroDataset,
        hidden: usize,
        machine: Machine,
        cfg: FreshGnnConfig,
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid config");
        let mut rng = Rng::new(seed);
        let num_layers = cfg.num_layers();
        let in_dim = ds.features[ds.target_type].cols();
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(in_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.num_classes);
        let model = RSageModel::new(&ds.graph, ds.target_type, &dims, &mut rng);
        let cache = HistoricalCache::new(
            ds.graph.node_counts[ds.target_type],
            &dims[1..],
            cfg.t_stale,
            cfg.cache_capacity,
            cfg.cache_top_layer,
            cfg.cache_enabled(),
        );
        HeteroTrainer {
            model,
            cache,
            counters: TrafficCounters::new(),
            machine,
            sampler: HeteroSampler::new(&ds.graph),
            rel_types: ds
                .graph
                .relations
                .iter()
                .map(|r| (r.src_type, r.dst_type))
                .collect(),
            dims,
            cfg,
            iter: 0,
            rng,
        }
    }

    /// Train one epoch over the target-type training nodes.
    pub fn train_epoch(&mut self, ds: &HeteroDataset, opt: &mut dyn Optimizer) -> f64 {
        let mut shuffle_rng = self.rng.fork();
        let batches = split_batches(&ds.train_nodes, self.cfg.batch_size, Some(&mut shuffle_rng));
        let topo = self.machine.topology.clone();
        let mut engine = TransferEngine::new(&topo);
        let mut total = 0.0;
        for seeds in &batches {
            total += self.train_batch(ds, seeds, &mut engine, opt) as f64;
        }
        total / batches.len().max(1) as f64
    }

    fn train_batch(
        &mut self,
        ds: &HeteroDataset,
        seeds: &[NodeId],
        engine: &mut TransferEngine<'_>,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let target = ds.target_type;
        let mut sample_rng = self.rng.fork();
        let t0 = std::time::Instant::now();
        let mut mb =
            self.sampler
                .sample(&ds.graph, target, seeds, &self.cfg.fanouts, &mut sample_rng);
        self.counters.sample_seconds += t0.elapsed().as_secs_f64();

        // Cache-aware typed pruning (top-down reachability).
        let t1 = std::time::Instant::now();
        let outcome = prune_hetero(&mut mb, &self.rel_types, &mut self.cache, target, self.iter);
        self.counters.prune_seconds += t1.elapsed().as_secs_f64();

        // Load per-type input features for surviving src nodes.
        let n_types = ds.graph.node_counts.len();
        let mut h0 = Vec::with_capacity(n_types);
        let mut wire_bytes = 0u64;
        let mut saved_bytes = 0u64;
        for t in 0..n_types {
            let row_bytes = (ds.features[t].cols() * 4) as u64;
            let srcs = &mb.blocks[0].src[t];
            let mut m = Matrix::zeros(srcs.len(), ds.features[t].cols());
            for (i, &g) in srcs.iter().enumerate() {
                if outcome.needed_input[t][i] {
                    m.row_mut(i).copy_from_slice(ds.features[t].row(g as usize));
                    wire_bytes += row_bytes;
                } else {
                    saved_bytes += row_bytes;
                }
            }
            h0.push(m);
        }
        if wire_bytes > 0 {
            engine.one_sided_read(Node::Host, Node::Gpu(0), wire_bytes, &mut self.counters);
        }
        self.counters.cache_hit_bytes += saved_bytes;

        // Forward with cache overrides on the target type.
        let cache = &self.cache;
        let cached = &outcome.cached;
        let trace = self.model.forward_with(&mb, h0, |level, h| {
            let b = level - 1;
            if b < cached.len() {
                for &(local, slot) in &cached[b] {
                    cache.fetch_into(level, slot, h[target].row_mut(local as usize));
                }
            }
        });

        let logits = self.model.logits(&trace);
        let labels: Vec<u16> = seeds.iter().map(|&s| ds.labels[s as usize]).collect();
        let (loss, d_logits) = softmax_cross_entropy(logits, &labels);

        self.model.zero_grad();
        let num_levels = self.dims.len() - 1;
        let mut policy_inputs: Vec<Vec<PolicyInput>> = vec![Vec::new(); num_levels + 1];
        {
            let cache_enabled = self.cfg.cache_enabled();
            let inputs = &mut policy_inputs;
            self.model.backward_with(&mb, &trace, d_logits, |level, d| {
                if !cache_enabled || level == num_levels {
                    return; // top level = seeds, never cached
                }
                let b = level - 1;
                let block = &mb.blocks[b];
                let mut is_cached = vec![false; block.dst[target].len()];
                for &(local, _) in &outcome.cached[b] {
                    is_cached[local as usize] = true;
                }
                for v in 0..block.dst[target].len() {
                    if !(outcome.computed[b][v] || is_cached[v]) {
                        continue;
                    }
                    let row = d[target].row(v);
                    let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
                    inputs[level].push(PolicyInput {
                        node: block.dst[target][v],
                        local: v as u32,
                        grad_norm: norm,
                        was_cached: is_cached[v],
                    });
                }
                for &(local, _) in &outcome.cached[b] {
                    d[target]
                        .row_mut(local as usize)
                        .iter_mut()
                        .for_each(|x| *x = 0.0);
                }
            });
        }
        for level in 1..num_levels {
            if policy_inputs[level].is_empty() {
                continue;
            }
            let verdicts = gradient_policy(&policy_inputs[level], self.cfg.p_grad);
            self.cache
                .apply_verdicts(level, &verdicts, &trace.h[level][target], self.iter);
        }

        let mut params = self.model.params_mut();
        opt.step(&mut params);

        // Simulated compute from live relation edges.
        let mut flops = 0.0;
        for (b, block) in mb.blocks.iter().enumerate() {
            let edges: usize = block.num_edges();
            flops += fgnn_memsim::presets::aggregation_flops(edges, self.dims[b]);
            let n_dst: usize = block.dst.iter().map(Vec::len).sum();
            flops += fgnn_memsim::presets::dense_flops(n_dst, self.dims[b], self.dims[b + 1]);
        }
        self.counters.compute_seconds += self.machine.gpu.compute_seconds(3.0 * flops);

        self.iter += 1;
        loss
    }

    /// Evaluate accuracy on target-type `nodes` with plain (uncached)
    /// sampling.
    pub fn evaluate(&mut self, ds: &HeteroDataset, nodes: &[NodeId], batch_size: usize) -> f64 {
        let mut rng = self.rng.fork();
        let mut weighted = 0.0f64;
        let mut total = 0usize;
        for chunk in nodes.chunks(batch_size.max(1)) {
            let mb = self.sampler.sample(
                &ds.graph,
                ds.target_type,
                chunk,
                &self.cfg.fanouts,
                &mut rng,
            );
            let h0: Vec<Matrix> = (0..ds.graph.node_counts.len())
                .map(|t| {
                    let ids: Vec<usize> =
                        mb.blocks[0].src[t].iter().map(|&g| g as usize).collect();
                    ds.features[t].gather_rows(&ids)
                })
                .collect();
            let trace = self.model.forward(&mb, h0);
            let labels: Vec<u16> = chunk.iter().map(|&s| ds.labels[s as usize]).collect();
            weighted += accuracy(self.model.logits(&trace), &labels) * chunk.len() as f64;
            total += chunk.len();
        }
        if total == 0 {
            0.0
        } else {
            weighted / total as f64
        }
    }
}

/// Typed pruning outcome.
pub struct HeteroPruneOutcome {
    /// Per block: `(local target-type dst index, slot)` cache reads.
    pub cached: Vec<Vec<(u32, u32)>>,
    /// Per block: whether each target-type dst is computed.
    pub computed: Vec<Vec<bool>>,
    /// Per type: which input src nodes need feature loads.
    pub needed_input: Vec<Vec<bool>>,
}

/// Top-down typed reachability pruning — the heterogeneous analogue of
/// [`crate::prune::prune_with_cache`]. `rel_types[r]` gives relation `r`'s
/// `(src_type, dst_type)`.
pub fn prune_hetero(
    mb: &mut HeteroMiniBatch,
    rel_types: &[(usize, usize)],
    cache: &mut HistoricalCache,
    target: usize,
    now: u32,
) -> HeteroPruneOutcome {
    let num_blocks = mb.blocks.len();
    let n_types = mb.blocks[0].dst.len();
    let mut cached: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_blocks];
    let mut computed: Vec<Vec<bool>> = mb
        .blocks
        .iter()
        .map(|b| vec![false; b.dst[target].len()])
        .collect();

    // Top block: only target-type seeds are needed.
    let mut needed: Vec<Vec<bool>> = (0..n_types)
        .map(|t| vec![t == target; mb.blocks[num_blocks - 1].dst[t].len()])
        .collect();

    for b in (0..num_blocks).rev() {
        let level = b + 1;
        let is_top = b + 1 == num_blocks;
        let mut needed_below: Vec<Vec<bool>> = (0..n_types)
            .map(|t| vec![false; mb.blocks[b].src[t].len()])
            .collect();

        // Target-type cache check.
        let n_target_dst = mb.blocks[b].dst[target].len();
        let mut is_cached = vec![false; n_target_dst];
        for v in 0..n_target_dst {
            if !needed[target][v] {
                continue;
            }
            let node = mb.blocks[b].dst[target][v];
            if !is_top {
                if let Some(slot) = cache.lookup(level, node, now) {
                    cached[b].push((v as u32, slot));
                    is_cached[v] = true;
                    continue;
                }
            }
            computed[b][v] = true;
        }

        // Per relation: prune dead/cached rows, expand live ones.
        for (r, &(src_t, dst_t)) in rel_types.iter().enumerate() {
            for v in 0..mb.blocks[b].rel_adj[r].num_nodes() {
                let live = needed[dst_t].get(v).copied().unwrap_or(false)
                    && !(dst_t == target && is_cached[v]);
                if !live {
                    mb.blocks[b].rel_adj[r].prune(v);
                    continue;
                }
                for &u in mb.blocks[b].rel_adj[r].neighbors(v) {
                    needed_below[src_t][u as usize] = true;
                }
            }
        }

        // Self terms: every live destination needs its own lower row.
        for t in 0..n_types {
            for v in 0..mb.blocks[b].dst[t].len() {
                let live = needed[t][v] && !(t == target && is_cached[v]);
                if live {
                    needed_below[t][v] = true;
                }
            }
        }

        if b == 0 {
            return HeteroPruneOutcome {
                cached,
                computed,
                needed_input: needed_below,
            };
        }
        needed = needed_below;
    }
    unreachable!("loop returns at b == 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::hetero::mag_hetero;
    use fgnn_nn::Adam;

    fn tiny() -> HeteroDataset {
        mag_hetero(400, 4, 8, 3)
    }

    fn config(p_grad: f32, t_stale: u32) -> FreshGnnConfig {
        FreshGnnConfig {
            p_grad,
            t_stale,
            fanouts: vec![3, 3],
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn hetero_training_reduces_loss() {
        let ds = tiny();
        let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 1);
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt);
        let mut last = first;
        for _ in 0..6 {
            last = t.train_epoch(&ds, &mut opt);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn hetero_cache_serves_hits_and_saves_traffic() {
        let ds = tiny();
        let machine = Machine::single_a100();
        let mut cached = HeteroTrainer::new(&ds, 16, machine.clone(), config(0.95, 100), 2);
        let mut plain = HeteroTrainer::new(&ds, 16, machine, config(0.0, 0), 2);
        let mut o1 = Adam::new(0.01);
        let mut o2 = Adam::new(0.01);
        for _ in 0..4 {
            cached.train_epoch(&ds, &mut o1);
            plain.train_epoch(&ds, &mut o2);
        }
        assert!(cached.cache.stats().hits > 0);
        assert!(
            cached.counters.host_to_gpu_bytes < plain.counters.host_to_gpu_bytes,
            "cached {} vs plain {}",
            cached.counters.host_to_gpu_bytes,
            plain.counters.host_to_gpu_bytes
        );
    }

    #[test]
    fn hetero_accuracy_above_random() {
        let ds = tiny();
        let mut t = HeteroTrainer::new(&ds, 16, Machine::single_a100(), config(0.9, 50), 4);
        let mut opt = Adam::new(0.01);
        for _ in 0..10 {
            t.train_epoch(&ds, &mut opt);
        }
        let acc = t.evaluate(&ds, &ds.test_nodes, 128);
        assert!(acc > 0.3, "4-class accuracy {acc}");
    }

    #[test]
    fn prune_hetero_with_empty_cache_keeps_everything_reachable() {
        let ds = tiny();
        let mut sampler = HeteroSampler::new(&ds.graph);
        let mut rng = Rng::new(5);
        let seeds: Vec<NodeId> = ds.train_nodes[..8].to_vec();
        let mut mb = sampler.sample(&ds.graph, 0, &seeds, &[3, 3], &mut rng);
        let edges_before = mb.blocks.iter().map(|b| b.num_edges()).sum::<usize>();
        let rel_types: Vec<(usize, usize)> = ds
            .graph
            .relations
            .iter()
            .map(|r| (r.src_type, r.dst_type))
            .collect();
        let mut cache = HistoricalCache::new(400, &[16, 4], 50, 8, false, true);
        let out = prune_hetero(&mut mb, &rel_types, &mut cache, 0, 0);
        assert!(out.cached.iter().all(Vec::is_empty));
        // All target dst computed.
        assert!(out.computed.last().unwrap().iter().all(|&c| c));
        let edges_after = mb.blocks.iter().map(|b| b.num_edges()).sum::<usize>();
        assert_eq!(edges_before, edges_after, "nothing pruned without hits");
        // All target inputs needed.
        assert!(out.needed_input[0].iter().all(|&n| n));
    }

    #[test]
    fn hetero_prune_with_hit_saves_typed_inputs() {
        use crate::cache::{PolicyInput, Verdict};
        let ds = tiny();
        let mut sampler = HeteroSampler::new(&ds.graph);
        let mut rng = Rng::new(7);
        let seeds: Vec<NodeId> = ds.train_nodes[..8].to_vec();
        let rel_types: Vec<(usize, usize)> = ds
            .graph
            .relations
            .iter()
            .map(|r| (r.src_type, r.dst_type))
            .collect();

        // Baseline pruning with an empty cache.
        let mut mb_plain = sampler.sample(&ds.graph, 0, &seeds, &[3, 3], &mut rng);
        let mut empty = HistoricalCache::new(
            ds.graph.node_counts[0],
            &[16, ds.num_classes],
            50,
            8,
            false,
            true,
        );
        let base = prune_hetero(&mut mb_plain, &rel_types, &mut empty, 0, 0);
        let base_needed: usize = base
            .needed_input
            .iter()
            .map(|t| t.iter().filter(|&&b| b).count())
            .sum();

        // Cache every level-1 paper destination, same batch stream.
        let mut sampler2 = HeteroSampler::new(&ds.graph);
        let mut rng2 = Rng::new(7);
        let mut mb = sampler2.sample(&ds.graph, 0, &seeds, &[3, 3], &mut rng2);
        let mut cache = HistoricalCache::new(
            ds.graph.node_counts[0],
            &[16, ds.num_classes],
            50,
            64,
            false,
            true,
        );
        let h = Matrix::zeros(1, 16);
        for &node in &mb.blocks[0].dst[0] {
            cache.apply_verdicts(
                1,
                &[(
                    PolicyInput {
                        node,
                        local: 0,
                        grad_norm: 0.0,
                        was_cached: false,
                    },
                    Verdict::Admit,
                )],
                &h,
                0,
            );
        }
        let out = prune_hetero(&mut mb, &rel_types, &mut cache, 0, 1);
        assert!(!out.cached[0].is_empty(), "level-1 hits expected");
        let needed: usize = out
            .needed_input
            .iter()
            .map(|t| t.iter().filter(|&&b| b).count())
            .sum();
        assert!(
            needed < base_needed,
            "typed subtree pruning must cut inputs: {needed} vs {base_needed}"
        );
    }
}
