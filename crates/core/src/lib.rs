#![warn(missing_docs)]
//! # freshgnn
//!
//! Reproduction of **FreshGNN / ReFresh** (VLDB 2024): mini-batch GNN
//! training that reduces memory access by selectively caching and reusing
//! *stable* historical node embeddings.
//!
//! The system follows the paper's architecture (Fig 5):
//!
//! * [`cache`] — the historical embedding cache (§4): a GPU-resident ring
//!   buffer per layer with an O(|V|) node→slot mapping array, a
//!   gradient-based admission/eviction criterion (`p_grad`) and a staleness
//!   bound (`t_stale`), backfilled with a raw-feature cache of high-degree
//!   nodes;
//! * [`runtime`] — the in-tree work-stealing task runtime (per-worker
//!   LIFO deques, global injector, token parkers) that executes sampling
//!   and prestage work for different batches in parallel while the
//!   in-order first-wins commit keeps every `Exact` output byte-identical
//!   at any worker count;
//! * [`sampler`] — asynchronous multi-threaded CPU graph sampling with a
//!   bounded task queue (§5), scheduled on the [`runtime`];
//! * [`prune`] — cache-aware subgraph pruning over CSR2 blocks: a cached
//!   destination's aggregation is removed in O(1) and its multi-hop
//!   subtree never gets computed or loaded (§5);
//! * [`loader`] — feature loading charged against the `fgnn-memsim`
//!   interconnect model: one-sided (UVA) or two-sided reads, a static
//!   feature cache, and multi-GPU feature partitions (§6);
//! * [`pipeline`] — the staged execution engine (sample → prune → load →
//!   forward → backward → cache-update → optim-step) every training loop
//!   runs through, with per-stage time/traffic attribution and the shared
//!   evaluation harness;
//! * [`obs`] — deterministic observability: a sim-clock span tracer plus
//!   a metrics registry, fed by the pipeline, caches, sampler and
//!   transfer engine, exported as JSONL / Chrome-trace JSON;
//! * [`trainer`] — Algorithm 1: the mini-batch loop tying it together,
//!   expressed as the full pipeline stage set;
//! * [`baselines`] — neighbor sampling (DGL/PyG/PyTorch-Direct traffic
//!   configurations), GAS, ClusterGCN, GraphFM;
//! * [`multi_gpu`] — data-parallel training over simulated GPU topologies
//!   (Fig 11);
//! * [`hetero_trainer`] — the §7.6 R-GraphSAGE extension;
//! * [`serve`] — overload-robust online inference serving: seeded request
//!   traces, admission control with load shedding, batching, and a
//!   freshness-SLA degraded read path over the embedding cache;
//! * [`sgc`] — the Appendix B SGC model with a random-selector bounded-
//!   staleness history (Proposition 4.1);
//! * [`probes`] — estimation-error and embedding-stability measurements
//!   (Figs 1 and 3);
//! * [`resilience`] — the self-healing layer: numeric-health guard,
//!   `Healthy → Degraded → Recovering` supervisor state machine, and
//!   rollback-on-divergence bookkeeping;
//! * [`cluster`] — multi-host partitioned training with failure domains:
//!   LDG graph shards, BSP lock-step rounds with batched active-message
//!   halo reads, a deterministic heartbeat failure detector, and
//!   checkpoint-based shard recovery under seeded crash/restart/NIC
//!   fault schedules;
//! * [`error`] — the unified [`FgnnError`] the runtime's fallible paths
//!   funnel into.

pub mod baselines;
pub mod cache;
pub mod chan;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod error;
pub mod hetero_trainer;
pub mod loader;
pub mod multi_gpu;
pub mod obs;
pub mod pipeline;
pub mod probes;
pub mod prune;
pub mod resilience;
pub mod runtime;
pub mod sampler;
pub mod serve;
pub mod sgc;
pub mod trainer;

pub use cache::HistoricalCache;
pub use checkpoint::{Checkpoint, CheckpointError};
pub use cluster::{ClusterConfig, ClusterReport, ClusterTrainer, RoundEngine, StalenessLedger};
pub use config::FreshGnnConfig;
pub use error::FgnnError;
pub use obs::Obs;
pub use pipeline::{BatchOutput, Engine, EpochStats, EvalHarness, PipelineCtx, StallPolicy};
pub use resilience::{HealthState, Supervisor, SupervisorConfig};
pub use runtime::{ChaosPolicy, OrderedCommit, Pool, RuntimeConfig};
pub use sampler::SampleError;
pub use serve::{ServeConfig, ServeEngine, ServeReport};
pub use trainer::Trainer;
