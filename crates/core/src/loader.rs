//! Feature data loading (§6) with exact traffic accounting.
//!
//! Given the pruner's `needed_input` mask, the loader gathers raw feature
//! rows into the input matrix, serving what it can from the static
//! high-degree feature cache (resident on the compute device, free) and
//! charging the remainder to the simulated interconnect as one batched
//! one-sided (UVA) or two-sided read.
//!
//! For multi-GPU feature-partitioned setups the loader also derives the
//! per-GPU demand matrix consumed by `fgnn_memsim::alltoall`.

use crate::cache::StaticFeatureCache;
use crate::config::LoadMode;
use fgnn_graph::NodeId;
use fgnn_memsim::topology::Node;
use fgnn_memsim::{TrafficCounters, TransferEngine};
use fgnn_tensor::Matrix;

/// Loads node features with traffic accounting.
pub struct FeatureLoader<'a> {
    features: &'a Matrix,
    /// Wire bytes per feature row (honors f16 datasets).
    row_bytes: usize,
    static_cache: StaticFeatureCache,
    mode: LoadMode,
}

impl<'a> FeatureLoader<'a> {
    /// Build a loader over the dataset's feature matrix.
    pub fn new(
        features: &'a Matrix,
        row_bytes: usize,
        static_cache: StaticFeatureCache,
        mode: LoadMode,
    ) -> Self {
        FeatureLoader {
            features,
            row_bytes,
            static_cache,
            mode,
        }
    }

    /// Rows held by the static feature cache.
    pub fn static_cache_len(&self) -> usize {
        self.static_cache.len()
    }

    /// Recover the static cache (the trainer lends it per epoch).
    pub fn into_static_cache(self) -> StaticFeatureCache {
        self.static_cache
    }

    /// Gather features for `nodes` into a fresh matrix. Rows where
    /// `needed` is false are left zero and move no bytes. Traffic is
    /// charged on `engine` from `storage` into `compute`.
    ///
    /// Panics on an out-of-range node or a mask-length mismatch — the
    /// sampler only ever hands the loader in-range nodes, so either is a
    /// logic bug. Use [`FeatureLoader::try_load`] for the checked form.
    pub fn load(
        &self,
        nodes: &[NodeId],
        needed: Option<&[bool]>,
        engine: &mut TransferEngine,
        storage: Node,
        compute: Node,
        counters: &mut TrafficCounters,
    ) -> Matrix {
        self.try_load(nodes, needed, engine, storage, compute, counters)
            .expect("feature load")
    }

    /// Checked [`FeatureLoader::load`]: returns
    /// [`FgnnError::Load`](crate::error::FgnnError::Load) instead of
    /// panicking when a node index falls outside the feature matrix or the
    /// `needed` mask disagrees with `nodes` in length.
    pub fn try_load(
        &self,
        nodes: &[NodeId],
        needed: Option<&[bool]>,
        engine: &mut TransferEngine,
        storage: Node,
        compute: Node,
        counters: &mut TrafficCounters,
    ) -> Result<Matrix, crate::error::FgnnError> {
        if let Some(mask) = needed {
            if mask.len() != nodes.len() {
                return Err(crate::error::FgnnError::Load(format!(
                    "needed mask covers {} nodes, batch has {}",
                    mask.len(),
                    nodes.len()
                )));
            }
        }
        let num_rows = self.features.rows();
        if let Some(&bad) = nodes.iter().find(|&&n| n as usize >= num_rows) {
            return Err(crate::error::FgnnError::Load(format!(
                "node {bad} outside feature matrix with {num_rows} rows"
            )));
        }
        let dim = self.features.cols();
        let mut out = Matrix::zeros(nodes.len(), dim);
        let mut wire_rows: u64 = 0;
        let mut cached_rows: u64 = 0;
        for (i, &n) in nodes.iter().enumerate() {
            if let Some(mask) = needed {
                if !mask[i] {
                    continue;
                }
            }
            out.row_mut(i)
                .copy_from_slice(self.features.row(n as usize));
            if self.static_cache.contains(n) {
                cached_rows += 1;
            } else {
                wire_rows += 1;
            }
        }
        counters.cache_hit_bytes += cached_rows * self.row_bytes as u64;
        let bytes = wire_rows * self.row_bytes as u64;
        if bytes > 0 {
            match self.mode {
                LoadMode::OneSided => {
                    engine.one_sided_read(storage, compute, bytes, counters);
                }
                LoadMode::TwoSided => {
                    engine.two_sided_read(storage, compute, bytes, wire_rows, counters);
                }
            }
        }
        Ok(out)
    }

    /// For feature-partitioned multi-GPU training: bytes GPU `g` must pull
    /// from each peer, given `owner(node) = node % num_gpus` round-robin
    /// placement. Returns one demand row per peer GPU (self-column zero)
    /// plus the rows served locally.
    pub fn partition_demand(
        &self,
        gpu: usize,
        num_gpus: usize,
        nodes: &[NodeId],
        needed: Option<&[bool]>,
    ) -> (Vec<u64>, u64) {
        let mut demand = vec![0u64; num_gpus];
        let mut local = 0u64;
        for (i, &n) in nodes.iter().enumerate() {
            if let Some(mask) = needed {
                if !mask[i] {
                    continue;
                }
            }
            let owner = n as usize % num_gpus;
            if owner == gpu {
                local += self.row_bytes as u64;
            } else {
                demand[owner] += self.row_bytes as u64;
            }
        }
        (demand, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::Csr;
    use fgnn_memsim::Topology;

    fn setup() -> (Matrix, Csr) {
        let features = Matrix::from_fn(6, 2, |r, c| (r * 10 + c) as f32);
        let graph = Csr::from_undirected_edges(6, &[(0, 1), (0, 2), (0, 3)]);
        (features, graph)
    }

    #[test]
    fn loads_only_needed_rows_and_counts_bytes() {
        let (features, graph) = setup();
        let loader = FeatureLoader::new(
            &features,
            8,
            StaticFeatureCache::disabled(graph.num_nodes()),
            LoadMode::OneSided,
        );
        let topo = Topology::pcie_tree(1, 1, 1e9);
        let mut eng = TransferEngine::new(&topo);
        let mut c = TrafficCounters::new();
        let nodes = vec![1u32, 4, 5];
        let needed = vec![true, false, true];
        let out = loader.load(
            &nodes,
            Some(&needed),
            &mut eng,
            Node::Host,
            Node::Gpu(0),
            &mut c,
        );
        assert_eq!(out.row(0), &[10.0, 11.0]);
        assert_eq!(out.row(1), &[0.0, 0.0], "unneeded row untouched");
        assert_eq!(out.row(2), &[50.0, 51.0]);
        assert_eq!(c.host_to_gpu_bytes, 16, "two rows x 8 bytes");
        assert_eq!(c.cache_hit_bytes, 0);
    }

    #[test]
    fn static_cache_hits_move_no_bytes() {
        let (features, graph) = setup();
        // Hub node 0 has the highest degree — cache 1 row.
        let loader = FeatureLoader::new(
            &features,
            8,
            StaticFeatureCache::by_degree(&graph, 1),
            LoadMode::OneSided,
        );
        let topo = Topology::pcie_tree(1, 1, 1e9);
        let mut eng = TransferEngine::new(&topo);
        let mut c = TrafficCounters::new();
        let out = loader.load(&[0, 1], None, &mut eng, Node::Host, Node::Gpu(0), &mut c);
        assert_eq!(out.row(0), &[0.0, 1.0], "cached row still materialized");
        assert_eq!(c.cache_hit_bytes, 8);
        assert_eq!(c.host_to_gpu_bytes, 8);
        assert!((c.io_saving() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn try_load_rejects_out_of_range_nodes_and_bad_masks() {
        use crate::error::FgnnError;
        let (features, graph) = setup();
        let loader = FeatureLoader::new(
            &features,
            8,
            StaticFeatureCache::disabled(graph.num_nodes()),
            LoadMode::OneSided,
        );
        let topo = Topology::pcie_tree(1, 1, 1e9);
        let mut eng = TransferEngine::new(&topo);
        let mut c = TrafficCounters::new();
        let err = loader
            .try_load(&[99], None, &mut eng, Node::Host, Node::Gpu(0), &mut c)
            .unwrap_err();
        assert!(matches!(err, FgnnError::Load(_)), "{err}");
        assert!(err.to_string().contains("99"), "{err}");
        let err = loader
            .try_load(
                &[0, 1],
                Some(&[true]),
                &mut eng,
                Node::Host,
                Node::Gpu(0),
                &mut c,
            )
            .unwrap_err();
        assert!(matches!(err, FgnnError::Load(_)), "{err}");
        assert_eq!(c.num_transfers, 0, "failed loads move no bytes");
    }

    #[test]
    fn two_sided_ships_indices() {
        let (features, graph) = setup();
        let loader = FeatureLoader::new(
            &features,
            8,
            StaticFeatureCache::disabled(graph.num_nodes()),
            LoadMode::TwoSided,
        );
        let topo = Topology::pcie_tree(1, 1, 1e9);
        let mut eng = TransferEngine::new(&topo);
        let mut c = TrafficCounters::new();
        loader.load(&[1, 2, 3], None, &mut eng, Node::Host, Node::Gpu(0), &mut c);
        assert_eq!(c.index_bytes, 12, "3 indices x 4 bytes");
    }

    #[test]
    fn empty_load_issues_no_transfer() {
        let (features, graph) = setup();
        let loader = FeatureLoader::new(
            &features,
            8,
            StaticFeatureCache::disabled(graph.num_nodes()),
            LoadMode::OneSided,
        );
        let topo = Topology::pcie_tree(1, 1, 1e9);
        let mut eng = TransferEngine::new(&topo);
        let mut c = TrafficCounters::new();
        loader.load(
            &[1, 2],
            Some(&[false, false]),
            &mut eng,
            Node::Host,
            Node::Gpu(0),
            &mut c,
        );
        assert_eq!(c.num_transfers, 0);
        assert_eq!(c.wire_bytes(), 0);
    }

    #[test]
    fn partition_demand_round_robin() {
        let (features, graph) = setup();
        let loader = FeatureLoader::new(
            &features,
            10,
            StaticFeatureCache::disabled(graph.num_nodes()),
            LoadMode::OneSided,
        );
        // GPU 0 of 2 needs nodes 0..6: owners alternate 0,1,0,1,0,1.
        let nodes: Vec<u32> = (0..6).collect();
        let (demand, local) = loader.partition_demand(0, 2, &nodes, None);
        assert_eq!(local, 30, "nodes 0,2,4 are local");
        assert_eq!(demand, vec![0, 30], "nodes 1,3,5 from GPU 1");
    }
}
