//! Multi-GPU data-parallel training simulation (Fig 11).
//!
//! Training scales across `k` virtual GPUs: each iteration every GPU
//! processes its own mini-batch (own cache, shared model semantics
//! approximated by averaging gradients — we run the batches serially for
//! model updates but account their *time* in parallel), then gradients are
//! all-reduced.
//!
//! The per-system differences that produce Fig 11's shapes:
//!
//! * **DGL** — two-sided loads whose host-side gather is a shared CPU
//!   resource: gather throughput is capped machine-wide, so adding GPUs
//!   barely helps ("almost no speedup");
//! * **PyTorch-Direct** — one-sided UVA reads: GPUs pull concurrently
//!   until the host links saturate;
//! * **GNNLab** — factored design: ~1 in 4 GPUs becomes a dedicated
//!   sampler, the rest train with a static degree-ordered feature cache;
//! * **FreshGNN** — all GPUs train; the historical cache cuts wire bytes
//!   and the multithreaded CPU sampler feeds them — until sampling itself
//!   becomes the bottleneck at high GPU counts (the 4→8 GPU saturation the
//!   paper reports and defers to future work).

use crate::config::{FreshGnnConfig, LoadMode};
use crate::trainer::Trainer;
use fgnn_graph::Dataset;
use fgnn_memsim::fault::{BreakerPolicy, FaultPlan, RetryPolicy};
use fgnn_memsim::presets::{Machine, GB};
use fgnn_nn::model::Arch;
use fgnn_nn::Adam;

/// Which system's traffic profile to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// DGL: two-sided loads, shared host gather.
    Dgl,
    /// PyTorch-Direct: one-sided UVA, no cache.
    PyTorchDirect,
    /// GNNLab: static feature cache + dedicated sampler GPUs.
    GnnLab,
    /// FreshGNN: historical embedding cache + one-sided loads.
    FreshGnn,
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Dgl => write!(f, "DGL"),
            SystemKind::PyTorchDirect => write!(f, "PyTorch-Direct"),
            SystemKind::GnnLab => write!(f, "GNNLab"),
            SystemKind::FreshGnn => write!(f, "FreshGNN"),
        }
    }
}

/// Aggregate host (CPU DRAM) read bandwidth available to GPU pulls.
const HOST_DRAM_BW: f64 = 80.0 * GB;
/// Machine-wide two-sided gather throughput (CPU-bound compaction) that
/// serializes DGL's loads.
const HOST_GATHER_BW: f64 = 8.0 * GB;
/// CPU sampling threads available to the FreshGNN async sampler.
const SAMPLER_THREADS: f64 = 32.0;

/// Measured per-iteration profile of one system configuration.
#[derive(Clone, Debug)]
pub struct IterationProfile {
    /// Average wire bytes per iteration (feature loads).
    pub bytes_per_iter: f64,
    /// Average simulated GPU compute seconds per iteration.
    pub compute_s: f64,
    /// Average measured single-thread sampling seconds per iteration.
    pub sample_s: f64,
    /// Model parameter bytes (for the gradient all-reduce).
    pub param_bytes: f64,
    /// Transfer retries spent recovering from injected interconnect faults
    /// during profiling (0 on a fault-free profile).
    pub retries: u64,
    /// Iterations that ran in degraded mode (circuit breaker open).
    pub degraded_iters: u64,
}

/// Measure a system's per-iteration profile by running `epochs` real
/// epochs of the corresponding single-GPU configuration.
pub fn profile_system(
    ds: &Dataset,
    arch: Arch,
    hidden: usize,
    base: &FreshGnnConfig,
    system: SystemKind,
    epochs: usize,
    seed: u64,
) -> IterationProfile {
    profile_system_faulted(ds, arch, hidden, base, system, epochs, seed, None, None)
}

/// [`profile_system`] with interconnect fault injection: the profiling
/// trainer runs its epochs under `faults` (retry/backoff schedule) and,
/// when `breaker` is armed, degrades to raw-feature loads while the
/// breaker is open — so the scaling projection can be taken on a lossy
/// fabric. Bytes and FLOPs stay exact; only timing-side counters move.
#[allow(clippy::too_many_arguments)]
pub fn profile_system_faulted(
    ds: &Dataset,
    arch: Arch,
    hidden: usize,
    base: &FreshGnnConfig,
    system: SystemKind,
    epochs: usize,
    seed: u64,
    faults: Option<(FaultPlan, RetryPolicy)>,
    breaker: Option<BreakerPolicy>,
) -> IterationProfile {
    let mut cfg = base.clone();
    match system {
        SystemKind::Dgl => {
            cfg.p_grad = 0.0;
            cfg.t_stale = 0;
            cfg.load_mode = LoadMode::TwoSided;
            cfg.feature_cache_rows = 0;
        }
        SystemKind::PyTorchDirect => {
            cfg.p_grad = 0.0;
            cfg.t_stale = 0;
            cfg.load_mode = LoadMode::OneSided;
            cfg.feature_cache_rows = 0;
        }
        SystemKind::GnnLab => {
            cfg.p_grad = 0.0;
            cfg.t_stale = 0;
            cfg.load_mode = LoadMode::OneSided;
            // Static cache sized like GNNLab: ~10% of nodes (hot set).
            cfg.feature_cache_rows = ds.num_nodes() / 10;
        }
        SystemKind::FreshGnn => {
            cfg.load_mode = LoadMode::OneSided;
        }
    }
    let mut trainer = Trainer::new(ds, arch, hidden, Machine::single_a100(), cfg, seed);
    if let Some((plan, policy)) = faults {
        trainer.inject_faults(plan, policy);
    }
    if let Some(policy) = breaker {
        trainer.enable_breaker(policy);
    }
    let mut opt = Adam::new(0.003);
    let mut iters = 0usize;
    let mut bytes = 0u64;
    let mut compute = 0.0;
    let mut sample = 0.0;
    let mut retries = 0u64;
    let mut degraded_iters = 0u64;
    for _ in 0..epochs.max(1) {
        let s = trainer.train_epoch(ds, &mut opt);
        iters += s.batches;
        bytes += s.counters.wire_bytes();
        compute += s.counters.compute_seconds;
        sample += s.counters.sample_seconds;
        retries += s.counters.retries;
        degraded_iters += s.degraded_batches;
    }
    let param_bytes = trainer.model.num_parameters() as f64 * 4.0;
    let n = iters.max(1) as f64;
    IterationProfile {
        bytes_per_iter: bytes as f64 / n,
        compute_s: compute / n,
        sample_s: sample / n,
        param_bytes,
        retries,
        degraded_iters,
    }
}

/// One point of the Fig 11 scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// GPU count.
    pub gpus: usize,
    /// Simulated training throughput.
    pub iters_per_sec: f64,
}

/// Project a measured profile onto `k` GPUs of `machine_of(k)` under the
/// documented contention model. Returns iterations/second.
pub fn project_throughput(profile: &IterationProfile, system: SystemKind, k: usize) -> f64 {
    assert!(k >= 1);
    let (trainer_gpus, sampler_gpus) = match system {
        // GNNLab dedicates ~1 in 4 GPUs to sampling (needs ≥2 GPUs).
        SystemKind::GnnLab => {
            let samplers = (k / 4).max(1);
            (k.saturating_sub(samplers).max(1), samplers)
        }
        _ => (k, 0),
    };
    let _ = sampler_gpus;

    // Per-GPU feature-pull bandwidth. The p3.16xlarge-style box exposes
    // only TWO PCIe root links to host memory (4 GPUs share each switch),
    // so aggregate host pull bandwidth is capped at 2 x 16 GB/s — the
    // reason the paper's loading-bound systems stop scaling.
    let pcie = 16.0 * GB;
    let host_links = trainer_gpus.min(2) as f64;
    let per_gpu_bw = pcie
        .min(host_links * pcie / trainer_gpus as f64)
        .min(HOST_DRAM_BW / trainer_gpus as f64);

    let transfer_s = match system {
        SystemKind::Dgl => {
            // Shared host gather serializes: aggregate cap.
            let aggregate = (trainer_gpus as f64 * profile.bytes_per_iter) / HOST_GATHER_BW;
            aggregate.max(profile.bytes_per_iter / per_gpu_bw)
        }
        _ => profile.bytes_per_iter / per_gpu_bw,
    };

    // Ring all-reduce of gradients over PCIe.
    let allreduce_s = if trainer_gpus > 1 {
        2.0 * (trainer_gpus as f64 - 1.0) / trainer_gpus as f64 * profile.param_bytes / pcie
    } else {
        0.0
    };

    let iter_s = transfer_s + profile.compute_s + allreduce_s;
    let gpu_rate = trainer_gpus as f64 / iter_s;

    // CPU sampling feed rate caps throughput (FreshGNN/GNNLab saturate
    // here at high GPU counts; GNNLab samples on its dedicated GPUs and
    // is modeled with the same cap for comparability).
    let sampler_rate = if profile.sample_s > 0.0 {
        SAMPLER_THREADS / profile.sample_s
    } else {
        f64::INFINITY
    };
    gpu_rate.min(sampler_rate)
}

/// Run the full Fig 11 experiment: profile each system once, project onto
/// each GPU count.
pub fn scaling_curve(
    ds: &Dataset,
    arch: Arch,
    hidden: usize,
    base: &FreshGnnConfig,
    system: SystemKind,
    gpu_counts: &[usize],
    seed: u64,
) -> Vec<ScalingPoint> {
    let profile = profile_system(ds, arch, hidden, base, system, 2, seed);
    gpu_counts
        .iter()
        .map(|&k| ScalingPoint {
            gpus: k,
            iters_per_sec: project_throughput(&profile, system, k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::datasets::papers100m_spec;

    fn tiny() -> Dataset {
        Dataset::materialize(papers100m_spec(0.0).with_dim(32), 11)
    }

    fn base() -> FreshGnnConfig {
        FreshGnnConfig {
            fanouts: vec![5, 5],
            batch_size: 16,
            t_stale: 50,
            ..Default::default()
        }
    }

    #[test]
    fn freshgnn_profile_moves_fewer_bytes_than_pt_direct() {
        let ds = tiny();
        let fresh = profile_system(&ds, Arch::Sage, 16, &base(), SystemKind::FreshGnn, 3, 1);
        let ptd = profile_system(
            &ds,
            Arch::Sage,
            16,
            &base(),
            SystemKind::PyTorchDirect,
            3,
            1,
        );
        assert!(
            fresh.bytes_per_iter < ptd.bytes_per_iter,
            "fresh {} vs ptd {}",
            fresh.bytes_per_iter,
            ptd.bytes_per_iter
        );
    }

    #[test]
    fn dgl_scaling_is_flat() {
        let p = IterationProfile {
            bytes_per_iter: 400e6,
            compute_s: 0.005,
            sample_s: 0.02,
            param_bytes: 4e6,
            retries: 0,
            degraded_iters: 0,
        };
        let t1 = project_throughput(&p, SystemKind::Dgl, 1);
        let t8 = project_throughput(&p, SystemKind::Dgl, 8);
        assert!(t8 < t1 * 2.0, "DGL must not scale: {t1} -> {t8}");
    }

    #[test]
    fn freshgnn_scales_then_saturates_on_sampler() {
        let p = IterationProfile {
            bytes_per_iter: 40e6, // cache-reduced traffic
            compute_s: 0.004,
            sample_s: 0.08, // sampler-bound at high GPU counts
            param_bytes: 4e6,
            retries: 0,
            degraded_iters: 0,
        };
        let t1 = project_throughput(&p, SystemKind::FreshGnn, 1);
        let t4 = project_throughput(&p, SystemKind::FreshGnn, 4);
        let t8 = project_throughput(&p, SystemKind::FreshGnn, 8);
        assert!(t4 > t1 * 2.5, "near-linear to 4 GPUs: {t1} -> {t4}");
        assert!(t8 < t4 * 1.5, "saturates 4 -> 8: {t4} -> {t8}");
    }

    #[test]
    fn gnnlab_loses_a_gpu_to_sampling() {
        let p = IterationProfile {
            bytes_per_iter: 200e6,
            compute_s: 0.004,
            sample_s: 0.0,
            param_bytes: 4e6,
            retries: 0,
            degraded_iters: 0,
        };
        let lab = project_throughput(&p, SystemKind::GnnLab, 4);
        let fresh = project_throughput(&p, SystemKind::FreshGnn, 4);
        assert!(lab < fresh, "GNNLab {lab} vs FreshGNN {fresh}");
    }

    #[test]
    fn scaling_curve_has_requested_points() {
        let ds = tiny();
        let curve = scaling_curve(
            &ds,
            Arch::Sage,
            16,
            &base(),
            SystemKind::FreshGnn,
            &[1, 2, 4],
            3,
        );
        assert_eq!(curve.len(), 3);
        assert_eq!(
            curve.iter().map(|p| p.gpus).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(curve.iter().all(|p| p.iters_per_sec > 0.0));
        // Monotonicity is deliberately NOT asserted here: this curve is
        // projected from a *measured* profile whose `sample_s` is host
        // wall time, and on a toy model the all-reduce term can outweigh
        // the tiny per-iter traffic — whether the flat sampler cap masks
        // that dip depends on how fast the test machine samples.
        // `freshgnn_scales_nearly_linearly` pins the scaling shape on a
        // deterministic synthetic profile instead.
    }
}

/// One simulated data-parallel feature exchange with **partitioned
/// features** (Fig 9(b)/(c)): every GPU's features live round-robin across
/// all GPUs, each GPU samples its own mini-batch, and the resulting
/// all-to-all demand matrix is scheduled naively vs with the paper's
/// multi-round plan.
#[derive(Clone, Debug)]
pub struct PartitionedExchange {
    /// Bytes each GPU serves from its own partition (no wire).
    pub local_bytes: u64,
    /// Bytes crossing GPU↔GPU links.
    pub remote_bytes: u64,
    /// Simulated seconds under the naive concurrent schedule.
    pub naive_seconds: f64,
    /// Simulated seconds under the multi-round schedule.
    pub multi_round_seconds: f64,
    /// Rounds the multi-round schedule used.
    pub rounds: usize,
}

/// Sample one mini-batch per GPU over `ds`, derive the feature all-to-all
/// demand under round-robin placement, and schedule it on `topo`.
pub fn partitioned_feature_exchange(
    ds: &Dataset,
    fanouts: &[usize],
    per_gpu_seeds: &[Vec<fgnn_graph::NodeId>],
    topo: &fgnn_memsim::Topology,
    seed: u64,
) -> PartitionedExchange {
    use crate::cache::StaticFeatureCache;
    use crate::loader::FeatureLoader;
    use fgnn_graph::sample::NeighborSampler;
    use fgnn_memsim::alltoall::{multi_round_alltoall, naive_alltoall};

    let k = per_gpu_seeds.len();
    assert!(k >= 1 && k == topo.num_gpus, "one seed set per GPU");
    let loader = FeatureLoader::new(
        &ds.features,
        ds.spec.feature_row_bytes(),
        StaticFeatureCache::disabled(ds.num_nodes()),
        LoadMode::OneSided,
    );
    let mut sampler = NeighborSampler::new(ds.num_nodes());
    let mut demand = vec![vec![0u64; k]; k];
    let mut local_bytes = 0u64;
    for (g, seeds) in per_gpu_seeds.iter().enumerate() {
        // Content-derived batch RNG: the sampling stream follows the
        // *batch* (FNV-1a over its seed nodes), not the GPU slot, so
        // relabeling GPUs relabels demand rows without changing what any
        // batch samples — total exchanged bytes are permutation-invariant.
        let mut rng = fgnn_tensor::Rng::new(seed ^ batch_content_hash(seeds));
        let mb = sampler.sample(&ds.graph, seeds, fanouts, &mut rng);
        let (row, local) = loader.partition_demand(g, k, mb.input_nodes(), None);
        local_bytes += local;
        demand[g].copy_from_slice(&row);
        demand[g][g] = 0;
    }
    let remote_bytes = demand.iter().flatten().sum();
    let naive_seconds = naive_alltoall(topo, &demand);
    let (multi_round_seconds, rounds) = multi_round_alltoall(topo, &demand);
    PartitionedExchange {
        local_bytes,
        remote_bytes,
        naive_seconds,
        multi_round_seconds,
        rounds,
    }
}

/// FNV-1a over a batch's seed node IDs, in order.
fn batch_content_hash(seeds: &[fgnn_graph::NodeId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &s in seeds {
        h = (h ^ s as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod partitioned_tests {
    use super::*;
    use fgnn_graph::datasets::papers100m_spec;

    fn tiny() -> Dataset {
        Dataset::materialize(papers100m_spec(0.0).with_dim(32), 11)
    }

    #[test]
    fn partitioned_exchange_routes_remote_bytes() {
        let ds = tiny();
        let topo = fgnn_memsim::Topology::pcie_tree(4, 2, 16e9);
        let seeds: Vec<Vec<u32>> = (0..4)
            .map(|g| {
                ds.train_nodes
                    .iter()
                    .skip(g)
                    .step_by(4)
                    .copied()
                    .take(16)
                    .collect()
            })
            .collect();
        let ex = partitioned_feature_exchange(&ds, &[4, 4], &seeds, &topo, 7);
        // Round-robin placement: ~3/4 of feature rows are remote.
        assert!(ex.remote_bytes > ex.local_bytes, "{ex:?}");
        assert!(ex.multi_round_seconds < ex.naive_seconds, "{ex:?}");
        assert!(ex.rounds >= 5, "{ex:?}");
    }

    /// Property cases, scaled by `FGNN_PROP_CASES` like the integration
    /// property suites (default 16 here — each case samples real graphs).
    fn prop_cases() -> u64 {
        std::env::var("FGNN_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16)
    }

    /// Random per-GPU seed sets: distinct training nodes per batch (the
    /// sampler requires duplicate-free seed lists).
    fn random_seed_sets(ds: &Dataset, k: usize, rng: &mut fgnn_tensor::Rng) -> Vec<Vec<u32>> {
        (0..k)
            .map(|_| {
                let mut pool = ds.train_nodes.clone();
                rng.shuffle(&mut pool);
                let n = 4 + (rng.next_u64() % 13) as usize;
                pool.truncate(n.min(pool.len()));
                pool
            })
            .collect()
    }

    /// Property: bytes are conserved — every unique input node of every
    /// GPU's sampled mini-batch is fetched exactly once, so
    /// `local + remote == Σ_g row_bytes × |inputs_g|` (sends == receives:
    /// the demand matrix rows are exactly what owners serve).
    #[test]
    fn partitioned_exchange_conserves_bytes() {
        use fgnn_graph::sample::NeighborSampler;
        let ds = tiny();
        let topo = fgnn_memsim::Topology::pcie_tree(4, 2, 16e9);
        let row_bytes = ds.spec.feature_row_bytes() as u64;
        for case in 0..prop_cases() {
            let mut rng = fgnn_tensor::Rng::new(0xB17E ^ case);
            let seed = rng.next_u64();
            let seeds = random_seed_sets(&ds, 4, &mut rng);
            let ex = partitioned_feature_exchange(&ds, &[4, 4], &seeds, &topo, seed);

            // Re-derive each batch's unique-input count with the same
            // content-derived stream the exchange uses.
            let mut sampler = NeighborSampler::new(ds.num_nodes());
            let expected: u64 = seeds
                .iter()
                .map(|s| {
                    let mut r = fgnn_tensor::Rng::new(seed ^ super::batch_content_hash(s));
                    let mb = sampler.sample(&ds.graph, s, &[4, 4], &mut r);
                    row_bytes * mb.input_nodes().len() as u64
                })
                .sum();
            assert_eq!(
                ex.local_bytes + ex.remote_bytes,
                expected,
                "case {case}: bytes lost or double-counted"
            );
        }
    }

    /// Property: permuting which GPU gets which batch (same seed) cannot
    /// change the total bytes exchanged — the sampling stream follows the
    /// batch content, so a relabeling only permutes demand rows.
    #[test]
    fn partitioned_exchange_total_is_permutation_invariant() {
        let ds = tiny();
        let topo = fgnn_memsim::Topology::pcie_tree(4, 2, 16e9);
        for case in 0..prop_cases() {
            let mut rng = fgnn_tensor::Rng::new(0x9E37 ^ case);
            let seed = rng.next_u64();
            let seeds = random_seed_sets(&ds, 4, &mut rng);
            let ex = partitioned_feature_exchange(&ds, &[4, 4], &seeds, &topo, seed);

            // Random permutation of the batch → GPU placement.
            let mut perm: Vec<usize> = (0..seeds.len()).collect();
            for i in (1..perm.len()).rev() {
                perm.swap(i, (rng.next_u64() as usize) % (i + 1));
            }
            let permuted: Vec<Vec<u32>> = perm.iter().map(|&p| seeds[p].clone()).collect();
            let px = partitioned_feature_exchange(&ds, &[4, 4], &permuted, &topo, seed);

            assert_eq!(
                ex.local_bytes + ex.remote_bytes,
                px.local_bytes + px.remote_bytes,
                "case {case}: total bytes changed under placement {perm:?}"
            );
        }
    }

    #[test]
    fn partitioned_exchange_single_gpu_is_all_local() {
        // With one GPU everything is local: zero remote demand, zero time.
        let ds = tiny();
        let topo = fgnn_memsim::Topology::pcie_tree(1, 1, 16e9);
        let seeds = vec![ds.train_nodes[..8.min(ds.train_nodes.len())].to_vec()];
        let ex = partitioned_feature_exchange(&ds, &[4], &seeds, &topo, 3);
        assert_eq!(ex.remote_bytes, 0);
        assert!(ex.local_bytes > 0);
        assert_eq!(ex.naive_seconds, 0.0);
    }
}
