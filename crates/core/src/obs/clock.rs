//! Deterministic simulated clock for observability timestamps.

/// A monotone nanosecond clock advanced **only** by exact simulated time
/// (transfer + retry + compute seconds from the ledger), never by measured
/// wall time.
///
/// Sampling and pruning run on the CPU and are *measured* (see
/// `fgnn_memsim::stage`), so charging them here would make every trace
/// differ between runs. By restricting the clock to the exact components,
/// two runs of the same seeded workload produce byte-identical traces —
/// the property pinned by the golden-trace test.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds since the clock's origin.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advance by `seconds` of exact simulated time (negative or NaN input
    /// is clamped to zero) and return the whole-nanosecond increment
    /// actually applied.
    pub fn advance_secs(&mut self, seconds: f64) -> u64 {
        let secs = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let ns = (secs * 1e9).round() as u64;
        self.now_ns += ns;
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_by_rounded_nanoseconds() {
        let mut c = SimClock::new();
        assert_eq!(c.advance_secs(1.5e-9), 2); // rounds, not truncates
        assert_eq!(c.advance_secs(0.001), 1_000_000);
        assert_eq!(c.now_ns(), 1_000_002);
    }

    #[test]
    fn clamps_garbage_input() {
        let mut c = SimClock::new();
        assert_eq!(c.advance_secs(-1.0), 0);
        assert_eq!(c.advance_secs(f64::NAN), 0);
        assert_eq!(c.now_ns(), 0);
    }
}
