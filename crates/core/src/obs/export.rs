//! Exporters: metrics as JSONL, spans as Chrome-trace JSON.
//!
//! Both formats are produced by hand (no serde — the workspace builds with
//! zero registry dependencies) and are deterministic: name-ordered metric
//! lines, close-ordered span events, and integer-nanosecond timestamps
//! formatted without any float round-trip.

use super::metrics::{MetricClass, MetricValue, Metrics};
use super::span::{Span, Tracer};

/// Schema tag stamped into every export (and grepped by `scripts/ci.sh`
/// against the committed golden trace). Alias of
/// [`crate::obs::schema::OBS_V1`] — the tag literals live in one module.
pub const SCHEMA_VERSION: &str = super::schema::OBS_V1;

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (Rust's `Display` for floats never
/// emits exponents; non-finite values become `null`).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Nanoseconds → Chrome-trace microseconds, exactly (`1234` ns → `1.234`).
fn ns_to_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// The JSONL header line opening a metrics stream.
pub fn metrics_jsonl_header() -> String {
    format!("{{\"schemaVersion\":\"{SCHEMA_VERSION}\",\"kind\":\"metrics\"}}\n")
}

/// One JSONL line per metric in `m`, tagged with `section` (the run or
/// system the metrics belong to). `Measured`-class metrics are skipped
/// unless `include_measured`, so the default stream is deterministic.
pub fn metrics_jsonl(section: &str, m: &Metrics, include_measured: bool) -> String {
    let mut out = String::new();
    let sec = json_escape(section);
    for (name, class, value) in m.iter() {
        if class == MetricClass::Measured && !include_measured {
            continue;
        }
        let head = format!(
            "{{\"section\":\"{sec}\",\"name\":\"{}\",\"class\":\"{}\"",
            json_escape(name),
            class.name()
        );
        match value {
            MetricValue::Counter(c) => {
                out.push_str(&format!("{head},\"type\":\"counter\",\"value\":{c}}}\n"));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!(
                    "{head},\"type\":\"gauge\",\"value\":{}}}\n",
                    json_f64(*g)
                ));
            }
            MetricValue::Histogram(h) => {
                let bounds: Vec<String> = h.bounds().iter().map(|&b| json_f64(b)).collect();
                let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    "{head},\"type\":\"histogram\",\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{}}}\n",
                    bounds.join(","),
                    counts.join(","),
                    h.count(),
                    json_f64(h.sum())
                ));
            }
        }
    }
    out
}

/// One span as a `kind:"span"` JSONL line (the serving trace stream's
/// span shape; DESIGN.md §12).
pub fn span_jsonl_line(section: &str, span: &Span) -> String {
    let mut args = String::new();
    for (i, (k, v)) in span.args.iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        args.push_str(&format!("\"{k}\":{v}"));
    }
    format!(
        "{{\"section\":\"{}\",\"kind\":\"span\",\"name\":\"{}\",\"cat\":\"{}\",\"startNs\":{},\"durNs\":{},\"depth\":{},\"args\":{{{args}}}}}\n",
        json_escape(section),
        json_escape(&span.name),
        span.cat,
        span.start_ns,
        span.dur_ns,
        span.depth,
    )
}

/// Render one or more tracers as a single Chrome-trace JSON document
/// (`chrome://tracing` / Perfetto). Each `(label, tracer)` section becomes
/// its own thread (`tid`), named by a metadata event; spans become `ph:"X"`
/// complete events with microsecond timestamps off the sim clock. Stamped
/// with the default [`SCHEMA_VERSION`].
pub fn chrome_trace(sections: &[(&str, &Tracer)]) -> String {
    chrome_trace_tagged(SCHEMA_VERSION, sections)
}

/// [`chrome_trace`] under an explicit schema tag (the serving trace export
/// stamps [`crate::obs::schema::SERVE_TRACE_V1`]).
pub fn chrome_trace_tagged(schema: &str, sections: &[(&str, &Tracer)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schemaVersion\":\"{schema}\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
    ));
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"freshgnn\"}}".to_string(),
        &mut first,
    );
    for (tid, (label, tracer)) in sections.iter().enumerate() {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
            &mut first,
        );
        for span in tracer.spans() {
            let mut args = String::new();
            for (i, (k, v)) in span.args.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                args.push_str(&format!("\"{k}\":{v}"));
            }
            push(
                format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                    json_escape(&span.name),
                    span.cat,
                    ns_to_us(span.start_ns),
                    ns_to_us(span.dur_ns)
                ),
                &mut first,
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_to_us_is_exact() {
        assert_eq!(ns_to_us(0), "0.000");
        assert_eq!(ns_to_us(1234), "1.234");
        assert_eq!(ns_to_us(1_000_000_007), "1000000.007");
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn metrics_jsonl_filters_measured() {
        let mut m = Metrics::new();
        m.counter_add("a", MetricClass::Exact, 1);
        m.counter_add("b", MetricClass::Measured, 2);
        let exact = metrics_jsonl("s", &m, false);
        assert!(exact.contains("\"name\":\"a\""));
        assert!(!exact.contains("\"name\":\"b\""));
        let all = metrics_jsonl("s", &m, true);
        assert!(all.contains("\"name\":\"b\""));
        for line in all.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn span_jsonl_line_is_object_shaped() {
        let mut t = Tracer::new();
        t.begin("request", "serve_req", 100);
        t.end_with(250, vec![("id", 7), ("hit", 1)]);
        let line = span_jsonl_line("serve", &t.spans()[0]);
        assert!(line.starts_with('{') && line.ends_with("}\n"));
        assert!(line.contains("\"kind\":\"span\""));
        assert!(line.contains("\"name\":\"request\""));
        assert!(line.contains("\"startNs\":100,\"durNs\":150"));
        assert!(line.contains("\"args\":{\"id\":7,\"hit\":1}"));
    }

    #[test]
    fn chrome_trace_tagged_stamps_the_given_schema() {
        let t = Tracer::new();
        let doc = chrome_trace_tagged(crate::obs::schema::SERVE_TRACE_V1, &[("s", &t)]);
        assert!(doc.starts_with("{\"schemaVersion\":\"fgnn-serve-trace-v1\""));
    }

    #[test]
    fn chrome_trace_has_schema_and_thread_names() {
        let mut t = Tracer::new();
        t.begin("epoch", "pipeline", 0);
        t.end_with(1500, vec![("batches", 2)]);
        let doc = chrome_trace(&[("sys", &t)]);
        assert!(doc.starts_with(&format!("{{\"schemaVersion\":\"{SCHEMA_VERSION}\"")));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"ts\":0.000,\"dur\":1.500"));
        assert!(doc.contains("\"batches\":2"));
        assert!(doc.trim_end().ends_with("]}"));
    }
}
