//! A minimal recursive-descent JSON parser.
//!
//! The workspace writes all of its JSON by hand (zero registry
//! dependencies), and with the trajectory gate (`exp_report`) and the
//! serving round-trip tests it now needs to *read* some back: committed
//! `BENCH_*.json` baselines and the `fgnn-serve-v1` / `fgnn-serve-trace-v1`
//! JSONL streams. This parser covers exactly the JSON those exporters
//! emit — objects, arrays, strings with the exporter's escape set,
//! numbers, booleans and null — and reports errors with a byte offset.
//!
//! Numbers are kept as `f64`; the exporters only emit integers that are
//! exactly representable (u64 counters below 2^53 in practice), and
//! [`JsonValue::as_u64`] round-trips them losslessly or returns `None`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is normalized (BTreeMap) since the exporters
    /// never rely on duplicate keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a number exactly representing one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a.as_slice()),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// A parse failure, carrying the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // The exporters only escape control chars, so
                            // surrogate pairs never occur in our streams.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err(format!("unknown escape '\\{}'", esc as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_exporter_shapes() {
        let doc = r#"{"schemaVersion":"fgnn-serve-v1","kind":"bench","runs":[{"label":"load=1x cap=16 none","p99Ms":2.0816,"served":1688,"ok":true,"none":null}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schemaVersion").unwrap().as_str(),
            Some("fgnn-serve-v1")
        );
        let runs = v.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].get("served").unwrap().as_u64(), Some(1688));
        assert_eq!(runs[0].get("p99Ms").unwrap().as_f64(), Some(2.0816));
        assert_eq!(runs[0].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(runs[0].get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn round_trips_escapes_and_unicode() {
        let v = parse("{\"a\\n\\\"b\":\"c\\u0001d\",\"s\":\"héllo\"}").unwrap();
        assert_eq!(v.get("a\n\"b").unwrap().as_str(), Some("c\u{1}d"));
        assert_eq!(v.get("s").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn numbers_parse_including_negatives_and_exponents() {
        let v = parse("[-1.5,2e3,0,18446744073709551615]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(-1.5));
        assert_eq!(a[1].as_f64(), Some(2000.0));
        assert_eq!(a[2].as_u64(), Some(0));
        assert_eq!(a[3].as_u64(), None, "beyond 2^53: not exactly a u64");
        assert_eq!(a[0].as_u64(), None, "negative is not a u64");
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\":}").unwrap_err();
        assert_eq!(e.at, 5);
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
        assert!(e.to_string().contains("byte 5"));
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().as_object().unwrap().is_empty());
    }
}
