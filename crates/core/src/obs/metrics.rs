//! Metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Names are dotted paths (`subsystem.object.metric`, e.g.
//! `cache.hist.hits`, `transfer.link.0.bytes`) stored in a `BTreeMap` so
//! every export iterates in a deterministic order. Each metric carries a
//! [`MetricClass`] mirroring the repo's two kinds of numbers (see
//! `fgnn_memsim::stage`): `Exact` values are simulated/deterministic and
//! participate in equivalence tests; `Measured` values are wall-clock or
//! scheduling-dependent and are excluded from deterministic exports.

use std::collections::BTreeMap;

/// Determinism class of a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Simulated / exact: identical across reruns of a seeded workload.
    Exact,
    /// Wall-clock or scheduling-dependent: varies between runs.
    Measured,
}

impl MetricClass {
    /// Lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            MetricClass::Exact => "exact",
            MetricClass::Measured => "measured",
        }
    }
}

/// Fixed-bucket histogram: `bounds` are inclusive upper edges, with one
/// implicit overflow bucket, so `counts.len() == bounds.len() + 1`.
///
/// `Exact`-class histograms must only observe integer-valued quantities
/// (ages in iterations, depths): then `sum` stays exactly representable
/// and [`Histogram::subtract`] is exact, which the differential
/// checkpoint test relies on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// New histogram over ascending `bounds`.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds not ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Rebuild from externally-accumulated bucket `counts` (e.g. atomics
    /// shared with worker threads). `counts` must be one longer than
    /// `bounds` (the overflow bucket); `sum` is the sum of raw values.
    pub fn from_parts(bounds: &[f64], counts: &[u64], sum: f64) -> Self {
        assert_eq!(counts.len(), bounds.len() + 1, "counts/bounds mismatch");
        Histogram {
            bounds: bounds.to_vec(),
            counts: counts.to_vec(),
            count: counts.iter().sum(),
            sum,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Inclusive upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Upper bucket edge containing the `q`-quantile (`0 < q <= 1`) of the
    /// observations, or `None` for an empty histogram.
    ///
    /// Quantiles over fixed buckets are conservative: the returned value is
    /// the inclusive upper edge of the bucket the quantile observation
    /// landed in, so it never under-reports. The overflow bucket
    /// extrapolates to twice the last edge (the same convention the async
    /// sampler's straggler-hedging deadline has always used, which now
    /// delegates here), and a histogram with no finite edges reports
    /// `f64::INFINITY`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (((self.count as f64) * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(
                    self.bounds
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| self.bounds.last().map_or(f64::INFINITY, |&b| b * 2.0)),
                );
            }
        }
        unreachable!("cumulative bucket counts always reach `count`")
    }

    /// Add another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.count == 0 && self.bounds.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(self.bounds, other.bounds, "merging mismatched histograms");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Subtract an earlier snapshot of this histogram (per-epoch deltas).
    pub fn subtract(&mut self, earlier: &Histogram) {
        assert_eq!(
            self.bounds, earlier.bounds,
            "subtracting mismatched histograms"
        );
        for (c, e) in self.counts.iter_mut().zip(&earlier.counts) {
            *c -= e;
        }
        self.count -= earlier.count;
        self.sum -= earlier.sum;
    }
}

/// A metric's current value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone unsigned counter.
    Counter(u64),
    /// Last-write-wins level.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// The registry: a flat, deterministically-ordered name → value map.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    map: BTreeMap<String, (MetricClass, MetricValue)>,
}

impl Metrics {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Add `v` to the counter `name`, creating it at zero.
    pub fn counter_add(&mut self, name: &str, class: MetricClass, v: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert((class, MetricValue::Counter(0)))
        {
            (_, MetricValue::Counter(c)) => *c += v,
            slot => *slot = (class, MetricValue::Counter(v)),
        }
    }

    /// Overwrite the counter `name` with an externally-accumulated total.
    pub fn counter_set(&mut self, name: &str, class: MetricClass, v: u64) {
        self.map
            .insert(name.to_string(), (class, MetricValue::Counter(v)));
    }

    /// Set the gauge `name`.
    pub fn gauge_set(&mut self, name: &str, class: MetricClass, v: f64) {
        self.map
            .insert(name.to_string(), (class, MetricValue::Gauge(v)));
    }

    /// Record one observation into the histogram `name`, creating it over
    /// `bounds` on first use.
    pub fn hist_observe(&mut self, name: &str, class: MetricClass, bounds: &[f64], v: f64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert_with(|| (class, MetricValue::Histogram(Histogram::new(bounds))))
        {
            (_, MetricValue::Histogram(h)) => h.observe(v),
            slot => {
                let mut h = Histogram::new(bounds);
                h.observe(v);
                *slot = (class, MetricValue::Histogram(h));
            }
        }
    }

    /// Overwrite the histogram `name` with an externally-accumulated one.
    pub fn hist_set(&mut self, name: &str, class: MetricClass, h: Histogram) {
        self.map
            .insert(name.to_string(), (class, MetricValue::Histogram(h)));
    }

    /// Current value of the counter `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.map.get(name) {
            Some((_, MetricValue::Counter(c))) => Some(*c),
            _ => None,
        }
    }

    /// Current value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.map.get(name) {
            Some((_, MetricValue::Gauge(g))) => Some(*g),
            _ => None,
        }
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.map.get(name) {
            Some((_, MetricValue::Histogram(h))) => Some(h),
            _ => None,
        }
    }

    /// Iterate all metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricClass, &MetricValue)> {
        self.map.iter().map(|(k, (c, v))| (k.as_str(), *c, v))
    }

    /// Clone the current state (a baseline for [`Metrics::delta_since`]).
    pub fn snapshot(&self) -> Metrics {
        self.clone()
    }

    /// The change since `earlier`: counters and histograms are subtracted
    /// (a name absent from `earlier` contributes its full value), gauges
    /// report their current level.
    pub fn delta_since(&self, earlier: &Metrics) -> Metrics {
        let mut out = Metrics::new();
        for (name, (class, value)) in &self.map {
            let delta = match (value, earlier.map.get(name)) {
                (MetricValue::Counter(c), Some((_, MetricValue::Counter(e)))) => {
                    MetricValue::Counter(c - e)
                }
                (MetricValue::Histogram(h), Some((_, MetricValue::Histogram(e)))) => {
                    let mut d = h.clone();
                    d.subtract(e);
                    MetricValue::Histogram(d)
                }
                (v, _) => v.clone(),
            };
            out.map.insert(name.clone(), (*class, delta));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut m = Metrics::new();
        m.counter_add("a.b", MetricClass::Exact, 3);
        m.counter_add("a.b", MetricClass::Exact, 4);
        assert_eq!(m.counter("a.b"), Some(7));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 4.0]);
        for v in [0.5, 1.0, 2.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 103.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_walks_buckets_conservatively() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.percentile(0.5), None, "empty histogram has no quantile");
        for v in [0.5, 0.7, 1.5, 3.0] {
            h.observe(v);
        }
        // target = ceil(4 * 0.5) = 2 → second observation, first bucket.
        assert_eq!(h.percentile(0.5), Some(1.0));
        assert_eq!(h.percentile(0.75), Some(2.0));
        assert_eq!(h.percentile(1.0), Some(4.0));
        // Tiny q still selects at least the first observation.
        assert_eq!(h.percentile(1e-12), Some(1.0));
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty histogram: every quantile is None, including the extremes.
        let empty = Histogram::new(&[1.0, 2.0]);
        assert_eq!(empty.percentile(0.0), None);
        assert_eq!(empty.percentile(1.0), None);

        // q = 0.0: the target clamps up to the first observation, so the
        // lowest occupied bucket's edge comes back (never a panic or an
        // out-of-range index).
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.5);
        h.observe(3.0);
        assert_eq!(h.percentile(0.0), Some(2.0));

        // q = 1.0: exactly the last observation's bucket — not overflow.
        assert_eq!(h.percentile(1.0), Some(4.0));

        // Single-bucket saturation: all mass in one bucket means every
        // quantile answers with that bucket's edge.
        let mut sat = Histogram::new(&[8.0, 16.0]);
        for _ in 0..1000 {
            sat.observe(10.0);
        }
        assert_eq!(sat.percentile(0.0), Some(16.0));
        assert_eq!(sat.percentile(0.5), Some(16.0));
        assert_eq!(sat.percentile(0.999), Some(16.0));
        assert_eq!(sat.percentile(1.0), Some(16.0));
    }

    #[test]
    fn percentile_extrapolates_overflow_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(50.0);
        assert_eq!(h.percentile(0.95), Some(4.0), "2× last edge");
        let mut edgeless = Histogram::new(&[]);
        edgeless.observe(1.0);
        assert_eq!(edgeless.percentile(0.5), Some(f64::INFINITY));
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let mut m = Metrics::new();
        m.counter_add("c", MetricClass::Exact, 5);
        m.hist_observe("h", MetricClass::Exact, &[1.0], 0.0);
        m.gauge_set("g", MetricClass::Exact, 1.0);
        let snap = m.snapshot();
        m.counter_add("c", MetricClass::Exact, 2);
        m.hist_observe("h", MetricClass::Exact, &[1.0], 5.0);
        m.gauge_set("g", MetricClass::Exact, 9.0);
        m.counter_add("new", MetricClass::Exact, 1);
        let d = m.delta_since(&snap);
        assert_eq!(d.counter("c"), Some(2));
        assert_eq!(d.counter("new"), Some(1));
        assert_eq!(d.gauge("g"), Some(9.0));
        let h = d.histogram("h").unwrap();
        assert_eq!(h.counts(), &[0, 1]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut m = Metrics::new();
        m.counter_add("z", MetricClass::Exact, 1);
        m.counter_add("a", MetricClass::Measured, 1);
        let names: Vec<&str> = m.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
