//! Observability: deterministic tracing + metrics over the pipeline.
//!
//! Zero-dependency, in-tree telemetry with three parts:
//!
//! * [`SimClock`] — a nanosecond clock advanced **only** by exact
//!   simulated time, so every timestamp is bit-reproducible;
//! * [`Tracer`]/[`Span`] — nested epoch → batch → stage intervals emitted
//!   by [`crate::pipeline::Engine`];
//! * [`Metrics`] — a name-ordered registry of counters, gauges and
//!   fixed-bucket histograms, each tagged [`MetricClass::Exact`] or
//!   [`MetricClass::Measured`] (the repo's simulated-vs-wall-clock split).
//!
//! Exports ([`export::metrics_jsonl`], [`export::chrome_trace`]) are
//! hand-rolled JSON; the schema is documented in DESIGN.md §8 and pinned
//! by `tests/obs_invariants.rs` plus a committed golden trace.
//!
//! The serving/trajectory layer (DESIGN.md §12) adds [`schema`] (the one
//! home of every `fgnn-*-v1` tag), [`window`] (sim-time sliding windows,
//! a mergeable latency sketch and the multi-window SLO burn-rate
//! [`SloMonitor`]) and [`json`] (a minimal parser so the trajectory gate
//! can read committed `BENCH_*.json` baselines back).

pub mod clock;
pub mod export;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod span;
pub mod window;

pub use clock::SimClock;
pub use json::{parse as parse_json, JsonError, JsonValue};
pub use metrics::{Histogram, MetricClass, MetricValue, Metrics};
pub use span::{Span, Tracer};
pub use window::{AlertEvent, BurnRule, EventWindow, SloConfig, SloMonitor, WindowedSketch};

/// Bucket edges (iterations) for cache entry-age histograms.
pub const AGE_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Bucket edges (items) for sampler queue-depth histograms.
pub const QUEUE_DEPTH_BUCKETS: [f64; 6] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0];

/// Bucket edges (seconds) for sampler per-task latency histograms.
pub const LATENCY_BUCKETS: [f64; 8] = [1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2];

/// Per-trainer observability state: one clock, one span stream, one
/// metrics registry. Threaded explicitly (`&mut Obs`) through
/// [`crate::pipeline::Engine::run_epoch`] — no globals, no locks.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Deterministic timestamp source for [`Obs::tracer`].
    pub clock: SimClock,
    /// Span stream (epoch / batch / stage intervals).
    pub tracer: Tracer,
    /// Metrics registry.
    pub metrics: Metrics,
}

impl Obs {
    /// New empty observability state.
    pub fn new() -> Self {
        Self::default()
    }
}
