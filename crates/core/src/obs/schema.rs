//! The single home of every `fgnn-*-v1` schema-version tag.
//!
//! Exporters stamp these tags into their first line and `scripts/ci.sh`
//! greps them back out of live runs and committed artifacts; keeping the
//! literals in one module means an exporter and its CI grep cannot drift
//! apart. The historical per-module consts (`obs::export::SCHEMA_VERSION`,
//! `serve::export::SERVE_SCHEMA_VERSION`, …) re-export from here.

/// Training/observability stream: metrics JSONL, Chrome traces and the
/// resilience transition log (DESIGN.md §8).
pub const OBS_V1: &str = "fgnn-obs-v1";

/// Serving run stream: summary + shed ledger + Exact metrics
/// (DESIGN.md §10).
pub const SERVE_V1: &str = "fgnn-serve-v1";

/// Per-request serving trace stream: exemplar span trees and SLO alert
/// events (DESIGN.md §12).
pub const SERVE_TRACE_V1: &str = "fgnn-serve-trace-v1";

/// Policy-frontier benchmark document (`BENCH_policy.json`,
/// DESIGN.md §11).
pub const POLICY_V1: &str = "fgnn-policy-v1";

/// Training worker-scaling benchmark document (`BENCH_train.json`,
/// DESIGN.md §13).
pub const TRAIN_V1: &str = "fgnn-train-v1";

/// Multi-host cluster benchmark document (`BENCH_cluster.json`,
/// DESIGN.md §14).
pub const CLUSTER_V1: &str = "fgnn-cluster-v1";

/// Every known schema tag, for exhaustiveness checks.
pub const ALL: [&str; 6] = [
    OBS_V1,
    SERVE_V1,
    SERVE_TRACE_V1,
    POLICY_V1,
    TRAIN_V1,
    CLUSTER_V1,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_versioned() {
        for (i, a) in ALL.iter().enumerate() {
            assert!(a.starts_with("fgnn-") && a.ends_with("-v1"), "{a}");
            for b in &ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn legacy_consts_alias_this_module() {
        assert_eq!(crate::obs::export::SCHEMA_VERSION, OBS_V1);
        assert_eq!(crate::serve::export::SERVE_SCHEMA_VERSION, SERVE_V1);
        assert_eq!(crate::cache::export::POLICY_SCHEMA_VERSION, POLICY_V1);
    }
}
