//! Span tracer: nested epoch/batch/stage intervals on the sim clock.

use std::borrow::Cow;

/// A closed interval on the [`crate::obs::SimClock`].
///
/// Spans nest strictly (epoch ⊃ batch ⊃ stage); because the clock only
/// advances inside stage scopes, a parent's duration equals the sum of its
/// children's durations *by construction* — the invariant pinned by
/// `tests/obs_invariants.rs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Span name ("epoch", "batch", or a `StageKind` name).
    pub name: Cow<'static, str>,
    /// Category, used as the Chrome-trace `cat` field ("pipeline"/"stage").
    pub cat: &'static str,
    /// Start timestamp (sim clock, ns).
    pub start_ns: u64,
    /// Duration (sim clock, ns).
    pub dur_ns: u64,
    /// Nesting depth at open time (epoch = 0, batch = 1, stage = 2;
    /// queue-stall stages sit directly under the epoch at depth 1).
    pub depth: u32,
    /// Exact integer annotations exported as Chrome-trace `args`.
    pub args: Vec<(&'static str, u64)>,
}

/// Records spans via a begin/end stack.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    spans: Vec<Span>,
    open: Vec<(Cow<'static, str>, &'static str, u64)>,
}

impl Tracer {
    /// New tracer with no spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span at `now_ns`.
    pub fn begin(&mut self, name: impl Into<Cow<'static, str>>, cat: &'static str, now_ns: u64) {
        self.open.push((name.into(), cat, now_ns));
    }

    /// Close the innermost open span at `now_ns`.
    pub fn end(&mut self, now_ns: u64) {
        self.end_with(now_ns, Vec::new());
    }

    /// Close the innermost open span at `now_ns`, attaching `args`.
    pub fn end_with(&mut self, now_ns: u64, args: Vec<(&'static str, u64)>) {
        let (name, cat, start_ns) = self.open.pop().expect("end without matching begin");
        self.spans.push(Span {
            name,
            cat,
            start_ns,
            dur_ns: now_ns.saturating_sub(start_ns),
            depth: self.open.len() as u32,
            args,
        });
    }

    /// All closed spans, in close order (children before parents).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// True when every `begin` has been matched by an `end`.
    pub fn is_balanced(&self) -> bool {
        self.open.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_records_depth_and_close_order() {
        let mut t = Tracer::new();
        t.begin("epoch", "pipeline", 0);
        t.begin("batch", "pipeline", 0);
        t.begin("load", "stage", 0);
        t.end(10);
        t.end(10);
        t.end_with(10, vec![("batches", 1)]);
        assert!(t.is_balanced());
        let s = t.spans();
        assert_eq!(s.len(), 3);
        assert_eq!(
            (s[0].name.as_ref(), s[0].depth, s[0].dur_ns),
            ("load", 2, 10)
        );
        assert_eq!((s[1].name.as_ref(), s[1].depth), ("batch", 1));
        assert_eq!((s[2].name.as_ref(), s[2].depth), ("epoch", 0));
        assert_eq!(s[2].args, vec![("batches", 1)]);
    }

    #[test]
    #[should_panic(expected = "end without matching begin")]
    fn unbalanced_end_panics() {
        Tracer::new().end(0);
    }
}
