//! Sim-time sliding windows and the multi-window SLO burn-rate monitor
//! (DESIGN.md §12).
//!
//! Everything here runs on the simulated clock and is therefore exactly
//! reproducible: the serving engine feeds request completions and shed
//! decisions in nondecreasing sim-time order, the windows evict by
//! integer-nanosecond arithmetic, and the alert stream is a pure function
//! of the seed.
//!
//! Three layers:
//!
//! * [`EventWindow`] — a sliding count of good/bad events over the last
//!   `window_ns` nanoseconds (the windowed shed/violation *rate*);
//! * [`WindowedSketch`] — a sliding latency quantile sketch: time is cut
//!   into fixed slices, each slice is an ordinary fixed-bucket
//!   [`Histogram`], and the window quantile merges the live slices
//!   ([`Histogram::merge`]) — mergeable by construction, O(slices) space;
//! * [`SloMonitor`] — the Google-SRE-style multi-window, multi-burn-rate
//!   alerter: *burn* is the windowed bad-event rate divided by the error
//!   budget, and a rule fires only when **both** its long and its short
//!   window burn past the threshold (the long window filters noise, the
//!   short window makes the alert resolve quickly once the incident
//!   ends). Fire/resolve are rising-edge events recorded as
//!   [`AlertEvent`]s; consumers (the serving export, the resilience
//!   [`Supervisor`](crate::resilience::Supervisor)) observe them as state
//!   and change no behavior by default.

use super::metrics::Histogram;
use std::collections::VecDeque;

/// A sliding window over a good/bad event stream on the sim clock.
///
/// Events must arrive in nondecreasing time order (the serving engine's
/// event loop guarantees this); each is either good or bad, and the
/// window reports totals over the trailing `window_ns`.
#[derive(Clone, Debug)]
pub struct EventWindow {
    window_ns: u64,
    events: VecDeque<(u64, bool)>,
    bad: u64,
}

impl EventWindow {
    /// An empty window spanning `window_ns` nanoseconds.
    pub fn new(window_ns: u64) -> Self {
        EventWindow {
            window_ns: window_ns.max(1),
            events: VecDeque::new(),
            bad: 0,
        }
    }

    /// The window span (nanoseconds).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Record one event at `now_ns` and evict everything that fell out of
    /// the window.
    pub fn record(&mut self, now_ns: u64, is_bad: bool) {
        debug_assert!(
            self.events.back().is_none_or(|&(t, _)| t <= now_ns),
            "events must arrive in time order"
        );
        self.events.push_back((now_ns, is_bad));
        if is_bad {
            self.bad += 1;
        }
        self.advance(now_ns);
    }

    /// Evict events older than `now_ns - window_ns` without recording.
    pub fn advance(&mut self, now_ns: u64) {
        let cutoff = now_ns.saturating_sub(self.window_ns);
        while let Some(&(t, b)) = self.events.front() {
            if t >= cutoff {
                break;
            }
            self.events.pop_front();
            if b {
                self.bad -= 1;
            }
        }
    }

    /// Events currently inside the window.
    pub fn total(&self) -> u64 {
        self.events.len() as u64
    }

    /// Bad events currently inside the window.
    pub fn bad(&self) -> u64 {
        self.bad
    }

    /// Bad fraction over the window (0 when empty).
    pub fn bad_fraction(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.bad as f64 / self.events.len() as f64
        }
    }

    /// Events per second over the window span.
    pub fn rate_per_sec(&self) -> f64 {
        self.events.len() as f64 / (self.window_ns as f64 * 1e-9)
    }
}

/// A sliding quantile sketch: fixed time slices, one fixed-bucket
/// [`Histogram`] per slice, window quantiles by merging live slices.
#[derive(Clone, Debug)]
pub struct WindowedSketch {
    bounds: Vec<f64>,
    slice_ns: u64,
    num_slices: usize,
    /// `(slice index, histogram)` pairs, oldest first.
    slices: VecDeque<(u64, Histogram)>,
}

impl WindowedSketch {
    /// A sketch whose window is `num_slices` slices of `slice_ns` each,
    /// over histogram `bounds`.
    pub fn new(bounds: &[f64], slice_ns: u64, num_slices: usize) -> Self {
        WindowedSketch {
            bounds: bounds.to_vec(),
            slice_ns: slice_ns.max(1),
            num_slices: num_slices.max(1),
            slices: VecDeque::new(),
        }
    }

    /// Window span (nanoseconds).
    pub fn window_ns(&self) -> u64 {
        self.slice_ns * self.num_slices as u64
    }

    /// Record one observation at `now_ns`.
    pub fn observe(&mut self, now_ns: u64, v: f64) {
        let idx = now_ns / self.slice_ns;
        match self.slices.back_mut() {
            Some((last, h)) if *last == idx => h.observe(v),
            _ => {
                let mut h = Histogram::new(&self.bounds);
                h.observe(v);
                self.slices.push_back((idx, h));
            }
        }
        self.evict(idx);
    }

    fn evict(&mut self, newest_idx: u64) {
        while let Some(&(i, _)) = self.slices.front() {
            if i + self.num_slices as u64 > newest_idx {
                break;
            }
            self.slices.pop_front();
        }
    }

    /// Merge the live slices into one histogram over the window.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new(&self.bounds);
        for (_, h) in &self.slices {
            out.merge(h);
        }
        out
    }

    /// The `q`-quantile over the window ([`Histogram::percentile`]
    /// semantics: conservative upper bucket edge), or `None` when the
    /// window holds no observations.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.merged().percentile(q)
    }

    /// Observations currently inside the window.
    pub fn count(&self) -> u64 {
        self.slices.iter().map(|(_, h)| h.count()).sum()
    }
}

/// One multi-window burn-rate rule: fire when *both* the long and the
/// short window burn exceed `burn`.
#[derive(Clone, Copy, Debug)]
pub struct BurnRule {
    /// Stable rule label (exported in alert events).
    pub label: &'static str,
    /// Long window span (nanoseconds) — filters noise.
    pub long_ns: u64,
    /// Short window span (nanoseconds) — fast resolve.
    pub short_ns: u64,
    /// Burn-rate threshold (1.0 = burning the budget exactly).
    pub burn: f64,
}

/// SLO monitor configuration.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// Error budget: the tolerated bad-event fraction (e.g. `0.05` means
    /// up to 5% of requests may be shed/violating before burn = 1).
    pub error_budget: f64,
    /// Burn-rate rules, evaluated independently.
    pub rules: Vec<BurnRule>,
    /// Minimum events in a rule's long window before it may fire (keeps
    /// the first bad request of a run from paging).
    pub min_events: u64,
    /// Latency-sketch slice width (nanoseconds).
    pub sketch_slice_ns: u64,
    /// Latency-sketch slices (window = slices × slice width).
    pub sketch_slices: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            error_budget: 0.05,
            rules: vec![
                // Page-grade: a hard burn sustained across a 50 ms long
                // window with a 12.5 ms short window confirming it.
                BurnRule {
                    label: "fast-burn",
                    long_ns: 50_000_000,
                    short_ns: 12_500_000,
                    burn: 6.0,
                },
                // Ticket-grade: a slower burn over 200 ms.
                BurnRule {
                    label: "slow-burn",
                    long_ns: 200_000_000,
                    short_ns: 50_000_000,
                    burn: 3.0,
                },
            ],
            min_events: 16,
            sketch_slice_ns: 12_500_000,
            sketch_slices: 8,
        }
    }
}

/// A fired or resolved alert, on the sim clock.
#[derive(Clone, Debug, PartialEq)]
pub struct AlertEvent {
    /// Sim time of the edge.
    pub at_ns: u64,
    /// The [`BurnRule`] label.
    pub rule: &'static str,
    /// `true` on the fire edge, `false` on the resolve edge.
    pub fired: bool,
    /// Long-window burn at the edge.
    pub burn_long: f64,
    /// Short-window burn at the edge.
    pub burn_short: f64,
    /// Windowed p99 latency at the edge (ns; 0 when the sketch is empty).
    pub windowed_p99_ns: u64,
}

/// The multi-window SLO burn-rate monitor over the serving event stream.
///
/// Feed every request outcome ([`SloMonitor::record_served`]) and every
/// shed decision ([`SloMonitor::record_shed`]) in sim-time order; alerts
/// accumulate in [`SloMonitor::alerts`] and the current windowed latency
/// quantiles are always available from the sketch.
#[derive(Clone, Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    /// `(long, short)` windows per rule, index-aligned with `cfg.rules`.
    windows: Vec<(EventWindow, EventWindow)>,
    active: Vec<bool>,
    sketch: WindowedSketch,
    /// Fire/resolve edges, in sim-time order.
    pub alerts: Vec<AlertEvent>,
}

impl SloMonitor {
    /// A monitor under `cfg`, with the latency sketch over
    /// `latency_bounds_ns`.
    pub fn new(cfg: SloConfig, latency_bounds_ns: &[f64]) -> Self {
        let windows = cfg
            .rules
            .iter()
            .map(|r| (EventWindow::new(r.long_ns), EventWindow::new(r.short_ns)))
            .collect();
        let active = vec![false; cfg.rules.len()];
        let sketch = WindowedSketch::new(latency_bounds_ns, cfg.sketch_slice_ns, cfg.sketch_slices);
        SloMonitor {
            cfg,
            windows,
            active,
            sketch,
            alerts: Vec::new(),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// A served request completing at `now_ns` with `latency_ns`; `bad`
    /// marks an SLO-violating serve (deadline miss or staleness
    /// violation).
    pub fn record_served(&mut self, now_ns: u64, latency_ns: u64, bad: bool) {
        self.sketch.observe(now_ns, latency_ns as f64);
        self.record(now_ns, bad);
    }

    /// A shed decision at `now_ns` — always a bad event against the SLO.
    pub fn record_shed(&mut self, now_ns: u64) {
        self.record(now_ns, true);
    }

    fn record(&mut self, now_ns: u64, bad: bool) {
        for (long, short) in &mut self.windows {
            long.record(now_ns, bad);
            short.record(now_ns, bad);
        }
        self.evaluate(now_ns);
    }

    fn evaluate(&mut self, now_ns: u64) {
        let p99 =
            self.sketch
                .percentile(0.99)
                .map_or(0, |v| if v.is_finite() { v as u64 } else { u64::MAX });
        for (i, rule) in self.cfg.rules.iter().enumerate() {
            let (long, short) = &self.windows[i];
            let burn_long = long.bad_fraction() / self.cfg.error_budget;
            let burn_short = short.bad_fraction() / self.cfg.error_budget;
            let firing = long.total() >= self.cfg.min_events
                && burn_long > rule.burn
                && burn_short > rule.burn;
            if firing != self.active[i] {
                self.active[i] = firing;
                self.alerts.push(AlertEvent {
                    at_ns: now_ns,
                    rule: rule.label,
                    fired: firing,
                    burn_long,
                    burn_short,
                    windowed_p99_ns: p99,
                });
            }
        }
    }

    /// Rules currently in the fired state.
    pub fn active_count(&self) -> u64 {
        self.active.iter().filter(|&&a| a).count() as u64
    }

    /// The windowed latency sketch (for live p50/p95/p99 readouts).
    pub fn sketch(&self) -> &WindowedSketch {
        &self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn event_window_slides_and_counts() {
        let mut w = EventWindow::new(10 * MS);
        w.record(0, true);
        w.record(5 * MS, false);
        assert_eq!((w.total(), w.bad()), (2, 1));
        assert!((w.bad_fraction() - 0.5).abs() < 1e-12);
        // 0 falls out at t = 11ms (cutoff 1ms).
        w.record(11 * MS, false);
        assert_eq!((w.total(), w.bad()), (2, 0));
        assert_eq!(w.bad_fraction(), 0.0);
        assert!((w.rate_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn sketch_merges_live_slices_only() {
        let mut s = WindowedSketch::new(&[1.0, 10.0, 100.0], MS, 4);
        s.observe(0, 5.0);
        s.observe(MS, 5.0);
        assert_eq!(s.percentile(0.99), Some(10.0));
        assert_eq!(s.count(), 2);
        // Jump 10 slices forward: both old slices evict.
        s.observe(10 * MS, 50.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.percentile(0.5), Some(100.0));
        let empty = WindowedSketch::new(&[1.0], MS, 2);
        assert_eq!(empty.percentile(0.5), None);
    }

    fn monitor(budget: f64, burn: f64) -> SloMonitor {
        SloMonitor::new(
            SloConfig {
                error_budget: budget,
                rules: vec![BurnRule {
                    label: "test",
                    long_ns: 20 * MS,
                    short_ns: 5 * MS,
                    burn,
                }],
                min_events: 4,
                sketch_slice_ns: 5 * MS,
                sketch_slices: 4,
            },
            &[MS as f64, (10 * MS) as f64],
        )
    }

    #[test]
    fn monitor_fires_on_sustained_burn_and_resolves() {
        let mut m = monitor(0.1, 2.0);
        // Healthy traffic: no alert.
        for i in 0..8u64 {
            m.record_served(i * MS, MS, false);
        }
        assert!(m.alerts.is_empty());
        // Sustained shedding: both windows burn past 2× the 10% budget.
        for i in 8..14u64 {
            m.record_shed(i * MS);
        }
        let fire = m.alerts.first().expect("fired");
        assert!(fire.fired && fire.rule == "test");
        assert!(fire.burn_long > 2.0 && fire.burn_short > 2.0);
        assert_eq!(m.active_count(), 1);
        // Recovery: good traffic drains the short window first.
        for i in 14..40u64 {
            m.record_served(i * MS, MS, false);
        }
        let resolve = m.alerts.last().expect("resolved");
        assert!(!resolve.fired);
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.alerts.len(), 2, "one fire edge, one resolve edge");
    }

    #[test]
    fn monitor_needs_min_events_before_firing() {
        let mut m = monitor(0.1, 2.0);
        m.record_shed(0);
        m.record_shed(MS);
        assert!(
            m.alerts.is_empty(),
            "100% bad but below min_events: no page"
        );
    }

    #[test]
    fn monitor_is_deterministic() {
        let run = || {
            let mut m = monitor(0.05, 3.0);
            for i in 0..50u64 {
                if i % 3 == 0 {
                    m.record_shed(i * MS / 2);
                } else {
                    m.record_served(i * MS / 2, (i % 7) * MS, i % 11 == 0);
                }
            }
            m.alerts
        };
        assert_eq!(run(), run());
    }
}
