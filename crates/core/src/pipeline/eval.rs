//! The shared evaluation harness.
//!
//! Table 3 reports every method's accuracy under the *same* protocol: a
//! plain neighbor-sampling inference pass with no cache reads. Each
//! trainer used to carry its own copy of that loop; this is the single
//! implementation they all delegate to. The sampler is constructed fresh
//! per call — `NeighborSampler`'s generation-based node mapper makes its
//! output independent of prior use, so a fresh sampler produces the same
//! batches a trainer's long-lived one would.

use fgnn_graph::hetero::{HeteroDataset, HeteroSampler};
use fgnn_graph::sample::NeighborSampler;
use fgnn_graph::{Dataset, NodeId};
use fgnn_nn::metrics::accuracy;
use fgnn_nn::model::Model;
use fgnn_nn::rsage::RSageModel;
use fgnn_tensor::{Matrix, Rng};

/// Shared accuracy protocol for every trainer (Table 3, §7.6).
pub struct EvalHarness;

impl EvalHarness {
    /// Accuracy of `model` on `nodes`: plain neighbor sampling with
    /// `fanouts`, exact (uncached) feature loads, batches of `batch_size`.
    pub fn accuracy(
        model: &Model,
        ds: &Dataset,
        nodes: &[NodeId],
        fanouts: &[usize],
        batch_size: usize,
        rng: &mut Rng,
    ) -> f64 {
        let mut sampler = NeighborSampler::new(ds.num_nodes());
        let mut correct_weighted = 0.0f64;
        let mut total = 0usize;
        for chunk in nodes.chunks(batch_size.max(1)) {
            let mb = sampler.sample(&ds.graph, chunk, fanouts, rng);
            let ids: Vec<usize> = mb.input_nodes().iter().map(|&g| g as usize).collect();
            let h0 = ds.features.gather_rows(&ids);
            let trace = model.forward(&mb, h0);
            let labels: Vec<u16> = chunk.iter().map(|&s| ds.labels[s as usize]).collect();
            correct_weighted += accuracy(trace.h.last().unwrap(), &labels) * chunk.len() as f64;
            total += chunk.len();
        }
        if total == 0 {
            0.0
        } else {
            correct_weighted / total as f64
        }
    }

    /// Heterogeneous analogue: accuracy of an R-GraphSAGE model on
    /// target-type `nodes` with plain typed sampling.
    pub fn accuracy_hetero(
        model: &RSageModel,
        ds: &HeteroDataset,
        nodes: &[NodeId],
        fanouts: &[usize],
        batch_size: usize,
        rng: &mut Rng,
    ) -> f64 {
        let mut sampler = HeteroSampler::new(&ds.graph);
        let mut weighted = 0.0f64;
        let mut total = 0usize;
        for chunk in nodes.chunks(batch_size.max(1)) {
            let mb = sampler.sample(&ds.graph, ds.target_type, chunk, fanouts, rng);
            let h0: Vec<Matrix> = (0..ds.graph.node_counts.len())
                .map(|t| {
                    let ids: Vec<usize> = mb.blocks[0].src[t].iter().map(|&g| g as usize).collect();
                    ds.features[t].gather_rows(&ids)
                })
                .collect();
            let trace = model.forward(&mb, h0);
            let labels: Vec<u16> = chunk.iter().map(|&s| ds.labels[s as usize]).collect();
            weighted += accuracy(model.logits(&trace), &labels) * chunk.len() as f64;
            total += chunk.len();
        }
        if total == 0 {
            0.0
        } else {
            weighted / total as f64
        }
    }
}
