//! The staged training pipeline engine.
//!
//! Algorithm 1 is one iteration shape — **sample → prune → load → forward
//! → backward → cache-update → optimizer-step** — and every training loop
//! in this crate (the FreshGNN [`crate::Trainer`], the hetero trainer, the
//! GAS/ClusterGCN/sampling baselines, and the multi-GPU profiles built on
//! top of them) is an instance of it with some stages specialized or
//! absent. This module is the single implementation of that shape:
//!
//! * [`Engine::run_epoch`] owns the epoch skeleton every trainer used to
//!   duplicate: build the [`TransferEngine`] from the trainer's optional
//!   [`FaultPlan`] (threading the plan's RNG stream back out afterwards so
//!   a run is one deterministic fault schedule), drive the unit stream,
//!   accumulate losses in the exact `total += loss as f64` order, and
//!   assemble the [`EpochStats`] — counter delta, per-stage
//!   [`StageTimings`], mean loss.
//! * [`PipelineCtx`] is handed to the per-batch step function; its
//!   [`PipelineCtx::stage`] scopes are how trainers declare *which* stage
//!   the enclosed work belongs to. A scope snapshots the traffic ledger,
//!   runs the stage body (with access to the epoch's transfer engine),
//!   and attributes the ledger delta plus the measured wall time to the
//!   [`StageKind`]. `Sample` and `Prune` scopes additionally charge their
//!   wall time to the ledger's measured `sample_seconds` /
//!   `prune_seconds`, exactly as the hand-rolled `Instant` code did.
//!
//! Because scopes only *observe* the ledger, porting a trainer onto the
//! engine is behavior-preserving by construction: the same operations run
//! in the same order on the same RNG streams, so losses, byte counters and
//! simulated seconds are bit-for-bit identical to the pre-pipeline loops
//! (`tests/pipeline_equivalence.rs` pins this against captured goldens).
//! Stage scopes need not be contiguous: a trainer that charges its
//! simulated compute time after the optimizer step (the seed ordering,
//! which f64 accumulation order makes significant) simply opens a second
//! `Backward` scope there.

pub mod eval;

pub use eval::EvalHarness;

use crate::obs::{MetricClass, Obs};
use crate::runtime::{OrderedCommit, Pool, RuntimeConfig, RuntimeObsReport, TaskError};
use fgnn_memsim::fault::FaultState;
use fgnn_memsim::stage::{StageKind, StageTimings, NUM_STAGES};
use fgnn_memsim::topology::Topology;
use fgnn_memsim::{TrafficCounters, TransferEngine};
use std::time::Instant;

/// Statistics of one training epoch, produced by [`Engine::run_epoch`].
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Mean mini-batch loss.
    pub mean_loss: f64,
    /// Number of mini-batches that contributed a loss.
    pub batches: usize,
    /// Traffic/time ledger accumulated during this epoch.
    pub counters: TrafficCounters,
    /// Per-stage attribution of `counters` plus measured stage wall time.
    pub timings: StageTimings,
    /// Destination nodes served from the cache this epoch.
    pub cache_reads: u64,
    /// Destination nodes computed fresh this epoch.
    pub computed_nodes: u64,
    /// Whether this epoch started from a degraded resume (the checkpoint's
    /// historical-cache segment was missing or corrupt, so the cache began
    /// the epoch cold).
    pub cache_degraded: bool,
    /// Batches that ran in degraded mode (circuit breaker open, ring cache
    /// bypassed, raw features fetched).
    pub degraded_batches: u64,
}

/// What one pipeline iteration produced, reported back to the engine.
#[derive(Clone, Copy, Debug)]
pub struct BatchOutput {
    /// Mini-batch loss.
    pub loss: f32,
    /// Destination nodes served from the cache.
    pub cache_reads: u64,
    /// Destination nodes computed fresh.
    pub computed_nodes: u64,
    /// Whether this batch ran in degraded mode (breaker open, cache
    /// bypassed).
    pub degraded: bool,
}

impl BatchOutput {
    /// A batch that only has a loss to report (cache-less trainers).
    pub fn loss_only(loss: f32) -> Self {
        BatchOutput {
            loss,
            cache_reads: 0,
            computed_nodes: 0,
            degraded: false,
        }
    }

    /// Mark this batch as having run in degraded mode.
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }
}

/// How the engine accounts the time spent pulling the next unit from the
/// stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallPolicy {
    /// The stream is an in-memory schedule; pulling is free (synchronous
    /// trainers, which time their `Sample` stage inside the step).
    Free,
    /// The stream is fed by the asynchronous sampler; time the consumer
    /// spends *stalled* waiting on the queue is charged as `Sample` time
    /// (§5: with enough workers, sampling fully overlaps training).
    ChargeSample,
}

/// Per-epoch pipeline context handed to the step function: the transfer
/// engine (with this epoch's fault plan armed), the per-stage ledger, and
/// the trainer's observability state (taken for the epoch, restored when
/// the epoch ends).
pub struct PipelineCtx<'t> {
    transfer: TransferEngine<'t>,
    timings: StageTimings,
    obs: Obs,
    /// Exact sim-clock nanoseconds advanced inside each stage's scopes —
    /// by construction these sum to the epoch span's duration.
    stage_exact_ns: [u64; NUM_STAGES],
}

impl<'t> PipelineCtx<'t> {
    /// Run one pipeline stage: `body` gets the epoch's transfer engine and
    /// the trainer's traffic ledger; the ledger delta it causes and its
    /// wall time are attributed to `kind`. [`StageKind::Sample`] and
    /// [`StageKind::Prune`] scopes also charge their wall time to the
    /// ledger's measured `sample_seconds` / `prune_seconds` fields.
    ///
    /// Each scope also emits a stage [`crate::obs::Span`]: the sim clock
    /// advances by the scope's *exact* ledger delta (transfer + retry +
    /// compute seconds — never the measured sample/prune wall time), so
    /// span timestamps are bit-reproducible across runs.
    pub fn stage<R>(
        &mut self,
        kind: StageKind,
        counters: &mut TrafficCounters,
        body: impl FnOnce(&mut TransferEngine<'t>, &mut TrafficCounters) -> R,
    ) -> R {
        let before = counters.clone();
        let t0 = Instant::now();
        let out = body(&mut self.transfer, counters);
        let wall = t0.elapsed().as_secs_f64();
        match kind {
            StageKind::Sample => counters.sample_seconds += wall,
            StageKind::Prune => counters.prune_seconds += wall,
            _ => {}
        }
        let mut delta = counters.clone();
        delta.subtract(&before);
        self.timings.record(kind, wall, &delta);
        self.timings.extend_span(&before, counters);
        let exact = delta.transfer_seconds + delta.retry_seconds + delta.compute_seconds;
        self.obs
            .tracer
            .begin(kind.name(), "stage", self.obs.clock.now_ns());
        self.stage_exact_ns[kind.index()] += self.obs.clock.advance_secs(exact);
        self.obs.tracer.end_with(
            self.obs.clock.now_ns(),
            vec![("wire_bytes", delta.wire_bytes())],
        );
        out
    }

    /// Whether the epoch's transfer engine has an open circuit breaker.
    /// Trainers consult this at the top of each batch to decide whether to
    /// run the batch in degraded mode (bypass the ring cache, fetch raw
    /// features).
    pub fn breaker_open(&self) -> bool {
        self.transfer.breaker_open()
    }
}

/// The epoch driver shared by every trainer.
pub struct Engine;

impl Engine {
    /// Run one epoch: pull units (mini-batch seeds, sampled batches,
    /// cluster indices, …) from `units` and run `step` on each inside a
    /// [`PipelineCtx`].
    ///
    /// * `faults` lends its plan and breaker to the epoch's
    ///   [`TransferEngine`]; both are restored (the plan with its advanced
    ///   RNG stream, the breaker with its trip state) before returning —
    ///   even on error — so fault schedules and breaker behavior stay
    ///   deterministic across epochs.
    /// * A `step` returning `None` contributes neither loss nor count
    ///   (e.g. a cluster without training nodes).
    /// * A unit yielding `Err` aborts the epoch and returns the error;
    ///   progress already made (parameter updates, counters, cache
    ///   admissions) is kept, mirroring the async sampler contract.
    ///
    /// The returned [`EpochStats`] carries the epoch's counter delta and
    /// [`StageTimings`]; `cache_degraded` is left `false` for the caller
    /// to fill in.
    ///
    /// `obs` is taken for the duration of the epoch and restored — with
    /// the epoch/batch/stage span tree appended and the per-stage and
    /// per-link metrics flushed — before returning, even on error.
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch<'t, U, E>(
        topo: &'t Topology,
        faults: &mut FaultState,
        counters: &mut TrafficCounters,
        obs: &mut Obs,
        stall_policy: StallPolicy,
        mut units: impl Iterator<Item = Result<U, E>>,
        mut step: impl FnMut(&mut PipelineCtx<'t>, &mut TrafficCounters, U) -> Option<BatchOutput>,
    ) -> Result<EpochStats, E> {
        let before = counters.clone();
        let mut transfer = match faults.plan.take() {
            Some(plan) => TransferEngine::with_faults(topo, plan, faults.policy),
            None => TransferEngine::new(topo),
        };
        transfer.set_breaker(faults.breaker.take());
        let mut ctx = PipelineCtx {
            transfer,
            timings: StageTimings::new(),
            obs: std::mem::take(obs),
            stage_exact_ns: [0; NUM_STAGES],
        };
        ctx.obs
            .tracer
            .begin("epoch", "pipeline", ctx.obs.clock.now_ns());

        let mut total_loss = 0.0f64;
        let mut batches = 0usize;
        let mut cache_reads = 0u64;
        let mut computed_nodes = 0u64;
        let mut degraded_batches = 0u64;
        let mut failure: Option<E> = None;
        loop {
            let t0 = Instant::now();
            let Some(item) = units.next() else { break };
            if stall_policy == StallPolicy::ChargeSample {
                // Only the consumer's queue stall counts as sampling time.
                let stall = t0.elapsed().as_secs_f64();
                let stall_before = counters.clone();
                counters.sample_seconds += stall;
                let mut delta = counters.clone();
                delta.subtract(&stall_before);
                ctx.timings.record(StageKind::Sample, stall, &delta);
                ctx.timings.extend_span(&stall_before, counters);
                // Measured time never advances the sim clock: the stall
                // leaves a zero-duration sample span under the epoch.
                let now = ctx.obs.clock.now_ns();
                ctx.obs.tracer.begin(StageKind::Sample.name(), "stage", now);
                ctx.obs.tracer.end(now);
            }
            match item {
                Ok(unit) => {
                    ctx.obs
                        .tracer
                        .begin("batch", "pipeline", ctx.obs.clock.now_ns());
                    let out = step(&mut ctx, counters, unit);
                    let now = ctx.obs.clock.now_ns();
                    match out {
                        Some(out) => {
                            ctx.obs.tracer.end_with(
                                now,
                                vec![
                                    ("cache_reads", out.cache_reads),
                                    ("computed_nodes", out.computed_nodes),
                                ],
                            );
                            total_loss += out.loss as f64;
                            batches += 1;
                            cache_reads += out.cache_reads;
                            computed_nodes += out.computed_nodes;
                            degraded_batches += out.degraded as u64;
                        }
                        None => ctx.obs.tracer.end(now),
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Thread the fault plan (and its advanced RNG) and the breaker
        // (and its trip state) back out before any return — an errored
        // epoch must leave the trainer usable.
        faults.plan = ctx.transfer.take_fault_plan();
        faults.breaker = ctx.transfer.take_breaker();

        // Close the epoch span and flush epoch-level metrics, even for an
        // errored epoch: the telemetry reflects the work actually done.
        ctx.obs
            .tracer
            .end_with(ctx.obs.clock.now_ns(), vec![("batches", batches as u64)]);
        let m = &mut ctx.obs.metrics;
        m.counter_add("pipeline.epochs", MetricClass::Exact, 1);
        m.counter_add("pipeline.batches", MetricClass::Exact, batches as u64);
        if degraded_batches > 0 {
            m.counter_add(
                "pipeline.degraded_batches",
                MetricClass::Exact,
                degraded_batches,
            );
        }
        // Breaker telemetry is Exact: trips and fast-fails are a pure
        // function of the fault seed. Flushed only when a breaker is armed
        // so fault-free metric streams are untouched.
        if let Some(b) = &faults.breaker {
            m.counter_set("transfer.breaker.trips", MetricClass::Exact, b.trips);
            m.counter_set(
                "transfer.breaker.fast_fails",
                MetricClass::Exact,
                b.fast_fails,
            );
            m.gauge_set(
                "transfer.breaker.state",
                MetricClass::Exact,
                b.state().code() as f64,
            );
        }
        for kind in StageKind::ALL {
            let name = kind.name();
            let exact_ns = ctx.stage_exact_ns[kind.index()];
            if exact_ns > 0 {
                m.counter_add(
                    &format!("pipeline.stage.{name}.sim_ns"),
                    MetricClass::Exact,
                    exact_ns,
                );
            }
            let wire = ctx.timings.wire_bytes(kind);
            if wire > 0 {
                m.counter_add(
                    &format!("pipeline.stage.{name}.wire_bytes"),
                    MetricClass::Exact,
                    wire,
                );
            }
            let wall = ctx.timings.measured_seconds(kind);
            if wall > 0.0 {
                m.counter_add(
                    &format!("pipeline.stage.{name}.measured_ns"),
                    MetricClass::Measured,
                    (wall * 1e9).round() as u64,
                );
            }
        }
        for (l, &bytes) in ctx.transfer.link_bytes.iter().enumerate() {
            if bytes > 0 {
                m.counter_add(
                    &format!("transfer.link.{l}.bytes"),
                    MetricClass::Exact,
                    bytes,
                );
            }
        }
        for (l, &retries) in ctx.transfer.link_retries.iter().enumerate() {
            if retries > 0 {
                m.counter_add(
                    &format!("transfer.link.{l}.retries"),
                    MetricClass::Exact,
                    retries,
                );
            }
        }
        for (l, &busy) in ctx.transfer.link_busy.iter().enumerate() {
            if busy > 0.0 {
                m.counter_add(
                    &format!("transfer.link.{l}.busy_ns"),
                    MetricClass::Exact,
                    (busy * 1e9).round() as u64,
                );
            }
        }
        *obs = ctx.obs;
        if let Some(e) = failure {
            return Err(e);
        }

        let mut delta = counters.clone();
        delta.subtract(&before);
        Ok(EpochStats {
            mean_loss: total_loss / batches.max(1) as f64,
            batches,
            counters: delta,
            timings: ctx.timings,
            cache_reads,
            computed_nodes,
            cache_degraded: false,
            degraded_batches,
        })
    }

    /// Run one epoch with **cross-batch stage overlap**: the prestage work
    /// for every unit — whatever `produce` does: sampling, pruning,
    /// feature preparation — is scheduled on the in-tree work-stealing
    /// [`Pool`] while this thread trains, so prestage for *future* batches
    /// runs while the current batch is in its GPU stages. Results flow
    /// through an [`OrderedCommit`] reorder buffer and are consumed
    /// strictly in index order under [`StallPolicy::ChargeSample`], so the
    /// committed unit stream — and with it every loss, `Exact` counter and
    /// span — is byte-identical at any worker count and under any steal
    /// schedule.
    ///
    /// The determinism contract is the caller's to uphold inside
    /// `produce`: derive all randomness from the task index alone (fork a
    /// fresh RNG from `(seed, index)`), never from worker identity or
    /// shared mutable state. `init` builds per-worker scratch, rebuilt
    /// after a panic; a unit that panics on every attempt surfaces as
    /// `E::from(TaskError::Panicked)`, dead workers as
    /// `E::from(TaskError::Lost)` — either aborts the epoch through the
    /// normal [`Engine::run_epoch`] error path, keeping progress made.
    ///
    /// Scheduler telemetry (steals, parks, task latency, reorder-buffer
    /// depth) is flushed into `obs` under `runtime.*` — `Measured`, never
    /// `Exact`, because it genuinely varies run to run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch_overlapped<'t, T, S, P, E>(
        topo: &'t Topology,
        faults: &mut FaultState,
        counters: &mut TrafficCounters,
        obs: &mut Obs,
        cfg: &RuntimeConfig,
        tasks: Vec<T>,
        init: impl Fn() -> S + Send + Sync + 'static,
        produce: impl Fn(&mut S, usize, &T, u32) -> P + Send + Sync + 'static,
        step: impl FnMut(&mut PipelineCtx<'t>, &mut TrafficCounters, P) -> Option<BatchOutput>,
    ) -> Result<EpochStats, E>
    where
        T: Send + Sync + 'static,
        P: Send + 'static,
        E: From<TaskError>,
    {
        let pool: Pool<P> = Pool::spawn(cfg, tasks, init, produce);
        let mut ordered: OrderedCommit<Result<P, TaskError>> = OrderedCommit::new(pool.total());
        let units = std::iter::from_fn(|| loop {
            if let Some((_, r)) = ordered.try_commit() {
                return Some(r.map_err(E::from));
            }
            if ordered.is_done() {
                return None;
            }
            match pool.recv() {
                Ok((i, r)) => ordered.offer(i, r),
                Err(_) => {
                    // Workers died with results outstanding; abort the
                    // stream so the epoch errors instead of hanging.
                    let lost = TaskError::Lost {
                        produced: ordered.committed(),
                        total: ordered.total(),
                    };
                    ordered.abort();
                    return Some(Err(E::from(lost)));
                }
            }
        });
        let result = Engine::run_epoch(
            topo,
            faults,
            counters,
            obs,
            StallPolicy::ChargeSample,
            units,
            step,
        );
        Self::flush_runtime_obs(obs, &pool.obs_report(), ordered.queue_depth());
        result
    }

    /// Flush one pool run's scheduling counters into the metrics registry
    /// under `runtime.*`. Retries are `Exact` (a panic is a property of
    /// the task, not the schedule — the same contract
    /// `sampler.resample_retries` already exports under); everything else
    /// is a genuine schedule artifact and stays `Measured`.
    fn flush_runtime_obs(obs: &mut Obs, r: &RuntimeObsReport, depth: &crate::obs::Histogram) {
        let m = &mut obs.metrics;
        m.counter_add("runtime.retries", MetricClass::Exact, r.retries);
        m.counter_add("runtime.steals", MetricClass::Measured, r.steals);
        m.counter_add(
            "runtime.stolen_tasks",
            MetricClass::Measured,
            r.stolen_tasks,
        );
        m.counter_add("runtime.parks", MetricClass::Measured, r.parks);
        for (w, (&t, &n)) in r.worker_tasks.iter().zip(&r.worker_task_nanos).enumerate() {
            m.counter_add(
                &format!("runtime.worker.{w}.tasks"),
                MetricClass::Measured,
                t,
            );
            m.counter_add(
                &format!("runtime.worker.{w}.task_ns"),
                MetricClass::Measured,
                n,
            );
        }
        let mut task_secs = m
            .histogram("runtime.task_seconds")
            .cloned()
            .unwrap_or_default();
        task_secs.merge(&r.task_seconds);
        m.hist_set("runtime.task_seconds", MetricClass::Measured, task_secs);
        let mut commit_depth = m
            .histogram("runtime.commit_depth")
            .cloned()
            .unwrap_or_default();
        commit_depth.merge(depth);
        m.hist_set("runtime.commit_depth", MetricClass::Measured, commit_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_memsim::fault::FaultPlan;
    use fgnn_memsim::topology::Node;
    use std::convert::Infallible;

    fn topo() -> Topology {
        Topology::pcie_tree(1, 1, 16e9)
    }

    #[test]
    fn stage_scopes_attribute_ledger_deltas() {
        let topo = topo();
        let mut counters = TrafficCounters::new();
        let mut faults = FaultState::none();
        let stats = Engine::run_epoch(
            &topo,
            &mut faults,
            &mut counters,
            &mut Obs::new(),
            StallPolicy::Free,
            (0..3).map(Ok::<u64, Infallible>),
            |ctx, counters, bytes_k| {
                ctx.stage(StageKind::Load, counters, |eng, c| {
                    eng.one_sided_read(Node::Host, Node::Gpu(0), 1000 * (bytes_k + 1), c);
                });
                ctx.stage(StageKind::Backward, counters, |_, c| {
                    c.compute_seconds += 0.5;
                });
                Some(BatchOutput::loss_only(1.0))
            },
        )
        .unwrap();
        assert_eq!(stats.batches, 3);
        assert!((stats.mean_loss - 1.0).abs() < 1e-12);
        assert_eq!(stats.timings.wire_bytes(StageKind::Load), 6000);
        assert_eq!(stats.counters.host_to_gpu_bytes, 6000);
        assert_eq!(
            stats.timings.stage(StageKind::Backward).compute_seconds,
            1.5
        );
        // Attribution is complete: per-stage ledgers merge back to the
        // epoch delta exactly.
        assert_eq!(
            stats.timings.sim_seconds_total().to_bits(),
            stats.counters.sim_seconds().to_bits()
        );
    }

    #[test]
    fn none_outputs_are_skipped_in_the_mean() {
        let topo = topo();
        let mut counters = TrafficCounters::new();
        let mut faults = FaultState::none();
        let stats = Engine::run_epoch(
            &topo,
            &mut faults,
            &mut counters,
            &mut Obs::new(),
            StallPolicy::Free,
            (0..4).map(Ok::<usize, Infallible>),
            |_, _, i| (i % 2 == 0).then(|| BatchOutput::loss_only(2.0)),
        )
        .unwrap();
        assert_eq!(stats.batches, 2);
        assert!((stats.mean_loss - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unit_error_aborts_and_surfaces() {
        let topo = topo();
        let mut counters = TrafficCounters::new();
        let mut faults = FaultState::none();
        let mut steps = 0;
        let err = Engine::run_epoch(
            &topo,
            &mut faults,
            &mut counters,
            &mut Obs::new(),
            StallPolicy::Free,
            vec![Ok(1), Err("boom"), Ok(2)].into_iter(),
            |_, _, _| {
                steps += 1;
                Some(BatchOutput::loss_only(0.0))
            },
        )
        .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(steps, 1, "units after the failure must not run");
    }

    #[test]
    fn fault_plan_is_threaded_back_out() {
        let topo = topo();
        let mut counters = TrafficCounters::new();
        let mut faults = FaultState::none();
        faults.inject(
            FaultPlan::new(7).with_fail_prob(0.5),
            fgnn_memsim::RetryPolicy::default(),
        );
        let _ = Engine::run_epoch(
            &topo,
            &mut faults,
            &mut counters,
            &mut Obs::new(),
            StallPolicy::Free,
            (0..2).map(Ok::<u64, Infallible>),
            |ctx, counters, _| {
                ctx.stage(StageKind::Load, counters, |eng, c| {
                    eng.one_sided_read(Node::Host, Node::Gpu(0), 4096, c);
                });
                Some(BatchOutput::loss_only(0.0))
            },
        )
        .unwrap();
        assert!(faults.plan.is_some(), "plan must survive the epoch");
    }

    #[test]
    fn overlapped_epoch_is_invariant_across_worker_counts() {
        let topo = topo();
        let run = |workers: usize| {
            let mut counters = TrafficCounters::new();
            let mut faults = FaultState::none();
            let cfg = RuntimeConfig {
                workers,
                queue_capacity: 4,
                ..RuntimeConfig::default()
            };
            Engine::run_epoch_overlapped::<u64, (), u64, TaskError>(
                &topo,
                &mut faults,
                &mut counters,
                &mut Obs::new(),
                &cfg,
                (0..16u64).collect(),
                || (),
                |_, i, t, _| t * 10 + i as u64, // index-derived, worker-free
                |ctx, counters, unit| {
                    ctx.stage(StageKind::Load, counters, |eng, c| {
                        eng.one_sided_read(Node::Host, Node::Gpu(0), 64 * (unit + 1), c);
                    });
                    Some(BatchOutput::loss_only(unit as f32))
                },
            )
            .unwrap()
        };
        let reference = run(1);
        for workers in [2, 4, 8] {
            let stats = run(workers);
            assert_eq!(
                stats.mean_loss.to_bits(),
                reference.mean_loss.to_bits(),
                "workers={workers}"
            );
            assert_eq!(stats.batches, reference.batches);
            assert_eq!(
                stats.counters.host_to_gpu_bytes,
                reference.counters.host_to_gpu_bytes
            );
            assert_eq!(
                stats.counters.transfer_seconds.to_bits(),
                reference.counters.transfer_seconds.to_bits()
            );
        }
    }

    #[test]
    fn overlapped_epoch_surfaces_persistent_prestage_panics() {
        let topo = topo();
        let mut counters = TrafficCounters::new();
        let mut faults = FaultState::none();
        let cfg = RuntimeConfig {
            workers: 2,
            max_retries: 1,
            ..RuntimeConfig::default()
        };
        let mut stepped = 0usize;
        let err = Engine::run_epoch_overlapped::<(), (), usize, TaskError>(
            &topo,
            &mut faults,
            &mut counters,
            &mut Obs::new(),
            &cfg,
            vec![(); 6],
            || (),
            |_, i, _, _| {
                if i == 3 {
                    panic!("poisoned unit");
                }
                i
            },
            |_, _, _| {
                stepped += 1;
                Some(BatchOutput::loss_only(0.0))
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            TaskError::Panicked {
                index: 3,
                attempts: 2
            }
        );
        assert_eq!(stepped, 3, "units before the failure trained; none after");
    }
}
