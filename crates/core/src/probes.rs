//! Measurement probes behind the paper's analysis figures.
//!
//! * [`estimation_error`] — Fig 1: mean L2 distance between embeddings
//!   computed *with* historical overrides and the authentic embeddings of
//!   the same mini-batch computed exactly;
//! * [`EmbeddingStabilityProbe`] — Fig 3: distribution of cosine
//!   similarity between a probe set's embeddings at iteration `t` and
//!   `t − s`.

use crate::cache::HistoricalCache;
use fgnn_graph::block::MiniBatch;
use fgnn_graph::NodeId;
use fgnn_nn::model::Model;
use fgnn_tensor::{stats, Matrix};
use std::collections::VecDeque;

/// Fig 1 probe: run the same (un-pruned) mini-batch twice — once
/// overriding every cache-resident destination with its cached embedding,
/// once exactly — and return the mean L2 row distance of the outputs.
///
/// `levels_cached` receives, per level `l` (1-based), the local dst rows
/// that the cache would serve (as produced by the pruner on a *clone* of
/// the batch; the batch passed here must be un-pruned so the exact pass
/// sees full aggregation).
pub fn estimation_error(
    model: &Model,
    mb: &MiniBatch,
    h0: &Matrix,
    cache: &HistoricalCache,
    levels_cached: &[Vec<(u32, u32)>],
) -> f32 {
    let exact = model.forward(mb, h0.clone());
    let approx = model.forward_with(mb, h0.clone(), |level, h| {
        let b = level - 1;
        if b < levels_cached.len() {
            for &(local, slot) in &levels_cached[b] {
                cache.fetch_into(level, slot, h.row_mut(local as usize));
            }
        }
    });
    stats::mean_row_l2_distance(approx.h.last().unwrap(), exact.h.last().unwrap())
}

/// Fig 3 probe: tracks embeddings of a fixed probe node set over
/// iterations and reports cosine similarity at lag `s`.
pub struct EmbeddingStabilityProbe {
    /// The probed nodes (global IDs).
    pub nodes: Vec<NodeId>,
    lag: usize,
    history: VecDeque<Matrix>,
}

impl EmbeddingStabilityProbe {
    /// Probe `nodes` with lag `s` (the paper uses `s = 20`).
    pub fn new(nodes: Vec<NodeId>, lag: usize) -> Self {
        assert!(lag >= 1);
        EmbeddingStabilityProbe {
            nodes,
            lag,
            history: VecDeque::new(),
        }
    }

    /// Record this iteration's embeddings of the probe nodes (one row per
    /// probe node). Returns the per-node cosine similarities against the
    /// snapshot `lag` iterations ago once enough history exists.
    pub fn record(&mut self, snapshot: Matrix) -> Option<Vec<f32>> {
        assert_eq!(snapshot.rows(), self.nodes.len());
        self.history.push_back(snapshot);
        if self.history.len() > self.lag {
            let old = self.history.pop_front().unwrap();
            let new = self.history.back().unwrap();
            Some(stats::row_cosine_similarities(new, &old))
        } else {
            None
        }
    }

    /// Snapshots currently buffered.
    pub fn buffered(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{PolicyInput, Verdict};
    use fgnn_graph::sample::NeighborSampler;
    use fgnn_graph::Csr;
    use fgnn_nn::model::Arch;
    use fgnn_tensor::Rng;

    #[test]
    fn estimation_error_zero_without_overrides() {
        let mut rng = Rng::new(1);
        let g = Csr::from_undirected_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = NeighborSampler::new(8);
        let mb = s.sample(&g, &[2], &[4, 4], &mut rng);
        let model = Model::new(Arch::Gcn, &[4, 4, 3], &mut rng);
        let h0 = rng.normal_matrix(mb.input_nodes().len(), 4, 1.0);
        let cache = HistoricalCache::new(8, &[4, 3], 100, 8, false, true);
        let err = estimation_error(&model, &mb, &h0, &cache, &[vec![], vec![]]);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn estimation_error_positive_with_wrong_cached_value() {
        let mut rng = Rng::new(2);
        let g = Csr::from_undirected_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut s = NeighborSampler::new(8);
        let mb = s.sample(&g, &[2], &[4, 4], &mut rng);
        let model = Model::new(Arch::Gcn, &[4, 4, 3], &mut rng);
        let h0 = rng.normal_matrix(mb.input_nodes().len(), 4, 1.0);
        let mut cache = HistoricalCache::new(8, &[4, 3], 100, 8, false, true);
        // Admit a deliberately wrong embedding for the first level-1 dst.
        let node = mb.blocks[0].dst_global[0];
        let bogus = Matrix::full(1, 4, 7.0);
        cache.apply_verdicts(
            1,
            &[(
                PolicyInput {
                    node,
                    local: 0,
                    grad_norm: 0.0,
                    was_cached: false,
                },
                Verdict::Admit,
            )],
            &bogus,
            0,
        );
        let slot = cache.lookup(1, node, 0).unwrap();
        let err = estimation_error(&model, &mb, &h0, &cache, &[vec![(0, slot)], vec![]]);
        assert!(err > 0.0, "override must perturb the output");
    }

    #[test]
    fn stability_probe_emits_after_lag() {
        let mut p = EmbeddingStabilityProbe::new(vec![1, 2], 3);
        for i in 0..3 {
            assert!(p.record(Matrix::full(2, 4, i as f32 + 1.0)).is_none());
        }
        let sims = p.record(Matrix::full(2, 4, 4.0)).expect("lag reached");
        // Constant-positive rows are perfectly aligned.
        assert!(sims.iter().all(|&s| (s - 1.0).abs() < 1e-6));
        assert_eq!(p.buffered(), 3);
    }

    #[test]
    fn stability_probe_detects_direction_change() {
        let mut p = EmbeddingStabilityProbe::new(vec![0], 1);
        p.record(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let sims = p.record(Matrix::from_vec(1, 2, vec![0.0, 1.0])).unwrap();
        assert!(sims[0].abs() < 1e-6, "orthogonal embeddings");
    }
}
