//! Cache-aware subgraph pruning (§5, Algorithm 1 lines 6–9).
//!
//! The pruner scans a sampled mini-batch from the seed layer down. A
//! destination whose embedding is cached has its aggregation removed in
//! O(1) (CSR2 `end[i] = start[i]`), and — because nothing below it is
//! referenced anymore — its entire multi-hop subtree is dead: lower-level
//! nodes reachable only through cached (or otherwise dead) destinations
//! are pruned too and their raw features are never loaded. This subtree
//! effect is why the paper's I/O saving exceeds the raw cache hit rate
//! (§7.4).

use crate::cache::{CachePolicy, GradientPolicy, HistoricalCache};
use fgnn_graph::block::MiniBatch;

/// What the pruner decided for one mini-batch.
pub struct PruneOutcome {
    /// Per block `b`: `(local dst index, cache slot)` pairs read from
    /// cache level `b+1`. The top block's list is always empty (seeds are
    /// never cache-read).
    pub cached: Vec<Vec<(u32, u32)>>,
    /// Per block `b`: whether each dst node must be computed. Dead or
    /// cached nodes are `false`.
    pub computed: Vec<Vec<bool>>,
    /// Which input-block src nodes need their raw features loaded.
    pub needed_input: Vec<bool>,
    /// Total dst nodes pruned (cached + dead).
    pub pruned_nodes: usize,
    /// Total edges removed from the mini-batch.
    pub pruned_edges: usize,
}

impl PruneOutcome {
    /// Number of input features that still must be loaded.
    pub fn num_inputs_needed(&self) -> usize {
        self.needed_input.iter().filter(|&&b| b).count()
    }
}

/// Prune `mb` in place against `cache` at iteration `now` under the
/// baseline policy (no refresh schedule) — see
/// [`prune_with_cache_policy`].
pub fn prune_with_cache(mb: &mut MiniBatch, cache: &mut HistoricalCache, now: u32) -> PruneOutcome {
    prune_with_cache_policy(mb, cache, now, &GradientPolicy)
}

/// Prune `mb` in place against `cache` at iteration `now`, routing every
/// cache probe through `policy` ([`HistoricalCache::lookup_with`]): a live
/// entry the policy's refresh schedule flags is declined — the node is
/// recomputed this iteration so its re-admission refreshes the entry in
/// place.
///
/// With a disabled cache this degenerates gracefully: everything is
/// computed, nothing is pruned — plain neighbor sampling.
pub fn prune_with_cache_policy(
    mb: &mut MiniBatch,
    cache: &mut HistoricalCache,
    now: u32,
    policy: &dyn CachePolicy,
) -> PruneOutcome {
    let num_blocks = mb.blocks.len();
    let mut cached: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_blocks];
    let mut computed: Vec<Vec<bool>> = Vec::with_capacity(num_blocks);
    for b in &mb.blocks {
        computed.push(vec![false; b.num_dst()]);
    }
    let mut pruned_nodes = 0usize;
    let mut pruned_edges = 0usize;

    // Seeds (top block dst) are always needed.
    let mut needed: Vec<bool> = vec![true; mb.blocks[num_blocks - 1].num_dst()];

    for b in (0..num_blocks).rev() {
        let level = b + 1; // dst of block b holds h^{(level)}
        let is_top = b + 1 == num_blocks;
        let n_src = mb.blocks[b].num_src();
        let mut needed_below = vec![false; n_src];

        for v in 0..mb.blocks[b].num_dst() {
            if !needed[v] {
                // Dead subtree: drop the aggregation, don't expand.
                pruned_edges += mb.blocks[b].adj.prune(v);
                pruned_nodes += 1;
                continue;
            }
            let node = mb.blocks[b].dst_global[v];
            if !is_top {
                if let Some(slot) = cache.lookup_with(level, node, now, policy) {
                    pruned_edges += mb.blocks[b].adj.prune(v);
                    pruned_nodes += 1;
                    cached[b].push((v as u32, slot));
                    continue;
                }
            }
            // Fresh compute: needs its own lower representation plus its
            // sampled neighbors'.
            computed[b][v] = true;
            needed_below[v] = true;
            for &u in mb.blocks[b].adj.neighbors(v) {
                needed_below[u as usize] = true;
            }
        }

        if b == 0 {
            return PruneOutcome {
                cached,
                computed,
                needed_input: needed_below,
                pruned_nodes,
                pruned_edges,
            };
        }
        // Chain invariant: block b's src set == block b-1's dst set.
        debug_assert_eq!(n_src, mb.blocks[b - 1].num_dst());
        needed = needed_below;
    }
    unreachable!("loop returns at b == 0");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{PolicyInput, Verdict};
    use fgnn_graph::sample::NeighborSampler;
    use fgnn_graph::Csr;
    use fgnn_tensor::{Matrix, Rng};

    /// A 2-layer chain: 0 - 1 - 2 - 3 - 4 (path), seed {2}.
    fn sample_path() -> MiniBatch {
        let edges: Vec<(u32, u32)> = (0..4).map(|i| (i, i + 1)).collect();
        let g = Csr::from_undirected_edges(5, &edges);
        let mut s = NeighborSampler::new(5);
        s.sample(&g, &[2], &[10, 10], &mut Rng::new(1))
    }

    fn empty_cache(dims: &[usize]) -> HistoricalCache {
        HistoricalCache::new(16, dims, 100, 8, false, true)
    }

    #[test]
    fn no_cache_entries_means_everything_computed() {
        let mut mb = sample_path();
        let edges_before = mb.total_edges();
        let mut cache = empty_cache(&[4, 4]);
        let out = prune_with_cache(&mut mb, &mut cache, 0);
        assert_eq!(out.pruned_nodes, 0);
        assert_eq!(out.pruned_edges, 0);
        assert_eq!(mb.total_edges(), edges_before);
        assert!(out.computed.iter().flatten().all(|&c| c));
        assert!(out.needed_input.iter().all(|&n| n));
    }

    #[test]
    fn cached_interior_node_prunes_its_subtree() {
        let mut mb = sample_path();
        let mut cache = empty_cache(&[4, 4]);
        // Seed 2's level-1 neighbors are nodes 1 and 3 (dst of block 0).
        // Cache node 1 at level 1.
        let h = Matrix::zeros(1, 4);
        cache.apply_verdicts(
            1,
            &[(
                PolicyInput {
                    node: 1,
                    local: 0,
                    grad_norm: 0.0,
                    was_cached: false,
                },
                Verdict::Admit,
            )],
            &h,
            0,
        );
        let out = prune_with_cache(&mut mb, &mut cache, 1);
        // Node 1 at block 0 must be cache-read, not computed.
        let b0 = &mb.blocks[0];
        let local_1 = b0.dst_global.iter().position(|&g| g == 1).unwrap();
        assert!(out.cached[0].iter().any(|&(v, _)| v as usize == local_1));
        assert!(!out.computed[0][local_1]);
        assert!(b0.adj.is_pruned(local_1));
        // Node 1's own raw features are no longer needed unless another
        // computed dst references them. Node 0 is reachable only through
        // node 1 → its features must be dead.
        let local_0 = b0
            .src_global
            .iter()
            .position(|&g| g == 0)
            .expect("node 0 sampled");
        assert!(!out.needed_input[local_0], "subtree feature load pruned");
        assert!(out.pruned_nodes >= 1);
        assert!(out.pruned_edges >= 1);
    }

    #[test]
    fn seeds_are_never_cache_read() {
        let mut mb = sample_path();
        let mut cache = empty_cache(&[4, 4]);
        // Put the seed itself in the TOP level cache (level 2) — must be
        // ignored because the top block never reads the cache.
        let h = Matrix::zeros(1, 4);
        cache.apply_verdicts(
            2,
            &[(
                PolicyInput {
                    node: 2,
                    local: 0,
                    grad_norm: 0.0,
                    was_cached: false,
                },
                Verdict::Admit,
            )],
            &h,
            0,
        );
        let out = prune_with_cache(&mut mb, &mut cache, 1);
        let top = out.computed.last().unwrap();
        assert!(top.iter().all(|&c| c), "all seeds computed");
        assert!(out.cached.last().unwrap().is_empty());
    }

    #[test]
    fn io_saving_exceeds_hit_count_through_subtrees() {
        // Star: hub 0 connected to 1..=8; seed {1} with 2 layers. Caching
        // hub 0 at level 1 kills the whole second hop (nodes 2..=8).
        let edges: Vec<(u32, u32)> = (1..=8).map(|l| (0, l)).collect();
        let g = Csr::from_undirected_edges(9, &edges);
        let mut s = NeighborSampler::new(9);
        let mut mb = s.sample(&g, &[1], &[10, 10], &mut Rng::new(3));
        let inputs_before = mb.input_nodes().len();

        let mut cache = empty_cache(&[4, 4]);
        let h = Matrix::zeros(1, 4);
        cache.apply_verdicts(
            1,
            &[(
                PolicyInput {
                    node: 0,
                    local: 0,
                    grad_norm: 0.0,
                    was_cached: false,
                },
                Verdict::Admit,
            )],
            &h,
            0,
        );
        let out = prune_with_cache(&mut mb, &mut cache, 1);
        // One cache hit, but many input loads avoided.
        assert_eq!(out.cached[0].len(), 1);
        let needed = out.num_inputs_needed();
        assert!(
            needed + 5 <= inputs_before,
            "needed {needed} of {inputs_before}"
        );
    }

    #[test]
    fn disabled_cache_prunes_nothing() {
        let mut mb = sample_path();
        let mut cache = HistoricalCache::new(16, &[4, 4], 0, 8, false, false);
        let out = prune_with_cache(&mut mb, &mut cache, 0);
        assert_eq!(out.pruned_nodes, 0);
        assert!(out.cached.iter().all(Vec::is_empty));
    }
}
