//! The deterministic self-healing layer: numeric-health guarding, the
//! supervisor state machine, and rollback bookkeeping.
//!
//! The runtime already *tolerates* faults (bounded transfer retries,
//! sampler worker recovery, checkpoint/resume); this module makes it
//! *react*:
//!
//! * [`NumericGuard`] watches the per-batch loss stream for NaN/Inf and
//!   for loss spikes (windowed z-score) — both pure functions of the loss
//!   values, so detection is deterministic;
//! * [`Supervisor`] runs the `Healthy → Degraded → Recovering → Healthy`
//!   state machine, holds the last-known-good [`Checkpoint`] baseline,
//!   budgets rollbacks, and records every transition (as a
//!   [`Transition`], an obs span under the `resilience` category, and
//!   Exact metrics), so two same-seed runs produce byte-identical
//!   transition logs;
//! * the trainers' `train_epoch_resilient` methods (see
//!   [`crate::Trainer::train_epoch_resilient`]) drive it: a tripped guard
//!   aborts the epoch, rolls back to the baseline — evicting ring-cache
//!   entries stamped after the restored iteration so the `t_stale` bound
//!   holds — and replays; an open circuit breaker runs batches in
//!   degraded mode (cache bypassed, raw features fetched).
//!
//! Everything here is deterministic by construction: no wall clock, no
//! OS randomness — state changes are driven by the (seeded) fault plan,
//! the (seeded) training trajectory, and the breaker's transfer-count
//! cooldown.

use crate::checkpoint::Checkpoint;
use crate::obs::window::AlertEvent;
use crate::obs::{MetricClass, Obs};
use std::collections::VecDeque;
use std::fmt;

/// Where the supervisor currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Normal operation.
    Healthy,
    /// A fault was detected (numeric fault, or the circuit breaker is
    /// open): the runtime is degrading service to keep making progress.
    Degraded,
    /// A rollback was issued; the epoch is replaying from the baseline.
    Recovering,
}

impl HealthState {
    /// Stable numeric code for metric export (`0`/`1`/`2`).
    pub fn code(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Recovering => 2,
        }
    }

    /// Stable lowercase name for logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Recovering => "recovering",
        }
    }

    /// Whether service should run in its degraded mode. Both `Degraded`
    /// and `Recovering` qualify: while an epoch replays from the rollback
    /// baseline the runtime is no healthier than it was when the fault
    /// hit, so the serving engine keeps its SLA-relaxed read path on
    /// until the supervisor returns to `Healthy`.
    pub fn is_degraded(self) -> bool {
        !matches!(self, HealthState::Healthy)
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunables for the [`NumericGuard`].
#[derive(Clone, Copy, Debug)]
pub struct GuardConfig {
    /// Trailing losses kept for the z-score window.
    pub window: usize,
    /// A loss more than this many window standard deviations above the
    /// window mean counts as a spike.
    pub z_threshold: f64,
    /// Minimum window occupancy before spike detection engages (NaN/Inf
    /// detection is always on).
    pub min_samples: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            window: 16,
            z_threshold: 6.0,
            min_samples: 8,
        }
    }
}

/// What the [`NumericGuard`] detected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NumericFault {
    /// The loss came back NaN or infinite.
    NonFinite {
        /// Iteration whose loss tripped the guard.
        iter: u32,
    },
    /// The loss spiked past the z-score threshold.
    LossSpike {
        /// Iteration whose loss tripped the guard.
        iter: u32,
        /// The offending z-score.
        z: f64,
    },
}

impl NumericFault {
    /// Iteration at which the fault fired.
    pub fn iter(&self) -> u32 {
        match *self {
            NumericFault::NonFinite { iter } | NumericFault::LossSpike { iter, .. } => iter,
        }
    }

    /// Short stable cause string for the transition log.
    pub fn cause(&self) -> String {
        match *self {
            NumericFault::NonFinite { iter } => format!("non-finite-loss@{iter}"),
            NumericFault::LossSpike { iter, .. } => format!("loss-spike@{iter}"),
        }
    }
}

/// Windowed numeric-health detector over the per-batch loss stream.
///
/// Deterministic: state is only the trailing loss window, and both
/// detections are pure functions of it.
#[derive(Clone, Debug)]
pub struct NumericGuard {
    cfg: GuardConfig,
    window: VecDeque<f64>,
}

impl NumericGuard {
    /// An empty guard under `cfg`.
    pub fn new(cfg: GuardConfig) -> Self {
        NumericGuard {
            cfg,
            window: VecDeque::with_capacity(cfg.window.max(1)),
        }
    }

    /// Feed one batch loss; returns the fault it trips, if any. A faulty
    /// loss is *not* admitted into the window (the window only ever holds
    /// healthy history).
    pub fn observe(&mut self, iter: u32, loss: f32) -> Option<NumericFault> {
        if !loss.is_finite() {
            return Some(NumericFault::NonFinite { iter });
        }
        let loss = loss as f64;
        if self.window.len() >= self.cfg.min_samples.max(2) {
            let n = self.window.len() as f64;
            let mean = self.window.iter().sum::<f64>() / n;
            let var = self
                .window
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / n;
            let std = var.sqrt();
            if std > 0.0 {
                let z = (loss - mean) / std;
                if z > self.cfg.z_threshold {
                    return Some(NumericFault::LossSpike { iter, z });
                }
            }
        }
        if self.window.len() == self.cfg.window.max(1) {
            self.window.pop_front();
        }
        self.window.push_back(loss);
        None
    }

    /// Clear the window (issued after a rollback: the replayed epoch's
    /// losses start a fresh history).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Current window occupancy (tests/metrics).
    pub fn samples(&self) -> usize {
        self.window.len()
    }
}

/// One recorded supervisor state change.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// Trainer iteration at the transition.
    pub iter: u32,
    /// Trainer epoch at the transition.
    pub epoch: u32,
    /// State left.
    pub from: HealthState,
    /// State entered.
    pub to: HealthState,
    /// Short cause tag (`non-finite-loss@12`, `breaker-open`,
    /// `rollback`, `epoch-clean`, …).
    pub cause: String,
}

/// Tunables for the [`Supervisor`].
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Rollbacks allowed before a numeric fault becomes a hard error.
    pub max_rollbacks: u32,
    /// Numeric-guard tunables.
    pub guard: GuardConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_rollbacks: 3,
            guard: GuardConfig::default(),
        }
    }
}

/// The health supervisor: state machine, rollback budget, baseline
/// checkpoint, and the transition log.
#[derive(Clone, Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    state: HealthState,
    /// The numeric-health detector fed by the guarded training loop.
    pub guard: NumericGuard,
    transitions: Vec<Transition>,
    rollbacks: u32,
    baseline: Option<Checkpoint>,
    /// SLO alert edges observed via [`Supervisor::observe_alert`].
    alerts_observed: u64,
    /// The most recent observed alert edge.
    last_alert: Option<AlertEvent>,
}

impl Supervisor {
    /// A healthy supervisor under `cfg` with no baseline yet.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Supervisor {
            state: HealthState::Healthy,
            guard: NumericGuard::new(cfg.guard),
            transitions: Vec::new(),
            rollbacks: 0,
            baseline: None,
            alerts_observed: 0,
            last_alert: None,
            cfg,
        }
    }

    /// Consume one SLO alert edge from the serving monitor
    /// ([`crate::obs::SloMonitor`]): the alert is recorded as supervisor
    /// *state* (a counter, a last-alert slot and the Exact
    /// `resilience.slo.alerts_observed` / `resilience.slo.firing`
    /// metrics) — it never transitions the health state machine by
    /// itself. Operators (or future policies) read the state; default
    /// behavior is unchanged by design (DESIGN.md §12).
    pub fn observe_alert(&mut self, alert: &AlertEvent, obs: &mut Obs) {
        self.alerts_observed += 1;
        let firing = alert.fired;
        self.last_alert = Some(alert.clone());
        obs.metrics
            .counter_add("resilience.slo.alerts_observed", MetricClass::Exact, 1);
        obs.metrics.gauge_set(
            "resilience.slo.firing",
            MetricClass::Exact,
            firing as u64 as f64,
        );
    }

    /// Alert edges observed so far.
    pub fn alerts_observed(&self) -> u64 {
        self.alerts_observed
    }

    /// The most recent observed alert edge.
    pub fn last_alert(&self) -> Option<&AlertEvent> {
        self.last_alert.as_ref()
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Every state change recorded so far, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Rollbacks issued so far.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks
    }

    /// Whether the rollback budget still has room.
    pub fn can_roll_back(&self) -> bool {
        self.rollbacks < self.cfg.max_rollbacks
    }

    /// Whether a last-known-good baseline is held.
    pub fn has_baseline(&self) -> bool {
        self.baseline.is_some()
    }

    /// Install (or refresh) the last-known-good baseline.
    pub fn set_baseline(&mut self, ckpt: Checkpoint) {
        self.baseline = Some(ckpt);
    }

    /// Borrow the baseline for a restore.
    pub fn baseline(&self) -> Option<&Checkpoint> {
        self.baseline.as_ref()
    }

    /// Count a rollback against the budget and reset the numeric guard
    /// (the replayed epoch starts a fresh loss history). Also emits the
    /// `resilience.rollbacks` Exact counter.
    pub fn record_rollback(&mut self, obs: &mut Obs) {
        self.rollbacks += 1;
        self.guard.reset();
        obs.metrics
            .counter_add("resilience.rollbacks", MetricClass::Exact, 1);
    }

    /// Move to `to` (no-op if already there), recording the transition in
    /// the log, as a zero-duration span under the `resilience` category,
    /// and in the Exact `resilience.state` / `resilience.transitions`
    /// metrics. Zero-duration spans never advance the sim clock, so
    /// arming the supervisor cannot perturb span timestamps.
    pub fn transition(
        &mut self,
        to: HealthState,
        iter: u32,
        epoch: u32,
        cause: impl Into<String>,
        obs: &mut Obs,
    ) {
        if self.state == to {
            return;
        }
        let from = self.state;
        let cause = cause.into();
        let now = obs.clock.now_ns();
        obs.tracer.begin(
            format!("health:{}->{}", from.name(), to.name()),
            "resilience",
            now,
        );
        obs.tracer.end_with(
            now,
            vec![
                ("from", from.code()),
                ("to", to.code()),
                ("iter", iter as u64),
            ],
        );
        obs.metrics
            .counter_add("resilience.transitions", MetricClass::Exact, 1);
        obs.metrics
            .gauge_set("resilience.state", MetricClass::Exact, to.code() as f64);
        self.transitions.push(Transition {
            iter,
            epoch,
            from,
            to,
            cause,
        });
        self.state = to;
    }

    /// Render the transition log as a fixed-width text table (the bench
    /// runners print this under `--resilience`).
    pub fn transition_log(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>6} {:>6} {:>11} {:>11}  {}\n",
            "epoch", "iter", "from", "to", "cause"
        ));
        for t in &self.transitions {
            out.push_str(&format!(
                "{:>6} {:>6} {:>11} {:>11}  {}\n",
                t.epoch,
                t.iter,
                t.from.name(),
                t.to.name(),
                t.cause
            ));
        }
        out
    }

    /// Export the transition log as JSONL stamped with the
    /// `fgnn-obs-v1` schema tag (one header line, then one line per
    /// transition) — byte-identical across same-seed reruns.
    pub fn transitions_jsonl(&self, section: &str) -> String {
        let mut out = format!(
            "{{\"schemaVersion\":\"{}\",\"kind\":\"resilience\",\"section\":\"{}\"}}\n",
            crate::obs::schema::OBS_V1,
            section
        );
        for t in &self.transitions {
            out.push_str(&format!(
                "{{\"epoch\":{},\"iter\":{},\"from\":\"{}\",\"to\":\"{}\",\"cause\":\"{}\"}}\n",
                t.epoch,
                t.iter,
                t.from.name(),
                t.to.name(),
                t.cause
            ));
        }
        out
    }
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor::new(SupervisorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_flags_non_finite_immediately() {
        let mut g = NumericGuard::new(GuardConfig::default());
        assert_eq!(
            g.observe(3, f32::NAN),
            Some(NumericFault::NonFinite { iter: 3 })
        );
        assert_eq!(
            g.observe(4, f32::INFINITY),
            Some(NumericFault::NonFinite { iter: 4 })
        );
        assert_eq!(g.samples(), 0, "faulty losses never enter the window");
    }

    #[test]
    fn guard_flags_spikes_only_after_warmup() {
        let cfg = GuardConfig {
            window: 8,
            z_threshold: 4.0,
            min_samples: 4,
        };
        let mut g = NumericGuard::new(cfg);
        // A wild value during warmup is tolerated (no established stats).
        assert_eq!(g.observe(0, 100.0), None);
        g.reset();
        for i in 0..6u32 {
            assert_eq!(g.observe(i, 1.0 + 0.01 * i as f32), None);
        }
        let fault = g.observe(6, 50.0).expect("spike detected");
        assert!(matches!(fault, NumericFault::LossSpike { iter: 6, .. }));
        assert!(fault.cause().starts_with("loss-spike@6"));
        // The spike is not admitted: the very next sane loss is clean.
        assert_eq!(g.observe(7, 1.05), None);
    }

    #[test]
    fn guard_tolerates_gradual_drift() {
        let mut g = NumericGuard::new(GuardConfig::default());
        // A steadily decreasing loss (normal training) never trips.
        for i in 0..100u32 {
            let loss = 2.0 * (-0.01 * i as f32).exp();
            assert_eq!(g.observe(i, loss), None, "iter {i}");
        }
    }

    #[test]
    fn supervisor_records_transitions_and_is_idempotent() {
        let mut sup = Supervisor::default();
        let mut obs = Obs::new();
        assert_eq!(sup.state(), HealthState::Healthy);
        sup.transition(HealthState::Degraded, 10, 1, "breaker-open", &mut obs);
        sup.transition(HealthState::Degraded, 11, 1, "breaker-open", &mut obs);
        sup.transition(HealthState::Recovering, 12, 1, "rollback", &mut obs);
        sup.transition(HealthState::Healthy, 20, 2, "epoch-clean", &mut obs);
        let ts = sup.transitions();
        assert_eq!(ts.len(), 3, "same-state transition is a no-op");
        assert_eq!(ts[0].from, HealthState::Healthy);
        assert_eq!(ts[0].to, HealthState::Degraded);
        assert_eq!(ts[2].to, HealthState::Healthy);
        let log = sup.transition_log();
        assert!(log.contains("breaker-open"), "{log}");
        assert!(log.contains("recovering"), "{log}");
    }

    #[test]
    fn jsonl_export_is_schema_tagged() {
        let mut sup = Supervisor::default();
        let mut obs = Obs::new();
        sup.transition(HealthState::Degraded, 5, 0, "non-finite-loss@5", &mut obs);
        let doc = sup.transitions_jsonl("chaos");
        assert!(
            doc.starts_with("{\"schemaVersion\":\"fgnn-obs-v1\""),
            "{doc}"
        );
        assert!(doc.contains("\"kind\":\"resilience\""));
        assert!(doc.contains("\"cause\":\"non-finite-loss@5\""));
        assert_eq!(doc.lines().count(), 2);
    }

    #[test]
    fn observed_alerts_are_state_not_behavior() {
        let mut sup = Supervisor::default();
        let mut obs = Obs::new();
        let alert = AlertEvent {
            at_ns: 1_000_000,
            rule: "fast-burn",
            fired: true,
            burn_long: 8.0,
            burn_short: 9.5,
            windowed_p99_ns: 2_500_000,
        };
        sup.observe_alert(&alert, &mut obs);
        assert_eq!(sup.alerts_observed(), 1);
        assert_eq!(sup.last_alert(), Some(&alert));
        assert_eq!(
            sup.state(),
            HealthState::Healthy,
            "alerts never transition the state machine by themselves"
        );
        assert!(sup.transitions().is_empty());
        assert_eq!(
            obs.metrics.counter("resilience.slo.alerts_observed"),
            Some(1)
        );
        assert_eq!(obs.metrics.gauge("resilience.slo.firing"), Some(1.0));
        let resolve = AlertEvent {
            fired: false,
            ..alert
        };
        sup.observe_alert(&resolve, &mut obs);
        assert_eq!(obs.metrics.gauge("resilience.slo.firing"), Some(0.0));
        assert_eq!(sup.alerts_observed(), 2);
    }

    #[test]
    fn rollback_budget_is_enforced() {
        let mut sup = Supervisor::new(SupervisorConfig {
            max_rollbacks: 2,
            guard: GuardConfig::default(),
        });
        let mut obs = Obs::new();
        assert!(sup.can_roll_back());
        sup.record_rollback(&mut obs);
        sup.record_rollback(&mut obs);
        assert!(!sup.can_roll_back());
        assert_eq!(sup.rollbacks(), 2);
    }
}
