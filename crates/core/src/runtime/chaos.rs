//! Seeded schedule perturbation for the work-stealing runtime.
//!
//! The determinism claim of this runtime is *schedule independence*: the
//! committed batch stream, Exact metrics and span trees are byte-identical
//! no matter which worker runs which task in which order. A claim like
//! that is only worth anything if tests can drive the scheduler through
//! genuinely adversarial schedules, so [`ChaosPolicy`] injects three kinds
//! of seeded misbehaviour *into the scheduling decisions only*:
//!
//! * **forced steals** — a worker steals from a victim even though its own
//!   deque is non-empty, scrambling locality;
//! * **delayed pops** — a worker sleeps briefly before taking its next
//!   task, perturbing the race between owners and thieves;
//! * **worker stalls** — a worker sleeps mid-loop, simulating an OS-level
//!   preemption or a straggling core (the thing hedging exists for).
//!
//! Task *results* are never touched: chaos changes who computes a batch
//! and when, never what the batch contains. Each worker decides from its
//! own `Rng::new(seed ^ worker)` stream, so a chaos schedule is itself
//! reproducible for debugging, while still differing across workers.

use fgnn_tensor::Rng;
use std::time::Duration;

/// Tunable probabilities for adversarial scheduling. All probabilities
/// are evaluated once per scheduling decision.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPolicy {
    /// Seed for the per-worker decision streams (worker `w` draws from
    /// `Rng::new(seed ^ w)`).
    pub seed: u64,
    /// Probability that a worker steals from a victim before looking at
    /// its own deque.
    pub forced_steal_prob: f32,
    /// Probability that a pop is preceded by a short random sleep.
    pub delayed_pop_prob: f32,
    /// Probability that a worker stalls (sleeps `max_delay_micros`)
    /// before its next scheduling decision.
    pub stall_prob: f32,
    /// Upper bound on injected sleeps, in microseconds.
    pub max_delay_micros: u64,
}

impl ChaosPolicy {
    /// An aggressive preset for the schedule-fuzzing suite: frequent
    /// forced steals and delays, occasional full stalls, sleeps short
    /// enough to keep 256-case property runs fast.
    pub fn aggressive(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            forced_steal_prob: 0.5,
            delayed_pop_prob: 0.3,
            stall_prob: 0.1,
            max_delay_micros: 200,
        }
    }
}

/// Per-worker chaos decision stream. Lives on the worker thread.
#[derive(Debug)]
pub(crate) struct ChaosRng {
    rng: Rng,
    policy: ChaosPolicy,
}

impl ChaosRng {
    pub(crate) fn new(policy: ChaosPolicy, worker: u64) -> Self {
        ChaosRng {
            rng: Rng::new(policy.seed ^ worker),
            policy,
        }
    }

    /// Should this scheduling decision steal before popping locally?
    pub(crate) fn force_steal(&mut self) -> bool {
        self.policy.forced_steal_prob > 0.0 && self.rng.bernoulli(self.policy.forced_steal_prob)
    }

    /// Sleep to inject before the next pop, if any.
    pub(crate) fn pop_delay(&mut self) -> Option<Duration> {
        if self.policy.delayed_pop_prob > 0.0 && self.rng.bernoulli(self.policy.delayed_pop_prob) {
            let us = self.rng.below(self.policy.max_delay_micros.max(1) as usize) as u64;
            Some(Duration::from_micros(us))
        } else {
            None
        }
    }

    /// Full-loop stall to inject, if any.
    pub(crate) fn stall(&mut self) -> Option<Duration> {
        if self.policy.stall_prob > 0.0 && self.rng.bernoulli(self.policy.stall_prob) {
            Some(Duration::from_micros(self.policy.max_delay_micros.max(1)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_streams_are_reproducible_per_worker() {
        let policy = ChaosPolicy::aggressive(99);
        let decisions = |worker: u64| {
            let mut c = ChaosRng::new(policy, worker);
            (0..64)
                .map(|_| {
                    (
                        c.force_steal(),
                        c.pop_delay().is_some(),
                        c.stall().is_some(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(0), decisions(0), "same worker → same stream");
        assert_ne!(decisions(0), decisions(1), "workers draw distinct streams");
    }

    #[test]
    fn zero_probabilities_are_silent() {
        let policy = ChaosPolicy {
            seed: 1,
            forced_steal_prob: 0.0,
            delayed_pop_prob: 0.0,
            stall_prob: 0.0,
            max_delay_micros: 100,
        };
        let mut c = ChaosRng::new(policy, 0);
        for _ in 0..32 {
            assert!(!c.force_steal());
            assert!(c.pop_delay().is_none());
            assert!(c.stall().is_none());
        }
    }

    #[test]
    fn delays_respect_the_bound() {
        let mut c = ChaosRng::new(ChaosPolicy::aggressive(7), 3);
        for _ in 0..256 {
            if let Some(d) = c.pop_delay() {
                assert!(d <= Duration::from_micros(200));
            }
        }
    }
}
