//! Per-worker task deque for the work-stealing runtime.
//!
//! The owner treats the **back** of the `VecDeque` as the "bottom": it
//! pushes and pops there (LIFO for the owner). Thieves take from the
//! **front** ("top") and always take *half* of what they see
//! (`steal_half`), which amortises lock traffic and keeps victims busy.
//!
//! Seeding discipline: callers load a chunk of ascending batch indexes in
//! *reverse* order (largest first), so the owner's `pop_bottom` yields the
//! *smallest* outstanding index first — exactly what the in-order commit
//! stage downstream wants — while thieves walk away with the largest
//! (far-future) indexes, whose results the consumer will not block on for
//! a while. A `Mutex<VecDeque>` is deliberately boring: the offline tier-1
//! gate forbids registry crates, batches are coarse-grained (a sampling
//! task is ~10⁵ RNG draws), and a boring lock is trivially correct under
//! the schedule-fuzzing suite.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A single worker's deque of task indexes.
#[derive(Debug, Default)]
pub struct WorkerDeque {
    inner: Mutex<VecDeque<usize>>,
}

impl WorkerDeque {
    /// Create an empty deque.
    pub fn new() -> Self {
        WorkerDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner-side push onto the bottom (back).
    pub fn push_bottom(&self, task: usize) {
        self.inner.lock().expect("deque poisoned").push_back(task);
    }

    /// Owner-side pop from the bottom (back).
    pub fn pop_bottom(&self) -> Option<usize> {
        self.inner.lock().expect("deque poisoned").pop_back()
    }

    /// Thief-side steal: drain the top (front) half — `ceil(len / 2)`
    /// tasks — in top-to-bottom order. Empty vec when there was nothing
    /// to steal.
    pub fn steal_half(&self) -> Vec<usize> {
        let mut q = self.inner.lock().expect("deque poisoned");
        let take = q.len().div_ceil(2);
        q.drain(..take).collect()
    }

    /// Number of queued tasks (snapshot; racy by nature).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// Whether the deque is currently empty (snapshot; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("deque poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_from_bottom() {
        let d = WorkerDeque::new();
        // Reverse-seeded chunk: push 3,2,1,0 → owner pops ascending.
        for t in (0..4).rev() {
            d.push_bottom(t);
        }
        assert_eq!(d.pop_bottom(), Some(0));
        assert_eq!(d.pop_bottom(), Some(1));
        d.push_bottom(9);
        assert_eq!(d.pop_bottom(), Some(9), "owner is LIFO over its own pushes");
        assert_eq!(d.pop_bottom(), Some(2));
        assert_eq!(d.pop_bottom(), Some(3));
        assert_eq!(d.pop_bottom(), None);
    }

    #[test]
    fn thief_steals_top_half() {
        let d = WorkerDeque::new();
        for t in (0..5).rev() {
            d.push_bottom(t); // front→back = [4,3,2,1,0]
        }
        let got = d.steal_half();
        assert_eq!(
            got,
            vec![4, 3, 2],
            "ceil(5/2)=3 from the top, far-future first"
        );
        assert_eq!(d.len(), 2);
        assert_eq!(
            d.pop_bottom(),
            Some(0),
            "owner still sees the nearest index"
        );
    }

    #[test]
    fn steal_from_empty_is_empty() {
        let d = WorkerDeque::new();
        assert!(d.steal_half().is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn steal_of_one_takes_it_all() {
        let d = WorkerDeque::new();
        d.push_bottom(7);
        assert_eq!(d.steal_half(), vec![7]);
        assert!(d.is_empty());
    }
}
