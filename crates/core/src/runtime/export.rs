//! Worker-scaling export: the compact `fgnn-train-v1` JSON that
//! `exp_train_scaling --bench-json` writes and
//! `scripts/bench_trajectory.sh` commits as `BENCH_train.json`.
//!
//! Hand-rolled like the other exporters (zero registry dependencies). The
//! gated fields (`meanLoss`, `h2dBytes`, `simSeconds`) are exact simulated
//! quantities: the work-stealing runtime commits batches in index order, so
//! they reproduce bit for bit from the same seed at *any* worker count.
//! `wallSeconds` and `steals` are measured schedule artifacts, recorded as
//! context only — `exp_report` never gates on them.

use crate::obs::export::{json_escape, json_f64};

/// Schema tag stamped into the export (and grepped by `scripts/ci.sh`
/// against the committed `BENCH_train.json`). Alias of
/// [`crate::obs::schema::TRAIN_V1`].
pub const TRAIN_SCHEMA_VERSION: &str = crate::obs::schema::TRAIN_V1;

/// One cell of the training worker-scaling sweep: a (dataset, worker
/// count) point of the fig 10 epoch-time experiment on the async runtime.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainScalingRow {
    /// Dataset label (e.g. `"papers100m"`).
    pub dataset: String,
    /// Runtime worker threads the epochs ran with.
    pub workers: usize,
    /// Final-epoch mean mini-batch loss (exact; worker-count invariant).
    pub mean_loss: f64,
    /// Total host-to-device feature bytes (exact; worker-count invariant).
    pub h2d_bytes: u64,
    /// Simulated GPU-stream seconds: transfer + retry + compute. Exact and
    /// worker-count invariant — deliberately excludes the *measured*
    /// sample/prune wall components of the full ledger.
    pub sim_seconds: f64,
    /// Measured wall seconds for the whole cell (context only; this is the
    /// quantity the 1→4 worker sweep is expected to shrink).
    pub wall_seconds: f64,
    /// Work-stealing steal operations observed (context only; a schedule
    /// artifact that varies run to run).
    pub steals: u64,
}

/// Serialize the sweep as one deterministic JSON document. Row order is
/// preserved (callers sweep datasets and worker counts in a fixed order),
/// so the gated fields reproduce byte-identically from the same seed.
pub fn train_bench_json(seed: u64, rows: &[TrainScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schemaVersion\":\"{TRAIN_SCHEMA_VERSION}\",\"seed\":{seed},\"rows\":["
    ));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"dataset\":\"{}\",\"workers\":{},\"meanLoss\":{},\"h2dBytes\":{},\
             \"simSeconds\":{},\"wallSeconds\":{},\"steals\":{}}}",
            json_escape(&r.dataset),
            r.workers,
            json_f64(r.mean_loss),
            r.h2d_bytes,
            json_f64(r.sim_seconds),
            json_f64(r.wall_seconds),
            r.steals,
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> TrainScalingRow {
        TrainScalingRow {
            dataset: "papers100m".into(),
            workers: 4,
            mean_loss: 1.25,
            h2d_bytes: 4096,
            sim_seconds: 0.5,
            wall_seconds: 0.125,
            steals: 3,
        }
    }

    #[test]
    fn export_carries_schema_tag_and_seed() {
        let doc = train_bench_json(42, &[row()]);
        assert!(doc.contains("\"schemaVersion\":\"fgnn-train-v1\""));
        assert!(doc.contains("\"seed\":42"));
        assert!(doc.contains("\"dataset\":\"papers100m\""));
        assert!(doc.contains("\"workers\":4"));
        assert!(doc.contains("\"h2dBytes\":4096"));
        assert!(doc.ends_with("]}\n"));
    }

    #[test]
    fn export_is_deterministic_and_order_preserving() {
        let mut second = row();
        second.workers = 8;
        let rows = [row(), second];
        let a = train_bench_json(7, &rows);
        let b = train_bench_json(7, &rows);
        assert_eq!(a, b);
        let w4 = a.find("\"workers\":4").unwrap();
        let w8 = a.find("\"workers\":8").unwrap();
        assert!(w4 < w8, "row order preserved");
    }

    #[test]
    fn empty_sweep_is_valid_json_shell() {
        let doc = train_bench_json(1, &[]);
        assert_eq!(
            doc,
            "{\"schemaVersion\":\"fgnn-train-v1\",\"seed\":1,\"rows\":[]}\n"
        );
    }

    #[test]
    fn gated_floats_round_trip_through_the_json_parser() {
        let mut r = row();
        r.mean_loss = 1.0 / 3.0;
        r.sim_seconds = 2.0816e-3_f64;
        let doc = train_bench_json(9, &[r.clone()]);
        let parsed = crate::obs::parse_json(&doc).expect("valid JSON");
        let rows = parsed.get("rows").and_then(|v| v.as_array()).unwrap();
        let loss = rows[0].get("meanLoss").and_then(|v| v.as_f64()).unwrap();
        let sim = rows[0].get("simSeconds").and_then(|v| v.as_f64()).unwrap();
        assert_eq!(loss.to_bits(), r.mean_loss.to_bits());
        assert_eq!(sim.to_bits(), r.sim_seconds.to_bits());
    }
}
