//! Global FIFO injector queue for the work-stealing runtime.
//!
//! All tasks enter here at spawn time in index order. Workers refill their
//! local deques from the injector in *chunks* (`pop_chunk`), which keeps
//! injector lock traffic at `O(total / chunk)` and hands every worker a
//! contiguous ascending run of batch indexes — the shape the reorder
//! buffer downstream digests with minimal depth.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Global FIFO of not-yet-claimed task indexes.
#[derive(Debug, Default)]
pub struct Injector {
    inner: Mutex<VecDeque<usize>>,
}

impl Injector {
    /// Create an empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue `task` at the tail.
    pub fn push(&self, task: usize) {
        self.inner
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Dequeue up to `n` tasks from the head, in FIFO (ascending) order.
    pub fn pop_chunk(&self, n: usize) -> Vec<usize> {
        let mut q = self.inner.lock().expect("injector poisoned");
        let take = n.min(q.len());
        q.drain(..take).collect()
    }

    /// Number of queued tasks (snapshot; racy by nature).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("injector poisoned").len()
    }

    /// Whether the injector is currently empty (snapshot; racy by nature).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("injector poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_pop_fifo_in_order() {
        let inj = Injector::new();
        for t in 0..7 {
            inj.push(t);
        }
        assert_eq!(inj.pop_chunk(3), vec![0, 1, 2]);
        assert_eq!(inj.pop_chunk(3), vec![3, 4, 5]);
        assert_eq!(inj.pop_chunk(3), vec![6], "short final chunk");
        assert!(inj.pop_chunk(3).is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let inj = Injector::new();
        assert_eq!(inj.len(), 0);
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        inj.pop_chunk(1);
        assert_eq!(inj.len(), 1);
    }
}
