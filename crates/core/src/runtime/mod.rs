//! In-tree work-stealing task runtime (ROADMAP item 2, DESIGN.md §13).
//!
//! The paper's pipeline wins come from overlapping CPU sampling, cache
//! pruning and feature loading with GPU compute across *different*
//! batches. This module supplies the execution substrate: a [`Pool`] of
//! worker threads scheduling a fixed set of index-addressed tasks through
//!
//! * a global FIFO [`injector::Injector`] that tasks enter in index order,
//! * per-worker LIFO deques ([`deque::WorkerDeque`]) refilled from the
//!   injector in ascending chunks, with thieves taking the *top half* of a
//!   victim (the far-future indexes the consumer will not block on soon),
//! * token [`parker::Parker`]s for idle/wake, with the lost-wakeup-free
//!   protocol "make work visible, then unpark everyone",
//! * per-worker panic recovery with bounded retries and state rebuild —
//!   the fault model the `AsyncSampler` already proved out.
//!
//! **Determinism contract.** The scheduler never decides *what* a task
//! computes, only *where and when*: every task derives its RNG from
//! `(seed, index)` alone, and consumers commit results through
//! [`OrderedCommit`] (in-order, first-wins). Hence the committed stream,
//! all `Exact` metrics and span trees are byte-identical at any worker
//! count and under any schedule — including the seeded adversarial ones
//! [`ChaosPolicy`] injects. Scheduling artifacts (steals, parks, latency,
//! queue depth) are real and exported, but only ever as `Measured`.
//!
//! No registry dependencies: everything is `std::sync` primitives, per
//! the offline tier-1 gate.

pub mod chaos;
pub mod deque;
pub mod export;
pub mod injector;
pub mod ordered;
pub mod parker;

pub use chaos::ChaosPolicy;
pub use export::{train_bench_json, TrainScalingRow};
pub use ordered::OrderedCommit;

use crate::chan::{bounded, Receiver, RecvError, RecvTimeoutError, Sender};
use crate::obs::{Histogram, LATENCY_BUCKETS};
use chaos::ChaosRng;
use deque::WorkerDeque;
use injector::Injector;
use parker::Parker;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Pool construction parameters.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker threads (min 1).
    pub workers: usize,
    /// Bound on finished-but-unconsumed results (the paper's GPU-memory
    /// guard; maps to the result channel capacity).
    pub queue_capacity: usize,
    /// Extra attempts after a task panics before reporting
    /// [`TaskError::Panicked`].
    pub max_retries: u32,
    /// How many tasks a worker pulls from the injector per refill.
    pub refill_chunk: usize,
    /// Seeded adversarial scheduling, for the fuzzing suite. `None` in
    /// production.
    pub chaos: Option<ChaosPolicy>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 1,
            queue_capacity: 4,
            max_retries: 2,
            refill_chunk: 4,
            chaos: None,
        }
    }
}

/// Why a task produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskError {
    /// Task `index` panicked on every one of `attempts` attempts.
    Panicked {
        /// Index of the failing task.
        index: usize,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// The pool's workers died before producing every result (defensive:
    /// synthesized by consumers on channel disconnect, never sent by a
    /// worker).
    Lost {
        /// Results committed before the loss was detected.
        produced: usize,
        /// Results that were expected.
        total: usize,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked { index, attempts } => {
                write!(f, "task {index} panicked on all {attempts} attempts")
            }
            TaskError::Lost { produced, total } => {
                write!(f, "workers lost after {produced}/{total} results")
            }
        }
    }
}

/// Scheduling/latency counters for one pool run. Every field is a
/// wall-clock or schedule artifact: export as `Measured`, never `Exact`.
#[derive(Clone, Debug)]
pub struct RuntimeObsReport {
    /// Successful task executions per worker.
    pub worker_tasks: Vec<u64>,
    /// Wall-clock nanoseconds spent inside task attempts, per worker.
    pub worker_task_nanos: Vec<u64>,
    /// Per-attempt task latency in seconds.
    pub task_seconds: Histogram,
    /// Extra attempts spent recovering from task panics.
    pub retries: u64,
    /// Successful steal operations (each moves ≥ 1 task).
    pub steals: u64,
    /// Tasks moved by steals.
    pub stolen_tasks: u64,
    /// Idle episodes in which a worker parked.
    pub parks: u64,
}

/// Shared scheduler state. Task payloads stay out of here (they live in
/// an `Arc<Vec<T>>` inside the worker closures), so the scheduling core
/// is monomorphization-free.
struct Shared {
    injector: Injector,
    deques: Vec<WorkerDeque>,
    parkers: Vec<Parker>,
    shutdown: AtomicBool,
    refill_chunk: usize,
    obs: PoolObs,
}

struct PoolObs {
    tasks: Vec<AtomicU64>,
    task_nanos: Vec<AtomicU64>,
    latency_counts: Vec<AtomicU64>,
    retries: AtomicU64,
    steals: AtomicU64,
    stolen_tasks: AtomicU64,
    parks: AtomicU64,
}

impl PoolObs {
    fn new(workers: usize) -> Self {
        PoolObs {
            tasks: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            task_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            latency_counts: (0..=LATENCY_BUCKETS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            retries: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            stolen_tasks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }

    fn record_attempt(&self, worker: usize, nanos: u64) {
        self.task_nanos[worker].fetch_add(nanos, Ordering::Relaxed);
        let secs = nanos as f64 * 1e-9;
        let b = LATENCY_BUCKETS
            .iter()
            .position(|&edge| secs <= edge)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_counts[b].fetch_add(1, Ordering::Relaxed);
    }
}

impl Shared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Work any worker could go get right now. Movement windows (tasks in
    /// a thief's hands between two locks) are invisible here — that is
    /// fine, because every such move ends by making its surplus visible
    /// and then unparking everyone.
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.deques.iter().any(|d| !d.is_empty())
    }

    /// Wake every worker. Called after any action that makes tasks
    /// visible; tokens ensure a worker that was *about* to park re-checks
    /// instead of sleeping (see `parker` module docs).
    fn unpark_all(&self) {
        for p in &self.parkers {
            p.unpark();
        }
    }

    /// Pick worker `w`'s next task: own deque, then an injector refill,
    /// then stealing — with chaos optionally scrambling the order.
    fn next_task(&self, w: usize, chaos: &mut Option<ChaosRng>) -> Option<usize> {
        if let Some(c) = chaos.as_mut() {
            if c.force_steal() {
                if let Some(t) = self.steal_into(w) {
                    return Some(t);
                }
            }
            if let Some(d) = c.pop_delay() {
                std::thread::sleep(d);
            }
        }
        if let Some(t) = self.deques[w].pop_bottom() {
            return Some(t);
        }
        let chunk = self.injector.pop_chunk(self.refill_chunk.max(1));
        if !chunk.is_empty() {
            let first = chunk[0];
            // Reverse-seed the rest: owner pops ascending, thieves see the
            // largest indexes at the top.
            for &t in chunk[1..].iter().rev() {
                self.deques[w].push_bottom(t);
            }
            if chunk.len() > 1 || !self.injector.is_empty() {
                self.unpark_all();
            }
            return Some(first);
        }
        self.steal_into(w)
    }

    /// Steal the top half of the first non-empty victim clockwise from
    /// `w`. Runs the nearest stolen index now; queues the rest. A forced
    /// steal into a non-empty deque scrambles the owner's ascending order
    /// — harmless, the ordered commit downstream re-sorts.
    fn steal_into(&self, w: usize) -> Option<usize> {
        let n = self.deques.len();
        for off in 1..n {
            let v = (w + off) % n;
            let got = self.deques[v].steal_half();
            if got.is_empty() {
                continue;
            }
            self.obs.steals.fetch_add(1, Ordering::Relaxed);
            self.obs
                .stolen_tasks
                .fetch_add(got.len() as u64, Ordering::Relaxed);
            // `got` is top-to-bottom (descending index): execute the
            // nearest-to-commit index, keep the far future stealable.
            let task = *got.last().expect("non-empty steal");
            for &t in &got[..got.len() - 1] {
                self.deques[w].push_bottom(t);
            }
            if got.len() > 1 {
                self.unpark_all();
            }
            return Some(task);
        }
        None
    }
}

/// Handle to a running pool. Results arrive over a bounded channel as
/// `(index, Result)`; consumers are expected to feed them through an
/// [`OrderedCommit`]. Dropping the pool shuts it down promptly: workers
/// stop claiming tasks, abandon retry loops, and are joined.
pub struct Pool<R> {
    /// `Some` while running; taken in `Drop` so blocked producers see a
    /// disconnected channel and exit instead of deadlocking the join.
    rx: Option<Receiver<(usize, Result<R, TaskError>)>>,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    total: usize,
}

impl<R: Send + 'static> Pool<R> {
    /// Spawn `cfg.workers` threads executing `exec` over every task in
    /// `tasks` exactly once (bar panic retries). `init` builds one
    /// worker-local scratch state per worker, rebuilt after a panic (the
    /// panic may have poisoned it). `exec` receives
    /// `(state, index, &task, attempt)` and must derive any randomness
    /// from `index` alone for the determinism contract to hold.
    pub fn spawn<T, S, I, E>(cfg: &RuntimeConfig, tasks: Vec<T>, init: I, exec: E) -> Pool<R>
    where
        T: Send + Sync + 'static,
        I: Fn() -> S + Send + Sync + 'static,
        E: Fn(&mut S, usize, &T, u32) -> R + Send + Sync + 'static,
    {
        let workers = cfg.workers.max(1);
        let total = tasks.len();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            deques: (0..workers).map(|_| WorkerDeque::new()).collect(),
            parkers: (0..workers).map(|_| Parker::new()).collect(),
            shutdown: AtomicBool::new(false),
            refill_chunk: cfg.refill_chunk.max(1),
            obs: PoolObs::new(workers),
        });
        // Seed every task before any worker starts, in index order.
        for i in 0..total {
            shared.injector.push(i);
        }
        let (tx, rx) = bounded(cfg.queue_capacity.max(1));
        let tasks = Arc::new(tasks);
        let init = Arc::new(init);
        let exec = Arc::new(exec);
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let tasks = Arc::clone(&tasks);
                let init = Arc::clone(&init);
                let exec = Arc::clone(&exec);
                let tx = tx.clone();
                let chaos = cfg.chaos.map(|p| ChaosRng::new(p, w as u64));
                let max_retries = cfg.max_retries;
                std::thread::spawn(move || {
                    worker_loop(w, &shared, &tasks, &*init, &*exec, &tx, chaos, max_retries)
                })
            })
            .collect();
        drop(tx);
        Pool {
            rx: Some(rx),
            handles,
            shared,
            total,
        }
    }
}

impl<R> Pool<R> {
    /// Number of tasks this pool will produce results for.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Block for the next completed result. Errs once all workers are
    /// gone and the buffer is drained.
    pub fn recv(&self) -> Result<(usize, Result<R, TaskError>), RecvError> {
        self.rx.as_ref().expect("pool running").recv()
    }

    /// [`Pool::recv`] with a deadline (the straggler-detection primitive
    /// hedging is built on).
    pub fn recv_timeout(
        &self,
        dur: Duration,
    ) -> Result<(usize, Result<R, TaskError>), RecvTimeoutError> {
        self.rx.as_ref().expect("pool running").recv_timeout(dur)
    }

    /// Snapshot the scheduling counters (callable mid-run; individually
    /// consistent, momentarily stale).
    pub fn obs_report(&self) -> RuntimeObsReport {
        let o = &self.shared.obs;
        let load = |v: &Vec<AtomicU64>| -> Vec<u64> {
            v.iter().map(|a| a.load(Ordering::Relaxed)).collect()
        };
        let worker_task_nanos = load(&o.task_nanos);
        let latency_counts = load(&o.latency_counts);
        let total_secs = worker_task_nanos.iter().sum::<u64>() as f64 * 1e-9;
        RuntimeObsReport {
            worker_tasks: load(&o.tasks),
            worker_task_nanos,
            task_seconds: Histogram::from_parts(&LATENCY_BUCKETS, &latency_counts, total_secs),
            retries: o.retries.load(Ordering::Relaxed),
            steals: o.steals.load(Ordering::Relaxed),
            stolen_tasks: o.stolen_tasks.load(Ordering::Relaxed),
            parks: o.parks.load(Ordering::Relaxed),
        }
    }
}

impl<R> Drop for Pool<R> {
    fn drop(&mut self) {
        // Raise the flag (workers stop claiming and bail out of retry
        // loops), wake every parked worker so it observes the flag,
        // disconnect the channel so producers blocked in `send` error
        // out, then join. Order matters — see AsyncSampler's Drop.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.unpark_all();
        drop(self.rx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T, S, R>(
    w: usize,
    shared: &Shared,
    tasks: &[T],
    init: &(impl Fn() -> S + Sync),
    exec: &(impl Fn(&mut S, usize, &T, u32) -> R + Sync),
    tx: &Sender<(usize, Result<R, TaskError>)>,
    mut chaos: Option<ChaosRng>,
    max_retries: u32,
) {
    let mut state = init();
    loop {
        if shared.stopping() {
            return;
        }
        if let Some(c) = chaos.as_mut() {
            if let Some(d) = c.stall() {
                std::thread::sleep(d);
            }
        }
        let i = match shared.next_task(w, &mut chaos) {
            Some(i) => i,
            None => {
                // Idle: park until someone makes work visible or shuts us
                // down. Tokens set after the last visibility edge make the
                // first park a no-op, so this re-check loop cannot miss
                // work (the shrunk-model test exercises exactly this).
                shared.obs.parks.fetch_add(1, Ordering::Relaxed);
                loop {
                    if shared.stopping() {
                        return;
                    }
                    if shared.has_visible_work() {
                        break;
                    }
                    shared.parkers[w].park();
                }
                continue;
            }
        };
        let mut produced = None;
        let mut attempts = 0;
        while attempts <= max_retries {
            if shared.stopping() {
                return; // consumer gone mid-retry-loop
            }
            attempts += 1;
            let attempt = attempts - 1;
            let t0 = std::time::Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| exec(&mut state, i, &tasks[i], attempt)));
            shared.obs.record_attempt(w, t0.elapsed().as_nanos() as u64);
            match out {
                Ok(r) => {
                    shared.obs.tasks[w].fetch_add(1, Ordering::Relaxed);
                    produced = Some(r);
                    break;
                }
                Err(_) => {
                    shared.obs.retries.fetch_add(1, Ordering::Relaxed);
                    // The panic may have left the scratch state
                    // inconsistent; rebuild it.
                    state = init();
                }
            }
        }
        let msg = match produced {
            Some(r) => Ok(r),
            None => Err(TaskError::Panicked { index: i, attempts }),
        };
        if tx.send((i, msg)).is_err() {
            return; // consumer dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::atomic::AtomicUsize;

    fn drain<R>(pool: &Pool<R>) -> Vec<(usize, Result<R, TaskError>)> {
        let mut oc = OrderedCommit::new(pool.total());
        let mut out = Vec::new();
        while !oc.is_done() {
            let (i, r) = pool.recv().expect("workers alive");
            oc.offer(i, r);
            while let Some(x) = oc.try_commit() {
                out.push(x);
            }
        }
        out
    }

    #[test]
    fn every_task_runs_exactly_once_in_any_config() {
        for workers in [1, 2, 4, 8] {
            for chunk in [1, 3, 8] {
                let cfg = RuntimeConfig {
                    workers,
                    queue_capacity: 4,
                    refill_chunk: chunk,
                    ..RuntimeConfig::default()
                };
                let pool =
                    Pool::spawn(&cfg, (0..37u64).collect(), || (), |_, i, t, _| t + i as u64);
                let got = drain(&pool);
                assert_eq!(got.len(), 37);
                for (i, r) in got {
                    assert_eq!(r.unwrap(), 2 * i as u64);
                }
                let obs = pool.obs_report();
                assert_eq!(obs.worker_tasks.iter().sum::<u64>(), 37);
                assert_eq!(obs.task_seconds.count(), 37);
            }
        }
    }

    #[test]
    fn blocked_owner_gets_robbed() {
        // Worker A grabs the whole chunk and blocks inside task 0 until
        // some *other* task has run — which can only happen if worker B
        // steals from A's deque.
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let cfg = RuntimeConfig {
            workers: 2,
            queue_capacity: 8,
            refill_chunk: 8,
            ..RuntimeConfig::default()
        };
        let t0 = std::time::Instant::now();
        let pool = Pool::spawn(
            &cfg,
            vec![(); 8],
            || (),
            move |_, i, _, _| {
                if i == 0 {
                    while !f2.load(Ordering::Relaxed) {
                        assert!(
                            t0.elapsed() < Duration::from_secs(10),
                            "steal never happened"
                        );
                        std::thread::yield_now();
                    }
                } else {
                    f2.store(true, Ordering::Relaxed);
                }
                i
            },
        );
        let got = drain(&pool);
        assert_eq!(got.len(), 8);
        let obs = pool.obs_report();
        assert!(obs.steals >= 1, "victim's surplus must have been stolen");
        assert!(obs.stolen_tasks >= 1);
    }

    #[test]
    fn transient_panic_is_retried_on_rebuilt_state() {
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        let inits = Arc::new(AtomicU32::new(0));
        let i2 = Arc::clone(&inits);
        let cfg = RuntimeConfig {
            workers: 2,
            max_retries: 2,
            ..RuntimeConfig::default()
        };
        let pool = Pool::spawn(
            &cfg,
            vec![(); 6],
            move || i2.fetch_add(1, Ordering::Relaxed),
            move |_, i, _, attempt| {
                if i == 3 && attempt == 0 {
                    h2.fetch_add(1, Ordering::Relaxed);
                    panic!("transient");
                }
                i
            },
        );
        let got = drain(&pool);
        assert_eq!(got.len(), 6);
        assert!(got.iter().all(|(i, r)| *r.as_ref().unwrap() == *i));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let obs = pool.obs_report();
        assert_eq!(obs.retries, 1);
        assert!(
            inits.load(Ordering::Relaxed) >= 3,
            "panic rebuilds the worker state beyond the 2 spawn-time inits"
        );
    }

    #[test]
    fn persistent_panic_reports_the_failing_index() {
        let cfg = RuntimeConfig {
            workers: 2,
            max_retries: 1,
            ..RuntimeConfig::default()
        };
        let pool = Pool::spawn(
            &cfg,
            vec![(); 5],
            || (),
            |_, i, _, _| {
                if i == 3 {
                    panic!("persistent");
                }
                i
            },
        );
        let got = drain(&pool);
        assert_eq!(
            got[3].1,
            Err(TaskError::Panicked {
                index: 3,
                attempts: 2
            })
        );
        assert_eq!(got.iter().filter(|(_, r)| r.is_ok()).count(), 4);
    }

    #[test]
    fn drop_mid_run_joins_promptly_and_leaks_no_tasks() {
        let executed = Arc::new(AtomicUsize::new(0));
        let e2 = Arc::clone(&executed);
        let cfg = RuntimeConfig {
            workers: 2,
            queue_capacity: 1,
            ..RuntimeConfig::default()
        };
        let pool = Pool::spawn(
            &cfg,
            vec![(); 100],
            || (),
            move |_, i, _, _| {
                e2.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
                i
            },
        );
        let _ = pool.recv().unwrap();
        let t0 = std::time::Instant::now();
        drop(pool); // workers blocked in send/sleep must exit promptly
        assert!(t0.elapsed() < Duration::from_secs(2));
        let after = executed.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            executed.load(Ordering::Relaxed),
            after,
            "no worker survived the drop"
        );
        assert!(after < 100, "drop preempted the run");
    }

    #[test]
    fn surplus_workers_park_and_shut_down_cleanly() {
        let cfg = RuntimeConfig {
            workers: 8,
            refill_chunk: 8,
            ..RuntimeConfig::default()
        };
        let pool = Pool::spawn(&cfg, vec![(); 3], || (), |_, i, _, _| i);
        let got = drain(&pool);
        assert_eq!(got.len(), 3);
        // Give idle workers a moment to reach their parkers, then drop.
        std::thread::sleep(Duration::from_millis(20));
        let obs = pool.obs_report();
        assert!(obs.parks >= 1, "surplus workers parked");
        drop(pool);
    }

    #[test]
    fn chaos_scrambles_the_schedule_but_not_the_results() {
        let cfg = RuntimeConfig {
            workers: 4,
            queue_capacity: 4,
            refill_chunk: 4,
            chaos: Some(ChaosPolicy::aggressive(7)),
            ..RuntimeConfig::default()
        };
        let pool = Pool::spawn(&cfg, (0..25u64).collect(), || (), |_, _, t, _| t * 3);
        let got = drain(&pool);
        assert_eq!(got.len(), 25);
        for (i, r) in got {
            assert_eq!(r.unwrap(), 3 * i as u64);
        }
    }
}
