//! In-order first-wins commit: the determinism half of the runtime.
//!
//! Workers complete tasks in whatever order stealing, chaos and the OS
//! produce. [`OrderedCommit`] is the reorder buffer that turns that
//! free-for-all back into the canonical stream: results are `offer`ed by
//! task index, buffered in a min-heap, and released strictly in index
//! order by `try_commit`. The *first* result to arrive for an index wins;
//! any later duplicate (a straggler whose batch was hedged inline, or a
//! chaos-delayed copy) is counted and dropped. First-wins is structural:
//! every offer carries an arrival stamp and ties on index resolve to the
//! earliest offer, so the guarantee holds even for copies buffered before
//! their index commits. In the runtime a duplicate is additionally
//! bitwise-identical to the winner — same `(seed, index)` RNG — so
//! resolution can never change the committed stream, only the `discards`
//! counter (a `Measured` quantity).
//!
//! The observed reorder-buffer depth is folded into a queue-depth
//! histogram at every commit, giving `obs` the backpressure signal the
//! paper's bounded task queue is about.

use crate::obs::{Histogram, QUEUE_DEPTH_BUCKETS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reorder buffer releasing results in ascending index order, first-wins.
#[derive(Debug)]
pub struct OrderedCommit<R> {
    heap: BinaryHeap<Slot<R>>,
    next: usize,
    total: usize,
    /// Arrival stamp: ties on index resolve to the earliest offer, making
    /// "first wins" hold even between copies buffered before their index
    /// commits (a bare `BinaryHeap` leaves equal-key pop order
    /// unspecified).
    seq: u64,
    discards: u64,
    queue_depth: Histogram,
}

struct Slot<R>(Reverse<(usize, u64)>, R);

impl<R> PartialEq for Slot<R> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<R> Eq for Slot<R> {}
impl<R> PartialOrd for Slot<R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<R> Ord for Slot<R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl<R> std::fmt::Debug for Slot<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Slot({})", self.0 .0 .0)
    }
}

impl<R> OrderedCommit<R> {
    /// A buffer expecting indexes `0..total`.
    pub fn new(total: usize) -> Self {
        OrderedCommit {
            heap: BinaryHeap::new(),
            next: 0,
            total,
            seq: 0,
            discards: 0,
            queue_depth: Histogram::new(&QUEUE_DEPTH_BUCKETS),
        }
    }

    /// Offer a completed result. A result for an already-committed index
    /// is discarded on the spot (first wins).
    pub fn offer(&mut self, index: usize, result: R) {
        if index < self.next {
            self.discards += 1;
            return;
        }
        self.heap.push(Slot(Reverse((index, self.seq)), result));
        self.seq += 1;
    }

    /// Release the next in-order result, if it has arrived. Duplicate
    /// buffered copies of an index that just committed are skimmed off
    /// and counted here.
    pub fn try_commit(&mut self) -> Option<(usize, R)> {
        while let Some(Slot(Reverse((i, _)), _)) = self.heap.peek() {
            if *i < self.next {
                self.heap.pop();
                self.discards += 1;
                continue;
            }
            if *i > self.next {
                return None;
            }
            let Slot(Reverse((i, _)), r) = self.heap.pop().expect("peeked");
            self.next += 1;
            self.queue_depth.observe(self.heap.len() as f64);
            return Some((i, r));
        }
        None
    }

    /// Number of results committed so far (also the next expected index).
    pub fn committed(&self) -> usize {
        self.next
    }

    /// Total results this buffer expects.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether every expected index has been committed.
    pub fn is_done(&self) -> bool {
        self.next >= self.total
    }

    /// Abandon outstanding indexes (used when producers die): the buffer
    /// reports done and further offers are discarded.
    pub fn abort(&mut self) {
        self.next = self.total;
        self.heap.clear();
    }

    /// Duplicates dropped by first-wins resolution. `Measured`.
    pub fn discards(&self) -> u64 {
        self.discards
    }

    /// Reorder-buffer depth observed at each commit. `Measured`.
    pub fn queue_depth(&self) -> &Histogram {
        &self.queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_tensor::Rng;

    #[test]
    fn commits_in_index_order_regardless_of_arrival_order() {
        let mut oc = OrderedCommit::new(5);
        for i in [3, 0, 4, 2, 1] {
            oc.offer(i, i * 10);
        }
        let mut got = Vec::new();
        while let Some((i, v)) = oc.try_commit() {
            got.push((i, v));
        }
        assert_eq!(got, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert!(oc.is_done());
        assert_eq!(oc.queue_depth().count(), 5, "depth observed per commit");
    }

    #[test]
    fn first_wins_discards_late_duplicates() {
        let mut oc = OrderedCommit::new(2);
        oc.offer(0, "winner");
        assert_eq!(oc.try_commit(), Some((0, "winner")));
        oc.offer(0, "late copy");
        assert_eq!(oc.try_commit(), None, "late copy never surfaces");
        assert_eq!(oc.discards(), 1);
        // A buffered duplicate (offered before the index committed) is
        // skimmed off by try_commit instead.
        oc.offer(1, "a");
        oc.offer(1, "b");
        assert_eq!(oc.try_commit(), Some((1, "a")));
        assert_eq!(oc.try_commit(), None);
        assert_eq!(oc.discards(), 2);
        assert!(oc.is_done());
    }

    #[test]
    fn random_arrival_permutations_commit_identically() {
        let mut rng = Rng::new(42);
        for _ in 0..32 {
            let n = 1 + rng.below(20);
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let mut oc = OrderedCommit::new(n);
            let mut got = Vec::new();
            for &i in &order {
                oc.offer(i, i);
                while let Some((j, v)) = oc.try_commit() {
                    assert_eq!(j, v);
                    got.push(j);
                }
            }
            assert_eq!(got, (0..n).collect::<Vec<_>>());
            assert!(oc.is_done());
        }
    }

    #[test]
    fn abort_discards_the_outstanding_tail() {
        let mut oc = OrderedCommit::new(4);
        oc.offer(0, 0);
        assert_eq!(oc.try_commit(), Some((0, 0)));
        oc.abort();
        assert!(oc.is_done());
        oc.offer(2, 2);
        assert_eq!(oc.try_commit(), None);
        assert_eq!(oc.discards(), 1, "post-abort offers are discarded");
    }
}
