//! Token-based parker for idle runtime workers.
//!
//! Semantics mirror `crossbeam_utils::sync::Parker` (reimplemented on
//! `std::sync::{Mutex, Condvar}` — no registry deps): each worker owns one
//! boolean token. `unpark` sets the token and wakes the owner; `park`
//! blocks until the token is set, then consumes it. A token set *before*
//! `park` makes that `park` return immediately, which is what closes the
//! classic lost-wakeup race:
//!
//! 1. worker checks all queues → empty;
//! 2. another thread makes work visible, then unparks **everyone**;
//! 3. worker parks — and consumes the token from step 2 instead of
//!    sleeping, loops, and re-checks the queues.
//!
//! Because every "work became visible" edge in the pool is followed by an
//! unpark of *all* workers (see `runtime::Pool`), a worker can only block
//! in `park` while no unconsumed visibility edge exists for it — i.e. when
//! there really is nothing to do. The shrunk-model exhaustive-interleaving
//! test in `tests/runtime.rs` checks exactly this protocol.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One worker's parking spot. `park` is called only by the owning worker;
/// `unpark` may be called by anyone.
#[derive(Debug, Default)]
pub struct Parker {
    token: Mutex<bool>,
    cvar: Condvar,
}

impl Parker {
    /// Create a parker with no pending token.
    pub fn new() -> Self {
        Parker {
            token: Mutex::new(false),
            cvar: Condvar::new(),
        }
    }

    /// Block until the token is set (possibly already), then consume it.
    pub fn park(&self) {
        let mut tok = self.token.lock().expect("parker poisoned");
        while !*tok {
            tok = self.cvar.wait(tok).expect("parker poisoned");
        }
        *tok = false;
    }

    /// [`Parker::park`] with a deadline. Returns `true` if a token was
    /// consumed, `false` on timeout.
    pub fn park_timeout(&self, dur: Duration) -> bool {
        let deadline = std::time::Instant::now() + dur;
        let mut tok = self.token.lock().expect("parker poisoned");
        while !*tok {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cvar
                .wait_timeout(tok, deadline - now)
                .expect("parker poisoned");
            tok = guard;
        }
        *tok = false;
        true
    }

    /// Set the token and wake the owner if it is parked. Idempotent:
    /// multiple unparks coalesce into one token.
    pub fn unpark(&self) {
        let mut tok = self.token.lock().expect("parker poisoned");
        *tok = true;
        drop(tok);
        self.cvar.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn unpark_before_park_returns_immediately() {
        let p = Parker::new();
        p.unpark();
        p.park(); // must not block
        assert!(
            !p.park_timeout(Duration::from_millis(10)),
            "token was consumed by the first park"
        );
    }

    #[test]
    fn unparks_coalesce_into_one_token() {
        let p = Parker::new();
        p.unpark();
        p.unpark();
        p.unpark();
        assert!(p.park_timeout(Duration::from_millis(10)));
        assert!(!p.park_timeout(Duration::from_millis(10)));
    }

    #[test]
    fn park_blocks_until_unparked_cross_thread() {
        let p = Arc::new(Parker::new());
        let p2 = Arc::clone(&p);
        let h = thread::spawn(move || {
            p2.park();
            42
        });
        thread::sleep(Duration::from_millis(20));
        p.unpark();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn park_timeout_expires_without_token() {
        let p = Parker::new();
        let t0 = std::time::Instant::now();
        assert!(!p.park_timeout(Duration::from_millis(15)));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }
}
