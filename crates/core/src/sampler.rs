//! Asynchronous CPU graph sampling (§5).
//!
//! The paper decouples *sampling* (cache-independent, runs ahead on CPU
//! threads) from *pruning* (cache-dependent, on GPU). This module is the
//! sampling half: a pool of worker threads produces un-pruned mini-batches
//! into a **bounded task queue** ("to control the production of subgraphs
//! and avoid overflowing the limited GPU memory"), using multithreading
//! rather than DGL/PyG-style multiprocessing.
//!
//! Determinism: each mini-batch is sampled with an RNG seeded by
//! `(seed, batch_index)`, and the consumer reorders completions by batch
//! index, so the produced stream is identical regardless of thread count
//! or scheduling.

use crossbeam::channel::{bounded, Receiver, Sender};
use fgnn_graph::block::MiniBatch;
use fgnn_graph::sample::NeighborSampler;
use fgnn_graph::{Csr, NodeId};
use fgnn_tensor::Rng;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

struct Indexed(usize, MiniBatch);

impl PartialEq for Indexed {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for Indexed {}
impl PartialOrd for Indexed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Indexed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by batch index.
        other.0.cmp(&self.0)
    }
}

/// Handle to a running asynchronous sampling job. Iterate to drain the
/// mini-batches in order.
pub struct AsyncSampler {
    /// `Some` while running; taken in `Drop` so blocked producers see a
    /// disconnected channel and exit instead of deadlocking the join.
    rx: Option<Receiver<Indexed>>,
    reorder: BinaryHeap<Indexed>,
    next: usize,
    total: usize,
    handles: Vec<JoinHandle<()>>,
}

impl AsyncSampler {
    /// Spawn `num_threads` workers sampling `batches` over `graph`.
    ///
    /// `queue_capacity` bounds the number of finished mini-batches waiting
    /// to be consumed (the paper's GPU-memory guard).
    pub fn spawn(
        graph: Arc<Csr>,
        batches: Vec<Vec<NodeId>>,
        fanouts: Vec<usize>,
        num_threads: usize,
        queue_capacity: usize,
        seed: u64,
    ) -> AsyncSampler {
        let num_threads = num_threads.max(1);
        let total = batches.len();
        let (tx, rx): (Sender<Indexed>, Receiver<Indexed>) =
            bounded(queue_capacity.max(1));
        let work = Arc::new(AtomicUsize::new(0));
        let batches = Arc::new(batches);
        let fanouts = Arc::new(fanouts);

        let handles = (0..num_threads)
            .map(|_| {
                let tx = tx.clone();
                let work = Arc::clone(&work);
                let batches = Arc::clone(&batches);
                let fanouts = Arc::clone(&fanouts);
                let graph = Arc::clone(&graph);
                std::thread::spawn(move || {
                    let mut sampler = NeighborSampler::new(graph.num_nodes());
                    loop {
                        let i = work.fetch_add(1, Ordering::Relaxed);
                        if i >= batches.len() {
                            break;
                        }
                        // Per-batch RNG => schedule-independent output.
                        let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                        let mb = sampler.sample(&graph, &batches[i], &fanouts, &mut rng);
                        if tx.send(Indexed(i, mb)).is_err() {
                            break; // consumer dropped
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        AsyncSampler {
            rx: Some(rx),
            reorder: BinaryHeap::new(),
            next: 0,
            total,
            handles,
        }
    }

    /// Number of batches this job will produce in total.
    pub fn total(&self) -> usize {
        self.total
    }
}

impl Iterator for AsyncSampler {
    type Item = MiniBatch;

    fn next(&mut self) -> Option<MiniBatch> {
        if self.next >= self.total {
            return None;
        }
        loop {
            if let Some(Indexed(i, _)) = self.reorder.peek() {
                if *i == self.next {
                    let Indexed(_, mb) = self.reorder.pop().unwrap();
                    self.next += 1;
                    return Some(mb);
                }
            }
            match self.rx.as_ref().expect("sampler running").recv() {
                Ok(ix) => self.reorder.push(ix),
                Err(_) => return None, // workers died early
            }
        }
    }
}

impl Drop for AsyncSampler {
    fn drop(&mut self) {
        // Disconnect the channel so blocked producers error out of their
        // `send` and exit, then join them.
        drop(self.rx.take());
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Synchronous epoch sampling (single thread) — the DGL-style baseline for
/// Fig 14(a) and the building block of the in-line training loop.
pub fn sample_epoch_sync(
    graph: &Csr,
    batches: &[Vec<NodeId>],
    fanouts: &[usize],
    seed: u64,
) -> Vec<MiniBatch> {
    let mut sampler = NeighborSampler::new(graph.num_nodes());
    batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            sampler.sample(graph, b, fanouts, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::generate::{generate, GraphConfig};
    use fgnn_graph::sample::split_batches;

    fn test_graph() -> Arc<Csr> {
        let cfg = GraphConfig {
            num_nodes: 500,
            avg_degree: 8.0,
            ..Default::default()
        };
        Arc::new(generate(&cfg, &mut Rng::new(1)).graph)
    }

    fn batches(n: usize, size: usize) -> Vec<Vec<NodeId>> {
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        split_batches(&nodes, size, None)
    }

    #[test]
    fn async_sampler_yields_all_batches_in_order() {
        let g = test_graph();
        let bs = batches(100, 10);
        let sampler = AsyncSampler::spawn(Arc::clone(&g), bs.clone(), vec![4, 4], 4, 4, 7);
        let out: Vec<MiniBatch> = sampler.collect();
        assert_eq!(out.len(), 10);
        for (mb, b) in out.iter().zip(&bs) {
            assert_eq!(&mb.seeds, b);
            mb.validate().unwrap();
        }
    }

    #[test]
    fn async_output_matches_sync_regardless_of_threads() {
        let g = test_graph();
        let bs = batches(60, 7);
        let sync = sample_epoch_sync(&g, &bs, &[3, 3], 42);
        for threads in [1, 2, 8] {
            let a = AsyncSampler::spawn(Arc::clone(&g), bs.clone(), vec![3, 3], threads, 2, 42);
            let out: Vec<MiniBatch> = a.collect();
            assert_eq!(out.len(), sync.len());
            for (x, y) in out.iter().zip(&sync) {
                assert_eq!(x.seeds, y.seeds, "threads={threads}");
                assert_eq!(
                    x.blocks[0].src_global, y.blocks[0].src_global,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_deadlock() {
        let g = test_graph();
        let bs = batches(200, 5); // 40 batches
        let sampler = AsyncSampler::spawn(g, bs, vec![4], 8, 1, 3);
        assert_eq!(sampler.total(), 40);
        // Slow consumer: still drains everything.
        let mut n = 0;
        for mb in sampler {
            n += 1;
            assert!(!mb.seeds.is_empty());
        }
        assert_eq!(n, 40);
    }

    #[test]
    fn dropping_sampler_early_does_not_hang() {
        let g = test_graph();
        let bs = batches(500, 2); // many batches
        let mut sampler = AsyncSampler::spawn(g, bs, vec![4, 4], 4, 2, 5);
        let _first = sampler.next();
        drop(sampler); // must join cleanly
    }
}
