//! Asynchronous CPU graph sampling (§5) with worker fault recovery.
//!
//! The paper decouples *sampling* (cache-independent, runs ahead on CPU
//! threads) from *pruning* (cache-dependent, on GPU). This module is the
//! sampling half: a pool of worker threads produces un-pruned mini-batches
//! into a **bounded task queue** ("to control the production of subgraphs
//! and avoid overflowing the limited GPU memory"), using multithreading
//! rather than DGL/PyG-style multiprocessing. Workers are scheduled by
//! the in-tree work-stealing [`crate::runtime`] (per-worker LIFO deques,
//! global injector, token parkers); this module is the sampling-specific
//! policy on top: per-batch RNG, hedging, and the in-order commit.
//!
//! Determinism: each mini-batch is sampled with an RNG seeded by
//! `(seed, batch_index)`, and the consumer reorders completions by batch
//! index, so the produced stream is identical regardless of thread count
//! or scheduling — and regardless of how many times a batch had to be
//! re-sampled after a panic, since every attempt recreates the same RNG.
//!
//! Fault model: a panic inside a worker is caught with `catch_unwind`; the
//! batch is re-sampled up to `max_retries` additional times on a fresh
//! sampler (panic may have poisoned its scratch state). If every attempt
//! panics, an explicit [`SampleError::BatchPanicked`] is delivered *for
//! that batch index* instead of silently truncating the epoch. If workers
//! die without reporting (a defensive bound — `catch_unwind` should make
//! this unreachable), the consumer yields [`SampleError::WorkersLost`]
//! rather than ending the iterator early, so a shortfall is always an
//! error, never a quietly short epoch.
//!
//! Straggler hedging ([`AsyncSampler::with_hedging`]): the consumer derives
//! a deadline from the observed task-latency histogram (p95 × multiplier,
//! floored); when the next in-order batch overruns it, the consumer
//! re-samples that batch *inline* with the same `(seed, batch_index)` RNG —
//! a duplicate dispatch whose output is bitwise-identical to the
//! straggler's, so first-wins resolution cannot change the stream. The
//! straggler's late copy is discarded by index on arrival. Hedge counts are
//! wall-clock artifacts and are exported `Measured`, never `Exact`.

use crate::chan::RecvTimeoutError;
use crate::obs::Histogram;
use crate::runtime::{OrderedCommit, Pool, RuntimeConfig, TaskError};
use fgnn_graph::block::MiniBatch;
use fgnn_graph::sample::NeighborSampler;
use fgnn_graph::{Csr, NodeId};
use fgnn_tensor::Rng;
use std::sync::Arc;
use std::time::Duration;

/// Default number of *re*-sample attempts after a worker panic.
pub const DEFAULT_SAMPLER_RETRIES: u32 = 2;

/// Straggler-hedging tunables for [`AsyncSampler::with_hedging`].
#[derive(Clone, Copy, Debug)]
pub struct HedgePolicy {
    /// Floor on the straggler deadline in seconds — hedging never fires
    /// faster than this, so warm-up noise cannot trigger it.
    pub min_deadline: f64,
    /// The deadline is this multiple of the observed p95 task latency
    /// (when above the floor).
    pub multiplier: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            min_deadline: 0.05,
            multiplier: 4.0,
        }
    }
}

/// Why an epoch's batch stream could not be fully produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleError {
    /// Sampling batch `batch_index` panicked on every one of `attempts`
    /// attempts.
    BatchPanicked {
        /// Index of the failing batch in the epoch schedule.
        batch_index: usize,
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// All workers disappeared after producing only `produced` of `total`
    /// batches (defensive: should be unreachable with `catch_unwind`).
    WorkersLost {
        /// Batches delivered in order before the loss.
        produced: usize,
        /// Batches the epoch schedule demanded.
        total: usize,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::BatchPanicked {
                batch_index,
                attempts,
            } => write!(
                f,
                "sampling batch {batch_index} panicked on all {attempts} attempts"
            ),
            SampleError::WorkersLost { produced, total } => {
                write!(f, "sampler workers died after {produced}/{total} batches")
            }
        }
    }
}

impl std::error::Error for SampleError {}

impl From<TaskError> for SampleError {
    fn from(e: TaskError) -> Self {
        match e {
            TaskError::Panicked { index, attempts } => SampleError::BatchPanicked {
                batch_index: index,
                attempts,
            },
            TaskError::Lost { produced, total } => SampleError::WorkersLost { produced, total },
        }
    }
}

/// Test/fault-injection hook: called as `(batch_index, attempt)` before
/// each sampling attempt, *inside* the panic guard — a panicking hook
/// exercises the recovery path deterministically.
pub type FaultHook = Arc<dyn Fn(usize, u32) + Send + Sync>;

/// Observability snapshot of one async sampling job (schema in DESIGN.md
/// §8). Batch/retry counts are deterministic; the timing fields are
/// wall-clock and belong to the `Measured` metric class.
#[derive(Clone, Debug)]
pub struct SamplerObsReport {
    /// Mini-batches delivered in order to the consumer so far.
    pub batches: u64,
    /// Extra sampling attempts spent recovering from worker panics.
    pub resample_retries: u64,
    /// Successful sampling tasks per worker thread.
    pub worker_tasks: Vec<u64>,
    /// Wall-clock nanoseconds spent sampling, per worker thread.
    pub worker_task_nanos: Vec<u64>,
    /// Per-attempt sampling latency in seconds (wall-clock).
    pub task_seconds: Histogram,
    /// Reorder-queue depth observed at each in-order delivery.
    pub queue_depth: Histogram,
    /// Straggler batches re-dispatched inline by the consumer
    /// (wall-clock-dependent — `Measured`, never `Exact`).
    pub hedges: u64,
    /// Late straggler duplicates discarded after their hedge won.
    pub hedge_discards: u64,
    /// Successful steal operations in the work-stealing pool (`Measured`).
    pub steals: u64,
    /// Tasks moved between workers by steals (`Measured`).
    pub stolen_tasks: u64,
    /// Idle episodes in which a pool worker parked (`Measured`).
    pub parks: u64,
}

/// Handle to a running asynchronous sampling job. Iterate to drain the
/// mini-batches in order; each item is a `Result` so batch-level failures
/// surface instead of shortening the epoch.
///
/// Execution runs on the work-stealing [`Pool`]; this handle owns the
/// consumer half: the in-order first-wins [`OrderedCommit`] and the
/// straggler-hedging policy. Dropping the handle shuts the pool down
/// promptly (workers stop claiming batches and bail out of retry loops).
pub struct AsyncSampler {
    pool: Pool<MiniBatch>,
    /// In-order first-wins reorder buffer — the determinism half: the
    /// committed stream is identical at any worker count and schedule.
    ordered: OrderedCommit<Result<MiniBatch, SampleError>>,
    /// Straggler hedging, off by default (see [`AsyncSampler::with_hedging`]).
    hedge: Option<HedgePolicy>,
    hedges: u64,
    /// When the consumer started waiting for a given in-order index. The
    /// straggler clock keeps ticking across out-of-order arrivals —
    /// otherwise a healthy worker's steady stream would mask the straggler
    /// forever.
    wait_start: Option<(usize, std::time::Instant)>,
    // Inputs retained so the consumer can hedge a straggler inline with
    // the exact per-(seed, index) RNG the worker would have used.
    graph: Arc<Csr>,
    batches: Arc<Vec<Vec<NodeId>>>,
    fanouts: Arc<Vec<usize>>,
    seed: u64,
}

impl AsyncSampler {
    /// Spawn `num_threads` workers sampling `batches` over `graph`, with
    /// the default panic-retry budget and no fault hook.
    ///
    /// `queue_capacity` bounds the number of finished mini-batches waiting
    /// to be consumed (the paper's GPU-memory guard).
    pub fn spawn(
        graph: Arc<Csr>,
        batches: Vec<Vec<NodeId>>,
        fanouts: Vec<usize>,
        num_threads: usize,
        queue_capacity: usize,
        seed: u64,
    ) -> AsyncSampler {
        Self::spawn_with_recovery(
            graph,
            batches,
            fanouts,
            num_threads,
            queue_capacity,
            seed,
            DEFAULT_SAMPLER_RETRIES,
            None,
        )
    }

    /// [`AsyncSampler::spawn`] with an explicit panic-retry budget and an
    /// optional fault-injection hook (see [`FaultHook`]).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_recovery(
        graph: Arc<Csr>,
        batches: Vec<Vec<NodeId>>,
        fanouts: Vec<usize>,
        num_threads: usize,
        queue_capacity: usize,
        seed: u64,
        max_retries: u32,
        hook: Option<FaultHook>,
    ) -> AsyncSampler {
        let cfg = RuntimeConfig {
            workers: num_threads.max(1),
            queue_capacity: queue_capacity.max(1),
            max_retries,
            ..RuntimeConfig::default()
        };
        Self::spawn_with_config(graph, batches, fanouts, &cfg, seed, hook)
    }

    /// [`AsyncSampler::spawn_with_recovery`] with a full
    /// [`RuntimeConfig`], including the seeded adversarial-scheduling
    /// knob ([`crate::runtime::ChaosPolicy`]) the fuzzing suite drives.
    /// Chaos perturbs *which worker samples which batch when*; the
    /// committed stream is invariant to it.
    pub fn spawn_with_config(
        graph: Arc<Csr>,
        batches: Vec<Vec<NodeId>>,
        fanouts: Vec<usize>,
        cfg: &RuntimeConfig,
        seed: u64,
        hook: Option<FaultHook>,
    ) -> AsyncSampler {
        let total = batches.len();
        let batches = Arc::new(batches);
        let fanouts = Arc::new(fanouts);
        let init = {
            let graph = Arc::clone(&graph);
            move || NeighborSampler::new(graph.num_nodes())
        };
        let exec = {
            let graph = Arc::clone(&graph);
            let batches = Arc::clone(&batches);
            let fanouts = Arc::clone(&fanouts);
            move |sampler: &mut NeighborSampler, i: usize, _t: &(), attempt: u32| {
                if let Some(h) = &hook {
                    h(i, attempt);
                }
                // Per-batch RNG, recreated per attempt => schedule- and
                // retry-independent output.
                let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                sampler.sample(&graph, &batches[i], &fanouts, &mut rng)
            }
        };
        let pool = Pool::spawn(cfg, vec![(); total], init, exec);
        AsyncSampler {
            pool,
            ordered: OrderedCommit::new(total),
            hedge: None,
            hedges: 0,
            wait_start: None,
            graph,
            batches,
            fanouts,
            seed,
        }
    }

    /// Enable straggler hedging under `policy`: when the next in-order
    /// batch overruns the latency-derived deadline, the consumer
    /// re-samples it inline (identical RNG ⇒ identical output; the late
    /// worker copy is discarded on arrival). The fault hook is a
    /// worker-side construct and does not run on the hedge path.
    pub fn with_hedging(mut self, policy: HedgePolicy) -> Self {
        self.hedge = Some(policy);
        self
    }

    /// Number of batches this job will produce in total.
    pub fn total(&self) -> usize {
        self.pool.total()
    }

    /// Current straggler deadline: `max(min_deadline, p95 × multiplier)`
    /// over the task-latency histogram observed so far.
    fn hedge_deadline(&self, policy: &HedgePolicy) -> Duration {
        let hist: Histogram = self.pool.obs_report().task_seconds;
        let mut secs = policy.min_deadline;
        if let Some(p95) = hist.percentile(0.95) {
            secs = secs.max(p95 * policy.multiplier);
        }
        Duration::from_secs_f64(secs)
    }

    /// Duplicate-dispatch the straggling next-in-order batch on this
    /// thread. Same `(seed, index)` RNG as the worker ⇒ bitwise-identical
    /// output, so first-wins resolution cannot change the stream.
    fn hedge_batch(&mut self) {
        let i = self.ordered.committed();
        let mut sampler = NeighborSampler::new(self.graph.num_nodes());
        let mut rng = Rng::new(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        let mb = sampler.sample(&self.graph, &self.batches[i], &self.fanouts, &mut rng);
        self.hedges += 1;
        self.ordered.offer(i, Ok(mb));
    }

    /// Snapshot the job's observability counters (callable while workers
    /// are still running; mid-flight values are momentarily stale but each
    /// individual counter is consistent).
    pub fn obs_report(&self) -> SamplerObsReport {
        let rt = self.pool.obs_report();
        SamplerObsReport {
            batches: self.ordered.committed().min(self.pool.total()) as u64,
            resample_retries: rt.retries,
            worker_tasks: rt.worker_tasks,
            worker_task_nanos: rt.worker_task_nanos,
            task_seconds: rt.task_seconds,
            queue_depth: self.ordered.queue_depth().clone(),
            hedges: self.hedges,
            hedge_discards: self.ordered.discards(),
            steals: rt.steals,
            stolen_tasks: rt.stolen_tasks,
            parks: rt.parks,
        }
    }
}

impl Iterator for AsyncSampler {
    type Item = Result<MiniBatch, SampleError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((_, item)) = self.ordered.try_commit() {
                self.wait_start = None;
                return Some(item);
            }
            if self.ordered.is_done() {
                return None;
            }
            let received = match self.hedge {
                None => self.pool.recv().map_err(|_| RecvTimeoutError::Disconnected),
                Some(policy) => {
                    // Anchor the deadline to when we *started* waiting for
                    // this index, not to the last arrival.
                    let awaiting = self.ordered.committed();
                    let start = match self.wait_start {
                        Some((i, t)) if i == awaiting => t,
                        _ => {
                            let t = std::time::Instant::now();
                            self.wait_start = Some((awaiting, t));
                            t
                        }
                    };
                    let deadline = self.hedge_deadline(&policy);
                    match deadline.checked_sub(start.elapsed()) {
                        Some(remaining) => self.pool.recv_timeout(remaining),
                        None => Err(RecvTimeoutError::Timeout), // already overdue
                    }
                }
            };
            match received {
                Ok((i, Ok(mb))) => self.ordered.offer(i, Ok(mb)),
                Ok((i, Err(e))) => self.ordered.offer(i, Err(e.into())),
                Err(RecvTimeoutError::Timeout) => {
                    // The next in-order batch is straggling: duplicate-
                    // dispatch it inline; first-wins is trivially safe
                    // because both copies are bitwise-identical.
                    self.hedge_batch();
                    self.wait_start = None;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Workers died without delivering everything: surface
                    // the shortfall as an error exactly once, then end.
                    let produced = self.ordered.committed();
                    let total = self.ordered.total();
                    self.ordered.abort();
                    return Some(Err(SampleError::WorkersLost { produced, total }));
                }
            }
        }
    }
}

/// Synchronous epoch sampling (single thread) — the DGL-style baseline for
/// Fig 14(a) and the building block of the in-line training loop.
pub fn sample_epoch_sync(
    graph: &Csr,
    batches: &[Vec<NodeId>],
    fanouts: &[usize],
    seed: u64,
) -> Vec<MiniBatch> {
    let mut sampler = NeighborSampler::new(graph.num_nodes());
    batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            sampler.sample(graph, b, fanouts, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::generate::{generate, GraphConfig};
    use fgnn_graph::sample::split_batches;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn test_graph() -> Arc<Csr> {
        let cfg = GraphConfig {
            num_nodes: 500,
            avg_degree: 8.0,
            ..Default::default()
        };
        Arc::new(generate(&cfg, &mut Rng::new(1)).graph)
    }

    fn batches(n: usize, size: usize) -> Vec<Vec<NodeId>> {
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        split_batches(&nodes, size, None)
    }

    fn collect_ok(s: AsyncSampler) -> Vec<MiniBatch> {
        s.map(|r| r.expect("no sampling faults expected")).collect()
    }

    #[test]
    fn async_sampler_yields_all_batches_in_order() {
        let g = test_graph();
        let bs = batches(100, 10);
        let sampler = AsyncSampler::spawn(Arc::clone(&g), bs.clone(), vec![4, 4], 4, 4, 7);
        let out = collect_ok(sampler);
        assert_eq!(out.len(), 10);
        for (mb, b) in out.iter().zip(&bs) {
            assert_eq!(&mb.seeds, b);
            mb.validate().unwrap();
        }
    }

    #[test]
    fn async_output_matches_sync_regardless_of_threads() {
        let g = test_graph();
        let bs = batches(60, 7);
        let sync = sample_epoch_sync(&g, &bs, &[3, 3], 42);
        for threads in [1, 2, 8] {
            let a = AsyncSampler::spawn(Arc::clone(&g), bs.clone(), vec![3, 3], threads, 2, 42);
            let out = collect_ok(a);
            assert_eq!(out.len(), sync.len());
            for (x, y) in out.iter().zip(&sync) {
                assert_eq!(x.seeds, y.seeds, "threads={threads}");
                assert_eq!(
                    x.blocks[0].src_global, y.blocks[0].src_global,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_deadlock() {
        let g = test_graph();
        let bs = batches(200, 5); // 40 batches
        let sampler = AsyncSampler::spawn(g, bs, vec![4], 8, 1, 3);
        assert_eq!(sampler.total(), 40);
        // Slow consumer: still drains everything.
        let mut n = 0;
        for mb in sampler {
            n += 1;
            assert!(!mb.unwrap().seeds.is_empty());
        }
        assert_eq!(n, 40);
    }

    #[test]
    fn dropping_sampler_early_does_not_hang() {
        let g = test_graph();
        let bs = batches(500, 2); // many batches
        let mut sampler = AsyncSampler::spawn(g, bs, vec![4, 4], 4, 2, 5);
        let _first = sampler.next();
        drop(sampler); // must join cleanly
    }

    /// Regression: a mid-epoch drop must join *promptly* even when a
    /// worker sits in a long retry loop — the shutdown flag is checked
    /// between attempts, so the drop never waits out a retry budget.
    #[test]
    fn drop_mid_epoch_cuts_retry_loops_short() {
        let g = test_graph();
        let bs = batches(40, 2); // 20 batches
        let hook: FaultHook = Arc::new(|batch, _attempt| {
            if batch >= 2 {
                std::thread::sleep(Duration::from_millis(5));
                panic!("persistent fault with a slow attempt");
            }
        });
        let mut sampler = AsyncSampler::spawn_with_recovery(
            Arc::clone(&g),
            bs,
            vec![4],
            2,
            2,
            17,
            1000, // a retry budget that would take ~5 s to burn per batch
            Some(hook),
        );
        assert!(sampler.next().unwrap().is_ok());
        let t0 = std::time::Instant::now();
        drop(sampler);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "drop took {:?} — workers kept retrying after shutdown",
            t0.elapsed()
        );
    }

    /// A straggling worker is hedged: the consumer re-samples the overdue
    /// batch inline and the delivered stream is identical to the fault-free
    /// sync stream (same per-(seed, index) RNG ⇒ first-wins is safe).
    #[test]
    fn hedging_covers_stragglers_without_changing_the_stream() {
        let g = test_graph();
        let bs = batches(240, 4); // 60 batches
        let sync = sample_epoch_sync(&g, &bs, &[3, 3], 23);
        let hook: FaultHook = Arc::new(|batch, _attempt| {
            if batch == 2 {
                // A straggler, not a failure: the worker eventually
                // delivers, long after the hedge deadline.
                std::thread::sleep(Duration::from_millis(150));
            } else {
                // Keep the epoch running past the straggler's wake-up so
                // its late duplicate is observed (and discarded) before
                // the stream ends.
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let mut sampler = AsyncSampler::spawn_with_recovery(
            Arc::clone(&g),
            bs,
            vec![3, 3],
            2,
            4,
            23,
            2,
            Some(hook),
        )
        .with_hedging(HedgePolicy {
            min_deadline: 0.02,
            multiplier: 4.0,
        });
        let mut out = Vec::new();
        for r in sampler.by_ref() {
            out.push(r.expect("hedging must not surface errors"));
        }
        assert_eq!(out.len(), sync.len());
        for (x, y) in out.iter().zip(&sync) {
            assert_eq!(x.seeds, y.seeds);
            assert_eq!(x.blocks[0].src_global, y.blocks[0].src_global);
        }
        let rep = sampler.obs_report();
        assert!(rep.hedges >= 1, "the straggler must have been hedged");
        // The straggler's late duplicate lands well before the epoch ends
        // (30 batches, 300 ms sleep) and must be discarded by index.
        assert!(
            rep.hedge_discards >= 1,
            "late duplicate should be discarded"
        );
    }

    /// Hedging disabled (the default) leaves the stream untouched and the
    /// hedge counters at zero even with slow batches.
    #[test]
    fn no_hedging_means_no_hedge_counters() {
        let g = test_graph();
        let bs = batches(30, 6);
        let mut sampler = AsyncSampler::spawn(Arc::clone(&g), bs, vec![3], 2, 2, 29);
        let n = sampler.by_ref().filter(|r| r.is_ok()).count();
        assert_eq!(n, 5);
        let rep = sampler.obs_report();
        assert_eq!(rep.hedges, 0);
        assert_eq!(rep.hedge_discards, 0);
    }

    /// A transiently-panicking batch is retried and the epoch completes
    /// with every batch present, identical to the fault-free stream.
    #[test]
    fn transient_panic_is_retried_and_stream_is_unchanged() {
        let g = test_graph();
        let bs = batches(60, 6);
        let clean = sample_epoch_sync(&g, &bs, &[3, 3], 9);
        let hook: FaultHook = Arc::new(|batch, attempt| {
            if batch == 4 && attempt == 0 {
                panic!("injected transient sampler fault");
            }
        });
        let sampler = AsyncSampler::spawn_with_recovery(
            Arc::clone(&g),
            bs,
            vec![3, 3],
            4,
            4,
            9,
            2,
            Some(hook),
        );
        let out: Vec<_> = sampler.collect();
        assert_eq!(out.len(), 10);
        for (r, y) in out.iter().zip(&clean) {
            let mb = r.as_ref().expect("retry must recover the batch");
            assert_eq!(mb.seeds, y.seeds);
            assert_eq!(mb.blocks[0].src_global, y.blocks[0].src_global);
        }
    }

    /// Regression for the silent-truncation bug: a batch that panics on
    /// every attempt must surface an error at its position — the epoch
    /// must NOT look like a clean short epoch.
    #[test]
    fn persistent_panic_surfaces_an_error_not_a_short_epoch() {
        let g = test_graph();
        let bs = batches(50, 5); // 10 batches
        let hook: FaultHook = Arc::new(|batch, _attempt| {
            if batch == 3 {
                panic!("injected persistent sampler fault");
            }
        });
        let sampler =
            AsyncSampler::spawn_with_recovery(Arc::clone(&g), bs, vec![4], 2, 2, 11, 1, Some(hook));
        let out: Vec<_> = sampler.collect();
        assert_eq!(out.len(), 10, "every batch index must be accounted for");
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(
                    r.as_ref().unwrap_err(),
                    &SampleError::BatchPanicked {
                        batch_index: 3,
                        attempts: 2
                    }
                );
            } else {
                assert!(r.is_ok(), "batch {i} should succeed");
            }
        }
    }

    /// Retry attempts recreate the same `(seed, batch_index)` RNG, so a
    /// recovered batch is bitwise-identical to a never-failed one.
    #[test]
    fn retried_batch_is_deterministic() {
        let g = test_graph();
        let bs = batches(30, 6);
        let tries = Arc::new(AtomicU32::new(0));
        let t2 = Arc::clone(&tries);
        let hook: FaultHook = Arc::new(move |batch, attempt| {
            if batch == 2 && attempt < 2 {
                t2.fetch_add(1, Ordering::Relaxed);
                panic!("fail twice, then succeed");
            }
        });
        let sampler = AsyncSampler::spawn_with_recovery(
            Arc::clone(&g),
            bs.clone(),
            vec![3],
            1,
            2,
            13,
            3,
            Some(hook),
        );
        let out = collect_ok(sampler);
        assert_eq!(tries.load(Ordering::Relaxed), 2, "hook panicked twice");
        let clean = sample_epoch_sync(&g, &bs, &[3], 13);
        assert_eq!(out[2].seeds, clean[2].seeds);
        assert_eq!(out[2].blocks[0].src_global, clean[2].blocks[0].src_global);
    }

    /// The obs report reconciles: every batch is sampled by exactly one
    /// worker, injected panics show up as retries and extra timed
    /// attempts, and queue depth is observed once per delivery.
    #[test]
    fn obs_report_reconciles_tasks_retries_and_deliveries() {
        let g = test_graph();
        let bs = batches(60, 6); // 10 batches
        let hook: FaultHook = Arc::new(|batch, attempt| {
            if batch == 4 && attempt == 0 {
                panic!("injected transient sampler fault");
            }
        });
        let mut sampler = AsyncSampler::spawn_with_recovery(
            Arc::clone(&g),
            bs,
            vec![3, 3],
            3,
            4,
            9,
            2,
            Some(hook),
        );
        let mut delivered = 0u64;
        for r in sampler.by_ref() {
            r.expect("transient fault must be recovered");
            delivered += 1;
        }
        let rep = sampler.obs_report();
        assert_eq!(rep.batches, delivered);
        assert_eq!(rep.worker_tasks.iter().sum::<u64>(), 10);
        assert_eq!(rep.resample_retries, 1);
        assert_eq!(
            rep.task_seconds.count(),
            11,
            "10 successes + 1 panicked attempt, all timed"
        );
        assert_eq!(rep.queue_depth.count(), 10);
        assert_eq!(rep.worker_task_nanos.len(), 3);
        assert!(rep.worker_task_nanos.iter().sum::<u64>() > 0);
    }
}
