//! Admission control: token-bucket rate limiting, a bounded queue with
//! priority displacement, and deadline-aware load shedding.
//!
//! The controller's job is to keep the serving engine in its stable
//! operating region under *any* offered load: excess work is refused at
//! the door (rate limit), displaced by more important work (queue-full
//! priority shedding) or dropped once it can no longer meet its deadline
//! (expiry shedding) — never silently queued into collapse. Every shed
//! decision is recorded in an append-only log and counted in `Exact`
//! metrics, so two same-seed runs shed byte-identically.

use super::trace::Request;
use std::collections::VecDeque;

/// Why a request was shed instead of served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket was empty: offered rate exceeds the contract.
    RateLimited,
    /// The bounded queue was full and nothing cheaper could be displaced.
    QueueFull,
    /// The request could no longer complete before its deadline.
    DeadlineExpired,
}

impl ShedReason {
    /// Stable lowercase name for logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExpired => "deadline_expired",
        }
    }

    /// Stable numeric code for span attributes (`0`/`1`/`2`).
    pub fn code(self) -> u64 {
        match self {
            ShedReason::RateLimited => 0,
            ShedReason::QueueFull => 1,
            ShedReason::DeadlineExpired => 2,
        }
    }
}

/// Admission-control knobs.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Maximum queued (admitted but unserved) requests.
    pub queue_cap: usize,
    /// Token-bucket refill rate (requests per simulated second).
    pub rate_rps: f64,
    /// Token-bucket capacity (burst allowance, in requests).
    pub burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_cap: 64,
            rate_rps: 4000.0,
            burst: 64.0,
        }
    }
}

/// Deterministic token bucket on the sim clock.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    cap: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens/second up to `cap`.
    pub fn new(rate: f64, cap: f64) -> Self {
        TokenBucket {
            rate,
            cap,
            tokens: cap,
            last_ns: 0,
        }
    }

    /// Take one token at sim time `now_ns`; `false` means rate-limited.
    /// Refill is computed from exact nanosecond deltas, so the accept/
    /// reject sequence is a pure function of the arrival times.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        let dt = now_ns.saturating_sub(self.last_ns) as f64 * 1e-9;
        self.last_ns = now_ns;
        self.tokens = (self.tokens + dt * self.rate).min(self.cap);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The admission controller: owns the bounded queue and the shed ledger.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    bucket: TokenBucket,
    /// Admitted requests awaiting service, in arrival order.
    pub queue: VecDeque<Request>,
    /// Append-only `(request id, reason)` shed ledger, in decision order.
    pub shed_log: Vec<(u64, ShedReason)>,
    /// Requests refused by the token bucket.
    pub shed_rate_limited: u64,
    /// Requests shed because the queue was full (either the arrival or a
    /// displaced lower-priority victim).
    pub shed_queue_full: u64,
    /// Requests shed because their deadline became unreachable.
    pub shed_deadline: u64,
    /// Deepest queue observed (after each admission).
    pub max_depth: usize,
}

impl AdmissionController {
    /// A fresh controller under `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Self {
        let bucket = TokenBucket::new(cfg.rate_rps, cfg.burst);
        AdmissionController {
            cfg,
            bucket,
            queue: VecDeque::new(),
            shed_log: Vec::new(),
            shed_rate_limited: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            max_depth: 0,
        }
    }

    fn shed(&mut self, id: u64, reason: ShedReason) {
        match reason {
            ShedReason::RateLimited => self.shed_rate_limited += 1,
            ShedReason::QueueFull => self.shed_queue_full += 1,
            ShedReason::DeadlineExpired => self.shed_deadline += 1,
        }
        self.shed_log.push((id, reason));
    }

    /// Offer an arriving request at sim time `now_ns`. Returns `true` when
    /// it was admitted to the queue; a `false` return has already been
    /// recorded in the shed ledger. A full queue sheds the *oldest
    /// lowest-priority* entry when the arrival outranks it — latency-
    /// critical traffic displaces best-effort traffic, never vice versa.
    pub fn offer(&mut self, req: Request, now_ns: u64) -> bool {
        if !self.bucket.try_take(now_ns) {
            self.shed(req.id, ShedReason::RateLimited);
            return false;
        }
        if self.queue.len() >= self.cfg.queue_cap {
            // Oldest entry of the minimum priority class is the victim
            // candidate (deterministic: scan order is queue order).
            let victim = self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.priority, *i))
                .map(|(i, r)| (i, r.priority));
            match victim {
                Some((i, p)) if p < req.priority => {
                    let shed = self.queue.remove(i).expect("victim index valid");
                    self.shed(shed.id, ShedReason::QueueFull);
                }
                _ => {
                    self.shed(req.id, ShedReason::QueueFull);
                    return false;
                }
            }
        }
        self.queue.push_back(req);
        self.max_depth = self.max_depth.max(self.queue.len());
        true
    }

    /// Shed every queued request whose deadline precedes `horizon_ns`
    /// (dispatch time plus the engine's running service estimate): work
    /// that cannot finish in time is dropped *before* burning service
    /// capacity on it.
    pub fn shed_expired(&mut self, horizon_ns: u64) {
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(r) = self.queue.pop_front() {
            if r.deadline_ns < horizon_ns {
                self.shed(r.id, ShedReason::DeadlineExpired);
            } else {
                kept.push_back(r);
            }
        }
        self.queue = kept;
    }

    /// Total shed requests across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::Priority;
    use super::*;

    fn req(id: u64, arrival_ns: u64, priority: Priority) -> Request {
        Request {
            id,
            node: 0,
            arrival_ns,
            deadline_ns: arrival_ns + 100_000_000,
            priority,
            staleness_budget_ms: 100,
        }
    }

    #[test]
    fn token_bucket_limits_and_refills() {
        let mut b = TokenBucket::new(10.0, 2.0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst of 2 exhausted");
        // 100 ms at 10 rps refills exactly one token.
        assert!(b.try_take(100_000_000));
        assert!(!b.try_take(100_000_000));
    }

    #[test]
    fn queue_full_sheds_lowest_priority_victim() {
        let mut a = AdmissionController::new(AdmissionConfig {
            queue_cap: 2,
            rate_rps: 1e9,
            burst: 1e9,
        });
        assert!(a.offer(req(0, 0, Priority::Low), 0));
        assert!(a.offer(req(1, 0, Priority::Normal), 0));
        // High displaces the oldest Low.
        assert!(a.offer(req(2, 0, Priority::High), 0));
        assert_eq!(a.shed_log, vec![(0, ShedReason::QueueFull)]);
        // Low cannot displace Normal/High: the arrival itself sheds.
        assert!(!a.offer(req(3, 0, Priority::Low), 0));
        assert_eq!(a.shed_queue_full, 2);
        assert_eq!(a.queue.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn expiry_shedding_drops_unreachable_deadlines_only() {
        let mut a = AdmissionController::new(AdmissionConfig::default());
        assert!(a.offer(req(0, 0, Priority::Normal), 0));
        assert!(a.offer(req(1, 50_000_000, Priority::Normal), 50_000_000));
        a.shed_expired(120_000_000);
        assert_eq!(a.queue.len(), 1, "only the expired request is shed");
        assert_eq!(a.shed_log, vec![(0, ShedReason::DeadlineExpired)]);
        assert_eq!(a.shed_total(), 1);
    }

    #[test]
    fn rate_limit_sheds_are_logged() {
        let mut a = AdmissionController::new(AdmissionConfig {
            queue_cap: 10,
            rate_rps: 1.0,
            burst: 1.0,
        });
        assert!(a.offer(req(0, 0, Priority::Normal), 0));
        assert!(!a.offer(req(1, 0, Priority::High), 0));
        assert_eq!(a.shed_log, vec![(1, ShedReason::RateLimited)]);
    }
}
