//! Request batching under `max_batch` / `max_delay` knobs.
//!
//! GNN inference amortizes sampling and feature movement across a batch
//! exactly as training does, but a serving batcher cannot wait forever:
//! a batch dispatches as soon as it is full, or once its *oldest* member
//! has waited `max_delay` — the classic throughput/latency dial. The
//! batcher only computes dispatch times; the engine's event loop decides
//! when to act on them, so the policy stays a pure function.

use super::trace::Request;
use std::collections::VecDeque;

/// Batching knobs.
#[derive(Clone, Debug)]
pub struct BatcherConfig {
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Longest a queued request may wait for co-batching (nanoseconds).
    pub max_delay_ns: u64,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 32,
            max_delay_ns: 2_000_000, // 2 ms
        }
    }
}

/// The batching policy.
#[derive(Clone, Debug)]
pub struct Batcher {
    cfg: BatcherConfig,
}

impl Batcher {
    /// A batcher under `cfg`.
    pub fn new(cfg: BatcherConfig) -> Self {
        Batcher { cfg }
    }

    /// Configured batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.cfg.max_batch
    }

    /// Earliest sim time the head batch should dispatch, or `None` for an
    /// empty queue: immediately once full (`server_free_ns` gating), else
    /// when the oldest member's delay budget runs out. Never earlier than
    /// `cursor_ns`, the event loop's current position.
    pub fn dispatch_at(
        &self,
        queue: &VecDeque<Request>,
        server_free_ns: u64,
        cursor_ns: u64,
    ) -> Option<u64> {
        let oldest = queue.front()?;
        let t = if queue.len() >= self.cfg.max_batch {
            server_free_ns
        } else {
            server_free_ns.max(oldest.arrival_ns + self.cfg.max_delay_ns)
        };
        Some(t.max(cursor_ns))
    }

    /// Pop the head batch (up to `max_batch` requests, arrival order).
    pub fn take(&self, queue: &mut VecDeque<Request>) -> Vec<Request> {
        let n = queue.len().min(self.cfg.max_batch);
        queue.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::Priority;
    use super::*;

    fn req(id: u64, arrival_ns: u64) -> Request {
        Request {
            id,
            node: 0,
            arrival_ns,
            deadline_ns: arrival_ns + 100_000_000,
            priority: Priority::Normal,
            staleness_budget_ms: 100,
        }
    }

    #[test]
    fn full_batch_dispatches_when_server_free() {
        let b = Batcher::new(BatcherConfig {
            max_batch: 2,
            max_delay_ns: 1_000_000,
        });
        let mut q: VecDeque<Request> = [req(0, 10), req(1, 20)].into_iter().collect();
        assert_eq!(b.dispatch_at(&q, 500, 20), Some(500));
        let batch = b.take(&mut q);
        assert_eq!(batch.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn partial_batch_waits_out_the_delay_budget() {
        let b = Batcher::new(BatcherConfig {
            max_batch: 8,
            max_delay_ns: 1_000_000,
        });
        let q: VecDeque<Request> = [req(0, 100)].into_iter().collect();
        assert_eq!(b.dispatch_at(&q, 0, 100), Some(1_000_100));
        assert_eq!(b.dispatch_at(&VecDeque::new(), 0, 0), None);
    }

    #[test]
    fn dispatch_never_precedes_the_cursor() {
        let b = Batcher::new(BatcherConfig {
            max_batch: 8,
            max_delay_ns: 10,
        });
        let q: VecDeque<Request> = [req(0, 0)].into_iter().collect();
        assert_eq!(b.dispatch_at(&q, 0, 5_000), Some(5_000));
    }
}
