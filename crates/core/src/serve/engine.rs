//! The deterministic request/response serving engine.
//!
//! A discrete-event loop over simulated time: open-loop arrivals from the
//! seeded trace generator are offered to the admission controller, the
//! batcher forms batches under its `max_batch`/`max_delay` knobs, and
//! each batch is served against the freshness-SLA embedding store. Cache
//! misses recompute real embeddings through the model and charge feature
//! movement to the `fgnn-memsim` interconnect — including its bounded
//! retry/backoff loop and circuit breaker — so every latency, shed
//! decision and metric is a pure function of the seed and two same-seed
//! runs are byte-identical.
//!
//! **Degraded mode** engages when the transfer breaker is open or the
//! supervisor's health state says so ([`HealthState::is_degraded`]): the
//! store widens cache hits from the tight operator SLA to each request's
//! own staleness budget, so admitted requests complete from cache instead
//! of queueing behind a broken interconnect. Deadline shedding looks
//! ahead using a running maximum of observed batch service times: work
//! that cannot finish before its deadline is dropped at dispatch, which
//! is what keeps the p99 of *served* requests under the deadline while
//! the queue sheds bounded load instead of collapsing.

use super::admission::AdmissionController;
use super::batcher::Batcher;
use super::freshness::EmbedStore;
use super::trace::Request;
use super::{ServeConfig, SERVE_AGE_BUCKETS_MS, SERVE_LATENCY_BUCKETS_NS, SERVE_QUEUE_BUCKETS};
use crate::cache::policy::Verdict;
use crate::error::FgnnError;
use crate::obs::window::{AlertEvent, SloMonitor};
use crate::obs::{MetricClass, Obs, Tracer};
use crate::resilience::HealthState;
use fgnn_graph::sample::NeighborSampler;
use fgnn_graph::{Dataset, NodeId};
use fgnn_memsim::fault::{BreakerPolicy, BreakerState, FaultPlan, FaultState, RetryPolicy};
use fgnn_memsim::presets::{dense_flops, Machine};
use fgnn_memsim::transfer::SYNC_LATENCY;
use fgnn_memsim::{Node, TrafficCounters, TransferEngine};
use fgnn_nn::model::{Arch, Model};
use fgnn_tensor::Rng;
use std::collections::VecDeque;

/// Fixed per-request serving overhead (seconds): response framing and
/// cache-row readout, charged even on an all-hit batch.
const PER_REQUEST_OVERHEAD: f64 = 2e-6;

/// Hash constant mixed into the exemplar-sampling stream so it can never
/// collide with the miss-path sampling streams (which key off the batch
/// index, not the request id).
const EXEMPLAR_STREAM: u64 = 0x0E8E_3F4A_52C3_D94B;

/// Cost breakdown of one served batch: the exact simulated seconds of
/// each pipeline stage, the wire bytes it charged, and per-request
/// hit/verdict details — everything the request tracer needs to lay span
/// boundaries without touching the service-time accumulation itself.
struct BatchOutcome {
    /// Total service seconds (the pre-existing accumulation, untouched).
    service_secs: f64,
    /// Served cache hits in the batch.
    hits: u64,
    /// Served cache misses in the batch.
    misses: u64,
    /// Batch-assembly sync cost (`SYNC_LATENCY`).
    assembly_secs: f64,
    /// Per-request readout/framing cost (`len × PER_REQUEST_OVERHEAD`).
    lookup_secs: f64,
    /// Miss-path feature movement: transfer plus retry/backoff seconds.
    fetch_secs: f64,
    /// Miss-path model recompute seconds.
    compute_secs: f64,
    /// Host-to-GPU bytes charged to the ledger by this batch.
    wire_bytes: u64,
    /// Per request, batch order: `Some(age_ms)` on a cache hit.
    ages: Vec<Option<u32>>,
    /// Admission verdicts for the batch's miss nodes (policy order).
    verdicts: Vec<(fgnn_graph::NodeId, Verdict)>,
}

/// Outcome summary of one serving run. All fields are exact (simulated)
/// quantities: equal seeds produce equal reports.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Requests in the offered trace.
    pub offered: u64,
    /// Requests admitted past the token bucket and queue bound.
    pub admitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by the token bucket.
    pub shed_rate_limited: u64,
    /// Requests shed by the bounded queue (including displacements).
    pub shed_queue_full: u64,
    /// Requests shed because their deadline became unreachable.
    pub shed_deadline: u64,
    /// Requests served while the engine was in degraded mode.
    pub degraded_served: u64,
    /// Served cache hits.
    pub cache_hits: u64,
    /// Served cache misses (recomputed through the model).
    pub cache_misses: u64,
    /// Served embeddings older than their request's staleness budget.
    /// The freshness-SLA invariant is that this is zero.
    pub sla_violations: u64,
    /// Served requests that completed after their deadline (the lookahead
    /// shed keeps this near zero; it is reported, not hidden).
    pub deadline_misses: u64,
    /// Exact latency percentiles over served requests (milliseconds).
    pub p50_ms: f64,
    /// 95th-percentile latency (milliseconds).
    pub p95_ms: f64,
    /// 99th-percentile latency (milliseconds).
    pub p99_ms: f64,
    /// Deepest admission queue observed.
    pub max_queue_depth: usize,
    /// Simulated run duration (first arrival to last completion), seconds.
    pub duration_secs: f64,
    /// Served requests per simulated second.
    pub throughput_rps: f64,
    /// Shed fraction of offered load.
    pub shed_fraction: f64,
    /// Append-only `(request id, reason)` shed ledger, in decision order.
    pub shed_log: Vec<(u64, super::admission::ShedReason)>,
}

impl ServeReport {
    /// Total shed requests across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_deadline
    }
}

/// The serving engine: model, embedding store, simulated machine and
/// fault state, plus the observability registry the run writes into.
pub struct ServeEngine<'a> {
    ds: &'a Dataset,
    model: Model,
    machine: Machine,
    cfg: ServeConfig,
    store: EmbedStore,
    faults: FaultState,
    health: HealthState,
    /// Observability state (sim clock, per-batch spans, `Exact` metrics).
    pub obs: Obs,
    /// Exemplar request-span stream (separate from `obs.tracer`, which
    /// carries the complete per-batch spans): each traced request is a
    /// contiguous `admission → queue_wait → batch_assembly →
    /// embed_lookup → recompute → respond` tree under a `request` parent.
    req_tracer: Tracer,
    /// The multi-window SLO burn-rate monitor, fed every completion and
    /// shed decision in sim-time order.
    slo: SloMonitor,
    /// Requests whose span trees were emitted (exemplar count).
    exemplars: u64,
}

impl<'a> ServeEngine<'a> {
    /// Build a serving engine over `ds` with a freshly initialized
    /// `hidden`-wide model on `machine`. The model is seeded from
    /// `cfg.seed`; swap in trained weights via [`ServeEngine::model_mut`].
    pub fn new(
        ds: &'a Dataset,
        hidden: usize,
        machine: Machine,
        cfg: ServeConfig,
    ) -> Result<Self, FgnnError> {
        cfg.validate()?;
        if cfg.trace.num_nodes > ds.num_nodes() {
            return Err(FgnnError::Serve(format!(
                "trace universe {} exceeds dataset nodes {}",
                cfg.trace.num_nodes,
                ds.num_nodes()
            )));
        }
        let mut rng = Rng::new(cfg.seed);
        let mut dims = Vec::with_capacity(cfg.fanouts.len() + 1);
        dims.push(ds.spec.feature_dim);
        for _ in 1..cfg.fanouts.len() {
            dims.push(hidden);
        }
        dims.push(ds.spec.num_classes);
        let model = Model::new(Arch::Sage, &dims, &mut rng);
        let store = EmbedStore::new(ds.num_nodes(), ds.spec.num_classes, cfg.freshness.clone());
        let slo = SloMonitor::new(cfg.telemetry.slo.clone(), &SERVE_LATENCY_BUCKETS_NS);
        Ok(ServeEngine {
            ds,
            model,
            machine,
            cfg,
            store,
            faults: FaultState::none(),
            health: HealthState::Healthy,
            obs: Obs::new(),
            req_tracer: Tracer::new(),
            slo,
            exemplars: 0,
        })
    }

    /// The exemplar request-span stream (`fgnn-serve-trace-v1` payload).
    pub fn request_tracer(&self) -> &Tracer {
        &self.req_tracer
    }

    /// The SLO monitor: windowed latency sketch and burn-rate state.
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// Alert fire/resolve edges emitted so far, in sim-time order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.slo.alerts
    }

    /// Whether request `id` is traced as an exemplar: a deterministic
    /// hash of `(seed, id)`, so the sampled set is identical on every
    /// rerun and independent of every other RNG stream in the engine.
    fn is_exemplar(&self, id: u64) -> bool {
        match self.cfg.telemetry.exemplar_every {
            0 => false,
            1 => true,
            n => Rng::new(
                self.cfg
                    .seed
                    .wrapping_add(EXEMPLAR_STREAM)
                    .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
            .next_u64()
            .is_multiple_of(n),
        }
    }

    /// The model behind the serving engine (e.g. to import trained
    /// parameters before opening for traffic).
    pub fn model_mut(&mut self) -> &mut Model {
        &mut self.model
    }

    /// Install a seeded fault plan + retry policy on the miss-fetch path.
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        self.faults.inject(plan, policy);
    }

    /// Arm a closed circuit breaker over the miss-fetch path.
    pub fn enable_breaker(&mut self, policy: BreakerPolicy) {
        self.faults.arm_breaker(policy);
    }

    /// Force the breaker open (arming it first if needed): the degraded-
    /// serving drill used by tests and the chaos suite.
    pub fn trip_breaker(&mut self) {
        if self.faults.breaker.is_none() {
            self.faults.arm_breaker(BreakerPolicy::default());
        }
        let b = self.faults.breaker.as_mut().expect("armed above");
        while b.state() != BreakerState::Open {
            b.record_failure();
        }
    }

    /// Current breaker state, if one is armed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.faults.breaker_state()
    }

    /// Feed the supervisor's health verdict into the serving engine;
    /// degraded or recovering health engages the SLA-relaxed read path.
    pub fn set_health(&mut self, health: HealthState) {
        self.health = health;
    }

    /// The embedding store (cache counters, SLA bookkeeping).
    pub fn store(&self) -> &EmbedStore {
        &self.store
    }

    /// Warm the cache with freshly computed embeddings for `nodes` at sim
    /// time zero (no traffic is charged: warm-up is provisioning, not
    /// serving).
    pub fn warm(&mut self, nodes: &[NodeId]) {
        let mut sampler = NeighborSampler::new(self.ds.num_nodes());
        let mut rng = Rng::new(self.cfg.seed ^ 0x5EED_4A3B_1C2D_3E4F);
        let fanouts = self.cfg.fanouts.clone();
        for chunk in nodes.chunks(256) {
            let mb = sampler.sample(&self.ds.graph, chunk, &fanouts, &mut rng);
            let ids: Vec<usize> = mb.input_nodes().iter().map(|&g| g as usize).collect();
            let h0 = self.ds.features.gather_rows(&ids);
            let trace = self.model.forward(&mb, h0);
            let out = trace.h.last().expect("model has layers");
            self.store.warm(chunk, |i| out.row(i), 0);
        }
    }

    /// Serve `trace` to completion and return the run report. The trace
    /// must be arrival-ordered (as [`super::generate_trace`] produces);
    /// fault state is threaded back out, so trip counts and the plan's
    /// RNG stream persist across runs exactly like training epochs.
    pub fn run(&mut self, trace: &[Request]) -> Result<ServeReport, FgnnError> {
        self.cfg.validate()?;
        if let Some(bad) = trace
            .iter()
            .find(|r| r.node as usize >= self.ds.num_nodes())
        {
            return Err(FgnnError::Serve(format!(
                "request {} targets node {} outside the {}-node dataset",
                bad.id,
                bad.node,
                self.ds.num_nodes()
            )));
        }
        if let Some(w) = trace.windows(2).find(|w| w[0].arrival_ns > w[1].arrival_ns) {
            return Err(FgnnError::Serve(format!(
                "trace is not arrival-ordered at request {}",
                w[1].id
            )));
        }

        let mut adm = AdmissionController::new(self.cfg.admission.clone());
        let batcher = Batcher::new(self.cfg.batcher.clone());
        let topo = self.machine.topology.clone();
        let mut transfer = match self.faults.plan.take() {
            Some(plan) => TransferEngine::with_faults(&topo, plan, self.faults.policy),
            None => TransferEngine::new(&topo),
        };
        transfer.set_breaker(self.faults.breaker.take());
        let mut counters = TrafficCounters::new();

        let mut i = 0usize; // next trace arrival
        let mut cursor_ns = 0u64;
        let mut server_free_ns = 0u64;
        let mut est_service_ns = 0u64;
        let mut end_ns = 0u64;
        let mut batch_idx = 0u64;
        let mut latencies_ns: Vec<u64> = Vec::new();
        let mut served = 0u64;
        let mut degraded_served = 0u64;
        let mut degraded_batches = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut deadline_misses = 0u64;
        // Completions not yet fed to the SLO monitor: the loop cursor can
        // revisit sim times earlier than the last batch's completion, so
        // completions are buffered and drained in time order (the monitor
        // requires a nondecreasing event stream). Batch completions are
        // themselves monotone (the server is serial), so a deque suffices.
        let mut pending_served: VecDeque<(u64, u64, bool)> = VecDeque::new();
        // Shed-ledger entries already mirrored into telemetry.
        let mut shed_seen = 0usize;

        loop {
            let dispatch = batcher.dispatch_at(&adm.queue, server_free_ns, cursor_ns);
            let next_arrival = trace.get(i).map(|r| r.arrival_ns);
            match (next_arrival, dispatch) {
                // Arrivals are processed first on ties so a full batch
                // still picks up the freshest co-arriving request.
                (Some(a), d) if d.is_none_or(|d| a <= d) => {
                    cursor_ns = a;
                    self.drain_served(&mut pending_served, cursor_ns);
                    adm.offer(trace[i], cursor_ns);
                    self.note_sheds(&adm, &mut shed_seen, cursor_ns);
                    self.obs.metrics.hist_observe(
                        "serve.queue.depth",
                        MetricClass::Exact,
                        &SERVE_QUEUE_BUCKETS,
                        adm.queue.len() as f64,
                    );
                    i += 1;
                }
                (_, Some(d)) => {
                    cursor_ns = d;
                    self.drain_served(&mut pending_served, cursor_ns);
                    // Lookahead shed: drop work that cannot finish before
                    // its deadline given the worst batch seen so far.
                    adm.shed_expired(cursor_ns + est_service_ns);
                    self.note_sheds(&adm, &mut shed_seen, cursor_ns);
                    let batch = batcher.take(&mut adm.queue);
                    if batch.is_empty() {
                        continue;
                    }
                    let start_ns = cursor_ns;
                    let degraded = transfer.breaker_open() || self.health.is_degraded();
                    let out = self.serve_batch(
                        &batch,
                        start_ns,
                        degraded,
                        &mut transfer,
                        &mut counters,
                        batch_idx,
                    );
                    let service_ns = (out.service_secs * 1e9).round() as u64;
                    let completion_ns = start_ns + service_ns;
                    est_service_ns = est_service_ns.max(service_ns);
                    server_free_ns = completion_ns;
                    end_ns = end_ns.max(completion_ns);
                    cache_hits += out.hits;
                    cache_misses += out.misses;
                    served += batch.len() as u64;
                    if degraded {
                        degraded_served += batch.len() as u64;
                        degraded_batches += 1;
                    }
                    // Interior span boundaries: monotone cumulative rounds
                    // of the stage costs, clamped into the batch interval,
                    // with the final boundary pinned to `completion_ns` —
                    // so each request's children tile [arrival, completion]
                    // exactly and the `respond` span absorbs rounding slack.
                    let round_ns = |secs: f64| (secs * 1e9).round() as u64;
                    let cum_lookup = out.assembly_secs + out.lookup_secs;
                    let cum_recompute = cum_lookup + out.fetch_secs + out.compute_secs;
                    let b1 = (start_ns + round_ns(out.assembly_secs)).min(completion_ns);
                    let b2 = (start_ns + round_ns(cum_lookup)).clamp(b1, completion_ns);
                    let b3 = (start_ns + round_ns(cum_recompute)).clamp(b2, completion_ns);
                    let vmap: std::collections::BTreeMap<NodeId, Verdict> =
                        out.verdicts.iter().copied().collect();
                    for (j, r) in batch.iter().enumerate() {
                        let latency = completion_ns - r.arrival_ns;
                        latencies_ns.push(latency);
                        self.obs.metrics.hist_observe(
                            "serve.latency_ns",
                            MetricClass::Exact,
                            &SERVE_LATENCY_BUCKETS_NS,
                            latency as f64,
                        );
                        let late = completion_ns > r.deadline_ns;
                        if late {
                            deadline_misses += 1;
                        }
                        pending_served.push_back((completion_ns, latency, late));
                        if self.is_exemplar(r.id) {
                            self.exemplars += 1;
                            let age = out.ages[j];
                            let verdict = match age {
                                Some(_) => None,
                                None => vmap.get(&r.node).copied(),
                            };
                            self.emit_request_spans(
                                r,
                                (start_ns, b1, b2, b3, completion_ns),
                                degraded,
                                age,
                                verdict,
                                &out,
                            );
                        }
                    }
                    self.obs.tracer.begin("batch", "serve", start_ns);
                    self.obs.tracer.end_with(
                        completion_ns,
                        vec![
                            ("size", batch.len() as u64),
                            ("misses", out.misses),
                            ("degraded", degraded as u64),
                            ("wire_bytes", out.wire_bytes),
                        ],
                    );
                    batch_idx += 1;
                }
                (None, None) => break,
                (Some(_), None) => unreachable!("arrivals left but no dispatch candidate"),
            }
        }
        self.drain_served(&mut pending_served, u64::MAX);

        // Thread fault state back out (plan RNG stream + breaker trips
        // persist across runs, as in the training engine).
        self.faults.plan = transfer.take_fault_plan();
        self.faults.breaker = transfer.take_breaker();

        let offered = trace.len() as u64;
        if offered > 0 && served == 0 {
            return Err(FgnnError::Overload(format!(
                "all {offered} offered requests were shed (rate {} rps over queue cap {})",
                self.cfg.trace.rate_rps, self.cfg.admission.queue_cap
            )));
        }
        let admitted = served; // the queue fully drains: admitted − deadline-shed = served
        let admitted_total = offered - adm.shed_rate_limited - adm.shed_queue_full;
        debug_assert_eq!(admitted_total, admitted + adm.shed_deadline);

        latencies_ns.sort_unstable();
        let pct = |q: f64| -> f64 {
            if latencies_ns.is_empty() {
                return 0.0;
            }
            let n = latencies_ns.len();
            let idx = (((n as f64) * q).ceil() as usize).clamp(1, n) - 1;
            latencies_ns[idx] as f64 / 1e6
        };
        let duration_secs = end_ns as f64 * 1e-9;
        let report = ServeReport {
            offered,
            admitted: admitted_total,
            served,
            shed_rate_limited: adm.shed_rate_limited,
            shed_queue_full: adm.shed_queue_full,
            shed_deadline: adm.shed_deadline,
            degraded_served,
            cache_hits,
            cache_misses,
            sla_violations: self.store.sla_violations,
            deadline_misses,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_queue_depth: adm.max_depth,
            duration_secs,
            throughput_rps: if duration_secs > 0.0 {
                served as f64 / duration_secs
            } else {
                0.0
            },
            shed_fraction: if offered > 0 {
                adm.shed_total() as f64 / offered as f64
            } else {
                0.0
            },
            shed_log: adm.shed_log.clone(),
        };

        // Flush the run's Exact metrics into the registry.
        let m = &mut self.obs.metrics;
        let e = MetricClass::Exact;
        m.counter_set("serve.requests.offered", e, report.offered);
        m.counter_set("serve.requests.admitted", e, report.admitted);
        m.counter_set("serve.requests.served", e, report.served);
        m.counter_set("serve.shed.rate_limited", e, report.shed_rate_limited);
        m.counter_set("serve.shed.queue_full", e, report.shed_queue_full);
        m.counter_set("serve.shed.deadline", e, report.shed_deadline);
        m.counter_set("serve.deadline_misses", e, report.deadline_misses);
        m.counter_set("serve.batches", e, batch_idx);
        m.counter_set("serve.cache.hits", e, report.cache_hits);
        m.counter_set("serve.cache.misses", e, report.cache_misses);
        m.counter_set("serve.degraded.served", e, report.degraded_served);
        m.counter_set("serve.degraded.batches", e, degraded_batches);
        m.counter_set("serve.degraded.hits", e, self.store.degraded_hits);
        m.counter_set("serve.sla.violations", e, report.sla_violations);
        m.counter_set("serve.transfer.failed", e, counters.failed_transfers);
        m.counter_set("serve.transfer.retries", e, counters.retries);
        m.counter_set("serve.transfer.h2d_bytes", e, counters.host_to_gpu_bytes);
        m.gauge_set("serve.transfer.seconds", e, counters.transfer_seconds);
        m.gauge_set("serve.transfer.retry_seconds", e, counters.retry_seconds);
        m.counter_set("serve.slo.alerts", e, self.slo.alerts.len() as u64);
        m.gauge_set("serve.slo.firing", e, self.slo.active_count() as f64);
        m.counter_set("serve.trace.exemplars", e, self.exemplars);
        m.counter_set("serve.trace.spans", e, self.req_tracer.spans().len() as u64);
        if let Some(b) = &self.faults.breaker {
            m.counter_set("serve.breaker.trips", e, b.trips);
            m.counter_set("serve.breaker.fast_fails", e, b.fast_fails);
            m.gauge_set("serve.breaker.state", e, b.state().code() as f64);
        }
        self.obs.clock.advance_secs(duration_secs);
        Ok(report)
    }

    /// Serve one batch at `start_ns`: cache hits read the store, misses
    /// recompute through the model with feature movement charged to the
    /// simulated interconnect. The per-stage seconds in the returned
    /// [`BatchOutcome`] are the *same* terms the service accumulation
    /// adds, bound to temporaries — the floating-point evaluation order
    /// is unchanged, so reports stay byte-identical with tracing on.
    fn serve_batch(
        &mut self,
        batch: &[Request],
        start_ns: u64,
        degraded: bool,
        transfer: &mut TransferEngine<'_>,
        counters: &mut TrafficCounters,
        batch_idx: u64,
    ) -> BatchOutcome {
        let now_ms = (start_ns / 1_000_000) as u32;
        for r in batch {
            self.store.note_request(r.node);
        }
        let mut hits = 0u64;
        let mut ages: Vec<Option<u32>> = Vec::with_capacity(batch.len());
        let mut miss_nodes: Vec<NodeId> = Vec::new();
        let mut seen_miss = std::collections::BTreeSet::new();
        for r in batch {
            match self.store.try_hit(r, now_ms, degraded) {
                Some(age) => {
                    hits += 1;
                    ages.push(Some(age));
                    self.obs.metrics.hist_observe(
                        "serve.served_age_ms",
                        MetricClass::Exact,
                        &SERVE_AGE_BUCKETS_MS,
                        age as f64,
                    );
                }
                None => {
                    ages.push(None);
                    if seen_miss.insert(r.node) {
                        miss_nodes.push(r.node);
                    }
                }
            }
        }
        let misses = (batch.len() as u64) - hits;

        let mut service = SYNC_LATENCY + batch.len() as f64 * PER_REQUEST_OVERHEAD;
        let mut fetch_secs = 0.0;
        let mut compute_secs = 0.0;
        let mut wire_bytes = 0u64;
        let mut verdicts = Vec::new();
        if !miss_nodes.is_empty() {
            let mut sampler = NeighborSampler::new(self.ds.num_nodes());
            let mut rng = Rng::new(self.cfg.seed ^ batch_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mb = sampler.sample(&self.ds.graph, &miss_nodes, &self.cfg.fanouts, &mut rng);
            let ids: Vec<usize> = mb.input_nodes().iter().map(|&g| g as usize).collect();
            let h0 = self.ds.features.gather_rows(&ids);
            let bytes = (ids.len() * self.ds.spec.feature_row_bytes()) as u64;
            // The requester blocks through retries and backoff, so fault
            // losses (`retry_seconds`) are service time here, unlike the
            // trainer's separate loss ledger.
            let h2d_before = counters.host_to_gpu_bytes;
            let retry_before = counters.retry_seconds;
            let t_read = transfer.one_sided_read(Node::Host, Node::Gpu(0), bytes, counters);
            service += t_read;
            let t_retry = counters.retry_seconds - retry_before;
            service += t_retry;
            fetch_secs = t_read + t_retry;
            wire_bytes = counters.host_to_gpu_bytes - h2d_before;
            let trace = self.model.forward(&mb, h0);
            let flops = dense_flops(
                ids.len(),
                self.ds.spec.feature_dim,
                self.ds.spec.num_classes,
            ) * self.cfg.fanouts.len() as f64;
            let t_compute = self.machine.gpu.compute_seconds(flops);
            service += t_compute;
            compute_secs = t_compute;
            let out = trace.h.last().expect("model has layers");
            // Freshly computed embeddings are served at age 0; the hot
            // fraction is admitted for future hits.
            for _ in 0..miss_nodes.len() {
                self.obs.metrics.hist_observe(
                    "serve.served_age_ms",
                    MetricClass::Exact,
                    &SERVE_AGE_BUCKETS_MS,
                    0.0,
                );
            }
            self.store.admit_fresh(&miss_nodes, |i| out.row(i), now_ms);
            verdicts = self.store.last_verdicts.clone();
        }
        BatchOutcome {
            service_secs: service,
            hits,
            misses,
            assembly_secs: SYNC_LATENCY,
            lookup_secs: batch.len() as f64 * PER_REQUEST_OVERHEAD,
            fetch_secs,
            compute_secs,
            wire_bytes,
            ages,
            verdicts,
        }
    }

    /// Drain buffered completion events with timestamp `<= upto_ns` into
    /// the SLO monitor, preserving its nondecreasing-time contract.
    fn drain_served(&mut self, pending: &mut VecDeque<(u64, u64, bool)>, upto_ns: u64) {
        while pending.front().is_some_and(|&(t, _, _)| t <= upto_ns) {
            let (t, latency_ns, bad) = pending.pop_front().expect("peeked above");
            self.slo.record_served(t, latency_ns, bad);
        }
    }

    /// Mirror new shed-ledger entries into telemetry: each shed counts
    /// against the SLO error budget, and exemplar-sampled sheds emit a
    /// zero-duration `shed` span carrying the request id and reason.
    fn note_sheds(&mut self, adm: &AdmissionController, shed_seen: &mut usize, cursor_ns: u64) {
        while *shed_seen < adm.shed_log.len() {
            let (id, reason) = adm.shed_log[*shed_seen];
            *shed_seen += 1;
            self.slo.record_shed(cursor_ns);
            if self.is_exemplar(id) {
                self.exemplars += 1;
                self.req_tracer.begin("shed", "serve_req", cursor_ns);
                self.req_tracer
                    .end_with(cursor_ns, vec![("id", id), ("reason", reason.code())]);
            }
        }
    }

    /// Emit one exemplar request's span tree. `bounds` is the monotone
    /// boundary tuple `(start, b1, b2, b3, completion)` laid down by the
    /// run loop; together with the zero-duration `admission` marker and
    /// the `queue_wait` span from `arrival_ns` to `start`, the six
    /// children tile `[arrival_ns, completion]` exactly — their durations
    /// sum to the request's latency in integer nanoseconds.
    fn emit_request_spans(
        &mut self,
        r: &Request,
        bounds: (u64, u64, u64, u64, u64),
        degraded: bool,
        age: Option<u32>,
        verdict: Option<Verdict>,
        out: &BatchOutcome,
    ) {
        let (start_ns, b1, b2, b3, completion_ns) = bounds;
        let t = &mut self.req_tracer;
        t.begin("request", "serve_req", r.arrival_ns);
        t.begin("admission", "serve_req", r.arrival_ns);
        t.end(r.arrival_ns);
        t.begin("queue_wait", "serve_req", r.arrival_ns);
        t.end(start_ns);
        t.begin("batch_assembly", "serve_req", start_ns);
        t.end_with(b1, vec![("size", out.ages.len() as u64)]);
        t.begin("embed_lookup", "serve_req", b1);
        let mut lookup_args = vec![("hit", age.is_some() as u64)];
        match (age, verdict) {
            (Some(a), _) => lookup_args.push(("age_ms", a as u64)),
            (None, Some(v)) => lookup_args.push(("verdict", v.code())),
            (None, None) => {}
        }
        t.end_with(b2, lookup_args);
        t.begin("recompute", "serve_req", b2);
        t.end_with(
            b3,
            vec![("wire_bytes", out.wire_bytes), ("batch_misses", out.misses)],
        );
        t.begin("respond", "serve_req", b3);
        t.end(completion_ns);
        t.end_with(
            completion_ns,
            vec![
                ("id", r.id),
                ("node", r.node as u64),
                ("priority", r.priority.code()),
                ("degraded", degraded as u64),
                ("hit", age.is_some() as u64),
                ("latency_ns", completion_ns - r.arrival_ns),
            ],
        );
    }
}
