//! Schema-tagged serving exports: a `fgnn-serve-v1` JSONL stream and a
//! compact benchmark-trajectory JSON blob.
//!
//! Like the obs exporters (DESIGN.md §8), everything is hand-rolled JSON
//! — no serde, zero registry dependencies — and deterministic: the stream
//! is built from `Exact`-class quantities only, so two same-seed runs
//! export byte-identical documents. `scripts/ci.sh` greps the schema tag
//! out of a live `exp_serve` run.

use super::engine::ServeReport;
use crate::obs::export::{
    chrome_trace_tagged, json_escape, json_f64, metrics_jsonl, span_jsonl_line,
};
use crate::obs::window::AlertEvent;
use crate::obs::{Obs, Tracer};

/// Schema tag stamped on every serving export line.
pub const SERVE_SCHEMA_VERSION: &str = crate::obs::schema::SERVE_V1;

/// Schema tag stamped on the request-trace export (span trees + alerts).
pub const SERVE_TRACE_SCHEMA_VERSION: &str = crate::obs::schema::SERVE_TRACE_V1;

/// Render the request-level trace of one serving run as a JSONL document:
///
/// 1. a header line carrying the `fgnn-serve-trace-v1` schema tag;
/// 2. one `span` line per closed request-tracer span, in close order
///    (children before parents — each exemplar request's `admission →
///    queue_wait → batch_assembly → embed_lookup → recompute → respond`
///    children immediately precede their `request` parent);
/// 3. one `alert` line per SLO fire/resolve edge, in sim-time order.
///
/// Everything is `Exact`-class, so same-seed runs export byte-identical
/// documents.
pub fn serve_trace_jsonl(section: &str, req_tracer: &Tracer, alerts: &[AlertEvent]) -> String {
    let sec = json_escape(section);
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schemaVersion\":\"{SERVE_TRACE_SCHEMA_VERSION}\",\"kind\":\"serve_trace\",\"section\":\"{sec}\"}}\n"
    ));
    for span in req_tracer.spans() {
        out.push_str(&span_jsonl_line(section, span));
    }
    for a in alerts {
        out.push_str(&format!(
            concat!(
                "{{\"section\":\"{sec}\",\"kind\":\"alert\",\"rule\":\"{rule}\"",
                ",\"fired\":{fired},\"atNs\":{at},\"burnLong\":{bl},\"burnShort\":{bs}",
                ",\"windowedP99Ns\":{p99}}}\n"
            ),
            sec = sec,
            rule = json_escape(a.rule),
            fired = a.fired,
            at = a.at_ns,
            bl = json_f64(a.burn_long),
            bs = json_f64(a.burn_short),
            p99 = a.windowed_p99_ns,
        ));
    }
    out
}

/// Render request-span sections as a Chrome-trace document tagged with
/// the serve-trace schema (loadable in `chrome://tracing` / Perfetto).
pub fn serve_chrome_trace(sections: &[(&str, &Tracer)]) -> String {
    chrome_trace_tagged(SERVE_TRACE_SCHEMA_VERSION, sections)
}

/// Render one serving run as a JSONL document:
///
/// 1. a header line carrying the schema tag;
/// 2. a `summary` line with the run's headline numbers;
/// 3. a `shed_log` line with the full `(id, reason)` shed ledger;
/// 4. one `metrics` line per `Exact` metric in `obs` (the standard
///    obs stream, re-tagged under `section`).
pub fn serve_jsonl(section: &str, report: &ServeReport, obs: &Obs) -> String {
    let sec = json_escape(section);
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schemaVersion\":\"{SERVE_SCHEMA_VERSION}\",\"kind\":\"serve\",\"section\":\"{sec}\"}}\n"
    ));
    out.push_str(&format!(
        concat!(
            "{{\"section\":\"{sec}\",\"kind\":\"summary\"",
            ",\"offered\":{offered},\"admitted\":{admitted},\"served\":{served}",
            ",\"shedRateLimited\":{srl},\"shedQueueFull\":{sqf},\"shedDeadline\":{sd}",
            ",\"degradedServed\":{deg},\"cacheHits\":{ch},\"cacheMisses\":{cm}",
            ",\"slaViolations\":{sla},\"deadlineMisses\":{dm}",
            ",\"p50Ms\":{p50},\"p95Ms\":{p95},\"p99Ms\":{p99}",
            ",\"maxQueueDepth\":{mqd},\"durationSecs\":{dur}",
            ",\"throughputRps\":{thr},\"shedFraction\":{sf}}}\n"
        ),
        sec = sec,
        offered = report.offered,
        admitted = report.admitted,
        served = report.served,
        srl = report.shed_rate_limited,
        sqf = report.shed_queue_full,
        sd = report.shed_deadline,
        deg = report.degraded_served,
        ch = report.cache_hits,
        cm = report.cache_misses,
        sla = report.sla_violations,
        dm = report.deadline_misses,
        p50 = json_f64(report.p50_ms),
        p95 = json_f64(report.p95_ms),
        p99 = json_f64(report.p99_ms),
        mqd = report.max_queue_depth,
        dur = json_f64(report.duration_secs),
        thr = json_f64(report.throughput_rps),
        sf = json_f64(report.shed_fraction),
    ));
    let decisions: Vec<String> = report
        .shed_log
        .iter()
        .map(|(id, reason)| format!("{{\"id\":{id},\"reason\":\"{}\"}}", reason.name()))
        .collect();
    out.push_str(&format!(
        "{{\"section\":\"{sec}\",\"kind\":\"shed_log\",\"decisions\":[{}]}}\n",
        decisions.join(",")
    ));
    out.push_str(&metrics_jsonl(section, &obs.metrics, false));
    out
}

/// Render one `(label, report)` sweep as a benchmark-trajectory JSON
/// object (the payload `scripts/bench_trajectory.sh` commits as
/// `BENCH_serve.json`). Latency percentiles are in milliseconds.
pub fn bench_json(runs: &[(String, &ServeReport)]) -> String {
    let entries: Vec<String> = runs
        .iter()
        .map(|(label, r)| {
            format!(
                concat!(
                    "    {{\"label\":\"{}\",\"p50Ms\":{},\"p95Ms\":{},\"p99Ms\":{}",
                    ",\"throughputRps\":{},\"shedFraction\":{},\"served\":{},\"slaViolations\":{}}}"
                ),
                json_escape(label),
                json_f64(r.p50_ms),
                json_f64(r.p95_ms),
                json_f64(r.p99_ms),
                json_f64(r.throughput_rps),
                json_f64(r.shed_fraction),
                r.served,
                r.sla_violations,
            )
        })
        .collect();
    format!(
        "{{\n  \"schemaVersion\":\"{SERVE_SCHEMA_VERSION}\",\n  \"kind\":\"bench\",\n  \"runs\":[\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::super::admission::ShedReason;
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            offered: 10,
            admitted: 8,
            served: 7,
            shed_rate_limited: 1,
            shed_queue_full: 1,
            shed_deadline: 1,
            degraded_served: 2,
            cache_hits: 5,
            cache_misses: 2,
            sla_violations: 0,
            deadline_misses: 0,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 4.25,
            max_queue_depth: 6,
            duration_secs: 0.5,
            throughput_rps: 14.0,
            shed_fraction: 0.3,
            shed_log: vec![
                (3, ShedReason::RateLimited),
                (9, ShedReason::DeadlineExpired),
            ],
        }
    }

    #[test]
    fn jsonl_is_schema_tagged_and_line_shaped() {
        let doc = serve_jsonl("serve", &report(), &Obs::new());
        let mut lines = doc.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"schemaVersion\":\"fgnn-serve-v1\""));
        assert!(header.contains("\"kind\":\"serve\""));
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(doc.contains("\"kind\":\"summary\""));
        assert!(doc.contains("\"p99Ms\":4.25"));
        assert!(doc.contains("\"reason\":\"rate_limited\""));
        assert!(doc.contains("\"reason\":\"deadline_expired\""));
    }

    #[test]
    fn trace_jsonl_carries_spans_then_alerts() {
        let mut t = Tracer::new();
        t.begin("request", "serve_req", 100);
        t.begin("queue_wait", "serve_req", 100);
        t.end(250);
        t.end_with(400, vec![("id", 7)]);
        let alerts = vec![AlertEvent {
            at_ns: 500,
            rule: "fast-burn",
            fired: true,
            burn_long: 8.5,
            burn_short: 12.0,
            windowed_p99_ns: 300_000,
        }];
        let doc = serve_trace_jsonl("serve", &t, &alerts);
        let lines: Vec<&str> = doc.lines().collect();
        assert!(lines[0].contains("\"schemaVersion\":\"fgnn-serve-trace-v1\""));
        assert!(lines[0].contains("\"kind\":\"serve_trace\""));
        assert!(lines[1].contains("\"name\":\"queue_wait\""));
        assert!(lines[2].contains("\"name\":\"request\""));
        assert!(lines[2].contains("\"id\":7"));
        assert!(lines[3].contains("\"kind\":\"alert\""));
        assert!(lines[3].contains("\"rule\":\"fast-burn\""));
        assert!(lines[3].contains("\"fired\":true"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn serve_chrome_trace_stamps_the_trace_schema() {
        let mut t = Tracer::new();
        t.begin("request", "serve_req", 0);
        t.end(10);
        let doc = serve_chrome_trace(&[("serve", &t)]);
        assert!(doc.contains("fgnn-serve-trace-v1"));
        assert!(doc.contains("\"name\":\"request\""));
    }

    #[test]
    fn bench_json_lists_runs_in_order() {
        let r = report();
        let doc = bench_json(&[("load=1x".to_string(), &r), ("load=2x".to_string(), &r)]);
        assert!(doc.contains("\"schemaVersion\":\"fgnn-serve-v1\""));
        let a = doc.find("load=1x").unwrap();
        let b = doc.find("load=2x").unwrap();
        assert!(a < b);
        assert!(doc.contains("\"shedFraction\":0.3"));
    }
}
