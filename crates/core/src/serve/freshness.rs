//! The freshness-SLA read path over the ring cache.
//!
//! Training admits embeddings by gradient norm because stability predicts
//! reuse value; serving has no gradients, so the surrogate is **request
//! frequency** ([`crate::cache::policy::frequency_policy`]): a hot node's
//! embedding amortizes its recompute over many requests. Staleness is
//! measured in sim-clock *milliseconds* rather than training iterations,
//! and the bound is per request: each [`Request`] carries its own budget.
//!
//! Two hit bounds exist:
//!
//! * **normal mode** — `min(t_sla_ms, budget)`: the operator's tight SLA,
//!   further tightened by any stricter request;
//! * **degraded mode** — `budget`: when the transfer breaker is open or
//!   the supervisor reports degraded health, a fetch is the expensive
//!   thing to avoid, so the store relaxes exactly up to what each request
//!   contracted for — and not a millisecond past it. Every served age is
//!   checked against the budget and violations are counted (`Exact`);
//!   the invariant is that the counter stays zero.

use super::trace::Request;
use crate::cache::policy::{CachePolicy, FrequencyPolicy, PolicyInput, Verdict};
use crate::cache::ring::RingCache;
use fgnn_graph::NodeId;
use fgnn_tensor::Rng;

/// Freshness-SLA knobs.
#[derive(Clone, Debug)]
pub struct FreshnessConfig {
    /// Ring-cache capacity in embedding rows.
    pub cache_capacity: usize,
    /// Tight staleness bound (milliseconds) applied in normal mode.
    pub t_sla_ms: u32,
    /// Fraction of each miss batch admitted to the cache, hottest first.
    pub admit_top_frac: f32,
}

impl Default for FreshnessConfig {
    fn default() -> Self {
        FreshnessConfig {
            cache_capacity: 256,
            t_sla_ms: 100,
            admit_top_frac: 0.5,
        }
    }
}

/// The serving-side embedding store: a ring cache plus request-frequency
/// accounting and exact served-age bookkeeping.
pub struct EmbedStore {
    cache: RingCache,
    cfg: FreshnessConfig,
    /// Admission policy. The default ([`FrequencyPolicy`]) scores by
    /// request frequency; any [`CachePolicy`] can be swapped in at
    /// construction via [`EmbedStore::with_policy`].
    policy: Box<dyn CachePolicy>,
    /// Fixed-seed side stream consumed only by randomized policies, so the
    /// default store stays byte-identical to the pre-trait one.
    policy_rng: Rng,
    /// Cumulative request count per node (the admission score).
    freq: Vec<u64>,
    /// Served embeddings older than their request's budget. Must stay 0 —
    /// this is the serving analogue of the training `t_stale` invariant.
    pub sla_violations: u64,
    /// Cache reads served under the relaxed degraded bound.
    pub degraded_hits: u64,
    /// The policy verdicts of the most recent [`EmbedStore::admit_fresh`]
    /// call, in verdict order — surfaced so the request tracer can attach
    /// each miss's admission verdict as a span attribute.
    pub last_verdicts: Vec<(NodeId, Verdict)>,
}

impl EmbedStore {
    /// A store over `num_nodes` nodes with `dim`-wide embeddings, admitting
    /// by request frequency (the serving default).
    pub fn new(num_nodes: usize, dim: usize, cfg: FreshnessConfig) -> Self {
        Self::with_policy(num_nodes, dim, cfg, Box::new(FrequencyPolicy))
    }

    /// A store with an explicit admission [`CachePolicy`] — frequency
    /// admission is just the default instance. The policy scores each miss
    /// batch over `PolicyInput.grad_norm = request frequency`.
    pub fn with_policy(
        num_nodes: usize,
        dim: usize,
        cfg: FreshnessConfig,
        policy: Box<dyn CachePolicy>,
    ) -> Self {
        EmbedStore {
            cache: RingCache::new(num_nodes, cfg.cache_capacity, dim),
            policy,
            policy_rng: Rng::new(0x0053_4552_5645), // "SERVE": fixed side stream
            freq: vec![0; num_nodes],
            cfg,
            sla_violations: 0,
            degraded_hits: 0,
            last_verdicts: Vec::new(),
        }
    }

    /// Display name of the admission policy in effect.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The underlying ring cache (hit/eviction counters, age histogram).
    pub fn cache(&self) -> &RingCache {
        &self.cache
    }

    /// Record one request against `node`'s frequency score.
    pub fn note_request(&mut self, node: NodeId) {
        self.freq[node as usize] += 1;
    }

    /// Try to serve `req` from cache at sim time `now_ms`. Returns the
    /// exact age (milliseconds) of the served embedding on a hit. In
    /// degraded mode the bound relaxes from `min(t_sla, budget)` to the
    /// request's own `budget` — never beyond it.
    pub fn try_hit(&mut self, req: &Request, now_ms: u32, degraded: bool) -> Option<u32> {
        let bound = if degraded {
            req.staleness_budget_ms
        } else {
            self.cfg.t_sla_ms.min(req.staleness_budget_ms)
        };
        let slot = self.cache.lookup(req.node, now_ms, bound)?;
        let age = self.cache.age_of(slot, now_ms);
        if age > req.staleness_budget_ms {
            self.sla_violations += 1;
        }
        if degraded {
            self.degraded_hits += 1;
        }
        Some(age)
    }

    /// Admit freshly computed miss embeddings by request frequency: the
    /// hottest `admit_top_frac` of the batch goes into the ring, the rest
    /// is served once and dropped. `rows(i)` yields the embedding of
    /// `nodes[i]`.
    pub fn admit_fresh<'r>(
        &mut self,
        nodes: &[NodeId],
        mut rows: impl FnMut(usize) -> &'r [f32],
        now_ms: u32,
    ) -> u64 {
        self.last_verdicts.clear();
        if nodes.is_empty() {
            return 0;
        }
        let inputs: Vec<PolicyInput> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| PolicyInput {
                node: n,
                local: i as u32,
                grad_norm: self.freq[n as usize] as f32,
                was_cached: false,
            })
            .collect();
        let mut admitted = 0u64;
        let verdicts = self
            .policy
            .verdicts(&inputs, self.cfg.admit_top_frac, &mut self.policy_rng);
        for (x, verdict) in verdicts {
            self.last_verdicts.push((x.node, verdict));
            if verdict == Verdict::Admit {
                // Fixed-size admission: serving prefers overwriting the
                // oldest slot to growing, so "cache size" stays a real
                // knob in the load sweeps.
                self.cache
                    .admit_fixed(x.node, rows(x.local as usize), now_ms);
                admitted += 1;
            }
        }
        admitted
    }

    /// Preload embeddings unconditionally (cache warm-up before a run).
    pub fn warm<'r>(
        &mut self,
        nodes: &[NodeId],
        mut rows: impl FnMut(usize) -> &'r [f32],
        now_ms: u32,
    ) {
        for (i, &n) in nodes.iter().enumerate() {
            self.cache.admit_fixed(n, rows(i), now_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::Priority;
    use super::*;

    fn req(node: NodeId, budget_ms: u32) -> Request {
        Request {
            id: 0,
            node,
            arrival_ns: 0,
            deadline_ns: 0,
            priority: Priority::Normal,
            staleness_budget_ms: budget_ms,
        }
    }

    fn store(capacity: usize, t_sla_ms: u32) -> EmbedStore {
        EmbedStore::new(
            16,
            2,
            FreshnessConfig {
                cache_capacity: capacity,
                t_sla_ms,
                admit_top_frac: 0.5,
            },
        )
    }

    #[test]
    fn normal_mode_uses_the_tighter_of_sla_and_budget() {
        let mut s = store(4, 50);
        let rows = [[1.0f32, 2.0], [3.0, 4.0]];
        s.warm(&[1, 2], |i| &rows[i], 0);
        // Age 40 ≤ min(50, 100): hit.
        assert_eq!(s.try_hit(&req(1, 100), 40, false), Some(40));
        // Age 60 > t_sla 50: miss even though the budget would allow it.
        assert_eq!(s.try_hit(&req(2, 100), 60, false), None);
        assert_eq!(s.sla_violations, 0);
    }

    #[test]
    fn degraded_mode_relaxes_to_the_request_budget_only() {
        let mut s = store(4, 50);
        let rows = [[1.0f32, 2.0], [3.0, 4.0]];
        s.warm(&[1, 2], |i| &rows[i], 0);
        // Age 80 > t_sla but ≤ budget 100: degraded hit.
        assert_eq!(s.try_hit(&req(1, 100), 80, true), Some(80));
        assert_eq!(s.degraded_hits, 1);
        // Age 80 > budget 60: still a miss — the budget is a hard wall.
        assert_eq!(s.try_hit(&req(2, 60), 80, true), None);
        assert_eq!(s.sla_violations, 0);
    }

    #[test]
    fn with_policy_swaps_the_admission_criterion() {
        use crate::cache::policy::GradientPolicy;
        // GradientPolicy admits the *bottom* of the score distribution, so
        // over frequency scores it keeps the cold half — the mirror image
        // of the default store's behavior below.
        let mut s = EmbedStore::with_policy(
            16,
            2,
            FreshnessConfig {
                cache_capacity: 8,
                t_sla_ms: 100,
                admit_top_frac: 0.5,
            },
            Box::new(GradientPolicy),
        );
        assert_eq!(s.policy_name(), "gradient");
        for _ in 0..10 {
            s.note_request(3);
        }
        s.note_request(5);
        let rows = [[1.0f32, 1.0], [2.0, 2.0]];
        let admitted = s.admit_fresh(&[3, 5], |i| &rows[i], 0);
        assert_eq!(admitted, 1);
        assert_eq!(s.try_hit(&req(5, 100), 0, false), Some(0), "cold admitted");
        assert_eq!(s.try_hit(&req(3, 100), 0, false), None, "hot dropped");
    }

    #[test]
    fn frequency_admission_keeps_the_hot_half() {
        let mut s = store(8, 100);
        for _ in 0..10 {
            s.note_request(3);
        }
        s.note_request(5);
        let rows = [[1.0f32, 1.0], [2.0, 2.0]];
        let admitted = s.admit_fresh(&[3, 5], |i| &rows[i], 0);
        assert_eq!(admitted, 1);
        assert_eq!(s.try_hit(&req(3, 100), 0, false), Some(0), "hot admitted");
        assert_eq!(s.try_hit(&req(5, 100), 0, false), None, "cold dropped");
    }
}
