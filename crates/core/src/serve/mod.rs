//! Overload-robust online inference serving (DESIGN.md §10).
//!
//! The training side of this repo proves FreshGNN's bet — stale-but-
//! bounded historical embeddings are good enough — on the gradient path.
//! This module reuses the same bet on the *read* path: a deterministic
//! request/response engine that serves node embeddings out of the
//! [`RingCache`](crate::cache::ring::RingCache), where the training
//! staleness bound `t_stale` is reinterpreted as a per-request **freshness
//! SLA**, and robustness under overload is the organizing principle:
//!
//! * [`trace`] — a seeded power-law request-trace generator: hot-node
//!   (Zipf) popularity, bursty open-loop arrivals, per-request priority,
//!   deadline and staleness budget;
//! * [`admission`] — the admission controller: token-bucket rate
//!   limiting, a bounded queue with priority displacement, and
//!   deadline-aware load shedding (every shed decision is an `Exact`
//!   metric and is logged for byte-identical replay);
//! * [`batcher`] — request batching under `max_batch` / `max_delay`
//!   knobs;
//! * [`freshness`] — the freshness-SLA read path over the ring cache:
//!   admission by request *frequency* (the serving surrogate for the
//!   training gradient-norm criterion), exact served-age accounting, and
//!   the SLA-relaxed degraded mode;
//! * [`engine`] — the discrete-event serving loop on simulated time:
//!   cache misses recompute real embeddings through the model and charge
//!   the `fgnn-memsim` interconnect (bounded retry/backoff, circuit
//!   breaker and all), so same-seed runs are byte-identical;
//! * [`export`] — the schema-tagged `fgnn-serve-v1` JSONL export and the
//!   `BENCH_serve.json` performance-trajectory summary.
//!
//! Degraded serving is principled, not best-effort: when the transfer
//! [`CircuitBreaker`](fgnn_memsim::CircuitBreaker) is open or the
//! [`Supervisor`](crate::resilience::Supervisor) reports degraded health,
//! the engine widens the cache-hit bound from the tight operator SLA to
//! each request's *own* staleness budget — it never serves an embedding
//! older than what the request contracted for (the serving analogue of
//! the `t_stale` invariant, counted in `serve.sla.violations`, which must
//! stay zero).

pub mod admission;
pub mod batcher;
pub mod engine;
pub mod export;
pub mod freshness;
pub mod trace;

pub use admission::{AdmissionConfig, AdmissionController, ShedReason, TokenBucket};
pub use batcher::{Batcher, BatcherConfig};
pub use engine::{ServeEngine, ServeReport};
pub use export::{
    bench_json, serve_chrome_trace, serve_jsonl, serve_trace_jsonl, SERVE_SCHEMA_VERSION,
    SERVE_TRACE_SCHEMA_VERSION,
};
pub use freshness::{EmbedStore, FreshnessConfig};
pub use trace::{generate_trace, Priority, Request, TraceConfig};

use crate::error::FgnnError;
use crate::obs::window::SloConfig;

/// Bucket edges (nanoseconds) for the serving-latency histogram. Latency
/// observations are integer nanoseconds off the sim clock, so the
/// histogram stays `Exact`-class (integer-valued sums).
pub const SERVE_LATENCY_BUCKETS_NS: [f64; 8] = [1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8];

/// Bucket edges (milliseconds) for the served-embedding-age histogram.
pub const SERVE_AGE_BUCKETS_MS: [f64; 9] =
    [1.0, 4.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0];

/// Bucket edges (requests) for the admission-queue depth histogram.
pub const SERVE_QUEUE_BUCKETS: [f64; 7] = [0.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Per-request observability knobs (DESIGN.md §12): exemplar-sampled
/// request tracing plus the windowed SLO monitor. Both are pure functions
/// of the seed, so telemetry never perturbs the served numbers.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Trace every ~Nth request as a full span-tree exemplar. `0`
    /// disables request tracing, `1` traces every request; for `N > 1`
    /// the choice is a deterministic hash of `(seed, request id)`, so the
    /// same requests are exemplars on every rerun (every request is still
    /// *counted*; only span emission is sampled).
    pub exemplar_every: u64,
    /// Multi-window SLO burn-rate monitor settings.
    pub slo: SloConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            exemplar_every: 16,
            slo: SloConfig::default(),
        }
    }
}

/// Full configuration of one serving run: trace shape, admission knobs,
/// batching knobs, freshness SLA, model fanouts and the run seed.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Request-trace generator settings.
    pub trace: TraceConfig,
    /// Admission-control settings (queue bound + token bucket).
    pub admission: AdmissionConfig,
    /// Batching settings.
    pub batcher: BatcherConfig,
    /// Freshness-SLA read-path settings.
    pub freshness: FreshnessConfig,
    /// Request-tracing and SLO-monitoring settings.
    pub telemetry: TelemetryConfig,
    /// Neighbor-sampling fanouts used when a miss recomputes an embedding
    /// (input→output order, as in training).
    pub fanouts: Vec<usize>,
    /// Seed for model init, miss-path sampling and the trace generator.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            trace: TraceConfig::default(),
            admission: AdmissionConfig::default(),
            batcher: BatcherConfig::default(),
            freshness: FreshnessConfig::default(),
            telemetry: TelemetryConfig::default(),
            fanouts: vec![5, 5],
            seed: 42,
        }
    }
}

impl ServeConfig {
    /// Validate the configuration, naming the offending knob.
    pub fn validate(&self) -> Result<(), FgnnError> {
        let bad = |m: String| Err(FgnnError::Serve(m));
        if self.trace.num_requests == 0 {
            return bad("trace.num_requests must be positive".into());
        }
        if self.trace.num_nodes == 0 {
            return bad("trace.num_nodes must be positive".into());
        }
        // `<=` plus an explicit NaN check rejects exactly what `!(x > 0)`
        // would, without the negated-partial-ord footgun.
        if self.trace.rate_rps <= 0.0 || self.trace.rate_rps.is_nan() {
            return bad(format!(
                "trace.rate_rps must be positive, got {}",
                self.trace.rate_rps
            ));
        }
        if self.trace.burst_factor < 1.0 || self.trace.burst_factor.is_nan() {
            return bad(format!(
                "trace.burst_factor must be >= 1, got {}",
                self.trace.burst_factor
            ));
        }
        if self.trace.budget_ms.0 > self.trace.budget_ms.1 {
            return bad(format!(
                "trace.budget_ms range is inverted: {:?}",
                self.trace.budget_ms
            ));
        }
        if self.admission.queue_cap == 0 {
            return bad("admission.queue_cap must be positive".into());
        }
        if self.admission.rate_rps <= 0.0
            || self.admission.rate_rps.is_nan()
            || self.admission.burst < 1.0
            || self.admission.burst.is_nan()
        {
            return bad(format!(
                "admission token bucket needs rate > 0 and burst >= 1, got rate {} burst {}",
                self.admission.rate_rps, self.admission.burst
            ));
        }
        if self.batcher.max_batch == 0 {
            return bad("batcher.max_batch must be positive".into());
        }
        if self.freshness.cache_capacity == 0 {
            return bad("freshness.cache_capacity must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.freshness.admit_top_frac) {
            return bad(format!(
                "freshness.admit_top_frac must be in [0, 1], got {}",
                self.freshness.admit_top_frac
            ));
        }
        if self.fanouts.is_empty() {
            return bad("at least one fanout layer is required".into());
        }
        let budget = self.telemetry.slo.error_budget;
        if !(budget > 0.0 && budget <= 1.0) {
            return bad(format!(
                "telemetry.slo.error_budget must be in (0, 1], got {budget}"
            ));
        }
        Ok(())
    }
}
