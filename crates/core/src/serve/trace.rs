//! Seeded request-trace generation: power-law popularity, bursty
//! open-loop arrivals.
//!
//! Serving workloads are *open-loop*: users do not wait for the previous
//! response before sending the next request, so arrivals keep coming at
//! the offered rate no matter how far behind the server falls — the
//! regime where admission control matters and a closed-loop benchmark
//! would silently self-throttle. Arrivals are a Poisson process (inverse-
//! CDF exponential inter-arrival times) whose rate is multiplied by
//! `burst_factor` inside periodic burst windows; node popularity is
//! Zipf-distributed over a seeded permutation of the node IDs, so the hot
//! set is a stable but non-trivial subset of the graph. Everything is a
//! pure function of the seed.

use fgnn_graph::NodeId;
use fgnn_tensor::Rng;

/// Request priority class; higher priorities displace lower ones when the
/// admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort (analytics backfill, prefetch).
    Low,
    /// Default interactive traffic.
    Normal,
    /// Latency-critical traffic; sheds last.
    High,
}

impl Priority {
    /// Stable numeric code for metric export (`0`/`1`/`2`).
    pub fn code(self) -> u64 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Stable lowercase name for logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One inference request for a node embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Trace-unique request ID (position in the trace).
    pub id: u64,
    /// The node whose embedding is requested.
    pub node: NodeId,
    /// Arrival timestamp (sim nanoseconds).
    pub arrival_ns: u64,
    /// Absolute response deadline (sim nanoseconds); requests that cannot
    /// be served by this point are shed rather than served late.
    pub deadline_ns: u64,
    /// Priority class for queue-full displacement.
    pub priority: Priority,
    /// Per-request staleness budget (milliseconds): the oldest cached
    /// embedding this request is willing to accept. This is the request's
    /// freshness SLA — the serving analogue of the training `t_stale`.
    pub staleness_budget_ms: u32,
}

/// Trace-generator knobs.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub num_requests: usize,
    /// Node-ID universe (`0..num_nodes`).
    pub num_nodes: usize,
    /// Zipf popularity exponent (`0` = uniform; `~1` = web-like skew).
    pub zipf_exponent: f64,
    /// Base offered load, requests per simulated second.
    pub rate_rps: f64,
    /// Burst cycle length (seconds): each cycle opens with a burst window.
    pub burst_period_secs: f64,
    /// Burst window length (seconds) at the start of each cycle; `0`
    /// disables bursts.
    pub burst_secs: f64,
    /// Arrival-rate multiplier inside burst windows (`>= 1`).
    pub burst_factor: f64,
    /// Response deadline, milliseconds after arrival.
    pub deadline_ms: u32,
    /// Inclusive range of per-request staleness budgets (milliseconds).
    pub budget_ms: (u32, u32),
    /// Fraction of requests drawn as [`Priority::High`].
    pub high_frac: f32,
    /// Fraction of requests drawn as [`Priority::Low`].
    pub low_frac: f32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_requests: 2000,
            num_nodes: 1024,
            zipf_exponent: 0.8,
            rate_rps: 2000.0,
            burst_period_secs: 0.2,
            burst_secs: 0.05,
            burst_factor: 2.0,
            deadline_ms: 100,
            budget_ms: (100, 400),
            high_frac: 0.1,
            low_frac: 0.2,
        }
    }
}

/// A uniform `f64` in `[0, 1)` with 53 bits of precision, derived from
/// the shared SplitMix stream so the trace stays a pure seed function.
fn uniform_f64(rng: &mut Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Generate a request trace from `cfg` under `seed`. Deterministic:
/// identical `(cfg, seed)` pairs produce identical traces.
pub fn generate_trace(cfg: &TraceConfig, seed: u64) -> Vec<Request> {
    let mut rng = Rng::new(seed ^ 0x5E1F_7AC3_0DDB_A11D);

    // Zipf CDF over popularity ranks, then a seeded rank → node-ID
    // permutation so the hot set is not just the lowest IDs.
    let mut cdf = Vec::with_capacity(cfg.num_nodes);
    let mut acc = 0.0f64;
    for k in 0..cfg.num_nodes {
        acc += 1.0 / ((k + 1) as f64).powf(cfg.zipf_exponent);
        cdf.push(acc);
    }
    let total = acc;
    let mut rank_to_node: Vec<NodeId> = (0..cfg.num_nodes as NodeId).collect();
    rng.shuffle(&mut rank_to_node);

    let mut out = Vec::with_capacity(cfg.num_requests);
    let mut t_secs = 0.0f64;
    for id in 0..cfg.num_requests as u64 {
        // Open-loop arrival: exponential inter-arrival at the current
        // (possibly bursting) rate.
        let bursting = cfg.burst_secs > 0.0
            && cfg.burst_period_secs > 0.0
            && (t_secs % cfg.burst_period_secs) < cfg.burst_secs;
        let rate = if bursting {
            cfg.rate_rps * cfg.burst_factor
        } else {
            cfg.rate_rps
        };
        let u = uniform_f64(&mut rng);
        t_secs += -(1.0 - u).ln() / rate;
        let arrival_ns = (t_secs * 1e9).round() as u64;

        // Popularity: binary-search the Zipf CDF.
        let target = uniform_f64(&mut rng) * total;
        let rank = cdf.partition_point(|&c| c < target).min(cfg.num_nodes - 1);
        let node = rank_to_node[rank];

        let p = rng.uniform();
        let priority = if p < cfg.high_frac {
            Priority::High
        } else if p < cfg.high_frac + cfg.low_frac {
            Priority::Low
        } else {
            Priority::Normal
        };

        let (lo, hi) = cfg.budget_ms;
        let staleness_budget_ms = lo + rng.below((hi - lo + 1) as usize) as u32;

        out.push(Request {
            id,
            node,
            arrival_ns,
            deadline_ns: arrival_ns + cfg.deadline_ms as u64 * 1_000_000,
            priority,
            staleness_budget_ms,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let cfg = TraceConfig::default();
        assert_eq!(generate_trace(&cfg, 7), generate_trace(&cfg, 7));
        assert_ne!(generate_trace(&cfg, 7), generate_trace(&cfg, 8));
    }

    #[test]
    fn arrivals_are_monotone_and_fields_in_range() {
        let cfg = TraceConfig {
            num_requests: 500,
            num_nodes: 64,
            budget_ms: (50, 60),
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 3);
        assert_eq!(trace.len(), 500);
        for w in trace.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
        for r in &trace {
            assert!((r.node as usize) < 64);
            assert!(r.deadline_ns == r.arrival_ns + 100_000_000);
            assert!((50..=60).contains(&r.staleness_budget_ms));
        }
    }

    #[test]
    fn zipf_skews_toward_a_hot_set() {
        let cfg = TraceConfig {
            num_requests: 4000,
            num_nodes: 1000,
            zipf_exponent: 1.0,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 11);
        let mut counts = vec![0u64; 1000];
        for r in &trace {
            counts[r.node as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.2 * trace.len() as f64,
            "top-10 nodes carry {top10} of {} requests",
            trace.len()
        );
    }

    #[test]
    fn burst_windows_raise_local_arrival_rate() {
        let cfg = TraceConfig {
            num_requests: 6000,
            rate_rps: 1000.0,
            burst_period_secs: 1.0,
            burst_secs: 0.5,
            burst_factor: 4.0,
            ..Default::default()
        };
        let trace = generate_trace(&cfg, 5);
        let (mut in_burst, mut outside) = (0u64, 0u64);
        for r in &trace {
            let phase = (r.arrival_ns as f64 * 1e-9) % 1.0;
            if phase < 0.5 {
                in_burst += 1;
            } else {
                outside += 1;
            }
        }
        assert!(
            in_burst > 2 * outside,
            "burst {in_burst} vs steady {outside}"
        );
    }
}
