// Index-based loops below intentionally walk several parallel arrays in
// lockstep; iterator zips would obscure the math. Clippy disagrees.
#![allow(clippy::needless_range_loop)]

//! Appendix B: SGC with a random-selector, bounded-staleness history.
//!
//! The paper proves (Proposition 4.1) that for the single-layer SGC model
//! `Z = Â^k X W` with squared loss, updating `W` with the "historical"
//! gradient `X̂ᵀ S₀ ∇_Z̃ L` — where the diagonal selector `S₀` marks nodes
//! computed fresh and the rest use embeddings up to `s` iterations stale —
//! converges to a stationary point of the exact loss. This module
//! implements that exact construction so the claim can be tested
//! empirically (`exp_appendixB_sgc_convergence`).

use fgnn_graph::Csr;
use fgnn_tensor::{ops, Matrix, Rng};

/// Propagated features `X̂ = Â^k X` with `Â = (D+I)^{-1/2}(A+I)(D+I)^{-1/2}`.
pub fn propagate_features(graph: &Csr, x: &Matrix, k: usize) -> Matrix {
    let n = graph.num_nodes();
    assert_eq!(x.rows(), n);
    let inv_sqrt: Vec<f32> = (0..n as u32)
        .map(|v| 1.0 / ((graph.degree(v) + 1) as f32).sqrt())
        .collect();
    let mut h = x.clone();
    for _ in 0..k {
        let mut next = Matrix::zeros(n, x.cols());
        for v in 0..n as u32 {
            let dv = inv_sqrt[v as usize];
            // Self loop.
            {
                let scale = dv * dv;
                let row = next.row_mut(v as usize);
                for (o, &s) in row.iter_mut().zip(h.row(v as usize)) {
                    *o += scale * s;
                }
            }
            for &u in graph.neighbors(v) {
                let scale = dv * inv_sqrt[u as usize];
                let row = next.row_mut(v as usize);
                for (o, &s) in row.iter_mut().zip(h.row(u as usize)) {
                    *o += scale * s;
                }
            }
        }
        h = next;
    }
    h
}

/// Training record of one run.
#[derive(Clone, Debug)]
pub struct SgcRun {
    /// Exact-loss gradient norm `‖∇ℓ(W)‖_F` per iteration.
    pub grad_norms: Vec<f32>,
    /// Exact loss per iteration.
    pub losses: Vec<f32>,
}

/// Configuration of the historical SGC experiment.
#[derive(Clone, Debug)]
pub struct SgcConfig {
    /// Propagation depth `k`.
    pub k: usize,
    /// Maximum staleness `s` (0 = exact gradient descent).
    pub max_staleness: usize,
    /// Probability a node is computed fresh (`p₀` in Appendix B); the
    /// remaining mass is spread uniformly over stalenesses `1..=s`.
    pub p_fresh: f32,
    /// Step size `η` (the proposition wants `η ≤ 1/L`).
    pub step_size: f32,
    /// Iterations.
    pub iterations: usize,
}

/// Run SGC least-squares regression `min_W ‖X̂ W − Y‖²/2n` with the
/// historical model of eq. (5): per iteration each node independently uses
/// its embedding from `τ ∈ {0..s}` iterations ago (τ = 0 = fresh), and the
/// weight update uses only the fresh rows (`S₀`), exactly as in the proof.
pub fn run_historical_sgc(
    graph: &Csr,
    x: &Matrix,
    y: &Matrix,
    cfg: &SgcConfig,
    rng: &mut Rng,
) -> SgcRun {
    let n = graph.num_nodes();
    let x_hat = propagate_features(graph, x, cfg.k);
    let d = x_hat.cols();
    let c = y.cols();
    let mut w = Matrix::zeros(d, c);
    let inv_n = 1.0 / n as f32;

    // Ring of past Z̃ matrices, newest last.
    let mut z_history: Vec<Matrix> = Vec::new();
    let mut run = SgcRun {
        grad_norms: Vec::with_capacity(cfg.iterations),
        losses: Vec::with_capacity(cfg.iterations),
    };

    for _ in 0..cfg.iterations {
        let z_fresh = ops::matmul(&x_hat, &w).expect("sgc forward");

        // Exact-loss diagnostics (what Proposition 4.1 bounds).
        let mut resid = z_fresh.clone();
        ops::sub_assign(&mut resid, y).expect("resid");
        let loss = 0.5 * inv_n * resid.as_slice().iter().map(|&r| r * r).sum::<f32>();
        let mut exact_grad = ops::matmul_at_b(&x_hat, &resid).expect("exact grad");
        ops::scale(&mut exact_grad, inv_n);
        run.losses.push(loss);
        run.grad_norms.push(exact_grad.frobenius_norm());

        // Build Z̃ by the random selector.
        let mut z_tilde = z_fresh.clone();
        let mut fresh_mask = vec![true; n];
        if cfg.max_staleness > 0 && !z_history.is_empty() {
            for v in 0..n {
                if rng.uniform() >= cfg.p_fresh {
                    // Uniform staleness in 1..=min(s, available history).
                    let avail = z_history.len().min(cfg.max_staleness);
                    let tau = 1 + rng.below(avail);
                    let old = &z_history[z_history.len() - tau];
                    z_tilde.row_mut(v).copy_from_slice(old.row(v));
                    fresh_mask[v] = false;
                }
            }
        }

        // Historical gradient: X̂ᵀ S₀ ∇_Z̃ L (only fresh rows contribute;
        // on those rows Z̃ = Z so the proof's identity holds).
        let mut resid_tilde = z_tilde.clone();
        ops::sub_assign(&mut resid_tilde, y).expect("resid~");
        for (v, &fresh) in fresh_mask.iter().enumerate() {
            if !fresh {
                resid_tilde.row_mut(v).iter_mut().for_each(|x| *x = 0.0);
            }
        }
        let mut grad = ops::matmul_at_b(&x_hat, &resid_tilde).expect("hist grad");
        ops::scale(&mut grad, inv_n);
        ops::axpy(&mut w, -cfg.step_size, &grad).expect("sgd step");

        z_history.push(z_fresh);
        if z_history.len() > cfg.max_staleness.max(1) {
            z_history.remove(0);
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::generate::{generate, GraphConfig};

    fn setup(n: usize, seed: u64) -> (Csr, Matrix, Matrix, Rng) {
        let mut rng = Rng::new(seed);
        let cfg = GraphConfig {
            num_nodes: n,
            avg_degree: 6.0,
            num_communities: 4,
            homophily: 0.8,
            ..Default::default()
        };
        let g = generate(&cfg, &mut rng).graph;
        let x = rng.normal_matrix(n, 8, 1.0);
        // Y generated by a ground-truth linear map of X̂ + noise.
        let w_true = rng.normal_matrix(8, 3, 1.0);
        let x_hat = propagate_features(&g, &x, 2);
        let mut y = ops::matmul(&x_hat, &w_true).unwrap();
        for v in y.as_mut_slice() {
            *v += rng.normal() * 0.01;
        }
        (g, x, y, rng)
    }

    #[test]
    fn propagation_preserves_shape_and_averages() {
        let (g, x, _, _) = setup(100, 1);
        let h = propagate_features(&g, &x, 2);
        assert_eq!(h.shape(), x.shape());
        // Smoothing shrinks total variance on a connected-ish graph.
        let var = |m: &Matrix| m.as_slice().iter().map(|&v| v * v).sum::<f32>();
        assert!(var(&h) < var(&x));
    }

    #[test]
    fn exact_sgd_converges_to_stationary_point() {
        let (g, x, y, mut rng) = setup(150, 2);
        let cfg = SgcConfig {
            k: 2,
            max_staleness: 0,
            p_fresh: 1.0,
            step_size: 0.5,
            iterations: 300,
        };
        let run = run_historical_sgc(&g, &x, &y, &cfg, &mut rng);
        let first = run.grad_norms[0];
        let last = *run.grad_norms.last().unwrap();
        assert!(last < first * 0.05, "grad norm {first} -> {last}");
    }

    #[test]
    fn historical_selector_still_converges() {
        // Proposition 4.1: bounded staleness + random selector converges.
        let (g, x, y, mut rng) = setup(150, 3);
        let cfg = SgcConfig {
            k: 2,
            max_staleness: 5,
            p_fresh: 0.5,
            step_size: 0.5,
            iterations: 600,
        };
        let run = run_historical_sgc(&g, &x, &y, &cfg, &mut rng);
        let first = run.grad_norms[0];
        let last = run.grad_norms[run.grad_norms.len() - 10..]
            .iter()
            .fold(0.0f32, |a, &b| a.max(b));
        assert!(last < first * 0.10, "grad norm {first} -> {last}");
    }

    #[test]
    fn historical_converges_slower_than_exact_but_same_limit() {
        let (g, x, y, mut rng) = setup(120, 4);
        let exact_cfg = SgcConfig {
            k: 1,
            max_staleness: 0,
            p_fresh: 1.0,
            step_size: 0.5,
            iterations: 200,
        };
        let hist_cfg = SgcConfig {
            max_staleness: 4,
            p_fresh: 0.4,
            ..exact_cfg.clone()
        };
        let exact = run_historical_sgc(&g, &x, &y, &exact_cfg, &mut rng);
        let hist = run_historical_sgc(&g, &x, &y, &hist_cfg, &mut rng);
        // Same loss basin eventually (within noise floor).
        let l_exact = *exact.losses.last().unwrap();
        let l_hist = *hist.losses.last().unwrap();
        assert!(l_hist < l_exact * 10.0 + 1e-3, "{l_exact} vs {l_hist}");
        // Exact descends at least as fast at iteration 50.
        assert!(exact.losses[50] <= hist.losses[50] * 1.5);
    }
}
