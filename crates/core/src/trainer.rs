// Index-based loops below intentionally walk several parallel arrays in
// lockstep; iterator zips would obscure the math. Clippy disagrees.
#![allow(clippy::needless_range_loop)]

//! Algorithm 1: mini-batch training with the historical embedding cache.
//!
//! Per iteration:
//! 1. **sample** a mini-batch (CPU);
//! 2. **prune** it against the cache (CSR2, O(1) per cached node) —
//!    cached destinations lose their aggregation and their subtrees die;
//! 3. **load** raw features for the surviving input nodes (one-sided UVA
//!    read charged to the interconnect model);
//! 4. **forward**, overriding cached destinations' rows with their cached
//!    embeddings between layers;
//! 5. **backward**, harvesting per-node embedding-gradient norms at every
//!    level and detaching (zeroing) cache-read rows so no gradient leaks
//!    into pruned subtrees;
//! 6. **update the cache**: bottom-`p_grad` gradient norms are admitted /
//!    kept, the rest skipped / evicted; stale entries age out via the ring.

use crate::cache::{CachePolicy, HistoricalCache, PolicyInput, StaticFeatureCache};
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::config::FreshGnnConfig;
use crate::loader::FeatureLoader;
use crate::obs::{MetricClass, Obs};
use crate::pipeline::{BatchOutput, Engine, EvalHarness, PipelineCtx, StallPolicy};
use crate::prune::{prune_with_cache_policy, PruneOutcome};
use crate::resilience::{HealthState, NumericFault, NumericGuard, Supervisor};
use crate::sampler::{FaultHook, HedgePolicy, SampleError, SamplerObsReport};
use fgnn_graph::block::MiniBatch;
use fgnn_graph::sample::{split_batches, NeighborSampler};
use fgnn_graph::{Dataset, NodeId};
use fgnn_memsim::fault::{BreakerPolicy, BreakerState, FaultPlan, FaultState, RetryPolicy};
use fgnn_memsim::presets::{aggregation_flops, dense_flops, Machine};
use fgnn_memsim::stage::{StageKind, StageTimings};
use fgnn_memsim::topology::Node;
use fgnn_memsim::TrafficCounters;
use fgnn_nn::loss::softmax_cross_entropy;
use fgnn_nn::model::{Arch, Model};
use fgnn_nn::Optimizer;
use fgnn_tensor::Rng;
use std::collections::BTreeSet;

pub use crate::pipeline::EpochStats;

/// The FreshGNN trainer (plus, with `p_grad = 0`, the vanilla
/// neighbor-sampling baseline and, via `LoadMode`, the DGL/PyG/
/// PyTorch-Direct traffic configurations).
pub struct Trainer {
    /// The GNN under training.
    pub model: Model,
    /// Hyper-parameters.
    pub cfg: FreshGnnConfig,
    /// The historical embedding cache.
    pub cache: HistoricalCache,
    /// The admission/read/refresh policy governing the cache, built from
    /// `cfg.policy` at construction (DESIGN.md §11).
    policy: Box<dyn CachePolicy>,
    /// Cumulative traffic/time ledger.
    pub counters: TrafficCounters,
    /// Simulated machine.
    pub machine: Machine,
    /// Cumulative per-stage attribution of `counters` (not checkpointed:
    /// a resumed run restarts attribution while the ledger stays exact).
    pub timings: StageTimings,
    /// Observability state: sim-clock spans plus the metrics registry,
    /// fed by the pipeline engine, the caches and the async sampler. Not
    /// checkpointed — telemetry restarts on resume.
    pub obs: Obs,
    static_cache: StaticFeatureCache,
    sampler: NeighborSampler,
    dims: Vec<usize>,
    iter: u32,
    epoch: u32,
    rng: Rng,
    /// Interconnect fault schedule; threaded through the per-epoch engine
    /// so the fault RNG stream continues across epochs.
    faults: FaultState,
    /// Test hook forwarded to async sampler workers (fault injection).
    sampler_fault_hook: Option<FaultHook>,
    /// Iterations whose reported loss is forced to NaN (chaos-test hook
    /// for the numeric-health guard). Entries are consumed when they fire.
    nan_iters: BTreeSet<u32>,
    /// Straggler-hedging policy for the async sampler (off by default).
    hedge: Option<HedgePolicy>,
    /// Seeded adversarial scheduling on the async sampler's runtime
    /// (`None` in production; the schedule-fuzzing suite turns it on).
    sampler_chaos: Option<crate::runtime::ChaosPolicy>,
    /// Set by a degraded restore; consumed into the next epoch's stats.
    degraded_resume: bool,
}

impl Trainer {
    /// Build a trainer for `ds`: an `arch` model with `hidden` units per
    /// hidden layer (depth = `cfg.fanouts.len()`), on `machine`.
    pub fn new(
        ds: &Dataset,
        arch: Arch,
        hidden: usize,
        machine: Machine,
        cfg: FreshGnnConfig,
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid config");
        let mut rng = Rng::new(seed);
        let num_layers = cfg.num_layers();
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(ds.spec.feature_dim);
        for _ in 1..num_layers {
            dims.push(hidden);
        }
        dims.push(ds.spec.num_classes);
        let model = Model::new(arch, &dims, &mut rng);

        let policy = cfg.build_policy();
        let mut cache = HistoricalCache::new(
            ds.num_nodes(),
            &dims[1..],
            cfg.t_stale,
            cfg.cache_capacity,
            cfg.cache_top_layer,
            cfg.cache_enabled(),
        );
        if policy.wants_history() {
            cache.enable_history();
        }
        let static_cache = if cfg.feature_cache_rows > 0 {
            StaticFeatureCache::by_degree(&ds.graph, cfg.feature_cache_rows)
        } else {
            StaticFeatureCache::disabled(ds.num_nodes())
        };
        Trainer {
            model,
            cache,
            policy,
            counters: TrafficCounters::new(),
            machine,
            timings: StageTimings::new(),
            obs: Obs::new(),
            static_cache,
            sampler: NeighborSampler::new(ds.num_nodes()),
            dims,
            cfg,
            iter: 0,
            epoch: 0,
            rng,
            faults: FaultState::none(),
            sampler_fault_hook: None,
            nan_iters: BTreeSet::new(),
            hedge: None,
            sampler_chaos: None,
            degraded_resume: false,
        }
    }

    /// Inject interconnect faults: every subsequent epoch's transfers are
    /// subjected to `plan` under `policy`. The plan's RNG stream persists
    /// across epochs, so a full run is one deterministic fault schedule.
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: RetryPolicy) {
        self.faults.inject(plan, policy);
    }

    /// Install a hook invoked inside async sampler workers before each
    /// batch attempt (`(batch_index, attempt)`) — panics it raises exercise
    /// the worker-recovery path. Test-only in spirit, but harmless live.
    pub fn set_sampler_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.sampler_fault_hook = hook;
    }

    /// Arm the interconnect circuit breaker under `policy`: repeated
    /// budget-exhausted transfers trip it open, and while it is open the
    /// pipeline runs batches in **degraded mode** (ring cache bypassed,
    /// every needed row fetched raw) instead of burning retry time.
    pub fn enable_breaker(&mut self, policy: BreakerPolicy) {
        self.faults.arm_breaker(policy);
    }

    /// Force the loss reported at the given iterations to NaN (chaos-test
    /// hook exercising the numeric-health guard and rollback path inside
    /// [`Trainer::train_epoch_resilient`]). Each entry fires once.
    pub fn inject_nan_at(&mut self, iters: impl IntoIterator<Item = u32>) {
        self.nan_iters.extend(iters);
    }

    /// Enable (or disable with `None`) straggler hedging on
    /// [`Trainer::train_epoch_async`]'s sampler: overdue batches are
    /// re-dispatched inline with identical RNG, so hedging never changes
    /// the delivered stream — only its latency.
    pub fn set_hedge(&mut self, policy: Option<HedgePolicy>) {
        self.hedge = policy;
    }

    /// Enable (or disable with `None`) seeded adversarial scheduling on
    /// the async sampler's work-stealing runtime: forced steals, delayed
    /// pops and worker stalls, all drawn from the policy's seed. Chaos
    /// perturbs only *where and when* batches are sampled — the committed
    /// stream, losses and every `Exact` metric are invariant to it (the
    /// schedule-fuzzing suite pins this).
    pub fn set_sampler_chaos(&mut self, chaos: Option<crate::runtime::ChaosPolicy>) {
        self.sampler_chaos = chaos;
    }

    /// State of the interconnect circuit breaker, if one is armed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.faults.breaker_state()
    }

    /// Breaker lifetime statistics `(trips, fast_fails)`, if one is armed.
    pub fn breaker_stats(&self) -> Option<(u64, u64)> {
        self.faults
            .breaker
            .as_ref()
            .map(|b| (b.trips, b.fast_fails))
    }

    /// Layer dimensions `[in, hidden.., out]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u32 {
        self.iter
    }

    /// Completed epochs so far.
    pub fn epochs(&self) -> u32 {
        self.epoch
    }

    /// Capture the full training state — model parameters, optimizer
    /// moments, RNG, `(epoch, iteration)` cursor, traffic ledger and both
    /// caches — as a [`Checkpoint`]. Restoring it (into this or a freshly
    /// constructed identically-configured trainer) replays the exact
    /// remaining batch stream.
    pub fn checkpoint(&mut self, opt: &dyn Optimizer) -> Checkpoint {
        Checkpoint {
            arch: self.model.arch,
            dims: self.dims.clone(),
            params: self.model.export_parameters(),
            optimizer: opt.export_state(),
            rng_state: self.rng.state(),
            epoch: self.epoch,
            iter: self.iter,
            counters: self.counters.clone(),
            static_resident: self.static_cache.export(),
            cache: Some(self.cache.snapshot()),
            cache_degraded: false,
        }
    }

    /// Restore state from a checkpoint taken by an identically-configured
    /// trainer (same dataset, arch, dims, config, optimizer type).
    ///
    /// Returns `Ok(degraded)`: `degraded = true` means the checkpoint's
    /// historical-cache segment was missing, corrupt, or incompatible, and
    /// training resumed with an empty (cold) cache — correct, just slower
    /// to re-warm. The degradation is also recorded in the next epoch's
    /// [`EpochStats::cache_degraded`]. Core-state mismatches are hard
    /// [`CheckpointError::ShapeMismatch`] errors.
    pub fn restore(
        &mut self,
        ckpt: &Checkpoint,
        opt: &mut dyn Optimizer,
    ) -> Result<bool, CheckpointError> {
        if ckpt.arch != self.model.arch {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint arch {} vs trainer {}",
                ckpt.arch, self.model.arch
            )));
        }
        if ckpt.dims != self.dims {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint dims {:?} vs trainer {:?}",
                ckpt.dims, self.dims
            )));
        }
        if ckpt.params.len() != self.model.num_parameters() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint has {} parameters, model has {}",
                ckpt.params.len(),
                self.model.num_parameters()
            )));
        }
        if ckpt.static_resident.len() != self.static_cache.num_nodes() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "checkpoint static cache covers {} nodes, dataset has {}",
                ckpt.static_resident.len(),
                self.static_cache.num_nodes()
            )));
        }
        self.model.import_parameters(&ckpt.params);
        opt.import_state(ckpt.optimizer.clone());
        self.rng = Rng::from_state(ckpt.rng_state);
        self.epoch = ckpt.epoch;
        self.iter = ckpt.iter;
        self.counters = ckpt.counters.clone();
        self.static_cache = StaticFeatureCache::import(ckpt.static_resident.clone());
        let mut degraded = ckpt.cache_degraded;
        let restored = match &ckpt.cache {
            Some(snapshot) => self.cache.restore(snapshot.clone()).is_ok(),
            None => false,
        };
        if !restored {
            // Graceful degradation: resume correct but cold.
            self.cache.clear();
            degraded = true;
        } else {
            // The snapshot may have been taken from a cache that ran past
            // the checkpoint's iteration cursor (rollback, or a grafted
            // segment). Future-stamped entries would look forever fresh
            // (`age = now - stamp` saturates at 0) and silently violate
            // the t_stale bound — evict them now.
            self.cache.evict_newer_than(ckpt.iter);
        }
        self.degraded_resume = degraded;
        // Align the metric baseline with the restored cache counters, so
        // per-epoch metric deltas after resume match a never-interrupted
        // run (restored absolutes, not stale pre-restore ones).
        self.sync_cache_metrics();
        Ok(degraded)
    }

    /// Plan one epoch's batch schedule: fork the shuffle RNG (advancing
    /// the trainer's RNG stream exactly as [`Trainer::train_epoch`] does)
    /// and split the training nodes into shuffled batches.
    ///
    /// `train_epoch` is exactly `plan_epoch_batches` +
    /// [`Trainer::train_on_batches`] over the result — the cluster
    /// trainer uses the split form to step one batch per BSP round while
    /// staying bit-identical to a whole-epoch call.
    pub fn plan_epoch_batches(&mut self, ds: &Dataset) -> Vec<Vec<NodeId>> {
        let mut shuffle_rng = self.rng.fork();
        split_batches(&ds.train_nodes, self.cfg.batch_size, Some(&mut shuffle_rng))
    }

    /// Train one epoch: shuffle the training nodes, split into batches,
    /// run Algorithm 1 on each.
    pub fn train_epoch(&mut self, ds: &Dataset, opt: &mut dyn Optimizer) -> EpochStats {
        let batches = self.plan_epoch_batches(ds);
        self.train_on_batches(ds, &batches, opt)
    }

    /// Train on an explicit batch schedule (used by the Fig 17 experiment
    /// to feed two trainers identical batches).
    pub fn train_on_batches(
        &mut self,
        ds: &Dataset,
        batches: &[Vec<NodeId>],
        opt: &mut dyn Optimizer,
    ) -> EpochStats {
        let topo = self.machine.topology.clone();
        // Split the trainer into disjoint borrows: the stage set holds the
        // model/cache/RNG side, while the engine drives the fault plan and
        // the traffic ledger.
        let loader = FeatureLoader::new(
            &ds.features,
            ds.spec.feature_row_bytes(),
            std::mem::replace(&mut self.static_cache, StaticFeatureCache::disabled(0)),
            self.cfg.load_mode,
        );
        let mut stages = FreshGnnStages {
            model: &mut self.model,
            cache: &mut self.cache,
            policy: &*self.policy,
            sampler: &mut self.sampler,
            rng: &mut self.rng,
            iter: &mut self.iter,
            cfg: &self.cfg,
            dims: &self.dims,
            machine: &self.machine,
            loader,
            ds,
        };
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            batches.iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, seeds| Some(stages.train_batch(ctx, counters, seeds, opt)),
        );
        self.static_cache = stages.loader.into_static_cache();
        let mut stats = result.unwrap();
        self.finish_epoch(&mut stats);
        stats
    }

    /// Train one epoch under the health supervisor: every batch loss is
    /// fed through `sup`'s [`NumericGuard`], and a tripped guard (NaN/Inf
    /// loss, or a loss spike past the z-score threshold) aborts the epoch,
    /// rolls the trainer back to the supervisor's last-known-good baseline
    /// checkpoint and replays it. The rollback restores the RNG, so the
    /// replay walks the exact same batch schedule; restoring also evicts
    /// ring-cache entries stamped after the baseline iteration, keeping
    /// the `t_stale` bound intact across the rewind.
    ///
    /// State machine: a fault moves the supervisor `→ Degraded`, the
    /// rollback `→ Recovering`, and the first clean epoch `→ Healthy`
    /// (which also refreshes the baseline). If the circuit breaker is open
    /// after a clean epoch the supervisor parks in `Degraded` instead and
    /// the baseline is left alone.
    ///
    /// Errors with [`FgnnError::Numeric`] once `sup`'s rollback budget is
    /// exhausted (a deterministic divergence replays identically, so
    /// retrying forever would livelock).
    pub fn train_epoch_resilient(
        &mut self,
        ds: &Dataset,
        opt: &mut dyn Optimizer,
        sup: &mut Supervisor,
    ) -> Result<EpochStats, crate::error::FgnnError> {
        use crate::error::FgnnError;
        if !sup.has_baseline() {
            sup.set_baseline(self.checkpoint(opt));
        }
        loop {
            let mut shuffle_rng = self.rng.fork();
            let batches =
                split_batches(&ds.train_nodes, self.cfg.batch_size, Some(&mut shuffle_rng));
            let mut nan_iters = std::mem::take(&mut self.nan_iters);
            let (stats, fault) =
                self.train_on_batches_guarded(ds, &batches, opt, &mut sup.guard, &mut nan_iters);
            // Unconsumed injections stay armed for later iterations.
            self.nan_iters = nan_iters;
            let Some(fault) = fault else {
                let breaker_open = matches!(self.faults.breaker_state(), Some(BreakerState::Open));
                if breaker_open || stats.degraded_batches > 0 {
                    sup.transition(
                        HealthState::Degraded,
                        self.iter,
                        self.epoch,
                        "breaker-open",
                        &mut self.obs,
                    );
                } else {
                    sup.transition(
                        HealthState::Healthy,
                        self.iter,
                        self.epoch,
                        "epoch-clean",
                        &mut self.obs,
                    );
                    sup.set_baseline(self.checkpoint(opt));
                }
                return Ok(stats);
            };
            sup.transition(
                HealthState::Degraded,
                fault.iter(),
                self.epoch,
                fault.cause(),
                &mut self.obs,
            );
            if !sup.can_roll_back() {
                return Err(FgnnError::Numeric(format!(
                    "rollback budget exhausted after {} rollbacks: {}",
                    sup.rollbacks(),
                    fault.cause()
                )));
            }
            let ckpt = sup.baseline().cloned().ok_or_else(|| {
                FgnnError::Numeric(format!("no baseline to roll back to: {}", fault.cause()))
            })?;
            self.restore(&ckpt, opt)?;
            sup.record_rollback(&mut self.obs);
            sup.transition(
                HealthState::Recovering,
                ckpt.iter,
                self.epoch,
                "rollback",
                &mut self.obs,
            );
        }
    }

    /// [`Trainer::train_on_batches`] with the numeric-health guard in the
    /// loop. Once the guard trips, the remaining batches are skipped (no
    /// further parameter updates on a known-bad trajectory) and the fault
    /// is returned alongside the partial epoch's stats.
    fn train_on_batches_guarded(
        &mut self,
        ds: &Dataset,
        batches: &[Vec<NodeId>],
        opt: &mut dyn Optimizer,
        guard: &mut NumericGuard,
        nan_iters: &mut BTreeSet<u32>,
    ) -> (EpochStats, Option<NumericFault>) {
        let topo = self.machine.topology.clone();
        let loader = FeatureLoader::new(
            &ds.features,
            ds.spec.feature_row_bytes(),
            std::mem::replace(&mut self.static_cache, StaticFeatureCache::disabled(0)),
            self.cfg.load_mode,
        );
        let mut stages = FreshGnnStages {
            model: &mut self.model,
            cache: &mut self.cache,
            policy: &*self.policy,
            sampler: &mut self.sampler,
            rng: &mut self.rng,
            iter: &mut self.iter,
            cfg: &self.cfg,
            dims: &self.dims,
            machine: &self.machine,
            loader,
            ds,
        };
        let mut fault: Option<NumericFault> = None;
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            StallPolicy::Free,
            batches.iter().map(Ok::<_, std::convert::Infallible>),
            |ctx, counters, seeds| {
                if fault.is_some() {
                    return None;
                }
                let it = *stages.iter;
                let mut out = stages.train_batch(ctx, counters, seeds, opt);
                if nan_iters.remove(&it) {
                    out.loss = f32::NAN;
                }
                if let Some(f) = guard.observe(it, out.loss) {
                    fault = Some(f);
                    // The faulty loss must not poison the epoch mean.
                    return None;
                }
                Some(out)
            },
        );
        self.static_cache = stages.loader.into_static_cache();
        let mut stats = result.unwrap();
        self.finish_epoch(&mut stats);
        (stats, fault)
    }

    /// Post-epoch bookkeeping shared by the sync and async paths.
    fn finish_epoch(&mut self, stats: &mut EpochStats) {
        self.epoch += 1;
        self.timings.merge(&stats.timings);
        stats.cache_degraded = std::mem::take(&mut self.degraded_resume);
        if stats.cache_degraded {
            self.obs
                .metrics
                .counter_add("pipeline.cache_degraded_epochs", MetricClass::Exact, 1);
        }
        self.sync_cache_metrics();
    }

    /// Publish both caches' internal counters into the metrics registry.
    /// Called after every epoch and after a restore (so that per-epoch
    /// metric *deltas* line up between a fresh run and a resumed one —
    /// the property `tests/checkpoint_resume.rs` pins).
    fn sync_cache_metrics(&mut self) {
        let stats = self.cache.stats();
        let m = &mut self.obs.metrics;
        let e = MetricClass::Exact;
        m.counter_set("cache.hist.hits", e, stats.hits);
        m.counter_set("cache.hist.misses", e, stats.misses);
        m.counter_set("cache.hist.lookups", e, self.cache.lookups());
        m.counter_set("cache.hist.admits", e, stats.admits);
        m.counter_set("cache.hist.keeps", e, stats.keeps);
        m.counter_set("cache.hist.grad_evictions", e, stats.grad_evictions);
        m.counter_set("cache.hist.stale_evictions", e, stats.stale_evictions);
        m.counter_set("cache.hist.overwrites", e, stats.overwrites);
        m.counter_set(
            "cache.policy.scheduled_refreshes",
            e,
            stats.scheduled_refreshes,
        );
        m.counter_set("cache.policy.weighted_reads", e, stats.weighted_reads);
        m.counter_set("cache.policy.predicted_reads", e, stats.predicted_reads);
        m.hist_set(
            "cache.hist.hit_age_iters",
            e,
            self.cache.hit_age_histogram(),
        );
        m.gauge_set("cache.hist.resident_entries", e, self.cache.len() as f64);
        m.gauge_set("cache.hist.bytes", e, self.cache.bytes() as f64);
        m.counter_set("cache.static.hits", e, self.static_cache.hits());
        m.counter_set("cache.static.misses", e, self.static_cache.misses());
        m.gauge_set(
            "cache.static.resident_rows",
            e,
            self.static_cache.len() as f64,
        );
    }

    /// Fold one async-sampling job's report into the metrics registry
    /// (totals accumulate across epochs; per-worker timings are
    /// wall-clock and therefore `Measured`).
    fn record_sampler_obs(&mut self, r: &SamplerObsReport) {
        let m = &mut self.obs.metrics;
        m.counter_add("sampler.batches", MetricClass::Exact, r.batches);
        m.counter_add(
            "sampler.resample_retries",
            MetricClass::Exact,
            r.resample_retries,
        );
        // Hedge counts depend on wall-clock straggler timing: Measured,
        // never part of the Exact rerun-identical stream.
        m.counter_add("sampler.hedges", MetricClass::Measured, r.hedges);
        m.counter_add(
            "sampler.hedge_discards",
            MetricClass::Measured,
            r.hedge_discards,
        );
        // Work-stealing schedule artifacts: real, but never Exact — the
        // same epoch steals differently every run.
        m.counter_add("sampler.steals", MetricClass::Measured, r.steals);
        m.counter_add(
            "sampler.stolen_tasks",
            MetricClass::Measured,
            r.stolen_tasks,
        );
        m.counter_add("sampler.parks", MetricClass::Measured, r.parks);
        for (w, (&t, &n)) in r.worker_tasks.iter().zip(&r.worker_task_nanos).enumerate() {
            m.counter_add(
                &format!("sampler.worker.{w}.tasks"),
                MetricClass::Measured,
                t,
            );
            m.counter_add(
                &format!("sampler.worker.{w}.task_ns"),
                MetricClass::Measured,
                n,
            );
        }
        let mut task_secs = m
            .histogram("sampler.task_seconds")
            .cloned()
            .unwrap_or_default();
        task_secs.merge(&r.task_seconds);
        m.hist_set("sampler.task_seconds", MetricClass::Measured, task_secs);
        let mut depth = m
            .histogram("sampler.queue_depth")
            .cloned()
            .unwrap_or_default();
        depth.merge(&r.queue_depth);
        m.hist_set("sampler.queue_depth", MetricClass::Measured, depth);
    }

    /// Train one epoch with the **asynchronous pipeline** of §5: worker
    /// threads sample un-pruned mini-batches ahead of time into a bounded
    /// queue while this thread prunes/loads/trains. Only the time the
    /// consumer actually *stalls* waiting on the queue is charged as
    /// sampling time — with enough workers sampling fully overlaps
    /// training, which is the paper's design goal.
    ///
    /// Deterministic: the sampled stream is identical for any
    /// `num_threads` (per-batch RNG + in-order delivery) and across worker
    /// panics recovered by re-sampling (`cfg.sampler_retries`).
    ///
    /// Returns an error when a batch could not be produced even after
    /// retries ([`SampleError::BatchPanicked`]) or the workers died
    /// entirely ([`SampleError::WorkersLost`]) — a shortfall is never a
    /// silent short epoch. Progress made before the failure (parameter
    /// updates, cache admissions, counters) is kept; the caller decides
    /// whether to retry the epoch or abort.
    pub fn train_epoch_async(
        &mut self,
        ds: &Dataset,
        opt: &mut dyn Optimizer,
        num_threads: usize,
        queue_capacity: usize,
    ) -> Result<EpochStats, SampleError> {
        let batches = self.plan_epoch_batches(ds);
        self.train_on_batches_async(ds, &batches, opt, num_threads, queue_capacity)
    }

    /// Async-pipeline counterpart of [`Trainer::train_on_batches`]: run
    /// the work-stealing sampler + pipeline over an explicit batch
    /// schedule. `train_epoch_async` is [`Trainer::plan_epoch_batches`] +
    /// this; the cluster trainer calls it one batch per BSP round.
    ///
    /// Each call forks the trainer RNG once for the per-task batch seed,
    /// so the same sequence of calls replays the same sampled stream.
    pub fn train_on_batches_async(
        &mut self,
        ds: &Dataset,
        batches: &[Vec<NodeId>],
        opt: &mut dyn Optimizer,
        num_threads: usize,
        queue_capacity: usize,
    ) -> Result<EpochStats, SampleError> {
        use crate::sampler::AsyncSampler;
        let batch_seed = self.rng.fork().next_u64();

        let graph = std::sync::Arc::new(ds.graph.clone());
        let runtime_cfg = crate::runtime::RuntimeConfig {
            workers: num_threads.max(1),
            queue_capacity: queue_capacity.max(1),
            max_retries: self.cfg.sampler_retries,
            chaos: self.sampler_chaos,
            ..crate::runtime::RuntimeConfig::default()
        };
        let mut stream = AsyncSampler::spawn_with_config(
            graph,
            batches.to_vec(),
            self.cfg.fanouts.clone(),
            &runtime_cfg,
            batch_seed,
            self.sampler_fault_hook.clone(),
        );
        if let Some(policy) = self.hedge {
            stream = stream.with_hedging(policy);
        }

        let topo = self.machine.topology.clone();
        let loader = FeatureLoader::new(
            &ds.features,
            ds.spec.feature_row_bytes(),
            std::mem::replace(&mut self.static_cache, StaticFeatureCache::disabled(0)),
            self.cfg.load_mode,
        );
        let mut stages = FreshGnnStages {
            model: &mut self.model,
            cache: &mut self.cache,
            policy: &*self.policy,
            sampler: &mut self.sampler,
            rng: &mut self.rng,
            iter: &mut self.iter,
            cfg: &self.cfg,
            dims: &self.dims,
            machine: &self.machine,
            loader,
            ds,
        };
        let result = Engine::run_epoch(
            &topo,
            &mut self.faults,
            &mut self.counters,
            &mut self.obs,
            // Only queue stalls count as sampling time (async overlap).
            StallPolicy::ChargeSample,
            std::iter::from_fn(|| stream.next()),
            |ctx, counters, mb| Some(stages.train_sampled(ctx, counters, mb, opt)),
        );
        // Put moved state back before any return — an errored epoch must
        // leave the trainer usable.
        self.static_cache = stages.loader.into_static_cache();
        // Telemetry even for an errored epoch: the report reflects the
        // work the pool actually did before the failure.
        self.record_sampler_obs(&stream.obs_report());
        let mut stats = result?;
        self.finish_epoch(&mut stats);
        Ok(stats)
    }

    /// Evaluate accuracy on `nodes` with plain neighbor sampling (no cache
    /// reads — the paper reports accuracy from an uncached inference pass).
    pub fn evaluate(&mut self, ds: &Dataset, nodes: &[NodeId], batch_size: usize) -> f64 {
        let mut rng = self.rng.fork();
        EvalHarness::accuracy(
            &self.model,
            ds,
            nodes,
            &self.cfg.fanouts,
            batch_size,
            &mut rng,
        )
    }

    /// Fig 1 probe: sample a fresh mini-batch for `seeds`, determine which
    /// destinations the cache would serve, and return the mean L2 distance
    /// between the top-layer output computed *with* those historical
    /// overrides and the authentic output computed exactly (same batch,
    /// full aggregation).
    pub fn probe_estimation_error(&mut self, ds: &Dataset, seeds: &[NodeId]) -> f32 {
        let mut rng = self.rng.fork();
        let mb = self
            .sampler
            .sample(&ds.graph, seeds, &self.cfg.fanouts, &mut rng);
        // Prune a clone to learn the cache-served set; keep `mb` un-pruned
        // so the exact pass aggregates fully.
        let mut pruned = mb.clone();
        let outcome =
            prune_with_cache_policy(&mut pruned, &mut self.cache, self.iter, &*self.policy);
        let ids: Vec<usize> = mb.input_nodes().iter().map(|&g| g as usize).collect();
        let h0 = ds.features.gather_rows(&ids);
        crate::probes::estimation_error(&self.model, &mb, &h0, &self.cache, &outcome.cached)
    }
}

/// Algorithm 1's stage set over disjoint borrows of the trainer's state,
/// run per batch by [`Engine::run_epoch`]. The loader temporarily owns the
/// trainer's static feature cache for the epoch.
struct FreshGnnStages<'s, 'd> {
    model: &'s mut Model,
    cache: &'s mut HistoricalCache,
    policy: &'s dyn CachePolicy,
    sampler: &'s mut NeighborSampler,
    rng: &'s mut Rng,
    iter: &'s mut u32,
    cfg: &'s FreshGnnConfig,
    dims: &'s [usize],
    machine: &'s Machine,
    loader: FeatureLoader<'d>,
    ds: &'d Dataset,
}

impl<'t> FreshGnnStages<'_, '_> {
    /// One full iteration of Algorithm 1, sampling included (sync path).
    fn train_batch(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        seeds: &[NodeId],
        opt: &mut dyn Optimizer,
    ) -> BatchOutput {
        // 1. Sample (measured CPU time).
        let mb = ctx.stage(StageKind::Sample, counters, |_, _| {
            let mut sample_rng = self.rng.fork();
            self.sampler
                .sample(&self.ds.graph, seeds, &self.cfg.fanouts, &mut sample_rng)
        });
        self.train_sampled(ctx, counters, mb, opt)
    }

    /// Steps 2–6 of Algorithm 1 on an already-sampled mini-batch (shared
    /// by the synchronous and asynchronous paths).
    fn train_sampled(
        &mut self,
        ctx: &mut PipelineCtx<'t>,
        counters: &mut TrafficCounters,
        mut mb: MiniBatch,
        opt: &mut dyn Optimizer,
    ) -> BatchOutput {
        let ds = self.ds;
        let seeds: Vec<NodeId> = mb.seeds.clone();
        let seeds = &seeds[..];
        let now = *self.iter;

        // Degraded mode: with the circuit breaker open the interconnect is
        // known bad, so stale cache reads are not worth trusting — bypass
        // the ring cache for this batch (prune finds nothing, every needed
        // row loads raw, no admissions).
        let degraded = ctx.breaker_open();
        self.cache.set_bypass(degraded);

        // 2. Prune against the cache (measured). The policy's refresh
        // schedule acts here: a live entry it flags is declined so the
        // node recomputes and refreshes the entry in place.
        let outcome = ctx.stage(StageKind::Prune, counters, |_, _| {
            prune_with_cache_policy(&mut mb, self.cache, now, self.policy)
        });

        // 3. Load surviving raw features (simulated transfer).
        let h0 = ctx.stage(StageKind::Load, counters, |engine, c| {
            let h0 = self.loader.load(
                mb.input_nodes(),
                Some(&outcome.needed_input),
                engine,
                Node::Host,
                Node::Gpu(0),
                c,
            );
            // Cache-read embeddings and pruned subtrees save these bytes
            // (for the Fig 13 I/O-saving metric the baseline is "load
            // everything").
            let skipped = (mb.input_nodes().len() - outcome.num_inputs_needed()) as u64;
            c.cache_hit_bytes += skipped * ds.spec.feature_row_bytes() as u64;
            h0
        });

        // 4. Forward, overriding cached rows between layers. The policy
        // post-processes each read (staleness weighting / history
        // extrapolation); under the baseline it is a plain copy.
        let trace = ctx.stage(StageKind::Forward, counters, |_, _| {
            let cache = &*self.cache;
            let policy = self.policy;
            let cached = &outcome.cached;
            self.model.forward_with(&mb, h0, |level, h| {
                let b = level - 1;
                if b < cached.len() {
                    for &(local, slot) in &cached[b] {
                        cache.read_into(level, slot, now, policy, h.row_mut(local as usize));
                    }
                }
            })
        });

        // 5. Loss + backward with gradient harvesting and detach.
        let num_levels = self.dims.len() - 1;
        let (loss, policy_inputs) = ctx.stage(StageKind::Backward, counters, |_, _| {
            let logits = trace.h.last().expect("at least one layer");
            let labels: Vec<u16> = seeds.iter().map(|&s| ds.labels[s as usize]).collect();
            let (loss, d_top) = softmax_cross_entropy(logits, &labels);

            self.model.zero_grad();
            let mut policy_inputs: Vec<Vec<PolicyInput>> = vec![Vec::new(); num_levels + 1];
            let cache_enabled = self.cfg.cache_enabled();
            let cache_top = self.cfg.cache_top_layer;
            let inputs = &mut policy_inputs;
            self.model.backward_with(&mb, &trace, d_top, |level, d| {
                if !cache_enabled {
                    return;
                }
                if level == num_levels && !cache_top {
                    return;
                }
                let b = level - 1;
                let block = &mb.blocks[b];
                let mut is_cached = vec![false; block.num_dst()];
                for &(local, _) in &outcome.cached[b] {
                    is_cached[local as usize] = true;
                }
                for v in 0..block.num_dst() {
                    let in_batch = outcome.computed[b][v] || is_cached[v];
                    if !in_batch {
                        continue;
                    }
                    let row = d.row(v);
                    let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
                    inputs[level].push(PolicyInput {
                        node: block.dst_global[v],
                        local: v as u32,
                        grad_norm: norm,
                        was_cached: is_cached[v],
                    });
                }
                // Detach: no gradient flows into pruned subtrees.
                for &(local, _) in &outcome.cached[b] {
                    d.row_mut(local as usize).iter_mut().for_each(|x| *x = 0.0);
                }
            });
            (loss, policy_inputs)
        });

        // 6. Cache update (Algorithm 1 line 20). The fork happens
        // unconditionally so the main RNG stream is independent of how
        // many levels had inputs (bit-for-bit schedule stability).
        ctx.stage(StageKind::CacheUpdate, counters, |_, _| {
            let mut policy_rng = self.rng.fork();
            for level in 1..=num_levels {
                if policy_inputs[level].is_empty() {
                    continue;
                }
                let verdicts =
                    self.policy
                        .verdicts(&policy_inputs[level], self.cfg.p_grad, &mut policy_rng);
                self.cache
                    .apply_verdicts(level, &verdicts, &trace.h[level], now);
            }
        });

        // 7. Optimizer step.
        ctx.stage(StageKind::OptimStep, counters, |_, _| {
            let mut params = self.model.params_mut();
            opt.step(&mut params);
        });

        // Simulated GPU compute time: one charge per batch (forward +
        // backward FLOPs), attributed to the Backward stage. Charged after
        // the optimizer step to keep the seed trainers' f64 accumulation
        // order, which the bit-for-bit equivalence guarantee depends on.
        let flops = batch_flops(&mb, &outcome, self.dims, self.model.arch);
        ctx.stage(StageKind::Backward, counters, |_, c| {
            c.compute_seconds += self.machine.gpu.compute_seconds(flops);
        });

        self.cache.set_bypass(false);
        *self.iter += 1;
        BatchOutput {
            loss,
            cache_reads: outcome.cached.iter().map(Vec::len).sum::<usize>() as u64,
            computed_nodes: outcome.computed.iter().flatten().filter(|&&c| c).count() as u64,
            degraded,
        }
    }
}

/// FLOPs of one mini-batch forward+backward (≈3× forward, the usual
/// estimate): aggregation over live edges plus dense transforms for
/// computed destinations.
pub fn batch_flops(mb: &MiniBatch, outcome: &PruneOutcome, dims: &[usize], arch: Arch) -> f64 {
    let mut fwd = 0.0;
    for (b, block) in mb.blocks.iter().enumerate() {
        let in_dim = dims[b];
        let out_dim = dims[b + 1];
        let edges = block.num_edges();
        let n_comp = outcome.computed[b].iter().filter(|&&c| c).count();
        fwd += aggregation_flops(edges, in_dim);
        let dense_in = match arch {
            Arch::Sage => 2 * in_dim,
            _ => in_dim,
        };
        fwd += dense_flops(n_comp, dense_in, out_dim);
        if arch == Arch::Gat {
            // Attention scores + weighted sum, ~4 flops per edge per dim.
            fwd += 4.0 * edges as f64 * out_dim as f64;
        }
    }
    3.0 * fwd
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgnn_graph::datasets::arxiv_spec;
    use fgnn_nn::Adam;

    fn tiny_dataset() -> Dataset {
        Dataset::materialize(arxiv_spec(0.0).with_dim(16), 42) // 256 nodes
    }

    fn config(p_grad: f32, t_stale: u32) -> FreshGnnConfig {
        FreshGnnConfig {
            p_grad,
            t_stale,
            fanouts: vec![4, 4],
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Sage,
            32,
            Machine::single_a100(),
            config(0.9, 50),
            1,
        );
        let mut opt = Adam::new(0.01);
        let first = t.train_epoch(&ds, &mut opt);
        let mut last = first.clone();
        for _ in 0..8 {
            last = t.train_epoch(&ds, &mut opt);
        }
        assert!(
            last.mean_loss < first.mean_loss * 0.8,
            "loss {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
    }

    #[test]
    fn cache_gets_used_after_warmup() {
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Gcn,
            16,
            Machine::single_a100(),
            config(0.9, 100),
            2,
        );
        let mut opt = Adam::new(0.01);
        t.train_epoch(&ds, &mut opt);
        let second = t.train_epoch(&ds, &mut opt);
        assert!(
            second.cache_reads > 0,
            "cache must serve hits on the second epoch"
        );
        let stats = t.cache.stats();
        assert!(stats.admits > 0);
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn p_grad_zero_never_touches_cache() {
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Sage,
            16,
            Machine::single_a100(),
            config(0.0, 0),
            3,
        );
        let mut opt = Adam::new(0.01);
        for _ in 0..3 {
            let s = t.train_epoch(&ds, &mut opt);
            assert_eq!(s.cache_reads, 0);
        }
        assert_eq!(t.cache.stats().admits, 0);
        assert!(t.cache.is_empty());
    }

    #[test]
    fn cache_reduces_wire_traffic() {
        let ds = tiny_dataset();
        let mut opt1 = Adam::new(0.01);
        let mut opt2 = Adam::new(0.01);
        let mut plain = Trainer::new(
            &ds,
            Arch::Sage,
            16,
            Machine::single_a100(),
            config(0.0, 0),
            4,
        );
        let mut cached = Trainer::new(
            &ds,
            Arch::Sage,
            16,
            Machine::single_a100(),
            config(0.95, 100),
            4,
        );
        let mut plain_bytes = 0;
        let mut cached_bytes = 0;
        for _ in 0..5 {
            plain_bytes += plain.train_epoch(&ds, &mut opt1).counters.host_to_gpu_bytes;
            cached_bytes += cached
                .train_epoch(&ds, &mut opt2)
                .counters
                .host_to_gpu_bytes;
        }
        assert!(
            cached_bytes < plain_bytes,
            "cached {cached_bytes} vs plain {plain_bytes}"
        );
    }

    #[test]
    fn evaluate_returns_sane_accuracy() {
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Sage,
            32,
            Machine::single_a100(),
            config(0.9, 50),
            5,
        );
        let mut opt = Adam::new(0.01);
        for _ in 0..12 {
            t.train_epoch(&ds, &mut opt);
        }
        let acc = t.evaluate(&ds, &ds.test_nodes, 64);
        // 64-class tiny task trained briefly: must beat random (1/64) by a
        // wide margin.
        assert!(acc > 0.10, "accuracy {acc}");
    }

    #[test]
    fn accuracy_with_cache_close_to_plain() {
        let ds = tiny_dataset();
        let mut opt1 = Adam::new(0.01);
        let mut opt2 = Adam::new(0.01);
        let machine = Machine::single_a100();
        let mut plain = Trainer::new(&ds, Arch::Gcn, 16, machine.clone(), config(0.0, 0), 6);
        let mut cached = Trainer::new(&ds, Arch::Gcn, 16, machine, config(0.9, 50), 6);
        for _ in 0..10 {
            plain.train_epoch(&ds, &mut opt1);
            cached.train_epoch(&ds, &mut opt2);
        }
        let a_plain = plain.evaluate(&ds, &ds.test_nodes, 64);
        let a_cached = cached.evaluate(&ds, &ds.test_nodes, 64);
        assert!(
            (a_plain - a_cached).abs() < 0.10,
            "plain {a_plain} vs cached {a_cached}"
        );
    }

    #[test]
    fn async_epoch_trains_and_is_thread_count_invariant() {
        let ds = tiny_dataset();
        let machine = Machine::single_a100();
        let run = |threads: usize| {
            let mut t = Trainer::new(&ds, Arch::Sage, 16, machine.clone(), config(0.9, 30), 21);
            let mut opt = Adam::new(0.01);
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(
                    t.train_epoch_async(&ds, &mut opt, threads, 4)
                        .expect("no faults injected")
                        .mean_loss,
                );
            }
            (losses, t.counters.host_to_gpu_bytes)
        };
        let (l1, b1) = run(1);
        let (l4, b4) = run(4);
        assert_eq!(l1, l4, "async stream must be thread-count invariant");
        assert_eq!(b1, b4);
        assert!(l1[2] < l1[0], "loss must decrease: {l1:?}");
    }

    #[test]
    fn resilient_epoch_rolls_back_on_injected_nan() {
        use crate::resilience::Supervisor;
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Sage,
            16,
            Machine::single_a100(),
            config(0.9, 50),
            7,
        );
        let mut opt = Adam::new(0.01);
        let mut sup = Supervisor::default();
        let clean = t.train_epoch_resilient(&ds, &mut opt, &mut sup).unwrap();
        assert!(sup.transitions().is_empty(), "clean epoch stays healthy");
        assert_eq!(sup.rollbacks(), 0);

        t.inject_nan_at([t.iterations() + 3]);
        let recovered = t.train_epoch_resilient(&ds, &mut opt, &mut sup).unwrap();
        assert_eq!(sup.rollbacks(), 1);
        let arcs: Vec<_> = sup
            .transitions()
            .iter()
            .map(|tr| (tr.from.name(), tr.to.name()))
            .collect();
        assert_eq!(
            arcs,
            vec![
                ("healthy", "degraded"),
                ("degraded", "recovering"),
                ("recovering", "healthy"),
            ]
        );
        // The rollback restored the RNG, so the replay walks the full
        // batch schedule; the injection was consumed, so it runs clean.
        assert_eq!(recovered.batches, clean.batches);
        assert!(recovered.mean_loss.is_finite());
        assert_eq!(t.epochs(), 2, "replay must not inflate the epoch count");
    }

    #[test]
    fn resilient_epoch_errors_when_rollback_budget_exhausted() {
        use crate::error::FgnnError;
        use crate::resilience::{GuardConfig, Supervisor, SupervisorConfig};
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Sage,
            16,
            Machine::single_a100(),
            config(0.9, 50),
            8,
        );
        let mut opt = Adam::new(0.01);
        let mut sup = Supervisor::new(SupervisorConfig {
            max_rollbacks: 2,
            guard: GuardConfig::default(),
        });
        // Injections at the same post-rollback iteration re-fire on every
        // replay: a persistent divergence.
        t.inject_nan_at([0, 1, 2, 3]);
        let err = t
            .train_epoch_resilient(&ds, &mut opt, &mut sup)
            .unwrap_err();
        assert!(matches!(err, FgnnError::Numeric(_)), "{err}");
        assert_eq!(sup.rollbacks(), 2);
    }

    #[test]
    fn async_epoch_uses_cache_like_sync() {
        let ds = tiny_dataset();
        let mut t = Trainer::new(
            &ds,
            Arch::Gcn,
            16,
            Machine::single_a100(),
            config(0.9, 50),
            22,
        );
        let mut opt = Adam::new(0.01);
        t.train_epoch_async(&ds, &mut opt, 2, 4).unwrap();
        let s = t.train_epoch_async(&ds, &mut opt, 2, 4).unwrap();
        assert!(s.cache_reads > 0, "cache must serve hits on epoch 2");
        assert_eq!(t.epochs(), 2);
    }
}
