//! Per-layer bipartite message-flow graphs ("blocks", DGL's MFGs).
//!
//! A sampled mini-batch for an L-layer GNN is L blocks. Block `l` (0-based,
//! input→output order) maps layer-`l` representations of its *src* nodes to
//! layer-`l+1` representations of its *dst* nodes. The adjacency is stored
//! in [`Csr2`] so the cache-aware pruner (freshgnn `prune` module) can drop
//! a cached destination's aggregation in O(1).

use crate::{Csr2, NodeId};

/// One bipartite layer of a sampled mini-batch.
///
/// Invariants (checked by [`Block::validate`]):
/// * `src_global[i] == dst_global[i]` for `i < dst_global.len()` — every
///   destination is also a source so its own previous-layer representation
///   is available (self term of GCN/SAGE updates);
/// * adjacency rows are indexed by *local* dst ID, entries are *local* src
///   IDs, and self-edges are not stored (layers add the self term
///   explicitly).
#[derive(Clone, Debug)]
pub struct Block {
    /// Destination (output) nodes, global IDs, local ID = position.
    pub dst_global: Vec<NodeId>,
    /// Source (input) nodes, global IDs; prefix equals `dst_global`.
    pub src_global: Vec<NodeId>,
    /// Sampled adjacency: row = local dst, entries = local src.
    pub adj: Csr2,
}

impl Block {
    /// Number of destination nodes.
    #[inline]
    pub fn num_dst(&self) -> usize {
        self.dst_global.len()
    }

    /// Number of source nodes.
    #[inline]
    pub fn num_src(&self) -> usize {
        self.src_global.len()
    }

    /// Number of live (unpruned) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.num_live_edges()
    }

    /// Check the structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.adj.num_nodes() != self.num_dst() {
            return Err(format!(
                "adjacency has {} rows but block has {} dst nodes",
                self.adj.num_nodes(),
                self.num_dst()
            ));
        }
        if self.src_global.len() < self.dst_global.len() {
            return Err("src set smaller than dst set".into());
        }
        for (i, (&d, &s)) in self.dst_global.iter().zip(&self.src_global).enumerate() {
            if d != s {
                return Err(format!("src prefix mismatch at {i}: dst {d} vs src {s}"));
            }
        }
        let n_src = self.num_src() as NodeId;
        for i in 0..self.num_dst() {
            for (k, &u) in self.adj.neighbors(i).iter().enumerate() {
                if u >= n_src {
                    return Err(format!(
                        "dst {i} neighbor #{k} = {u} out of src range {n_src}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A full sampled mini-batch: `blocks[0]` consumes raw input features,
/// `blocks[L-1]` produces outputs for the seed nodes.
#[derive(Clone, Debug)]
pub struct MiniBatch {
    /// Per-layer blocks in input→output order.
    pub blocks: Vec<Block>,
    /// Seed (training) nodes — always equal to the last block's dst set.
    pub seeds: Vec<NodeId>,
}

impl MiniBatch {
    /// Number of GNN layers this batch feeds.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.blocks.len()
    }

    /// The nodes whose *raw features* must be loaded (before any cache
    /// pruning): the src set of the input block.
    #[inline]
    pub fn input_nodes(&self) -> &[NodeId] {
        &self.blocks[0].src_global
    }

    /// Total live edges across all blocks (compute-cost proxy).
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(Block::num_edges).sum()
    }

    /// Validate all blocks plus the seed/top-block correspondence.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("mini-batch with zero blocks".into());
        }
        for (l, b) in self.blocks.iter().enumerate() {
            b.validate().map_err(|e| format!("block {l}: {e}"))?;
        }
        let top = &self.blocks[self.blocks.len() - 1];
        if top.dst_global != self.seeds {
            return Err("top block dst != seeds".into());
        }
        // Layer chaining: block l's src set must equal block l-1's dst set.
        for l in 1..self.blocks.len() {
            if self.blocks[l].src_global != self.blocks[l - 1].dst_global {
                return Err(format!("block {l} src != block {} dst", l - 1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block() -> Block {
        // dst = [10, 11]; src = [10, 11, 20, 21]; 10 <- {20, 21}, 11 <- {20}.
        Block {
            dst_global: vec![10, 11],
            src_global: vec![10, 11, 20, 21],
            adj: Csr2::from_neighbor_lists(&[vec![2, 3], vec![2]]),
        }
    }

    #[test]
    fn block_counts() {
        let b = tiny_block();
        assert_eq!(b.num_dst(), 2);
        assert_eq!(b.num_src(), 4);
        assert_eq!(b.num_edges(), 3);
        b.validate().unwrap();
    }

    #[test]
    fn validate_catches_prefix_violation() {
        let mut b = tiny_block();
        b.src_global[0] = 99;
        assert!(b.validate().unwrap_err().contains("prefix"));
    }

    #[test]
    fn validate_catches_out_of_range_neighbor() {
        let mut b = tiny_block();
        b.adj = Csr2::from_neighbor_lists(&[vec![9], vec![]]);
        assert!(b.validate().unwrap_err().contains("out of src range"));
    }

    #[test]
    fn minibatch_validation_checks_chaining() {
        let b0 = Block {
            dst_global: vec![10, 11, 20, 21],
            src_global: vec![10, 11, 20, 21, 30],
            adj: Csr2::from_neighbor_lists(&[vec![4], vec![], vec![], vec![]]),
        };
        let b1 = tiny_block();
        let mb = MiniBatch {
            blocks: vec![b0.clone(), b1.clone()],
            seeds: vec![10, 11],
        };
        mb.validate().unwrap();
        assert_eq!(mb.input_nodes(), &[10, 11, 20, 21, 30]);
        assert_eq!(mb.total_edges(), 4);

        let broken = MiniBatch {
            blocks: vec![b1.clone(), b1],
            seeds: vec![10, 11],
        };
        assert!(broken.validate().is_err());
    }
}
