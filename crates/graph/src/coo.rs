//! Coordinate-format adjacency (edge list), plus the reference COO pruner
//! for the Table 1 / Fig 14(b) comparison.

use crate::{Csr, NodeId};

/// Sentinel marking a tombstoned (pruned) edge.
pub const TOMBSTONE: NodeId = NodeId::MAX;

/// COO adjacency: parallel `src`/`dst` arrays, kept sorted by `dst` so a
/// node's incoming edges can be located by binary search (the O(log |E|)
/// term in Table 1).
#[derive(Clone, Debug)]
pub struct Coo {
    src: Vec<NodeId>,
    dst: Vec<NodeId>,
    n: usize,
}

impl Coo {
    /// Build from directed edges, sorting by destination.
    pub fn from_directed_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut pairs: Vec<(NodeId, NodeId)> = edges.to_vec();
        pairs.sort_unstable_by_key(|&(s, d)| (d, s));
        let (src, dst) = pairs.into_iter().unzip();
        Coo { src, dst, n }
    }

    /// Convert from CSR (preserves the by-destination grouping).
    pub fn from_csr(csr: &Csr) -> Self {
        let mut src = Vec::with_capacity(csr.num_edges());
        let mut dst = Vec::with_capacity(csr.num_edges());
        for v in 0..csr.num_nodes() as NodeId {
            for &u in csr.neighbors(v) {
                src.push(u);
                dst.push(v);
            }
        }
        Coo {
            src,
            dst,
            n: csr.num_nodes(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edge slots, including tombstones.
    #[inline]
    pub fn num_edge_slots(&self) -> usize {
        self.src.len()
    }

    /// Number of live (non-tombstoned) edges.
    pub fn num_live_edges(&self) -> usize {
        self.src.iter().filter(|&&s| s != TOMBSTONE).count()
    }

    /// Source endpoints (by-destination order; tombstoned entries are
    /// [`TOMBSTONE`]).
    #[inline]
    pub fn src(&self) -> &[NodeId] {
        &self.src
    }

    /// Destination endpoints.
    #[inline]
    pub fn dst(&self) -> &[NodeId] {
        &self.dst
    }

    /// Live in-neighbors of `v` (allocates; COO is not the hot-path format).
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let (lo, hi) = self.edge_range(v);
        self.src[lo..hi]
            .iter()
            .copied()
            .filter(|&s| s != TOMBSTONE)
            .collect()
    }

    /// Binary-search the contiguous edge range of destination `v`:
    /// the `O(log |E|)` locate step of Table 1.
    fn edge_range(&self, v: NodeId) -> (usize, usize) {
        let lo = self.dst.partition_point(|&d| d < v);
        let hi = self.dst.partition_point(|&d| d <= v);
        (lo, hi)
    }

    /// Prune all incoming edges of `v`: binary search to locate the range
    /// (O(log |E|)), then tombstone each edge (O(N_neighbors)).
    ///
    /// Faithful to the paper's complexity claim for COO; compare
    /// [`crate::Csr2::prune`] which is O(1).
    pub fn prune_neighbors(&mut self, v: NodeId) -> usize {
        let (lo, hi) = self.edge_range(v);
        let mut removed = 0;
        for s in self.src[lo..hi].iter_mut() {
            if *s != TOMBSTONE {
                *s = TOMBSTONE;
                removed += 1;
            }
        }
        removed
    }

    /// Approximate resident size in bytes (Table 1: `O(2|E|)`).
    pub fn bytes(&self) -> usize {
        (self.src.len() + self.dst.len()) * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo {
        Coo::from_directed_edges(4, &[(1, 3), (0, 1), (2, 3), (0, 2), (3, 0)])
    }

    #[test]
    fn sorted_by_destination() {
        let c = sample();
        assert!(c.dst().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(c.num_edge_slots(), 5);
    }

    #[test]
    fn neighbors_match_edges() {
        let c = sample();
        assert_eq!(c.neighbors(3), vec![1, 2]);
        assert_eq!(c.neighbors(0), vec![3]);
        assert_eq!(c.neighbors(1), vec![0]);
    }

    #[test]
    fn prune_tombstones_only_target() {
        let mut c = sample();
        let removed = c.prune_neighbors(3);
        assert_eq!(removed, 2);
        assert!(c.neighbors(3).is_empty());
        assert_eq!(c.neighbors(0), vec![3]);
        assert_eq!(c.num_live_edges(), 3);
        // Double prune is a no-op.
        assert_eq!(c.prune_neighbors(3), 0);
    }

    #[test]
    fn from_csr_round_trips_neighbor_sets() {
        let csr = Csr::from_directed_edges(4, &[(1, 3), (0, 1), (2, 3), (0, 2)]);
        let coo = Coo::from_csr(&csr);
        for v in 0..4 {
            let mut a = coo.neighbors(v);
            a.sort_unstable();
            let mut b = csr.neighbors(v).to_vec();
            b.sort_unstable();
            assert_eq!(a, b, "node {v}");
        }
    }

    #[test]
    fn prune_node_with_no_edges() {
        let mut c = sample();
        assert_eq!(c.prune_neighbors(2), 1); // node 2 has in-edge from 0
        let mut c2 = Coo::from_directed_edges(3, &[(0, 1)]);
        assert_eq!(c2.prune_neighbors(2), 0);
    }
}
