//! Compressed Sparse Row adjacency.
//!
//! The canonical at-rest format for the full graph: `indptr[v]..indptr[v+1]`
//! delimits node `v`'s neighbor list in `indices`. Message passing treats the
//! stored lists as *in*-neighbors (the nodes a destination aggregates from);
//! undirected constructors insert both directions.

use crate::NodeId;

/// CSR adjacency over `n` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    indptr: Vec<usize>,
    indices: Vec<NodeId>,
}

impl Csr {
    /// Build from directed edges `(src, dst)`, storing for each `dst` its
    /// in-neighbor list (sorted by construction via counting sort).
    pub fn from_directed_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(_, d) in edges {
            counts[d as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0 as NodeId; edges.len()];
        for &(s, d) in edges {
            indices[cursor[d as usize]] = s;
            cursor[d as usize] += 1;
        }
        Csr { indptr, indices }
    }

    /// Build from undirected edges: every `(u, v)` contributes both `u -> v`
    /// and `v -> u`. Self-loops contribute a single entry.
    pub fn from_undirected_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            directed.push((u, v));
            if u != v {
                directed.push((v, u));
            }
        }
        Csr::from_directed_edges(n, &directed)
    }

    /// Build directly from raw CSR arrays. Panics on malformed input.
    pub fn from_parts(indptr: Vec<usize>, indices: Vec<NodeId>) -> Self {
        assert!(!indptr.is_empty(), "indptr must have n+1 entries");
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr/indices mismatch"
        );
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be non-decreasing"
        );
        Csr { indptr, indices }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.indices[self.indptr[v as usize]..self.indptr[v as usize + 1]]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.indptr[v as usize + 1] - self.indptr[v as usize]
    }

    /// Raw offset array (n+1 entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw neighbor array.
    #[inline]
    pub fn indices(&self) -> &[NodeId] {
        &self.indices
    }

    /// Approximate resident size in bytes (for the GAS OOM accounting).
    pub fn bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<NodeId>()
    }

    /// Reference "prune all neighbors of `v`" for the Table 1 comparison:
    /// CSR must rewrite the offset array (O(|V|)) after deleting the
    /// neighbor segment (O(N_neighbors) via copy-down).
    ///
    /// Returns the number of removed edges. This exists to measure the cost
    /// the paper's CSR2 avoids; the hot path uses [`crate::Csr2::prune`].
    pub fn prune_neighbors(&mut self, v: NodeId) -> usize {
        let lo = self.indptr[v as usize];
        let hi = self.indptr[v as usize + 1];
        let removed = hi - lo;
        if removed == 0 {
            return 0;
        }
        // O(E) compaction of the neighbor array...
        self.indices.drain(lo..hi);
        // ...and O(V) rewrite of every subsequent offset.
        for p in self.indptr[v as usize + 1..].iter_mut() {
            *p -= removed;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (directed), stored by dst.
        Csr::from_directed_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn directed_edges_grouped_by_destination() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[1, 2]);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = Csr::from_undirected_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn self_loop_stored_once_in_undirected() {
        let g = Csr::from_undirected_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn from_parts_validates() {
        let g = Csr::from_parts(vec![0, 1, 2], vec![1, 0]);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "indptr/indices mismatch")]
    fn from_parts_rejects_bad_lengths() {
        let _ = Csr::from_parts(vec![0, 1], vec![]);
    }

    #[test]
    fn prune_neighbors_removes_segment_and_fixes_offsets() {
        let mut g = diamond();
        let removed = g.prune_neighbors(3);
        assert_eq!(removed, 2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn prune_middle_node_keeps_later_lists_intact() {
        let mut g = Csr::from_directed_edges(4, &[(3, 1), (2, 1), (0, 2), (1, 3), (0, 3)]);
        g.prune_neighbors(1);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[1, 0]);
    }
}
