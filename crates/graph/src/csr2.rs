//! CSR2 — the paper's sparse format for O(1) neighbor pruning (§5, Fig 8,
//! Table 1).
//!
//! CSR2 stores *two* offset arrays: `start[i]` and `end[i]` delimit node
//! `i`'s neighbor segment in the shared column-index array. Removing all of
//! a node's neighbors is then the single write `end[i] = start[i]` — no
//! column-array edits, no offset rebuild, and (on the paper's GPU) no data
//! races between threads pruning different nodes. The redundancy costs one
//! extra offset array: storage `O(2|V| + |E|)` vs CSR's `O(|V| + |E|)`.

use crate::{Csr, NodeId};

/// Dual-offset sparse adjacency with O(1) per-node pruning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr2 {
    start: Vec<usize>,
    end: Vec<usize>,
    indices: Vec<NodeId>,
}

impl Csr2 {
    /// Build from a CSR graph.
    pub fn from_csr(csr: &Csr) -> Self {
        let n = csr.num_nodes();
        let indptr = csr.indptr();
        Csr2 {
            start: indptr[..n].to_vec(),
            end: indptr[1..].to_vec(),
            indices: csr.indices().to_vec(),
        }
    }

    /// Build from raw parts. Panics on malformed input.
    pub fn from_parts(start: Vec<usize>, end: Vec<usize>, indices: Vec<NodeId>) -> Self {
        assert_eq!(start.len(), end.len(), "start/end length mismatch");
        for i in 0..start.len() {
            assert!(start[i] <= end[i], "segment {i} inverted");
            assert!(end[i] <= indices.len(), "segment {i} beyond indices");
        }
        Csr2 {
            start,
            end,
            indices,
        }
    }

    /// Build from per-node neighbor lists (used by the block sampler).
    pub fn from_neighbor_lists(lists: &[Vec<NodeId>]) -> Self {
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut start = Vec::with_capacity(lists.len());
        let mut end = Vec::with_capacity(lists.len());
        let mut indices = Vec::with_capacity(total);
        for list in lists {
            start.push(indices.len());
            indices.extend_from_slice(list);
            end.push(indices.len());
        }
        Csr2 {
            start,
            end,
            indices,
        }
    }

    /// Number of nodes (rows).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.start.len()
    }

    /// Number of *live* edges (pruned segments excluded).
    pub fn num_live_edges(&self) -> usize {
        self.start.iter().zip(&self.end).map(|(&s, &e)| e - s).sum()
    }

    /// Total edge slots in the column array, including pruned ones.
    #[inline]
    pub fn num_edge_slots(&self) -> usize {
        self.indices.len()
    }

    /// Live neighbors of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[NodeId] {
        &self.indices[self.start[i]..self.end[i]]
    }

    /// Live degree of node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        self.end[i] - self.start[i]
    }

    /// Prune all neighbors of node `i` — the O(1) operation this format
    /// exists for (`end[i] = start[i]`, Fig 8). Returns the number of edges
    /// removed.
    #[inline]
    pub fn prune(&mut self, i: usize) -> usize {
        let removed = self.end[i] - self.start[i];
        self.end[i] = self.start[i];
        removed
    }

    /// Whether node `i` currently has zero live neighbors.
    #[inline]
    pub fn is_pruned(&self, i: usize) -> bool {
        self.start[i] == self.end[i]
    }

    /// Undo a prune by restoring `end[i]` from `original`. Used by tests and
    /// by benchmarks that re-run pruning over the same block.
    pub fn restore_from(&mut self, original: &Csr2) {
        debug_assert_eq!(self.start, original.start);
        self.end.copy_from_slice(&original.end);
    }

    /// Approximate resident size in bytes (Table 1: `O(2|V| + |E|)`).
    pub fn bytes(&self) -> usize {
        (self.start.len() + self.end.len()) * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr2 {
        Csr2::from_neighbor_lists(&[vec![1, 2], vec![0], vec![], vec![0, 1, 2]])
    }

    #[test]
    fn from_csr_preserves_neighbors() {
        let csr = Csr::from_directed_edges(4, &[(1, 0), (2, 0), (0, 3), (1, 3)]);
        let c2 = Csr2::from_csr(&csr);
        assert_eq!(c2.neighbors(0), csr.neighbors(0));
        assert_eq!(c2.neighbors(3), csr.neighbors(3));
        assert_eq!(c2.num_live_edges(), csr.num_edges());
    }

    #[test]
    fn prune_is_o1_and_only_touches_target() {
        let mut g = sample();
        assert_eq!(g.num_live_edges(), 6);
        let removed = g.prune(3);
        assert_eq!(removed, 3);
        assert!(g.is_pruned(3));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.num_live_edges(), 3);
        // The column array is untouched — only offsets changed.
        assert_eq!(g.num_edge_slots(), 6);
    }

    #[test]
    fn prune_empty_node_is_noop() {
        let mut g = sample();
        assert_eq!(g.prune(2), 0);
        assert!(g.is_pruned(2));
    }

    #[test]
    fn double_prune_removes_nothing_more() {
        let mut g = sample();
        g.prune(0);
        assert_eq!(g.prune(0), 0);
    }

    #[test]
    fn restore_returns_to_original() {
        let original = sample();
        let mut g = original.clone();
        g.prune(0);
        g.prune(3);
        g.restore_from(&original);
        assert_eq!(g, original);
    }

    #[test]
    #[should_panic(expected = "segment 1 inverted")]
    fn from_parts_rejects_inverted_segments() {
        let _ = Csr2::from_parts(vec![0, 3], vec![2, 2], vec![0, 1, 2]);
    }

    #[test]
    fn storage_accounting_matches_table1_shape() {
        let g = sample();
        let v = g.num_nodes();
        let e = g.num_edge_slots();
        assert_eq!(
            g.bytes(),
            2 * v * std::mem::size_of::<usize>() + e * std::mem::size_of::<NodeId>()
        );
    }
}
