//! Scaled synthetic stand-ins for the paper's datasets (Table 2).
//!
//! | Paper dataset    | |V|    | |E|   | Dim | #Class | dtype |
//! |------------------|--------|-------|-----|--------|-------|
//! | ogbn-arxiv       | 2.9M*  | 30.4M | 128 | 64*    | f32   |
//! | ogbn-products    | 2.4M   | 123M  | 100 | 47     | f32   |
//! | ogbn-papers100M  | 111M   | 1.6B  | 128 | 172    | f32   |
//! | MAG240M          | 244.2M | 1.7B  | 768 | 153    | f16   |
//! | Twitter          | 41.7M  | 1.5B  | 768 | 64     | f16   |
//! | Friendster       | 65.6M  | 1.8B  | 768 | 64     | f16   |
//!
//! (*as printed in the paper's Table 2.) We reproduce the *shape* of each
//! dataset — degree density, feature dimension, class count, feature dtype
//! width (for traffic accounting), train-set fraction — at a configurable
//! `scale` of the node count, defaulting to `1/1000` of the original for
//! the large graphs. DESIGN.md §2 documents why this preserves the paper's
//! conclusions.

use crate::generate::{generate, planted_features, GraphConfig};
use crate::{Csr, NodeId};
use fgnn_tensor::{Matrix, Rng};

/// Static description of a dataset before materialization.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Short name, e.g. `"papers100M-s"`.
    pub name: &'static str,
    /// Node count after scaling.
    pub num_nodes: usize,
    /// Target average degree (paper's 2|E|/|V| for undirected storage).
    pub avg_degree: f64,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Bytes per feature scalar (4 = f32, 2 = f16). Features are held as
    /// f32 in memory; this field drives *traffic accounting* so MAG240M's
    /// f16 features move half the bytes, as in the paper.
    pub feature_scalar_bytes: usize,
    /// Fraction of nodes in the training split.
    pub train_frac: f64,
    /// Edge homophily of the generator (labels ↔ structure coupling).
    pub homophily: f64,
    /// Whether labels are meaningful (Twitter/Friendster use artificial
    /// features and are only used for speed runs).
    pub labeled: bool,
}

impl DatasetSpec {
    /// Override the node count (keeps everything else).
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.num_nodes = n;
        self
    }

    /// Override the feature dimension (for quick experiments).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.feature_dim = dim;
        self
    }

    /// Bytes needed to move one node's features over an interconnect.
    pub fn feature_row_bytes(&self) -> usize {
        self.feature_dim * self.feature_scalar_bytes
    }
}

/// `ogbn-arxiv` stand-in. Paper: 2.9M nodes (Table 2), 128-dim, 64 classes.
pub fn arxiv_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "arxiv-s",
        num_nodes: scaled(2_900_000, scale),
        avg_degree: 21.0,
        feature_dim: 128,
        num_classes: 64,
        feature_scalar_bytes: 4,
        train_frac: 0.54, // ogbn-arxiv trains on ~54% of papers
        homophily: 0.75,
        labeled: true,
    }
}

/// `ogbn-products` stand-in: 2.4M nodes, avg degree ~100, 100-dim, 47
/// classes, ~8% train split.
pub fn products_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "products-s",
        num_nodes: scaled(2_400_000, scale),
        avg_degree: 51.0,
        feature_dim: 100,
        num_classes: 47,
        feature_scalar_bytes: 4,
        train_frac: 0.08,
        homophily: 0.85,
        labeled: true,
    }
}

/// `ogbn-papers100M` stand-in: 111M nodes, 1.6B edges, 128-dim, 172
/// classes, ~1.1% train split.
pub fn papers100m_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "papers100M-s",
        num_nodes: scaled(111_000_000, scale),
        avg_degree: 29.0,
        feature_dim: 128,
        num_classes: 172,
        feature_scalar_bytes: 4,
        train_frac: 0.011,
        homophily: 0.8,
        labeled: true,
    }
}

/// `MAG240M` stand-in: 244.2M nodes, 768-dim **f16** features, 153 classes,
/// ~0.5% train split (1.4M labeled papers).
pub fn mag240m_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "mag240M-s",
        num_nodes: scaled(244_200_000, scale),
        avg_degree: 14.0,
        feature_dim: 768,
        num_classes: 153,
        feature_scalar_bytes: 2,
        train_frac: 0.006,
        homophily: 0.8,
        labeled: true,
    }
}

/// Twitter stand-in (structure + artificial features, speed tests only).
pub fn twitter_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "twitter-s",
        num_nodes: scaled(41_700_000, scale),
        avg_degree: 72.0,
        feature_dim: 768,
        num_classes: 64,
        feature_scalar_bytes: 2,
        train_frac: 0.01,
        homophily: 0.5,
        labeled: false,
    }
}

/// Friendster stand-in (structure + artificial features, speed tests only).
pub fn friendster_spec(scale: f64) -> DatasetSpec {
    DatasetSpec {
        name: "friendster-s",
        num_nodes: scaled(65_600_000, scale),
        avg_degree: 55.0,
        feature_dim: 768,
        num_classes: 64,
        feature_scalar_bytes: 2,
        train_frac: 0.01,
        homophily: 0.5,
        labeled: false,
    }
}

fn scaled(original: usize, scale: f64) -> usize {
    ((original as f64 * scale) as usize).max(256)
}

/// A fully materialized dataset.
///
/// `Clone` is cheap enough at benchmark scales and lets the cluster
/// sharder hand each host an owned copy (H=1 keeps the full dataset).
#[derive(Clone)]
pub struct Dataset {
    /// The spec this dataset was built from.
    pub spec: DatasetSpec,
    /// Symmetric adjacency.
    pub graph: Csr,
    /// `|V| x dim` node features (held as f32; traffic uses
    /// [`DatasetSpec::feature_scalar_bytes`]).
    pub features: Matrix,
    /// Per-node labels in `0..num_classes`.
    pub labels: Vec<u16>,
    /// Training node IDs.
    pub train_nodes: Vec<NodeId>,
    /// Validation node IDs.
    pub val_nodes: Vec<NodeId>,
    /// Test node IDs.
    pub test_nodes: Vec<NodeId>,
}

impl Dataset {
    /// Materialize a spec: generate the graph, planted features/labels, and
    /// train/val/test splits. Deterministic in `seed`.
    pub fn materialize(spec: DatasetSpec, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let cfg = GraphConfig {
            num_nodes: spec.num_nodes,
            avg_degree: spec.avg_degree,
            num_communities: spec.num_classes,
            homophily: spec.homophily,
            power_law_exponent: 2.3,
        };
        let gen = generate(&cfg, &mut rng);
        let signal = planted_features(
            &gen.communities,
            spec.num_classes,
            spec.feature_dim,
            if spec.labeled { 1.0 } else { 0.0 },
            0.05,
            &mut rng,
        );

        // Split: shuffle node IDs, take train_frac for train, then 10%/rest
        // of the remainder for val/test (capped so tiny datasets still have
        // all three splits).
        let mut ids: Vec<NodeId> = (0..spec.num_nodes as NodeId).collect();
        rng.shuffle(&mut ids);
        let n_train =
            ((spec.num_nodes as f64 * spec.train_frac) as usize).clamp(1, spec.num_nodes - 2);
        let remaining = spec.num_nodes - n_train;
        let n_val = (remaining / 10).max(1);
        let train_nodes = ids[..n_train].to_vec();
        let val_nodes = ids[n_train..n_train + n_val].to_vec();
        let test_nodes = ids[n_train + n_val..].to_vec();

        Dataset {
            spec,
            graph: gen.graph,
            features: signal.features,
            labels: signal.labels,
            train_nodes,
            val_nodes,
            test_nodes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Total feature bytes as the paper would account them (honoring f16).
    pub fn feature_bytes(&self) -> usize {
        self.num_nodes() * self.spec.feature_row_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_scale_node_counts() {
        let s = papers100m_spec(0.001);
        assert_eq!(s.num_nodes, 111_000);
        let tiny = arxiv_spec(0.0);
        assert_eq!(tiny.num_nodes, 256); // floor kicks in
    }

    #[test]
    fn materialize_produces_consistent_shapes() {
        let ds = Dataset::materialize(arxiv_spec(0.001).with_dim(16), 1);
        assert_eq!(ds.features.shape(), (ds.num_nodes(), 16));
        assert_eq!(ds.labels.len(), ds.num_nodes());
        let total = ds.train_nodes.len() + ds.val_nodes.len() + ds.test_nodes.len();
        assert_eq!(total, ds.num_nodes());
        assert!(ds
            .labels
            .iter()
            .all(|&l| (l as usize) < ds.spec.num_classes));
    }

    #[test]
    fn splits_are_disjoint() {
        let ds = Dataset::materialize(products_spec(0.0005).with_dim(8), 2);
        let mut seen = std::collections::HashSet::new();
        for id in ds
            .train_nodes
            .iter()
            .chain(&ds.val_nodes)
            .chain(&ds.test_nodes)
        {
            assert!(seen.insert(*id), "node {id} in two splits");
        }
    }

    #[test]
    fn mag_accounts_f16_traffic() {
        let s = mag240m_spec(0.0001);
        assert_eq!(s.feature_row_bytes(), 768 * 2);
        let p = papers100m_spec(0.0001);
        assert_eq!(p.feature_row_bytes(), 128 * 4);
    }

    #[test]
    fn materialization_is_deterministic() {
        let a = Dataset::materialize(arxiv_spec(0.0005).with_dim(8), 9);
        let b = Dataset::materialize(arxiv_spec(0.0005).with_dim(8), 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.train_nodes, b.train_nodes);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
    }

    #[test]
    fn train_fraction_respected() {
        let ds = Dataset::materialize(papers100m_spec(0.0005).with_dim(8), 3);
        let frac = ds.train_nodes.len() as f64 / ds.num_nodes() as f64;
        assert!((frac - 0.011).abs() < 0.002, "train fraction {frac}");
    }
}
