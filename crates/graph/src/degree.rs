//! Degree utilities: distributions and the degree-ordered node ranking used
//! by the raw-feature cache (GNNLab-style and FreshGNN's empty-slot
//! backfill, §4.2).

use crate::{Csr, NodeId};

/// In-degrees of every node.
pub fn degrees(graph: &Csr) -> Vec<usize> {
    (0..graph.num_nodes() as NodeId)
        .map(|v| graph.degree(v))
        .collect()
}

/// Node IDs sorted by descending degree (ties broken by ID for
/// determinism). `nodes_by_degree(g)[0]` is the hottest node.
pub fn nodes_by_degree(graph: &Csr) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    order
}

/// log2-bucketed degree histogram: `hist[k]` counts nodes with degree in
/// `[2^k, 2^{k+1})`; `hist[0]` also counts degree-0 and degree-1 nodes.
pub fn degree_histogram(graph: &Csr) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..graph.num_nodes() as NodeId {
        let d = graph.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Average degree.
pub fn average_degree(graph: &Csr) -> f64 {
    if graph.num_nodes() == 0 {
        0.0
    } else {
        graph.num_edges() as f64 / graph.num_nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Csr {
        Csr::from_undirected_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn degrees_of_star() {
        let d = degrees(&star());
        assert_eq!(d, vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn hub_ranks_first() {
        let order = nodes_by_degree(&star());
        assert_eq!(order[0], 0);
        // Ties broken by node ID.
        assert_eq!(&order[1..], &[1, 2, 3, 4]);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&star());
        // Four degree-1 nodes in bucket 0, one degree-4 node in bucket 2.
        assert_eq!(h[0], 4);
        assert_eq!(h[2], 1);
    }

    #[test]
    fn average_degree_of_star() {
        assert!((average_degree(&star()) - 8.0 / 5.0).abs() < 1e-9);
    }
}
