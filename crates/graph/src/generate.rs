//! Synthetic graph generation.
//!
//! The paper evaluates on power-law web-scale graphs (§2.3 cites the
//! power-law structure explicitly; the feature-cache argument depends on
//! it). We generate graphs from a **community-structured Chung–Lu model**:
//!
//! * per-node weights drawn from a Pareto distribution give a power-law
//!   degree distribution with a heavy tail of hubs;
//! * nodes belong to one of `num_communities` blocks; an edge endpoint is
//!   redrawn *within the source's community* with probability `homophily`,
//!   otherwise drawn globally — giving the label-correlated structure GNN
//!   accuracy experiments need (labels = communities, see
//!   [`planted_features`]).
//!
//! Node weights are shuffled relative to communities so hubs appear in every
//! community, as in real citation/social graphs.

use crate::{Csr, NodeId};
use fgnn_tensor::{Matrix, Rng};

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Target average (undirected) degree.
    pub avg_degree: f64,
    /// Number of planted communities (= label classes).
    pub num_communities: usize,
    /// Probability an edge stays within the source community.
    pub homophily: f64,
    /// Pareto shape for the weight distribution; smaller = heavier tail.
    /// Real-world graphs sit around 2.0–3.0.
    pub power_law_exponent: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            num_nodes: 1000,
            avg_degree: 10.0,
            num_communities: 8,
            homophily: 0.8,
            power_law_exponent: 2.5,
        }
    }
}

/// A generated graph plus its planted community assignment.
pub struct GeneratedGraph {
    /// Symmetric adjacency.
    pub graph: Csr,
    /// Planted community of every node (also the classification label
    /// before label noise).
    pub communities: Vec<u16>,
}

/// Cumulative-weight sampler over a set of members.
struct WeightedPicker {
    members: Vec<NodeId>,
    cumulative: Vec<f64>,
}

impl WeightedPicker {
    fn new(members: Vec<NodeId>, weights: &[f64]) -> Self {
        let mut cumulative = Vec::with_capacity(members.len());
        let mut acc = 0.0;
        for &m in &members {
            acc += weights[m as usize];
            cumulative.push(acc);
        }
        WeightedPicker {
            members,
            cumulative,
        }
    }

    fn total(&self) -> f64 {
        *self.cumulative.last().unwrap_or(&0.0)
    }

    fn pick(&self, rng: &mut Rng) -> NodeId {
        let x = rng.uniform() as f64 * self.total();
        let idx = self.cumulative.partition_point(|&c| c < x);
        self.members[idx.min(self.members.len() - 1)]
    }
}

/// Generate a community-structured power-law graph.
pub fn generate(config: &GraphConfig, rng: &mut Rng) -> GeneratedGraph {
    let n = config.num_nodes;
    assert!(n >= 2, "need at least two nodes");
    assert!(config.num_communities >= 1);

    // Pareto weights, truncated so no node exceeds ~sqrt(n*avg_deg) expected
    // degree (standard Chung–Lu feasibility trick).
    let shape = config.power_law_exponent - 1.0;
    let cap = ((n as f64) * config.avg_degree).sqrt().max(2.0);
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u = (1.0 - rng.uniform() as f64).max(1e-12);
            u.powf(-1.0 / shape).min(cap)
        })
        .collect();

    // Communities round-robin (balanced) then shuffled.
    let mut communities: Vec<u16> = (0..n)
        .map(|i| (i % config.num_communities) as u16)
        .collect();
    rng.shuffle(&mut communities);

    // Pickers: one global, one per community.
    let global = WeightedPicker::new((0..n as NodeId).collect(), &weights);
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); config.num_communities];
    for (i, &c) in communities.iter().enumerate() {
        members[c as usize].push(i as NodeId);
    }
    let per_community: Vec<WeightedPicker> = members
        .into_iter()
        .map(|m| WeightedPicker::new(m, &weights))
        .collect();

    let target_edges = ((n as f64) * config.avg_degree / 2.0) as usize;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(target_edges);
    let mut attempts = 0usize;
    let max_attempts = target_edges * 4 + 64;
    while edges.len() < target_edges && attempts < max_attempts {
        attempts += 1;
        let u = global.pick(rng);
        let v = if (rng.uniform() as f64) < config.homophily {
            per_community[communities[u as usize] as usize].pick(rng)
        } else {
            global.pick(rng)
        };
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    // Deduplicate parallel edges.
    edges.sort_unstable();
    edges.dedup();

    GeneratedGraph {
        graph: Csr::from_undirected_edges(n, &edges),
        communities,
    }
}

/// Planted node features and labels for a generated graph.
pub struct PlantedSignal {
    /// `n x dim` feature matrix: community centroid + isotropic noise.
    pub features: Matrix,
    /// Labels: the community, with `label_noise` fraction flipped uniformly.
    pub labels: Vec<u16>,
}

/// Build features/labels correlated with the planted communities.
///
/// `signal_to_noise` controls task difficulty: features are
/// `centroid[community] * s + N(0,1)` where `s = signal_to_noise`. With
/// moderate `s` the raw features are weakly informative and message passing
/// over homophilous edges genuinely helps — the regime where
/// historical-embedding error shows up as accuracy loss (Fig 2 / Table 3).
pub fn planted_features(
    communities: &[u16],
    num_communities: usize,
    dim: usize,
    signal_to_noise: f32,
    label_noise: f32,
    rng: &mut Rng,
) -> PlantedSignal {
    let centroids = rng.normal_matrix(num_communities, dim, 1.0);
    let n = communities.len();
    let mut features = Matrix::zeros(n, dim);
    for (i, &c) in communities.iter().enumerate() {
        let row = features.row_mut(i);
        let centroid = centroids.row(c as usize);
        for (x, &m) in row.iter_mut().zip(centroid) {
            *x = m * signal_to_noise + rng.normal();
        }
    }
    let labels = communities
        .iter()
        .map(|&c| {
            if rng.bernoulli(label_noise) {
                rng.below(num_communities) as u16
            } else {
                c
            }
        })
        .collect();
    PlantedSignal { features, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{average_degree, degree_histogram};

    fn small_config() -> GraphConfig {
        GraphConfig {
            num_nodes: 2000,
            avg_degree: 12.0,
            num_communities: 4,
            homophily: 0.9,
            ..Default::default()
        }
    }

    #[test]
    fn generated_graph_hits_target_density_approximately() {
        let mut rng = Rng::new(7);
        let g = generate(&small_config(), &mut rng);
        let avg = average_degree(&g.graph);
        assert!(avg > 6.0 && avg < 14.0, "average degree {avg}");
    }

    #[test]
    fn degree_distribution_has_heavy_tail() {
        let mut rng = Rng::new(8);
        let g = generate(&small_config(), &mut rng);
        let hist = degree_histogram(&g.graph);
        // Power law: some nodes land several buckets above the mean bucket.
        assert!(hist.len() >= 5, "histogram too narrow: {hist:?}");
    }

    #[test]
    fn homophily_concentrates_edges_within_communities() {
        let mut rng = Rng::new(9);
        let g = generate(&small_config(), &mut rng);
        let mut within = 0usize;
        let mut total = 0usize;
        for v in 0..g.graph.num_nodes() as NodeId {
            for &u in g.graph.neighbors(v) {
                total += 1;
                if g.communities[u as usize] == g.communities[v as usize] {
                    within += 1;
                }
            }
        }
        let frac = within as f64 / total as f64;
        // homophily 0.9 over 4 communities: well above the 0.25 base rate.
        assert!(frac > 0.6, "within-community fraction {frac}");
    }

    #[test]
    fn communities_are_balanced() {
        let mut rng = Rng::new(10);
        let g = generate(&small_config(), &mut rng);
        let mut counts = vec![0usize; 4];
        for &c in &g.communities {
            counts[c as usize] += 1;
        }
        for &c in &counts {
            assert!((c as isize - 500).unsigned_abs() < 50, "counts {counts:?}");
        }
    }

    #[test]
    fn planted_features_separate_communities() {
        let mut rng = Rng::new(11);
        let g = generate(&small_config(), &mut rng);
        let sig = planted_features(&g.communities, 4, 16, 2.0, 0.0, &mut rng);
        assert_eq!(sig.features.shape(), (2000, 16));
        assert_eq!(sig.labels, g.communities);
        // Same-community features are closer than cross-community on average.
        let d = |a: usize, b: usize| -> f32 {
            sig.features
                .row(a)
                .iter()
                .zip(sig.features.row(b))
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum()
        };
        let mut same = 0.0;
        let mut diff = 0.0;
        let mut ns = 0;
        let mut nd = 0;
        for i in 0..200 {
            for j in i + 1..200 {
                if g.communities[i] == g.communities[j] {
                    same += d(i, j);
                    ns += 1;
                } else {
                    diff += d(i, j);
                    nd += 1;
                }
            }
        }
        assert!(same / (ns as f32) < diff / (nd as f32));
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let mut rng = Rng::new(12);
        let g = generate(&small_config(), &mut rng);
        let sig = planted_features(&g.communities, 4, 4, 1.0, 0.3, &mut rng);
        let flipped = sig
            .labels
            .iter()
            .zip(&g.communities)
            .filter(|(a, b)| a != b)
            .count();
        let frac = flipped as f64 / 2000.0;
        // 30% noise, but 1/4 of flips land on the original label.
        assert!(frac > 0.15 && frac < 0.30, "flip fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = generate(&cfg, &mut Rng::new(42));
        let b = generate(&cfg, &mut Rng::new(42));
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }
}
