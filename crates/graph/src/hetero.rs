//! Heterogeneous graphs for the §7.6 extension (R-GraphSAGE on MAG240M).
//!
//! A [`HeteroGraph`] has typed nodes (paper/author/institution for the
//! MAG-like generator) and typed relations, each stored as its own CSR
//! keyed by destination. Mini-batches are sampled per relation into
//! [`HeteroBlock`]s — the typed analogue of [`crate::Block`] — which the
//! R-SAGE trainer in `freshgnn` consumes. The historical embedding cache
//! applies unchanged: it caches the *target type*'s per-layer embeddings.

use crate::mapper::NodeMapper;
use crate::{Csr, Csr2, NodeId};
use fgnn_tensor::{Matrix, Rng};

/// A typed relation: edges from `src_type` nodes to `dst_type` nodes.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Human-readable name (e.g. `"cites"`).
    pub name: &'static str,
    /// Index into the node-type table for sources.
    pub src_type: usize,
    /// Index into the node-type table for destinations.
    pub dst_type: usize,
    /// Adjacency keyed by destination node (of `dst_type`), neighbor IDs in
    /// the `src_type` ID space.
    pub graph: Csr,
}

/// A heterogeneous graph.
#[derive(Clone, Debug)]
pub struct HeteroGraph {
    /// Node-type names.
    pub type_names: Vec<&'static str>,
    /// Node count per type.
    pub node_counts: Vec<usize>,
    /// Typed relations.
    pub relations: Vec<Relation>,
}

impl HeteroGraph {
    /// Index of a node type by name. Panics if absent.
    pub fn type_id(&self, name: &str) -> usize {
        self.type_names
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown node type {name}"))
    }
}

/// One typed bipartite layer of a sampled heterogeneous mini-batch.
#[derive(Clone, Debug)]
pub struct HeteroBlock {
    /// Destination node IDs per node type (local ID = position).
    pub dst: Vec<Vec<NodeId>>,
    /// Source node IDs per node type; per-type prefix equals `dst`.
    pub src: Vec<Vec<NodeId>>,
    /// Per-relation adjacency: rows = local dst index within
    /// `dst[rel.dst_type]`, entries = local src index within
    /// `src[rel.src_type]`.
    pub rel_adj: Vec<Csr2>,
}

impl HeteroBlock {
    /// Total live edges across relations.
    pub fn num_edges(&self) -> usize {
        self.rel_adj.iter().map(Csr2::num_live_edges).sum()
    }
}

/// A sampled heterogeneous mini-batch (input→output block order).
#[derive(Clone, Debug)]
pub struct HeteroMiniBatch {
    /// Per-layer typed blocks.
    pub blocks: Vec<HeteroBlock>,
    /// Seed nodes (of `target_type`).
    pub seeds: Vec<NodeId>,
    /// The node type being classified.
    pub target_type: usize,
}

/// Fan-out sampler over typed relations.
pub struct HeteroSampler {
    mappers: Vec<NodeMapper>,
}

impl HeteroSampler {
    /// Build a sampler sized to `graph`.
    pub fn new(graph: &HeteroGraph) -> Self {
        HeteroSampler {
            mappers: graph
                .node_counts
                .iter()
                .map(|&n| NodeMapper::new(n))
                .collect(),
        }
    }

    /// Sample `fanouts.len()` typed layers rooted at `seeds` of
    /// `target_type`. `fanouts` is input→output like the homogeneous
    /// sampler and applies per relation.
    pub fn sample(
        &mut self,
        graph: &HeteroGraph,
        target_type: usize,
        seeds: &[NodeId],
        fanouts: &[usize],
        rng: &mut Rng,
    ) -> HeteroMiniBatch {
        let n_types = graph.node_counts.len();
        let mut blocks_rev = Vec::with_capacity(fanouts.len());
        let mut dst: Vec<Vec<NodeId>> = vec![Vec::new(); n_types];
        dst[target_type] = seeds.to_vec();

        for &fanout in fanouts.iter().rev() {
            // Register destinations first so the per-type src prefix holds.
            for (t, mapper) in self.mappers.iter_mut().enumerate() {
                mapper.reset();
                for &d in &dst[t] {
                    mapper.get_or_insert(d);
                }
            }

            let mut rel_adj = Vec::with_capacity(graph.relations.len());
            for rel in &graph.relations {
                let dst_nodes = &dst[rel.dst_type];
                let mut lists: Vec<Vec<NodeId>> = Vec::with_capacity(dst_nodes.len());
                for &d in dst_nodes {
                    let nbrs = rel.graph.neighbors(d);
                    let mapper = &mut self.mappers[rel.src_type];
                    let mut local = Vec::with_capacity(nbrs.len().min(fanout));
                    if nbrs.len() <= fanout {
                        for &u in nbrs {
                            local.push(mapper.get_or_insert(u) as NodeId);
                        }
                    } else {
                        for k in rng.sample_without_replacement(nbrs.len(), fanout) {
                            local.push(mapper.get_or_insert(nbrs[k]) as NodeId);
                        }
                    }
                    lists.push(local);
                }
                rel_adj.push(Csr2::from_neighbor_lists(&lists));
            }

            let src: Vec<Vec<NodeId>> = self.mappers.iter().map(|m| m.globals().to_vec()).collect();
            blocks_rev.push(HeteroBlock {
                dst: dst.clone(),
                src: src.clone(),
                rel_adj,
            });
            dst = src;
        }
        blocks_rev.reverse();
        HeteroMiniBatch {
            blocks: blocks_rev,
            seeds: seeds.to_vec(),
            target_type,
        }
    }
}

/// A materialized heterogeneous dataset (MAG-like).
pub struct HeteroDataset {
    /// The typed graph.
    pub graph: HeteroGraph,
    /// Features per node type.
    pub features: Vec<Matrix>,
    /// Labels for the target type (papers).
    pub labels: Vec<u16>,
    /// Target node type index.
    pub target_type: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Training node IDs (target type).
    pub train_nodes: Vec<NodeId>,
    /// Test node IDs (target type).
    pub test_nodes: Vec<NodeId>,
}

/// Generate a MAG240M-like heterogeneous dataset:
/// paper—cites→paper, author—writes→paper (and reverse), author—affiliated→institution.
///
/// Papers carry community-correlated features and labels; authors inherit
/// the community of their papers; institutions aggregate authors.
pub fn mag_hetero(num_papers: usize, num_classes: usize, dim: usize, seed: u64) -> HeteroDataset {
    use crate::generate::{generate, planted_features, GraphConfig};
    let mut rng = Rng::new(seed);

    // Paper citation graph with planted communities.
    let cfg = GraphConfig {
        num_nodes: num_papers,
        avg_degree: 12.0,
        num_communities: num_classes,
        homophily: 0.8,
        power_law_exponent: 2.3,
    };
    let gen = generate(&cfg, &mut rng);
    let signal = planted_features(&gen.communities, num_classes, dim, 1.0, 0.05, &mut rng);

    // Authors: ~half as many as papers; each author writes 1–5 papers,
    // biased toward one community.
    let num_authors = (num_papers / 2).max(8);
    let num_insts = (num_authors / 20).max(4);
    let mut writes: Vec<(NodeId, NodeId)> = Vec::new(); // author -> paper
    let mut author_comm = vec![0u16; num_authors];
    // Papers grouped by community for biased selection.
    let mut papers_by_comm: Vec<Vec<NodeId>> = vec![Vec::new(); num_classes];
    for (p, &c) in gen.communities.iter().enumerate() {
        papers_by_comm[c as usize].push(p as NodeId);
    }
    for a in 0..num_authors as NodeId {
        let home = rng.below(num_classes);
        author_comm[a as usize] = home as u16;
        let k = 1 + rng.below(5);
        for _ in 0..k {
            let paper = if rng.bernoulli(0.8) && !papers_by_comm[home].is_empty() {
                papers_by_comm[home][rng.below(papers_by_comm[home].len())]
            } else {
                rng.below(num_papers) as NodeId
            };
            writes.push((a, paper));
        }
    }
    // Institutions: each author affiliated with one.
    let affiliated: Vec<(NodeId, NodeId)> = (0..num_authors as NodeId)
        .map(|a| (a, rng.below(num_insts) as NodeId))
        .collect();

    let writes_rev: Vec<(NodeId, NodeId)> = writes.iter().map(|&(a, p)| (p, a)).collect();
    let affil_rev: Vec<(NodeId, NodeId)> = affiliated.iter().map(|&(a, i)| (i, a)).collect();

    let relations = vec![
        Relation {
            name: "cites",
            src_type: 0,
            dst_type: 0,
            graph: gen.graph,
        },
        Relation {
            name: "written-by", // paper <- author
            src_type: 1,
            dst_type: 0,
            graph: Csr::from_directed_edges(num_papers, &writes),
        },
        Relation {
            name: "writes", // author <- paper
            src_type: 0,
            dst_type: 1,
            graph: Csr::from_directed_edges(num_authors, &writes_rev),
        },
        Relation {
            name: "affiliated-with", // institution <- author... stored at author dst
            src_type: 2,
            dst_type: 1,
            graph: Csr::from_directed_edges(num_authors, &affil_rev),
        },
        Relation {
            name: "employs", // institution <- author
            src_type: 1,
            dst_type: 2,
            graph: Csr::from_directed_edges(num_insts, &affiliated),
        },
    ];

    // Author/institution features: weak community signal + noise.
    let author_sig = planted_features(&author_comm, num_classes, dim, 0.5, 0.0, &mut rng);
    let inst_feats = rng.normal_matrix(num_insts, dim, 1.0);

    // Train/test split over papers.
    let mut ids: Vec<NodeId> = (0..num_papers as NodeId).collect();
    rng.shuffle(&mut ids);
    let n_train = (num_papers / 10).max(1);
    let train_nodes = ids[..n_train].to_vec();
    let test_nodes = ids[n_train..].to_vec();

    HeteroDataset {
        graph: HeteroGraph {
            type_names: vec!["paper", "author", "institution"],
            node_counts: vec![num_papers, num_authors, num_insts],
            relations,
        },
        features: vec![signal.features, author_sig.features, inst_feats],
        labels: signal.labels,
        target_type: 0,
        num_classes,
        train_nodes,
        test_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HeteroDataset {
        mag_hetero(300, 4, 8, 1)
    }

    #[test]
    fn mag_hetero_shapes_consistent() {
        let ds = tiny();
        assert_eq!(ds.graph.node_counts.len(), 3);
        assert_eq!(ds.features[0].rows(), 300);
        assert_eq!(ds.features[1].rows(), ds.graph.node_counts[1]);
        assert_eq!(ds.labels.len(), 300);
        assert_eq!(ds.graph.type_id("author"), 1);
    }

    #[test]
    fn relations_have_valid_endpoints() {
        let ds = tiny();
        for rel in &ds.graph.relations {
            assert_eq!(rel.graph.num_nodes(), ds.graph.node_counts[rel.dst_type]);
            let max_src = ds.graph.node_counts[rel.src_type] as NodeId;
            for v in 0..rel.graph.num_nodes() as NodeId {
                for &u in rel.graph.neighbors(v) {
                    assert!(u < max_src, "{}: src {u} out of range", rel.name);
                }
            }
        }
    }

    #[test]
    fn hetero_sampling_produces_chained_typed_blocks() {
        let ds = tiny();
        let mut sampler = HeteroSampler::new(&ds.graph);
        let mut rng = Rng::new(2);
        let seeds: Vec<NodeId> = ds.train_nodes[..8].to_vec();
        let mb = sampler.sample(&ds.graph, 0, &seeds, &[4, 4], &mut rng);
        assert_eq!(mb.blocks.len(), 2);
        let top = &mb.blocks[1];
        assert_eq!(top.dst[0], seeds);
        // Per-type src prefix invariant.
        for b in &mb.blocks {
            for t in 0..3 {
                assert!(b.src[t].len() >= b.dst[t].len());
                assert_eq!(&b.src[t][..b.dst[t].len()], &b.dst[t][..]);
            }
            // Chaining is validated below.
        }
        // Block 1's src per type equals block 0's dst per type.
        for t in 0..3 {
            assert_eq!(mb.blocks[1].src[t], mb.blocks[0].dst[t]);
        }
        // Adjacency entries stay within the typed src ranges.
        for b in &mb.blocks {
            for (r, rel) in ds.graph.relations.iter().enumerate() {
                let n_src = b.src[rel.src_type].len() as NodeId;
                for row in 0..b.rel_adj[r].num_nodes() {
                    for &u in b.rel_adj[r].neighbors(row) {
                        assert!(u < n_src);
                    }
                }
            }
        }
    }

    #[test]
    fn hetero_sampling_deterministic() {
        let ds = tiny();
        let seeds: Vec<NodeId> = ds.train_nodes[..4].to_vec();
        let mut s1 = HeteroSampler::new(&ds.graph);
        let mut s2 = HeteroSampler::new(&ds.graph);
        let a = s1.sample(&ds.graph, 0, &seeds, &[3, 3], &mut Rng::new(5));
        let b = s2.sample(&ds.graph, 0, &seeds, &[3, 3], &mut Rng::new(5));
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.num_edges(), y.num_edges());
        }
    }

    #[test]
    fn author_paper_edges_are_homophilous() {
        let ds = tiny();
        // "written-by": paper <- author. An author's papers should mostly
        // share a community (0.8 bias in the generator). We can't see
        // author communities directly, so check the proxy: two papers by
        // the same author share a label far above the 1/4 base rate.
        let rel = &ds.graph.relations[2]; // "writes": author <- paper
        let mut same = 0usize;
        let mut total = 0usize;
        for a in 0..rel.graph.num_nodes() as NodeId {
            let papers = rel.graph.neighbors(a);
            for i in 0..papers.len() {
                for j in i + 1..papers.len() {
                    total += 1;
                    if ds.labels[papers[i] as usize] == ds.labels[papers[j] as usize] {
                        same += 1;
                    }
                }
            }
        }
        assert!(total > 20, "not enough co-authored pairs ({total})");
        let frac = same as f64 / total as f64;
        assert!(
            frac > 0.4,
            "same-label co-paper fraction {frac} (base 0.25)"
        );
    }
}
