#![warn(missing_docs)]
//! # fgnn-graph
//!
//! Graph substrate for the FreshGNN reproduction:
//!
//! * storage formats — [`csr::Csr`], [`coo::Coo`] and the paper's novel
//!   [`csr2::Csr2`] (§5, Table 1) whose two offset arrays make "remove all
//!   neighbors of node v" an O(1) operation;
//! * [`block::Block`] — the bipartite per-layer message-flow graphs a
//!   sampled mini-batch is made of;
//! * [`sample`] — fan-out neighbor sampling (the paper's default mini-batch
//!   regime, fanouts 20/15/10);
//! * [`generate`] / [`datasets`] — synthetic scaled stand-ins for
//!   ogbn-arxiv/products/papers100M, MAG240M, Twitter and Friendster with
//!   matched degree distribution, feature dimension and class count
//!   (see DESIGN.md §2 for the substitution rationale);
//! * [`partition`] — streaming graph partitioning for the ClusterGCN
//!   baseline;
//! * [`hetero`] — heterogeneous graphs for the §7.6 R-GraphSAGE extension.
//!
//! Node IDs are `u32` throughout (ogbn-papers100M's 111M nodes fit
//! comfortably; halves index memory vs `usize`, per the perf-book guidance).

pub mod block;
pub mod coo;
pub mod csr;
pub mod csr2;
pub mod datasets;
pub mod degree;
pub mod generate;
pub mod hetero;
pub mod mapper;
pub mod partition;
pub mod sample;

pub use block::Block;
pub use coo::Coo;
pub use csr::Csr;
pub use csr2::Csr2;
pub use datasets::Dataset;

/// Node identifier. `u32` bounds the reproduction at ~4B nodes, far above
/// anything the paper evaluates.
pub type NodeId = u32;
