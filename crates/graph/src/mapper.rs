//! Generation-stamped global→local node ID mapping.
//!
//! Mirrors the paper's `O(|V|)` node-ID mapping array (§4.2): a flat array
//! indexed by global node ID with O(1) insert/lookup and O(1) *bulk reset*
//! (bump the generation counter instead of clearing). The sampler uses one
//! per mini-batch layer; the historical cache uses the same structure to map
//! node IDs to ring-buffer slots.

use crate::NodeId;

/// Sentinel for "not mapped".
const UNMAPPED: u32 = u32::MAX;

/// O(1) global→local mapper with generation-based reset.
#[derive(Clone, Debug)]
pub struct NodeMapper {
    local: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    /// Global IDs in insertion (= local) order for the current generation.
    order: Vec<NodeId>,
}

impl NodeMapper {
    /// A mapper covering global IDs `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeMapper {
            local: vec![UNMAPPED; capacity],
            stamp: vec![0; capacity],
            generation: 1,
            order: Vec::new(),
        }
    }

    /// Forget all mappings in O(1).
    pub fn reset(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wrap: do the full clear to stay correct.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
        self.order.clear();
    }

    /// Map `global`, assigning the next local ID if unseen. Returns the
    /// local ID.
    #[inline]
    pub fn get_or_insert(&mut self, global: NodeId) -> u32 {
        let g = global as usize;
        if self.stamp[g] == self.generation {
            self.local[g]
        } else {
            let l = self.order.len() as u32;
            self.stamp[g] = self.generation;
            self.local[g] = l;
            self.order.push(global);
            l
        }
    }

    /// Look up `global` without inserting.
    #[inline]
    pub fn get(&self, global: NodeId) -> Option<u32> {
        let g = global as usize;
        if self.stamp[g] == self.generation {
            Some(self.local[g])
        } else {
            None
        }
    }

    /// Number of mapped nodes this generation.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether nothing is mapped.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Global IDs in local-ID order.
    #[inline]
    pub fn globals(&self) -> &[NodeId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_sequential_locals() {
        let mut m = NodeMapper::new(10);
        assert_eq!(m.get_or_insert(7), 0);
        assert_eq!(m.get_or_insert(3), 1);
        assert_eq!(m.get_or_insert(7), 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.globals(), &[7, 3]);
    }

    #[test]
    fn get_does_not_insert() {
        let mut m = NodeMapper::new(4);
        assert_eq!(m.get(2), None);
        m.get_or_insert(2);
        assert_eq!(m.get(2), Some(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn reset_is_logical_clear() {
        let mut m = NodeMapper::new(4);
        m.get_or_insert(1);
        m.get_or_insert(2);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        assert_eq!(m.get_or_insert(2), 0);
    }

    #[test]
    fn many_resets_stay_consistent() {
        let mut m = NodeMapper::new(3);
        for round in 0..1000u32 {
            m.reset();
            let g = (round % 3) as NodeId;
            assert_eq!(m.get_or_insert(g), 0);
            assert_eq!(m.len(), 1);
        }
    }
}
