//! Streaming graph partitioning for the ClusterGCN baseline.
//!
//! ClusterGCN (Chiang et al., KDD'19) partitions the graph with METIS and
//! trains on (merged) partition-induced subgraphs. We implement **Linear
//! Deterministic Greedy (LDG)** streaming partitioning — each node goes to
//! the partition holding most of its neighbors, damped by a capacity
//! penalty. LDG produces edge-locality comparable to what ClusterGCN needs
//! while staying dependency-free; the baseline's accuracy behaviour (losing
//! cross-cluster edges hurts on large sparse-label graphs, Table 3) is
//! preserved.

use crate::{Csr, NodeId};
use fgnn_tensor::Rng;

/// A partitioning of the node set into `k` parts.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// Partition ID per node.
    pub assignment: Vec<u32>,
    /// Number of partitions.
    pub num_parts: usize,
}

impl Partitioning {
    /// Node lists per partition.
    pub fn clusters(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_parts];
        for (v, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(v as NodeId);
        }
        out
    }

    /// Fraction of (directed) edges whose endpoints share a partition.
    pub fn edge_locality(&self, graph: &Csr) -> f64 {
        let mut within = 0usize;
        let mut total = 0usize;
        for v in 0..graph.num_nodes() as NodeId {
            for &u in graph.neighbors(v) {
                total += 1;
                if self.assignment[u as usize] == self.assignment[v as usize] {
                    within += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            within as f64 / total as f64
        }
    }
}

/// LDG streaming partitioning into `k` balanced parts.
///
/// Nodes are streamed in a random order; each is placed in
/// `argmax_p |N(v) ∩ p| * (1 - |p| / capacity)`.
///
/// Edge-case guarantees (the cluster sharder depends on them):
/// * `k` may exceed the node count — surplus partitions come back empty;
/// * empty graphs (`n == 0`), edgeless graphs and singleton clusters
///   (`k == n`) never panic;
/// * **every node is assigned exactly once** — total capacity
///   `k * (ceil(n/k) + 1) > n` means the argmax always has an open
///   partition to pick, which the post-loop assertion re-checks.
pub fn partition_ldg(graph: &Csr, k: usize, rng: &mut Rng) -> Partitioning {
    assert!(k >= 1, "need at least one partition");
    let n = graph.num_nodes();
    let capacity = n.div_ceil(k) + 1;
    let mut assignment = vec![u32::MAX; n];
    let mut sizes = vec![0usize; k];

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    rng.shuffle(&mut order);

    let mut neighbor_count = vec![0usize; k];
    for &v in &order {
        neighbor_count.iter_mut().for_each(|c| *c = 0);
        for &u in graph.neighbors(v) {
            let p = assignment[u as usize];
            if p != u32::MAX {
                neighbor_count[p as usize] += 1;
            }
        }
        let mut best = None;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..k {
            if sizes[p] >= capacity {
                continue;
            }
            let balance = 1.0 - sizes[p] as f64 / capacity as f64;
            // +balance epsilon-term breaks ties toward emptier partitions.
            let score = neighbor_count[p] as f64 * balance + 1e-3 * balance;
            if best.is_none() || score > best_score {
                best_score = score;
                best = Some(p);
            }
        }
        // Unreachable by the capacity argument above; a hard error beats
        // silently overfilling partition 0 if the invariant ever breaks.
        let best = best.expect("LDG invariant broken: every partition at capacity");
        assignment[v as usize] = best as u32;
        sizes[best] += 1;
    }

    debug_assert!(
        assignment.iter().all(|&p| (p as usize) < k),
        "LDG left a node unassigned"
    );
    Partitioning {
        assignment,
        num_parts: k,
    }
}

/// Extract the subgraph induced by `nodes` with locally relabeled IDs.
///
/// Returns the relabeled CSR plus the local→global map (`nodes` itself,
/// copied). Edges to nodes outside the set are dropped — exactly
/// ClusterGCN's approximation.
pub fn induced_subgraph(graph: &Csr, nodes: &[NodeId]) -> (Csr, Vec<NodeId>) {
    let mut local_of = std::collections::HashMap::with_capacity(nodes.len() * 2);
    for (l, &g) in nodes.iter().enumerate() {
        local_of.insert(g, l as NodeId);
    }
    let mut edges = Vec::new();
    for (l, &g) in nodes.iter().enumerate() {
        for &u in graph.neighbors(g) {
            if let Some(&lu) = local_of.get(&u) {
                edges.push((lu, l as NodeId));
            }
        }
    }
    (
        Csr::from_directed_edges(nodes.len(), &edges),
        nodes.to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GraphConfig};

    fn two_cliques() -> Csr {
        // Nodes 0-3 form a clique, 4-7 form a clique, one bridge edge.
        let mut edges = Vec::new();
        for block in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((block + i, block + j));
                }
            }
        }
        edges.push((3, 4));
        Csr::from_undirected_edges(8, &edges)
    }

    #[test]
    fn ldg_separates_cliques() {
        let g = two_cliques();
        let mut rng = Rng::new(1);
        let p = partition_ldg(&g, 2, &mut rng);
        assert!(
            p.edge_locality(&g) > 0.9,
            "locality {}",
            p.edge_locality(&g)
        );
        // Balanced: 4 + 4.
        let sizes: Vec<usize> = p.clusters().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|&s| s == 4), "sizes {sizes:?}");
    }

    #[test]
    fn ldg_respects_capacity() {
        let mut rng = Rng::new(2);
        let cfg = GraphConfig {
            num_nodes: 500,
            avg_degree: 8.0,
            num_communities: 4,
            homophily: 0.9,
            ..Default::default()
        };
        let g = generate(&cfg, &mut rng).graph;
        let p = partition_ldg(&g, 7, &mut rng);
        let cap = 500 / 7 + 2;
        for c in p.clusters() {
            assert!(c.len() <= cap, "cluster size {} over capacity", c.len());
        }
    }

    #[test]
    fn ldg_beats_random_locality_on_community_graph() {
        let mut rng = Rng::new(3);
        let cfg = GraphConfig {
            num_nodes: 1000,
            avg_degree: 10.0,
            num_communities: 8,
            homophily: 0.9,
            ..Default::default()
        };
        let g = generate(&cfg, &mut rng).graph;
        let p = partition_ldg(&g, 8, &mut rng);
        // Random assignment into 8 parts has locality ~1/8.
        assert!(
            p.edge_locality(&g) > 0.3,
            "locality {}",
            p.edge_locality(&g)
        );
    }

    /// Every node assigned to exactly one in-range partition, and cluster
    /// sizes sum back to `n`.
    fn assert_total_assignment(p: &Partitioning, n: usize, k: usize) {
        assert_eq!(p.assignment.len(), n);
        assert!(p.assignment.iter().all(|&q| (q as usize) < k));
        let total: usize = p.clusters().iter().map(Vec::len).sum();
        assert_eq!(total, n, "nodes lost or duplicated across clusters");
    }

    #[test]
    fn ldg_k_larger_than_node_count() {
        let g = two_cliques(); // 8 nodes
        let mut rng = Rng::new(11);
        let p = partition_ldg(&g, 20, &mut rng);
        assert_total_assignment(&p, 8, 20);
        // Surplus partitions are empty, none over capacity (ceil(8/20)+1 = 2).
        assert!(p.clusters().iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn ldg_singleton_clusters() {
        let g = two_cliques();
        let mut rng = Rng::new(12);
        let p = partition_ldg(&g, 8, &mut rng);
        assert_total_assignment(&p, 8, 8);
    }

    #[test]
    fn ldg_empty_graph() {
        let g = Csr::from_directed_edges(0, &[]);
        let mut rng = Rng::new(13);
        let p = partition_ldg(&g, 4, &mut rng);
        assert_total_assignment(&p, 0, 4);
        assert!(p.clusters().iter().all(Vec::is_empty));
        assert_eq!(p.edge_locality(&g), 1.0);
    }

    #[test]
    fn ldg_edgeless_graph_stays_balanced() {
        // Empty-frontier stream: no neighbor signal, only the balance term.
        let g = Csr::from_directed_edges(12, &[]);
        let mut rng = Rng::new(14);
        let p = partition_ldg(&g, 3, &mut rng);
        assert_total_assignment(&p, 12, 3);
        let sizes: Vec<usize> = p.clusters().iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 4), "sizes {sizes:?}");
    }

    #[test]
    fn ldg_single_node_single_partition() {
        let g = Csr::from_directed_edges(1, &[]);
        let mut rng = Rng::new(15);
        let p = partition_ldg(&g, 1, &mut rng);
        assert_total_assignment(&p, 1, 1);
        let p = partition_ldg(&g, 5, &mut rng);
        assert_total_assignment(&p, 1, 5);
    }

    #[test]
    fn induced_subgraph_empty_node_set() {
        let g = two_cliques();
        let (sub, map) = induced_subgraph(&g, &[]);
        assert_eq!(sub.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = two_cliques();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.num_nodes(), 4);
        // Full clique: each node has 3 in-neighbors; bridge edge dropped.
        for v in 0..4u32 {
            assert_eq!(sub.degree(v), 3);
        }
        assert_eq!(map, vec![0, 1, 2, 3]);
    }

    #[test]
    fn induced_subgraph_relabeling_preserves_adjacency() {
        let g = two_cliques();
        let (sub, map) = induced_subgraph(&g, &[4, 5, 6, 7]);
        for v in 0..4u32 {
            for &u in sub.neighbors(v) {
                // Every relabeled edge corresponds to a global edge.
                let gu = map[u as usize];
                let gv = map[v as usize];
                assert!(g.neighbors(gv).contains(&gu));
            }
        }
    }
}
