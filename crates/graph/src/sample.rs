//! Fan-out neighbor sampling (GraphSAGE-style), producing per-layer
//! [`Block`]s.
//!
//! Sampling proceeds top-down: the seed nodes are the destination set of the
//! last block; each layer samples up to `fanout` in-neighbors per
//! destination; the union of destinations and sampled sources becomes the
//! next (lower) layer's destination set. Passing [`FULL_NEIGHBORS`] as a
//! fanout takes every neighbor (used to compute *authentic* embeddings for
//! the Fig 1 estimation-error probe).

use crate::block::MiniBatch;
use crate::mapper::NodeMapper;
use crate::{Block, Csr, Csr2, NodeId};
use fgnn_tensor::Rng;

/// Fanout value meaning "take all neighbors".
pub const FULL_NEIGHBORS: usize = usize::MAX;

/// Reusable sampler scratch state (mapper + buffers), sized to the graph.
///
/// Keeping this out of the per-batch path avoids reallocating the O(|V|)
/// mapping array for every mini-batch — the same reason the paper keeps a
/// persistent node-ID mapping array on GPU.
pub struct NeighborSampler {
    mapper: NodeMapper,
}

impl NeighborSampler {
    /// Create a sampler for graphs with up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        NeighborSampler {
            mapper: NodeMapper::new(num_nodes),
        }
    }

    /// Sample an L-layer mini-batch.
    ///
    /// `fanouts` is in input→output order (`fanouts[0]` applies to the block
    /// that consumes raw features), matching DGL's convention and the
    /// paper's "20, 15, 10" notation.
    pub fn sample(
        &mut self,
        graph: &Csr,
        seeds: &[NodeId],
        fanouts: &[usize],
        rng: &mut Rng,
    ) -> MiniBatch {
        assert!(!fanouts.is_empty(), "at least one layer required");
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(fanouts.len());
        let mut dst: Vec<NodeId> = seeds.to_vec();

        for &fanout in fanouts.iter().rev() {
            let block = self.sample_one_layer(graph, &dst, fanout, rng);
            dst = block.src_global.clone();
            blocks_rev.push(block);
        }
        blocks_rev.reverse();
        MiniBatch {
            blocks: blocks_rev,
            seeds: seeds.to_vec(),
        }
    }

    /// Sample a single bipartite block for destination set `dst`.
    fn sample_one_layer(
        &mut self,
        graph: &Csr,
        dst: &[NodeId],
        fanout: usize,
        rng: &mut Rng,
    ) -> Block {
        self.mapper.reset();
        // Destinations take the first local IDs so the src prefix invariant
        // holds.
        for &d in dst {
            self.mapper.get_or_insert(d);
        }
        debug_assert_eq!(self.mapper.len(), dst.len(), "duplicate seeds in dst");

        let mut lists: Vec<Vec<NodeId>> = Vec::with_capacity(dst.len());
        let mut scratch: Vec<usize> = Vec::new();
        for &d in dst {
            let nbrs = graph.neighbors(d);
            let mut local = Vec::with_capacity(nbrs.len().min(fanout));
            if nbrs.len() <= fanout {
                for &u in nbrs {
                    local.push(self.mapper.get_or_insert(u) as NodeId);
                }
            } else {
                scratch.clear();
                scratch.extend(rng.sample_without_replacement(nbrs.len(), fanout));
                for &k in &scratch {
                    local.push(self.mapper.get_or_insert(nbrs[k]) as NodeId);
                }
            }
            lists.push(local);
        }

        Block {
            dst_global: dst.to_vec(),
            src_global: self.mapper.globals().to_vec(),
            adj: Csr2::from_neighbor_lists(&lists),
        }
    }
}

/// Split `train_nodes` into mini-batches of `batch_size` after an optional
/// shuffle — Algorithm 1's `Split(G, B)`.
pub fn split_batches(
    train_nodes: &[NodeId],
    batch_size: usize,
    shuffle: Option<&mut Rng>,
) -> Vec<Vec<NodeId>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let mut nodes = train_nodes.to_vec();
    if let Some(rng) = shuffle {
        rng.shuffle(&mut nodes);
    }
    nodes.chunks(batch_size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges)
    }

    fn star_graph(leaves: usize) -> Csr {
        // Node 0 is the hub.
        let edges: Vec<(NodeId, NodeId)> = (1..=leaves as NodeId).map(|l| (0, l)).collect();
        Csr::from_undirected_edges(leaves + 1, &edges)
    }

    #[test]
    fn full_fanout_takes_every_neighbor() {
        let g = star_graph(5);
        let mut s = NeighborSampler::new(g.num_nodes());
        let mut rng = Rng::new(1);
        let mb = s.sample(&g, &[0], &[FULL_NEIGHBORS], &mut rng);
        mb.validate().unwrap();
        assert_eq!(mb.blocks[0].num_dst(), 1);
        assert_eq!(mb.blocks[0].num_src(), 6); // hub + 5 leaves
        assert_eq!(mb.blocks[0].num_edges(), 5);
    }

    #[test]
    fn fanout_caps_sampled_neighbors() {
        let g = star_graph(50);
        let mut s = NeighborSampler::new(g.num_nodes());
        let mut rng = Rng::new(2);
        let mb = s.sample(&g, &[0], &[8], &mut rng);
        mb.validate().unwrap();
        assert_eq!(mb.blocks[0].adj.degree(0), 8);
        // Sampled neighbors are distinct leaves.
        let nbrs = mb.blocks[0].adj.neighbors(0);
        let set: std::collections::HashSet<_> = nbrs.iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn multilayer_blocks_chain_correctly() {
        let g = path_graph(32);
        let mut s = NeighborSampler::new(g.num_nodes());
        let mut rng = Rng::new(3);
        let mb = s.sample(&g, &[16, 17], &[2, 2, 2], &mut rng);
        mb.validate().unwrap();
        assert_eq!(mb.num_layers(), 3);
        // Deeper blocks have at least as many dst nodes as the one above.
        assert!(mb.blocks[0].num_dst() >= mb.blocks[1].num_dst());
        assert!(mb.blocks[1].num_dst() >= mb.blocks[2].num_dst());
        assert_eq!(mb.blocks[2].dst_global, vec![16, 17]);
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let g = star_graph(50);
        let mut s1 = NeighborSampler::new(g.num_nodes());
        let mut s2 = NeighborSampler::new(g.num_nodes());
        let mb1 = s1.sample(&g, &[0], &[8, 8], &mut Rng::new(42));
        let mb2 = s2.sample(&g, &[0], &[8, 8], &mut Rng::new(42));
        for (a, b) in mb1.blocks.iter().zip(&mb2.blocks) {
            assert_eq!(a.src_global, b.src_global);
            assert_eq!(a.adj, b.adj);
        }
    }

    #[test]
    fn isolated_seed_yields_empty_adjacency() {
        let g = Csr::from_undirected_edges(3, &[(0, 1)]);
        let mut s = NeighborSampler::new(3);
        let mb = s.sample(&g, &[2], &[4], &mut Rng::new(0));
        mb.validate().unwrap();
        assert_eq!(mb.blocks[0].num_edges(), 0);
        assert_eq!(mb.blocks[0].num_src(), 1);
    }

    #[test]
    fn split_batches_partitions_all_nodes() {
        let nodes: Vec<NodeId> = (0..10).collect();
        let batches = split_batches(&nodes, 4, None);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].len(), 2);
        let flat: Vec<NodeId> = batches.concat();
        assert_eq!(flat, nodes);
    }

    #[test]
    fn split_batches_shuffled_is_permutation() {
        let nodes: Vec<NodeId> = (0..100).collect();
        let mut rng = Rng::new(5);
        let batches = split_batches(&nodes, 7, Some(&mut rng));
        let mut flat: Vec<NodeId> = batches.concat();
        flat.sort_unstable();
        assert_eq!(flat, nodes);
    }
}

/// Layer-wise (FastGCN-style) sampling: instead of expanding every
/// destination's neighborhood, each layer draws one *shared* sample of
/// nodes — importance-weighted by degree — and keeps the bipartite edges
/// into the layer above. Breaks the exponential fan-out at the cost of
/// sparser, biased aggregations (§2.3's "layer-wise sampling" family).
///
/// `layer_sizes` is input→output aligned with model layers: layer `l`'s
/// *source* pool gets `layer_sizes[l]` sampled nodes in addition to the
/// destinations themselves (which stay for the self term).
pub fn layer_wise_sample(
    graph: &Csr,
    seeds: &[NodeId],
    layer_sizes: &[usize],
    rng: &mut Rng,
) -> MiniBatch {
    assert!(!layer_sizes.is_empty());
    let mut blocks_rev: Vec<Block> = Vec::with_capacity(layer_sizes.len());
    let mut dst: Vec<NodeId> = seeds.to_vec();

    for &n_sample in layer_sizes.iter().rev() {
        // Candidate pool: union of dst neighborhoods, deduplicated.
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &d in &dst {
            seen.insert(d); // dst occupy the src prefix already
        }
        for &d in &dst {
            for &u in graph.neighbors(d) {
                if seen.insert(u) {
                    candidates.push(u);
                }
            }
        }
        // Degree-proportional importance sampling without replacement
        // (FastGCN uses squared-norm importance; degree is the standard
        // structural surrogate).
        let sampled: Vec<NodeId> = if candidates.len() <= n_sample {
            candidates
        } else {
            let weights: Vec<f64> = candidates
                .iter()
                .map(|&u| (graph.degree(u) + 1) as f64)
                .collect();
            let mut picked = Vec::with_capacity(n_sample);
            let mut taken = vec![false; candidates.len()];
            let mut total: f64 = weights.iter().sum();
            for _ in 0..n_sample {
                let mut x = rng.uniform() as f64 * total;
                let mut chosen = usize::MAX;
                for (i, &w) in weights.iter().enumerate() {
                    if taken[i] {
                        continue;
                    }
                    x -= w;
                    if x <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                if chosen == usize::MAX {
                    chosen = match taken.iter().position(|&t| !t) {
                        Some(i) => i,
                        None => break,
                    };
                }
                taken[chosen] = true;
                total -= weights[chosen];
                picked.push(candidates[chosen]);
            }
            picked
        };

        // src = dst ++ sampled; adjacency = graph edges dst <- src-set.
        let mut local_of = std::collections::HashMap::with_capacity(dst.len() + sampled.len());
        let mut src_global = dst.clone();
        for (i, &d) in dst.iter().enumerate() {
            local_of.insert(d, i as NodeId);
        }
        for &u in &sampled {
            local_of.entry(u).or_insert_with(|| {
                src_global.push(u);
                (src_global.len() - 1) as NodeId
            });
        }
        let lists: Vec<Vec<NodeId>> = dst
            .iter()
            .map(|&d| {
                graph
                    .neighbors(d)
                    .iter()
                    .filter_map(|u| local_of.get(u).copied())
                    // Layers add the self term explicitly; drop self loops.
                    .filter(|&lu| src_global[lu as usize] != d)
                    .collect()
            })
            .collect();
        let block = Block {
            dst_global: dst.clone(),
            src_global: src_global.clone(),
            adj: Csr2::from_neighbor_lists(&lists),
        };
        dst = src_global;
        blocks_rev.push(block);
    }
    blocks_rev.reverse();
    MiniBatch {
        blocks: blocks_rev,
        seeds: seeds.to_vec(),
    }
}

/// Random-walk node sampling (GraphSAINT-style): walk `walk_length` steps
/// from each root and return the deduplicated, sorted visited set — the
/// subgraph a graph-wise sampling iteration trains on (§2.3's "graph-wise
/// sampling" family).
pub fn random_walk_nodes(
    graph: &Csr,
    roots: &[NodeId],
    walk_length: usize,
    rng: &mut Rng,
) -> Vec<NodeId> {
    let mut visited: Vec<NodeId> = Vec::with_capacity(roots.len() * (walk_length + 1));
    for &r in roots {
        let mut cur = r;
        visited.push(cur);
        for _ in 0..walk_length {
            let nbrs = graph.neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = nbrs[rng.below(nbrs.len())];
            visited.push(cur);
        }
    }
    visited.sort_unstable();
    visited.dedup();
    visited
}

#[cfg(test)]
mod alt_sampler_tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Csr::from_undirected_edges(n, &edges)
    }

    fn star_graph(leaves: usize) -> Csr {
        let edges: Vec<(NodeId, NodeId)> = (1..=leaves as NodeId).map(|l| (0, l)).collect();
        Csr::from_undirected_edges(leaves + 1, &edges)
    }

    #[test]
    fn layer_wise_sample_bounds_pool_sizes() {
        let mut rng = Rng::new(7);
        let g = crate::generate::generate(
            &crate::generate::GraphConfig {
                num_nodes: 500,
                avg_degree: 12.0,
                ..Default::default()
            },
            &mut rng,
        )
        .graph;
        let seeds: Vec<NodeId> = (0..20).collect();
        let mb = layer_wise_sample(&g, &seeds, &[30, 30], &mut rng);
        mb.validate().unwrap();
        // Each layer adds at most `layer_size` sampled sources on top of
        // its destinations.
        for (b, block) in mb.blocks.iter().enumerate() {
            assert!(
                block.num_src() <= block.num_dst() + 30,
                "block {b}: {} src vs {} dst",
                block.num_src(),
                block.num_dst()
            );
        }
        // Unlike fan-out sampling, the pool does NOT grow exponentially.
        assert!(mb.input_nodes().len() <= 20 + 30 + 30);
    }

    #[test]
    fn layer_wise_sample_edges_are_real() {
        let mut rng = Rng::new(8);
        let g = star_graph(40);
        let mb = layer_wise_sample(&g, &[0], &[10], &mut rng);
        mb.validate().unwrap();
        let b = &mb.blocks[0];
        for &u in b.adj.neighbors(0) {
            let gu = b.src_global[u as usize];
            assert!(g.neighbors(0).contains(&gu));
        }
        assert!(b.adj.degree(0) <= 10 + 1);
    }

    #[test]
    fn random_walk_nodes_visits_connected_region() {
        let mut rng = Rng::new(9);
        let g = path_graph(50);
        let nodes = random_walk_nodes(&g, &[25], 10, &mut rng);
        assert!(nodes.contains(&25));
        assert!(nodes.len() > 1, "walk must move");
        // A 10-step walk from 25 stays within distance 10.
        assert!(nodes.iter().all(|&v| (v as i64 - 25).abs() <= 10));
        // Sorted and deduplicated.
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn random_walk_from_isolated_node_stops() {
        let g = Csr::from_undirected_edges(3, &[(0, 1)]);
        let mut rng = Rng::new(10);
        let nodes = random_walk_nodes(&g, &[2], 5, &mut rng);
        assert_eq!(nodes, vec![2]);
    }
}
